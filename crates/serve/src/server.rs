//! The long-lived serving front-end: thread-per-connection over TCP or
//! Unix-domain sockets, with admission control and per-request latency
//! histograms.
//!
//! Request flow: read frame → admission check (solve/factor opcodes
//! only; pings and stats always answer) → decode → cache lookup /
//! single-flight factor → multi-column solve through
//! `Factor::solve_cols_into` on pooled scratch → encode → write frame.
//! The whole span lands in `Hist::ServeRequestNs`.
//!
//! Admission control is a bounded in-flight counter, not a queue: when
//! `max_inflight` expensive requests are already running, the server
//! answers `STATUS_SHED` immediately instead of stacking latency. The
//! client retries against a less-loaded replica (or backs off) — the
//! standard load-shed contract for latency-bound services.

use crate::cache::OperatorCache;
use crate::proto::{
    self, read_frame, read_generator, write_frame, Reader, MAX_FRAME, OP_FACTOR, OP_PING,
    OP_SHUTDOWN, OP_SOLVE, OP_SOLVE_CACHED, OP_STATS, STATUS_ERR, STATUS_OK, STATUS_SHED,
};
use crate::{Result, ServeError};
use bs_core::Factor;
use bs_matrix::Matrix;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Operator-cache capacity (Ready factors held).
    pub cache_capacity: usize,
    /// Maximum concurrently-executing factor/solve requests before
    /// admission control sheds.
    pub max_inflight: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cache_capacity: 16,
            max_inflight: 64,
        }
    }
}

/// Server-side request tallies (beyond the cache's own stats).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Frames dispatched (any opcode).
    pub requests: AtomicU64,
    /// Requests turned away by admission control.
    pub shed: AtomicU64,
}

/// Shared state every connection thread works against.
struct Shared {
    cache: OperatorCache,
    stats: ServerStats,
    inflight: AtomicUsize,
    max_inflight: usize,
    shutdown: AtomicBool,
    endpoint: Endpoint,
}

impl Shared {
    /// Arm the shutdown flag and unblock the accept loop with a
    /// throwaway connection so it observes the flag and exits.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        match &self.endpoint {
            Endpoint::Tcp(a) => drop(TcpStream::connect(a)),
            Endpoint::Unix(p) => drop(UnixStream::connect(p)),
        }
    }
}

/// A serving front-end bound to a TCP address or Unix socket path.
pub struct Server {
    config: ServerConfig,
}

impl Server {
    /// A server with the given tuning.
    pub fn new(config: ServerConfig) -> Self {
        Server { config }
    }

    /// Bind a TCP listener (use port 0 for an ephemeral port) and
    /// start the accept loop on a background thread.
    pub fn serve_tcp<A: ToSocketAddrs>(self, addr: A) -> Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        self.spawn(Listener::Tcp(listener), Endpoint::Tcp(local))
    }

    /// Bind a Unix-domain socket at `path` (removing a stale socket
    /// file first) and start the accept loop on a background thread.
    pub fn serve_uds<P: AsRef<Path>>(self, path: P) -> Result<ServerHandle> {
        let path = path.as_ref().to_path_buf();
        if path.exists() {
            std::fs::remove_file(&path)?;
        }
        let listener = UnixListener::bind(&path)?;
        self.spawn(Listener::Unix(listener), Endpoint::Unix(path))
    }

    fn spawn(self, listener: Listener, endpoint: Endpoint) -> Result<ServerHandle> {
        let shared = Arc::new(Shared {
            cache: OperatorCache::new(self.config.cache_capacity),
            stats: ServerStats::default(),
            inflight: AtomicUsize::new(0),
            max_inflight: self.config.max_inflight,
            shutdown: AtomicBool::new(false),
            endpoint: endpoint.clone(),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("bs-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        bs_probe::event!("serve_start");
        Ok(ServerHandle {
            endpoint,
            shared,
            accept: Some(accept),
        })
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

/// Where a running server is reachable.
#[derive(Clone, Debug)]
pub enum Endpoint {
    /// TCP socket address (with the resolved ephemeral port).
    Tcp(SocketAddr),
    /// Unix-domain socket path.
    Unix(PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(a) => write!(f, "tcp://{a}"),
            Endpoint::Unix(p) => write!(f, "unix://{}", p.display()),
        }
    }
}

/// Handle to a running server: endpoint discovery, stats, shutdown.
pub struct ServerHandle {
    endpoint: Endpoint,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Where the server is listening.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The TCP address, when TCP-bound (tests and the load generator).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match self.endpoint {
            Endpoint::Tcp(a) => Some(a),
            Endpoint::Unix(_) => None,
        }
    }

    /// The operator cache (for out-of-band inspection in tests).
    pub fn cache(&self) -> &OperatorCache {
        &self.shared.cache
    }

    /// Frames dispatched and requests shed so far.
    pub fn request_stats(&self) -> (u64, u64) {
        (
            self.shared.stats.requests.load(Ordering::Relaxed),
            self.shared.stats.shed.load(Ordering::Relaxed),
        )
    }

    /// Stop accepting connections and join the accept loop. Existing
    /// connection threads finish their current request and exit on the
    /// next read (their peers see EOF-clean closes).
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        self.join_accept();
    }

    /// Block until the server stops — e.g. a client sends
    /// `OP_SHUTDOWN`. This is the foreground mode the CLI runs in.
    pub fn wait(mut self) {
        self.join_accept();
    }

    fn join_accept(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Endpoint::Unix(p) = &self.endpoint {
            let _ = std::fs::remove_file(p);
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shared.begin_shutdown();
            self.join_accept();
        }
    }
}

fn accept_loop(listener: Listener, shared: Arc<Shared>) {
    loop {
        let stream: Box<dyn Conn> = match &listener {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    // A response frame is a length prefix plus payload in
                    // two small writes; without nodelay, Nagle holds the
                    // second behind the peer's delayed ACK (~40 ms per
                    // request — measured, not hypothetical).
                    let _ = s.set_nodelay(true);
                    Box::new(s)
                }
                Err(_) => continue,
            },
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => Box::new(s),
                Err(_) => continue,
            },
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let conn_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("bs-serve-conn".into())
            .spawn(move || {
                let _ = handle_connection(stream, conn_shared);
            });
        // Thread exhaustion drops the connection; the client sees a
        // closed socket and retries. Nothing else to do here.
        drop(spawned);
    }
}

trait Conn: Read + Write + Send {}
impl Conn for TcpStream {}
impl Conn for UnixStream {}

/// In-flight admission slot: acquired for expensive opcodes, released
/// on drop so error paths cannot leak capacity.
struct Admission<'a>(&'a Shared);

impl<'a> Admission<'a> {
    fn try_acquire(shared: &'a Shared) -> Option<Self> {
        let prev = shared.inflight.fetch_add(1, Ordering::Relaxed);
        if prev >= shared.max_inflight {
            shared.inflight.fetch_sub(1, Ordering::Relaxed);
            return None;
        }
        Some(Admission(shared))
    }
}

impl Drop for Admission<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

fn handle_connection(mut stream: Box<dyn Conn>, shared: Arc<Shared>) -> Result<()> {
    let mut req = Vec::new();
    let mut resp = Vec::new();
    while read_frame(&mut stream, &mut req)? {
        let t0 = std::time::Instant::now();
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        resp.clear();
        dispatch(&shared, &req, &mut resp);
        write_frame(&mut stream, &resp)?;
        bs_probe::histogram::record(
            bs_probe::Hist::ServeRequestNs,
            t0.elapsed().as_nanos() as u64,
        );
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
    }
    Ok(())
}

/// Decode one request and write the response payload into `resp`.
/// Infallible by construction: every failure becomes a `STATUS_ERR`
/// payload so the connection survives bad requests.
fn dispatch(shared: &Shared, req: &[u8], resp: &mut Vec<u8>) {
    let mut r = Reader::new(req);
    let op = match r.u8() {
        Ok(op) => op,
        Err(_) => {
            encode_error(resp, "empty request frame");
            return;
        }
    };
    let needs_admission = matches!(op, OP_FACTOR | OP_SOLVE | OP_SOLVE_CACHED);
    let _slot = if needs_admission {
        match Admission::try_acquire(shared) {
            Some(slot) => Some(slot),
            None => {
                shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                bs_probe::event!("serve_shed");
                resp.push(STATUS_SHED);
                return;
            }
        }
    } else {
        None
    };
    let out = match op {
        OP_PING => {
            resp.push(STATUS_OK);
            Ok(())
        }
        OP_FACTOR => handle_factor(shared, &mut r, resp),
        OP_SOLVE => handle_solve(shared, &mut r, resp),
        OP_SOLVE_CACHED => handle_solve_cached(shared, &mut r, resp),
        OP_STATS => handle_stats(shared, resp),
        OP_SHUTDOWN => {
            // Arms the flag *and* pokes the accept loop awake, so a
            // foreground `ServerHandle::wait` returns promptly.
            shared.begin_shutdown();
            resp.push(STATUS_OK);
            Ok(())
        }
        _ => Err(ServeError::Protocol("unknown opcode")),
    };
    if let Err(e) = out {
        encode_error(resp, &e.to_string());
    }
}

fn encode_error(resp: &mut Vec<u8>, msg: &str) {
    resp.clear();
    resp.push(STATUS_ERR);
    resp.extend_from_slice(msg.as_bytes());
}

fn handle_factor(shared: &Shared, r: &mut Reader<'_>, resp: &mut Vec<u8>) -> Result<()> {
    let t = read_generator(r)?;
    let fp = t.fingerprint();
    let was_cached = shared.cache.contains_ready(fp);
    shared.cache.get_or_factor(&t)?;
    resp.push(STATUS_OK);
    proto::put_u64(resp, fp);
    resp.push(u8::from(was_cached));
    Ok(())
}

fn handle_solve(shared: &Shared, r: &mut Reader<'_>, resp: &mut Vec<u8>) -> Result<()> {
    let t = read_generator(r)?;
    let factor = shared.cache.get_or_factor(&t)?;
    solve_into_response(&factor, r, resp)
}

fn handle_solve_cached(shared: &Shared, r: &mut Reader<'_>, resp: &mut Vec<u8>) -> Result<()> {
    let fp = r.u64()?;
    let factor = shared
        .cache
        .get(fp)
        .ok_or(ServeError::UnknownOperator(fp))?;
    solve_into_response(&factor, r, resp)
}

/// The per-request hot path: stage the RHS columns in pooled scratch,
/// run them through the shared factor's batched multi-RHS driver, and
/// stream the solution back as raw bits. Steady state performs no heap
/// allocation — the scratch matrices come from the factor's workspace
/// pool and the response buffer is reused per connection.
fn solve_into_response(factor: &Factor, r: &mut Reader<'_>, resp: &mut Vec<u8>) -> Result<()> {
    let n = factor.order();
    let ncols = r.u32()? as usize;
    if ncols == 0 {
        return Err(ServeError::Protocol("solve with zero right-hand sides"));
    }
    let need = n
        .checked_mul(ncols)
        .and_then(|e| e.checked_mul(8))
        .filter(|&e| e <= MAX_FRAME)
        .ok_or(ServeError::Protocol("solve shape overflows the frame"))?;
    if r.remaining() < need {
        return Err(ServeError::Protocol("solve body shorter than n·ncols"));
    }
    let mut scratch = factor.scratch();
    let mut b = scratch.take_matrix(n, ncols);
    let mut x = scratch.take_matrix(n, ncols);
    let solved = stage_and_solve(factor, r, &mut b, &mut x, resp);
    scratch.give_matrix(x);
    scratch.give_matrix(b);
    solved
}

fn stage_and_solve(
    factor: &Factor,
    r: &mut Reader<'_>,
    b: &mut Matrix,
    x: &mut Matrix,
    resp: &mut Vec<u8>,
) -> Result<()> {
    r.f64s_into(b.as_mut_slice())?;
    factor.solve_cols_into(b, x)?;
    resp.push(STATUS_OK);
    proto::put_f64s(resp, x.as_slice());
    Ok(())
}

fn handle_stats(shared: &Shared, resp: &mut Vec<u8>) -> Result<()> {
    let cache = shared.cache.stats();
    resp.push(STATUS_OK);
    proto::put_u64(resp, cache.hits);
    proto::put_u64(resp, cache.factorizations);
    proto::put_u64(resp, cache.evictions);
    proto::put_u64(resp, cache.single_flight_waits);
    proto::put_u64(resp, shared.stats.shed.load(Ordering::Relaxed));
    proto::put_u64(resp, shared.stats.requests.load(Ordering::Relaxed));
    Ok(())
}
