//! The operator cache: fingerprint-keyed factorizations with LRU
//! eviction and single-flight factorization.
//!
//! The serving workload is "millions of solves against a handful of
//! hot operators": the cache turns every repeat request into an
//! `Arc<Factor>` clone (two triangular solves per column, no O(mn²)
//! work), while misses factor exactly once no matter how many tenants
//! stampede the same key — a `Building` placeholder holds later
//! arrivals on a condvar until the first one publishes the factor.
//! Factorization itself runs *outside* the cache lock, so a slow
//! build never blocks hits on other keys.
//!
//! Eviction is least-recently-used over Ready entries only: a slot
//! mid-build is never evicted (its waiters hold its key), and capacity
//! is enforced after each publish.

use crate::{Result, ServeError};
use bs_core::Factor;
use bs_toeplitz::SymBlockToeplitz;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

enum Slot {
    /// Some tenant is factoring this key; wait on the condvar.
    Building,
    /// Published factor plus its LRU stamp.
    Ready { factor: Arc<Factor>, last_used: u64 },
}

struct CacheInner {
    map: HashMap<u64, Slot>,
    /// Monotonic use stamp for LRU ordering.
    tick: u64,
}

/// Monotonic cache statistics (relaxed atomics: each counter is an
/// independent tally, read for reporting only).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered by an already-Ready factor.
    pub hits: u64,
    /// Factorizations actually performed (= misses that built).
    pub factorizations: u64,
    /// Ready entries evicted by the LRU policy.
    pub evictions: u64,
    /// Tenants that waited on another tenant's in-flight build.
    pub single_flight_waits: u64,
}

/// Concurrent factorization cache keyed by generator fingerprint.
///
/// ```
/// use bs_serve::OperatorCache;
/// use bs_toeplitz::workloads;
///
/// let cache = OperatorCache::new(8);
/// let t = workloads::kms(32, 0.6);
/// let f1 = cache.get_or_factor(&t).unwrap();
/// let f2 = cache.get_or_factor(&t).unwrap();   // hit: same Arc
/// assert!(std::sync::Arc::ptr_eq(&f1, &f2));
/// assert_eq!(cache.stats().factorizations, 1);
/// assert_eq!(cache.stats().hits, 1);
/// ```
pub struct OperatorCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    ready: Condvar,
    hits: AtomicU64,
    factorizations: AtomicU64,
    evictions: AtomicU64,
    single_flight_waits: AtomicU64,
}

impl std::fmt::Debug for OperatorCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OperatorCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl OperatorCache {
    /// A cache holding at most `capacity` Ready factors (minimum 1).
    pub fn new(capacity: usize) -> Self {
        OperatorCache {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
            }),
            ready: Condvar::new(),
            hits: AtomicU64::new(0),
            factorizations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            single_flight_waits: AtomicU64::new(0),
        }
    }

    /// Fetch the factor for `t`, factoring it on a miss. Concurrent
    /// misses on the same fingerprint perform exactly one
    /// factorization; the rest block until it is published (or retry
    /// the checkout if the build failed). A failed build leaves the
    /// cache without the key, so a later request retries cleanly.
    pub fn get_or_factor(&self, t: &SymBlockToeplitz) -> Result<Arc<Factor>> {
        let fp = t.fingerprint();
        let n = t.order();
        self.get_or_build(fp, || {
            let factor = Factor::new(t).map_err(ServeError::Solver)?;
            bs_probe::event!("cache_factor", fingerprint = fp, n = n);
            Ok(Arc::new(factor))
        })
    }

    /// The single-flight core: resolve `fp` to a Ready factor, calling
    /// `build` (outside the lock) iff no other tenant is already
    /// building it. A failed build removes the key and wakes waiters so
    /// they retry or miss cleanly.
    fn get_or_build(
        &self,
        fp: u64,
        build: impl FnOnce() -> Result<Arc<Factor>>,
    ) -> Result<Arc<Factor>> {
        let mut waited = false;
        let mut g = self.lock();
        loop {
            let inner = &mut *g;
            match inner.map.get_mut(&fp) {
                Some(Slot::Ready { factor, last_used }) => {
                    inner.tick += 1;
                    *last_used = inner.tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(factor));
                }
                Some(Slot::Building) => {
                    if !waited {
                        waited = true;
                        self.single_flight_waits.fetch_add(1, Ordering::Relaxed);
                    }
                    g = self.ready.wait(g).unwrap_or_else(|p| p.into_inner());
                    // Loop: the slot is now Ready, gone (build failed),
                    // or Building again under another tenant.
                }
                None => {
                    inner.map.insert(fp, Slot::Building);
                    break;
                }
            }
        }
        drop(g);
        // The expensive part runs without the lock: hits on other keys
        // proceed while this key factors.
        let built = build();
        let mut g = self.lock();
        match built {
            Ok(factor) => {
                self.factorizations.fetch_add(1, Ordering::Relaxed);
                g.tick += 1;
                let stamp = g.tick;
                g.map.insert(
                    fp,
                    Slot::Ready {
                        factor: Arc::clone(&factor),
                        last_used: stamp,
                    },
                );
                self.evict_over_capacity(&mut g);
                self.ready.notify_all();
                Ok(factor)
            }
            Err(e) => {
                g.map.remove(&fp);
                self.ready.notify_all();
                Err(e)
            }
        }
    }

    /// Fetch an already-cached factor by fingerprint. Waits out an
    /// in-flight build of the same key; returns `None` when the cache
    /// holds nothing under `fp` (evicted, failed, or never factored).
    pub fn get(&self, fp: u64) -> Option<Arc<Factor>> {
        let mut waited = false;
        let mut g = self.lock();
        loop {
            let inner = &mut *g;
            match inner.map.get_mut(&fp) {
                Some(Slot::Ready { factor, last_used }) => {
                    inner.tick += 1;
                    *last_used = inner.tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(Arc::clone(factor));
                }
                Some(Slot::Building) => {
                    if !waited {
                        waited = true;
                        self.single_flight_waits.fetch_add(1, Ordering::Relaxed);
                    }
                    g = self.ready.wait(g).unwrap_or_else(|p| p.into_inner());
                }
                None => return None,
            }
        }
    }

    /// Ready + Building entries currently in the cache.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// `true` when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured Ready-entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether `fp` currently maps to a Ready factor (no LRU touch —
    /// probing must not perturb eviction order).
    pub fn contains_ready(&self, fp: u64) -> bool {
        matches!(self.lock().map.get(&fp), Some(Slot::Ready { .. }))
    }

    /// Snapshot of the monotonic counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            factorizations: self.factorizations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            single_flight_waits: self.single_flight_waits.load(Ordering::Relaxed),
        }
    }

    fn evict_over_capacity(&self, g: &mut MutexGuard<'_, CacheInner>) {
        loop {
            let ready = g
                .map
                .iter()
                .filter(|(_, s)| matches!(s, Slot::Ready { .. }))
                .count();
            if ready <= self.capacity {
                return;
            }
            // Oldest Ready entry by use stamp; Building slots are
            // pinned by their waiters and never evicted.
            let victim = g
                .map
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { last_used, .. } => Some((*last_used, *k)),
                    Slot::Building => None,
                })
                .min();
            match victim {
                Some((_, key)) => {
                    g.map.remove(&key);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    bs_probe::event!("cache_evict", fingerprint = key);
                }
                None => return,
            }
        }
    }

    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        // A tenant that panicked mid-build poisons nothing the map
        // can't survive: Building slots it left behind are cleaned up
        // by its unwind only if it got that far; recovering the lock
        // keeps every other tenant serviceable.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_toeplitz::workloads;

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = OperatorCache::new(2);
        let a = workloads::random_spd_scalar(12, 1);
        let b = workloads::random_spd_scalar(12, 2);
        let c = workloads::random_spd_scalar(12, 3);
        cache.get_or_factor(&a).unwrap();
        cache.get_or_factor(&b).unwrap();
        // Touch `a` so `b` is the LRU entry when `c` arrives.
        cache.get_or_factor(&a).unwrap();
        cache.get_or_factor(&c).unwrap();
        assert!(cache.contains_ready(a.fingerprint()));
        assert!(!cache.contains_ready(b.fingerprint()), "b was evicted");
        assert!(cache.contains_ready(c.fingerprint()));
        assert_eq!(cache.stats().evictions, 1);
        // Re-requesting the evicted operator refactors it.
        cache.get_or_factor(&b).unwrap();
        assert_eq!(cache.stats().factorizations, 4);
    }

    #[test]
    fn get_by_fingerprint_misses_cleanly() {
        let cache = OperatorCache::new(2);
        assert!(cache.get(0xdead_beef).is_none());
        let t = workloads::random_spd_scalar(8, 5);
        cache.get_or_factor(&t).unwrap();
        assert!(cache.get(t.fingerprint()).is_some());
    }

    #[test]
    fn failed_build_leaves_no_residue() {
        // Default options rescue nearly any operator (δ-perturbation),
        // so the failure path is exercised by injecting a failing build
        // through the single-flight core: the key must not stay stuck
        // in Building, and a retry under the same key must succeed.
        let cache = OperatorCache::new(2);
        let fp = 0x5eed_f00d;
        let err = cache.get_or_build(fp, || Err(ServeError::Protocol("injected")));
        assert!(matches!(err, Err(ServeError::Protocol("injected"))));
        assert_eq!(cache.len(), 0, "failed build must remove its slot");
        assert_eq!(cache.stats().factorizations, 0);
        // The same key can be retried, and this time it publishes.
        let t = workloads::random_spd_scalar(8, 9);
        let f = cache
            .get_or_build(fp, || Ok(Arc::new(bs_core::Factor::new(&t).unwrap())))
            .unwrap();
        assert!(cache.contains_ready(fp));
        assert_eq!(f.order(), 8);
        assert_eq!(cache.stats().factorizations, 1);
    }
}
