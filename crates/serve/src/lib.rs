//! Multi-tenant serving layer for the block Schur solver.
//!
//! The paper's economics — one O(mn²) factorization amortized over
//! many O(mn) solves — only pay off in production when concurrent
//! tenants can share warm factors. This crate is that front-end:
//!
//! - [`cache`] — the [`OperatorCache`]: factorizations keyed by a
//!   stable fingerprint of the Toeplitz generator, with LRU eviction
//!   and single-flight factorization (concurrent misses on the same
//!   key factor exactly once).
//! - [`proto`] — the length-prefixed binary wire protocol (std only):
//!   `[u32 len][u8 opcode][body]` frames over TCP or Unix-domain
//!   sockets, f64 payloads little-endian column-major.
//! - [`server`] — the long-lived front-end: thread-per-connection,
//!   admission control (bounded in-flight solves, load-shed response),
//!   multi-column RHS batched through `Factor::solve_batch`, and
//!   per-request latency recorded into the
//!   `Hist::ServeRequestNs` histogram stream.
//! - [`client`] — a minimal blocking client for tests, benches, and
//!   the CLI.
//!
//! [`OperatorCache`]: cache::OperatorCache

pub mod cache;
pub mod client;
pub mod proto;
pub mod server;

pub use cache::{CacheStats, OperatorCache};
pub use client::Client;
pub use server::{Server, ServerConfig, ServerHandle};

/// Errors surfaced by the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// Socket or filesystem failure.
    Io(std::io::Error),
    /// The solver rejected the operator or right-hand side.
    Solver(bs_core::Error),
    /// A frame violated the wire protocol.
    Protocol(&'static str),
    /// A frame announced a payload larger than [`proto::MAX_FRAME`].
    FrameTooLarge(usize),
    /// `solve_cached` named a fingerprint the cache does not hold.
    UnknownOperator(u64),
    /// The server shed the request (admission control): retry later.
    Shed,
    /// The server answered with an error status (message from the
    /// server's own `ServeError` rendering).
    Remote(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o failure: {e}"),
            ServeError::Solver(e) => write!(f, "solver failure: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ServeError::FrameTooLarge(n) => {
                write!(
                    f,
                    "frame of {n} bytes exceeds the {} limit",
                    proto::MAX_FRAME
                )
            }
            ServeError::UnknownOperator(fp) => {
                write!(f, "no cached factor for fingerprint {fp:#018x}")
            }
            ServeError::Shed => write!(f, "request shed by admission control"),
            ServeError::Remote(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<bs_core::Error> for ServeError {
    fn from(e: bs_core::Error) -> Self {
        ServeError::Solver(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
