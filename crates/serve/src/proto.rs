//! The wire protocol: length-prefixed binary frames, std only.
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! [u32 LE payload length][payload]
//! ```
//!
//! Request payloads start with a one-byte opcode:
//!
//! | opcode | body |
//! |---|---|
//! | [`OP_PING`] | empty |
//! | [`OP_FACTOR`] | `[u32 m][u32 p][p · m·m f64 blocks]` |
//! | [`OP_SOLVE`] | generator as above, then `[u32 ncols][n·ncols f64]` |
//! | [`OP_SOLVE_CACHED`] | `[u64 fingerprint][u32 ncols][n·ncols f64]` |
//! | [`OP_STATS`] | empty |
//! | [`OP_SHUTDOWN`] | empty |
//!
//! Response payloads start with a one-byte status: [`STATUS_OK`]
//! (body is the opcode's result), [`STATUS_ERR`] (body is a UTF-8
//! message), or [`STATUS_SHED`] (admission control turned the request
//! away; empty body — retry against a less loaded server).
//!
//! All integers are little-endian; matrices travel column-major, the
//! same layout `bs_matrix::Matrix` stores, so encoding is a straight
//! memory walk. Floats travel as raw `f64` bit patterns — a solve
//! response is bit-exact, never formatted.

use crate::ServeError;
use bs_matrix::Matrix;
use bs_toeplitz::SymBlockToeplitz;
use std::io::{ErrorKind, Read, Write};

/// Hard ceiling on a frame's payload (256 MiB): a length prefix beyond
/// this is treated as a protocol violation, not an allocation request.
pub const MAX_FRAME: usize = 1 << 28;

/// Liveness probe; empty OK response.
pub const OP_PING: u8 = 0;
/// Factor (or fetch from cache) the carried generator; response is
/// `[u64 fingerprint][u8 was_cached]`.
pub const OP_FACTOR: u8 = 1;
/// Factor-if-needed then solve against the carried RHS columns;
/// response is the solution columns.
pub const OP_SOLVE: u8 = 2;
/// Solve against an already-cached factor named by fingerprint;
/// response is the solution columns.
pub const OP_SOLVE_CACHED: u8 = 3;
/// Cache/server statistics; response is six `u64`s (hits,
/// factorizations, evictions, single-flight waits, shed, requests).
pub const OP_STATS: u8 = 4;
/// Stop accepting connections; empty OK response.
pub const OP_SHUTDOWN: u8 = 5;

/// Request handled.
pub const STATUS_OK: u8 = 0;
/// Request failed; body is a UTF-8 error message.
pub const STATUS_ERR: u8 = 1;
/// Request shed by admission control; retry later.
pub const STATUS_SHED: u8 = 2;

/// Read one frame into `buf` (reused across calls; resized, not
/// reallocated once warm). Returns `false` on clean EOF before a
/// length prefix — the peer closed the connection.
pub fn read_frame<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> crate::Result<bool> {
    let mut len4 = [0u8; 4];
    match r.read_exact(&mut len4) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(false),
        Err(e) => return Err(ServeError::Io(e)),
    }
    let len = u32::from_le_bytes(len4) as usize;
    if len > MAX_FRAME {
        return Err(ServeError::FrameTooLarge(len));
    }
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(true)
}

/// Write one frame: length prefix then payload.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> crate::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(ServeError::FrameTooLarge(payload.len()));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Append a `u32` to the payload under construction.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` to the payload under construction.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` slice as raw little-endian bit patterns.
pub fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    for &v in vs {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

/// Cursor-style reader over a request/response body.
#[derive(Debug)]
pub struct Reader<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading `body` from the beginning.
    pub fn new(body: &'a [u8]) -> Self {
        Reader { body, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.body.len() - self.pos
    }

    fn take(&mut self, n: usize) -> crate::Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(ServeError::Protocol("truncated frame body"));
        }
        let s = &self.body[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> crate::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> crate::Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> crate::Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read one `f64` bit pattern.
    pub fn f64(&mut self) -> crate::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read `dst.len()` floats into a caller-provided (e.g. pooled)
    /// buffer without allocating.
    pub fn f64s_into(&mut self, dst: &mut [f64]) -> crate::Result<()> {
        let b = self.take(dst.len() * 8)?;
        for (i, x) in dst.iter_mut().enumerate() {
            let c = &b[i * 8..i * 8 + 8];
            *x = f64::from_bits(u64::from_le_bytes([
                c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
            ]));
        }
        Ok(())
    }
}

/// Append a generator (`[u32 m][u32 p][blocks]`) to a request body.
pub fn put_generator(out: &mut Vec<u8>, t: &SymBlockToeplitz) {
    put_u32(out, t.block_size() as u32);
    put_u32(out, t.num_blocks() as u32);
    for blk in t.first_block_row() {
        for j in 0..blk.cols() {
            put_f64s(out, blk.col(j));
        }
    }
}

/// Decode a generator from a request body. Validates the announced
/// shape against the bytes actually present before touching them.
pub fn read_generator(r: &mut Reader<'_>) -> crate::Result<SymBlockToeplitz> {
    let m = r.u32()? as usize;
    let p = r.u32()? as usize;
    if m == 0 || p == 0 {
        return Err(ServeError::Protocol("generator with zero dimension"));
    }
    let need = m
        .checked_mul(m)
        .and_then(|mm| mm.checked_mul(p))
        .and_then(|e| e.checked_mul(8))
        .ok_or(ServeError::Protocol("generator shape overflows"))?;
    if r.remaining() < need {
        return Err(ServeError::Protocol("generator body shorter than m·m·p"));
    }
    let mut blocks = Vec::with_capacity(p);
    for _ in 0..p {
        let mut blk = Matrix::zeros(m, m);
        for j in 0..m {
            r.f64s_into(blk.col_mut(j))?;
        }
        blocks.push(blk);
    }
    Ok(SymBlockToeplitz::new(blocks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_toeplitz::workloads;

    #[test]
    fn generator_round_trips_bitwise() {
        let t = workloads::random_spd_block(3, 5, 77);
        let mut body = Vec::new();
        put_generator(&mut body, &t);
        let mut r = Reader::new(&body);
        let back = read_generator(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(back.fingerprint(), t.fingerprint());
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let mut buf = Vec::new();
        assert!(read_frame(&mut cursor, &mut buf).unwrap());
        assert_eq!(buf, b"hello");
        assert!(read_frame(&mut cursor, &mut buf).unwrap());
        assert_eq!(buf, b"");
        assert!(!read_frame(&mut cursor, &mut buf).unwrap(), "clean EOF");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = std::io::Cursor::new(wire);
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut cursor, &mut buf),
            Err(ServeError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn truncated_bodies_are_typed_errors() {
        let mut body = Vec::new();
        put_u32(&mut body, 4);
        put_u32(&mut body, 100); // claims 100 blocks, carries none
        let mut r = Reader::new(&body);
        assert!(matches!(
            read_generator(&mut r),
            Err(ServeError::Protocol(_))
        ));
    }
}
