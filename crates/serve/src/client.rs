//! Minimal blocking client for the serve protocol.
//!
//! One connection, one in-flight request at a time; concurrency comes
//! from running one client per thread (as the load generator does).
//! Frame buffers are reused across requests, so a steady-state client
//! allocates only for the solution matrices it returns.

use crate::proto::{
    self, read_frame, write_frame, Reader, OP_FACTOR, OP_PING, OP_SHUTDOWN, OP_SOLVE,
    OP_SOLVE_CACHED, OP_STATS, STATUS_OK, STATUS_SHED,
};
use crate::{Result, ServeError};
use bs_matrix::Matrix;
use bs_toeplitz::SymBlockToeplitz;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// Cache/server statistics as reported by `OP_STATS`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerSnapshot {
    /// Cache hits.
    pub hits: u64,
    /// Factorizations performed.
    pub factorizations: u64,
    /// LRU evictions.
    pub evictions: u64,
    /// Single-flight waits.
    pub single_flight_waits: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Frames dispatched.
    pub requests: u64,
}

/// A blocking connection to a serve front-end.
pub struct Client {
    stream: Stream,
    req: Vec<u8>,
    resp: Vec<u8>,
}

impl Client {
    /// Connect over TCP.
    pub fn connect_tcp<A: ToSocketAddrs>(addr: A) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self::from_stream(Stream::Tcp(stream)))
    }

    /// Connect over a Unix-domain socket.
    pub fn connect_uds<P: AsRef<Path>>(path: P) -> Result<Self> {
        Ok(Self::from_stream(Stream::Unix(UnixStream::connect(path)?)))
    }

    fn from_stream(stream: Stream) -> Self {
        Client {
            stream,
            req: Vec::new(),
            resp: Vec::new(),
        }
    }

    /// Round-trip one request; leaves the OK body readable in
    /// `self.resp[1..]`.
    fn round_trip(&mut self) -> Result<()> {
        write_frame(&mut self.stream, &self.req)?;
        if !read_frame(&mut self.stream, &mut self.resp)? {
            return Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        match self.resp.first().copied() {
            Some(STATUS_OK) => Ok(()),
            Some(STATUS_SHED) => Err(ServeError::Shed),
            Some(_) => Err(ServeError::Remote(
                String::from_utf8_lossy(&self.resp[1..]).into_owned(),
            )),
            None => Err(ServeError::Protocol("empty response frame")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        self.req.clear();
        self.req.push(OP_PING);
        self.round_trip()
    }

    /// Ask the server to factor (or confirm it holds) `t`. Returns the
    /// operator fingerprint and whether the factor was already cached.
    pub fn factor(&mut self, t: &SymBlockToeplitz) -> Result<(u64, bool)> {
        self.req.clear();
        self.req.push(OP_FACTOR);
        proto::put_generator(&mut self.req, t);
        self.round_trip()?;
        let mut r = Reader::new(&self.resp[1..]);
        let fp = r.u64()?;
        let cached = r.u8()? != 0;
        Ok((fp, cached))
    }

    /// Solve `T X = B`, shipping the generator with the request (the
    /// server factors on first sight, then serves from cache).
    pub fn solve(&mut self, t: &SymBlockToeplitz, b: &Matrix) -> Result<Matrix> {
        self.req.clear();
        self.req.push(OP_SOLVE);
        proto::put_generator(&mut self.req, t);
        Self::put_rhs(&mut self.req, b);
        self.round_trip()?;
        Self::read_solution(&self.resp[1..], b.rows(), b.cols())
    }

    /// Solve against an operator the server already holds, named by
    /// fingerprint — the steady-state hot request, which never ships
    /// the generator bytes.
    pub fn solve_cached(&mut self, fp: u64, b: &Matrix) -> Result<Matrix> {
        self.req.clear();
        self.req.push(OP_SOLVE_CACHED);
        proto::put_u64(&mut self.req, fp);
        Self::put_rhs(&mut self.req, b);
        self.round_trip()?;
        Self::read_solution(&self.resp[1..], b.rows(), b.cols())
    }

    /// Fetch cache/server statistics.
    pub fn stats(&mut self) -> Result<ServerSnapshot> {
        self.req.clear();
        self.req.push(OP_STATS);
        self.round_trip()?;
        let mut r = Reader::new(&self.resp[1..]);
        Ok(ServerSnapshot {
            hits: r.u64()?,
            factorizations: r.u64()?,
            evictions: r.u64()?,
            single_flight_waits: r.u64()?,
            shed: r.u64()?,
            requests: r.u64()?,
        })
    }

    /// Ask the server to stop accepting connections.
    pub fn shutdown_server(&mut self) -> Result<()> {
        self.req.clear();
        self.req.push(OP_SHUTDOWN);
        self.round_trip()
    }

    fn put_rhs(req: &mut Vec<u8>, b: &Matrix) {
        proto::put_u32(req, b.cols() as u32);
        proto::put_f64s(req, b.as_slice());
    }

    fn read_solution(body: &[u8], n: usize, ncols: usize) -> Result<Matrix> {
        let mut r = Reader::new(body);
        if r.remaining() != n * ncols * 8 {
            return Err(ServeError::Protocol("solution body has wrong length"));
        }
        let mut x = Matrix::zeros(n, ncols);
        r.f64s_into(x.as_mut_slice())?;
        Ok(x)
    }
}
