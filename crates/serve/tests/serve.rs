//! End-to-end serving tests: single-flight factorization under a
//! thread stampede, admission-control shedding, and loopback
//! client/server round-trips over TCP and Unix-domain sockets.
//!
//! Trace state is process-global, so the tests that arm it serialize
//! on a shared lock (same discipline as `tests/observability.rs`).

use bs_serve::{Client, OperatorCache, ServeError, Server, ServerConfig};
use bs_toeplitz::workloads;
use std::sync::{Arc, Barrier, Mutex};

static PROBE_LOCK: Mutex<()> = Mutex::new(());

fn probe_guard() -> std::sync::MutexGuard<'static, ()> {
    PROBE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Eight tenants stampede one cold key: exactly one factorization plan
/// is built, everyone gets the same `Arc`, and the other seven are
/// counted as hits.
#[test]
fn concurrent_misses_factor_exactly_once() {
    let _g = probe_guard();
    let cache = Arc::new(OperatorCache::new(4));
    let t = Arc::new(workloads::random_spd_block(2, 32, 11)); // n = 64
    const TENANTS: usize = 8;
    let barrier = Arc::new(Barrier::new(TENANTS));

    bs_probe::trace::clear();
    bs_probe::trace::enable();
    let handles: Vec<_> = (0..TENANTS)
        .map(|_| {
            let (cache, t, barrier) = (Arc::clone(&cache), Arc::clone(&t), Arc::clone(&barrier));
            std::thread::spawn(move || {
                barrier.wait();
                cache.get_or_factor(&t).unwrap()
            })
        })
        .collect();
    let factors: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    bs_probe::trace::disable();
    let events = bs_probe::trace::take_events();

    let plans_built = events.iter().filter(|e| e.name == "plan_built").count();
    assert_eq!(plans_built, 1, "single-flight must build exactly one plan");
    let stats = cache.stats();
    assert_eq!(stats.factorizations, 1);
    assert_eq!(stats.hits, (TENANTS - 1) as u64);
    for f in &factors[1..] {
        assert!(Arc::ptr_eq(&factors[0], f), "tenants must share one factor");
    }
}

/// With `max_inflight = 0` every expensive opcode sheds, while pings
/// and stats (exempt from admission) keep answering.
#[test]
fn admission_control_sheds_expensive_requests() {
    let server = Server::new(ServerConfig {
        cache_capacity: 4,
        max_inflight: 0,
    });
    let handle = server.serve_tcp("127.0.0.1:0").unwrap();
    let addr = handle.tcp_addr().unwrap();
    let mut client = Client::connect_tcp(addr).unwrap();

    client.ping().unwrap();
    let t = workloads::random_spd_scalar(16, 3);
    let b = bs_matrix::Matrix::zeros(16, 1);
    assert!(matches!(client.factor(&t), Err(ServeError::Shed)));
    assert!(matches!(client.solve(&t, &b), Err(ServeError::Shed)));
    assert!(matches!(client.solve_cached(7, &b), Err(ServeError::Shed)));

    let snap = client.stats().unwrap();
    assert_eq!(snap.shed, 3);
    assert_eq!(snap.factorizations, 0);
    let (_requests, shed) = handle.request_stats();
    assert_eq!(shed, 3);
    handle.shutdown();
}

/// Full TCP loopback round-trip: factor (cold then cached), solve with
/// the generator, solve by fingerprint, and every path bitwise equal to
/// an in-process `Factor` solve of the same system.
#[test]
fn tcp_loopback_solves_match_local_bitwise() {
    let handle = Server::new(ServerConfig::default())
        .serve_tcp("127.0.0.1:0")
        .unwrap();
    let mut client = Client::connect_tcp(handle.tcp_addr().unwrap()).unwrap();

    let t = workloads::random_spd_block(2, 16, 21); // n = 32
    let n = t.order();
    let b = bs_matrix::Matrix::from_fn(n, 3, |i, j| ((i * 3 + j) as f64).sin());

    let (fp, cached) = client.factor(&t).unwrap();
    assert_eq!(fp, t.fingerprint());
    assert!(!cached, "first sight must be a cold miss");
    let (_, cached) = client.factor(&t).unwrap();
    assert!(cached, "second factor must be answered from cache");

    let local = bs_core::Factor::new(&t).unwrap();
    let want = local.solve_batch(&b).unwrap();
    let via_solve = client.solve(&t, &b).unwrap();
    let via_cached = client.solve_cached(fp, &b).unwrap();
    assert_eq!(via_solve.as_slice(), want.as_slice(), "OP_SOLVE bitwise");
    assert_eq!(
        via_cached.as_slice(),
        want.as_slice(),
        "OP_SOLVE_CACHED bitwise"
    );

    let snap = client.stats().unwrap();
    assert_eq!(snap.factorizations, 1, "one operator, one factorization");
    assert_eq!(snap.shed, 0);
    assert_eq!(snap.requests, 5, "2 factors + 2 solves + this stats frame");
    handle.shutdown();
}

/// Unknown fingerprints and malformed frames come back as typed remote
/// errors without killing the connection.
#[test]
fn bad_requests_leave_the_connection_usable() {
    let handle = Server::new(ServerConfig::default())
        .serve_tcp("127.0.0.1:0")
        .unwrap();
    let mut client = Client::connect_tcp(handle.tcp_addr().unwrap()).unwrap();

    let b = bs_matrix::Matrix::zeros(8, 1);
    match client.solve_cached(0xdead_beef, &b) {
        Err(ServeError::Remote(msg)) => assert!(msg.contains("no cached factor"), "{msg}"),
        other => panic!("expected a remote error, got {other:?}"),
    }
    // The same connection still serves real work afterwards.
    let t = workloads::random_spd_scalar(8, 4);
    let x = client.solve(&t, &b).unwrap();
    assert_eq!(x.rows(), 8);
    client.ping().unwrap();
    handle.shutdown();
}

/// The Unix-domain transport speaks the same protocol.
#[test]
fn uds_loopback_round_trips() {
    let path = std::env::temp_dir().join(format!("bs-serve-test-{}.sock", std::process::id()));
    let handle = Server::new(ServerConfig::default())
        .serve_uds(&path)
        .unwrap();
    let mut client = Client::connect_uds(&path).unwrap();

    client.ping().unwrap();
    let t = workloads::random_spd_scalar(12, 8);
    let b = bs_matrix::Matrix::from_fn(12, 2, |i, j| (i + j) as f64);
    let x = client.solve(&t, &b).unwrap();
    let want = bs_core::Factor::new(&t).unwrap().solve_batch(&b).unwrap();
    assert_eq!(x.as_slice(), want.as_slice());
    handle.shutdown();
    assert!(!path.exists(), "shutdown must remove the socket file");
}
