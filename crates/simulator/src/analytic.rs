//! Closed-loop analytic simulation of the distributed block Schur
//! algorithm.
//!
//! Walks the `p − 1` Schur steps exactly as the distributed code does
//! and charges each phase to the machine model (§7.1's
//! compute/communicate structure with explicit barriers):
//!
//! 1. **shift** — every active upper block whose right neighbour lives
//!    on another processor is sent there; each processor batches its
//!    crossing blocks into one (strided-gather) message per
//!    destination, concurrent across processors;
//! 2. **panel** — the pivot owner produces the block reflector
//!    ("blocking flops", eqs. 25–28); under V3 the panel is processed
//!    in `spread` sequential sub-chunks, each followed by a partial
//!    broadcast (the "number of broadcasts increases by a factor of
//!    1/b", §7.1.3);
//! 3. **broadcast** — the representation's wire size (eq. dependent on
//!    the rep, §6.5) goes to all processors;
//! 4. **apply** — every processor updates its local blocks
//!    ("application flops", eqs. 29–32); the step waits for the
//!    slowest;
//! 5. **barrier** — two synchronizations per step (after shift and
//!    after apply).

use crate::scheme::Scheme;
use bs_distmem::{CostModel, Primitive};
use bs_perfmodel::{apply_flops, blocking_flops, comm_words, Rep};

/// Configuration of one simulated factorization.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Matrix order.
    pub n: usize,
    /// Block size.
    pub m: usize,
    /// Number of processors.
    pub np: usize,
    /// Data distribution.
    pub scheme: Scheme,
    /// Block reflector representation.
    pub rep: Rep,
}

/// Per-phase totals of a simulated run (seconds).
#[derive(Clone, Debug, Default)]
pub struct SimResult {
    pub total: f64,
    pub shift: f64,
    pub panel: f64,
    pub broadcast: f64,
    pub apply: f64,
    pub barrier: f64,
    /// Total bytes crossing the network.
    pub bytes: f64,
    /// Total model flops charged across all processors (panel blocking
    /// plus trailing application, eqs. 25–32 summed over the steps) —
    /// what the simulated machine computes, independent of how the
    /// scheme distributes it.
    pub flops: f64,
}

/// Effective blocking dimension of the trailing-update gemm. The
/// update multiplies a 2m-row representation against m-column blocks
/// of which each rank holds m/spread columns; rows are plentiful, so
/// blocking is limited by the block width (k-extent) and the per-rank
/// column count (n-extent) — their geometric mean sets how far
/// register/cache blocking can go.
pub fn apply_dim(m: usize, spread: usize) -> usize {
    let k = m as f64; // reduction extent: the full block width
    let ncols = (m / spread).max(1) as f64; // per-rank column extent
    ((k * k * ncols).cbrt().round() as usize).max(1)
}

/// Simulate the factorization time of an `n × n` block Toeplitz matrix
/// with block size `m` on `np` processors.
pub fn simulate(cfg: &SimConfig, model: &dyn CostModel) -> SimResult {
    let SimConfig {
        n,
        m,
        np,
        scheme,
        rep,
    } = *cfg;
    assert!(m > 0 && n % m == 0, "m must divide n");
    scheme.validate(np).expect("invalid scheme");
    let p = n / m;
    let spread = scheme.spread();
    let mut out = SimResult::default();

    for s in 1..p {
        // ---- Phase 3 of the previous step realized as the shift. ----
        // Active upper blocks before the shift occupy block columns
        // s-1 .. p-2 (the last block falls off); block j moves to j+1.
        let mut max_shift = 0.0f64;
        if np > 1 {
            // Count crossing blocks per source rank; the real code
            // batches all blocks for one destination into one message
            // (in these linear layouts every crossing block goes to the
            // right-hand neighbour rank/group).
            let mut per_rank_blocks = vec![0usize; np];
            for j in (s - 1)..(p - 1) {
                let src = scheme.owner(j, np);
                let dst = scheme.owner(j + 1, np);
                if src != dst {
                    per_rank_blocks[src] += 1;
                }
            }
            // Each crossing block carries its upper m×m block; under V3
            // each rank of the group sends its m/spread columns.
            let words_per_block = m * m / spread;
            for &count in &per_rank_blocks {
                if count > 0 {
                    let t = model.p2p_time(count * words_per_block * 8);
                    max_shift = max_shift.max(t);
                    out.bytes += (count * words_per_block * 8 * spread) as f64;
                }
            }
        }
        out.shift += max_shift;

        // ---- Phase 1: panel production (+ broadcast of the rep). ----
        let bf = blocking_flops(rep, m, m);
        out.flops += bf;
        let wire_bytes = comm_words(rep, m) * 8;
        let mut panel_t = 0.0;
        let mut bcast_t = 0.0;
        if spread == 1 {
            panel_t += model.compute_time(bf, Primitive::Blas2 { dim: m });
            if np > 1 {
                bcast_t += model.broadcast_time(wire_bytes, np);
                out.bytes += (wire_bytes * (np - 1)) as f64;
            }
        } else {
            // V3: the panel's columns live on `spread` ranks. Reflector
            // formation chains sequentially but the dominant intra-panel
            // application parallelizes; a `spread`-stage pipeline over
            // equal chunks has critical path (2σ−1)/σ² of the serial
            // work. Each sub-chunk adds a partial broadcast and a
            // dependency synchronization — this serial chain is why
            // "the number of broadcasts increases by a factor of 1/b"
            // costs real time (§7.1.3).
            let sf = spread as f64;
            panel_t += model.compute_time(
                bf * (2.0 * sf - 1.0) / (sf * sf),
                Primitive::Blas2 { dim: m },
            );
            for _ in 0..spread {
                bcast_t += model.broadcast_time(wire_bytes / spread, np) + model.barrier_time(np);
                out.bytes += (wire_bytes / spread * (np - 1)) as f64;
            }
        }
        out.panel += panel_t;
        out.broadcast += bcast_t;

        // ---- Phase 2: trailing update, slowest processor wins. ----
        let lo = s + 1;
        let hi = p;
        let mut max_apply = 0.0f64;
        if hi > lo {
            out.flops += apply_flops(rep, m, m, hi - lo);
            let dim = apply_dim(m, spread);
            for r in 0..np {
                let local = scheme.owned_in_range(r, np, lo, hi);
                if local > 0 {
                    let fl = apply_flops(rep, m, m, local) / spread as f64;
                    let t = model.compute_time(fl, Primitive::Blas3 { dim });
                    max_apply = max_apply.max(t);
                }
            }
        }
        out.apply += max_apply;

        // ---- Barriers: after shift and after apply. ----
        if np > 1 {
            out.barrier += 2.0 * model.barrier_time(np);
        }
    }

    out.total = out.shift + out.panel + out.broadcast + out.apply + out.barrier;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::t3d::T3DModel;

    fn run(n: usize, m: usize, np: usize, scheme: Scheme) -> SimResult {
        simulate(
            &SimConfig {
                n,
                m,
                np,
                scheme,
                rep: Rep::VY2,
            },
            &T3DModel::default(),
        )
    }

    #[test]
    fn more_processors_reduce_apply_time() {
        let t4 = run(1024, 8, 4, Scheme::V1);
        let t32 = run(1024, 8, 32, Scheme::V1);
        assert!(t32.apply < t4.apply, "{} vs {}", t32.apply, t4.apply);
    }

    #[test]
    fn grouping_reduces_shift_traffic() {
        // The Fig. 6 mechanism: larger b -> fewer boundary crossings.
        let b1 = run(4096, 1, 16, Scheme::V2 { b: 1 });
        let b16 = run(4096, 1, 16, Scheme::V2 { b: 16 });
        assert!(
            b16.shift < b1.shift / 4.0,
            "shift {} vs {}",
            b16.shift,
            b1.shift
        );
    }

    #[test]
    fn excessive_grouping_loses_parallelism() {
        // ... and the other half of Fig. 6: huge b serializes the apply.
        let b1 = run(4096, 1, 16, Scheme::V2 { b: 1 });
        let b256 = run(4096, 1, 16, Scheme::V2 { b: 256 });
        assert!(b256.apply > 1.5 * b1.apply);
    }

    #[test]
    fn v3_multiplies_broadcasts() {
        let v1 = run(4096, 32, 64, Scheme::V1);
        let v3a = run(4096, 32, 64, Scheme::V3 { spread: 4 });
        let v3b = run(4096, 32, 64, Scheme::V3 { spread: 16 });
        // Broadcast/sync overhead grows with the spread...
        assert!(v3a.broadcast > v1.broadcast);
        assert!(v3b.broadcast > v3a.broadcast);
        // ...but the trailing update load-balances much better in the
        // tail of the factorization, where V1 leaves most of the 64
        // processors idle (`ceil(active/64) = 1` for every active < 64,
        // versus fine-grained `ceil(active/groups)/spread`).
        assert!(v3a.apply < v1.apply, "{} vs {}", v3a.apply, v1.apply);
    }

    #[test]
    fn single_processor_has_no_communication() {
        let t = run(512, 4, 1, Scheme::V1);
        assert_eq!(t.shift, 0.0);
        assert_eq!(t.broadcast, 0.0);
        assert_eq!(t.barrier, 0.0);
        assert!(t.apply > 0.0 && t.panel > 0.0);
        assert_eq!(t.bytes, 0.0);
    }

    #[test]
    fn model_flops_are_positive_and_distribution_independent() {
        // The flop tally is a property of the algorithm (n, m, rep),
        // not of how the scheme spreads it over processors.
        let a = run(1024, 8, 1, Scheme::V1);
        let b = run(1024, 8, 32, Scheme::V1);
        let c = run(1024, 8, 32, Scheme::V2 { b: 4 });
        assert!(a.flops > 0.0);
        assert_eq!(a.flops, b.flops);
        assert_eq!(a.flops, c.flops);
        // Roughly the §6.5 headline 4·m·n² (same order of magnitude).
        let headline = 4.0 * 8.0 * 1024.0f64 * 1024.0;
        assert!(a.flops > 0.1 * headline && a.flops < 10.0 * headline);
    }

    #[test]
    fn total_is_sum_of_phases() {
        let t = run(512, 8, 8, Scheme::V1);
        let sum = t.shift + t.panel + t.broadcast + t.apply + t.barrier;
        assert!((t.total - sum).abs() < 1e-12);
    }

    #[test]
    fn work_scales_with_block_size() {
        // §6.5: total flops ≈ 4·m·n² — at fixed n and np, larger m means
        // more arithmetic; on one processor (no sync savings) the time
        // must grow.
        let t2 = run(1024, 2, 1, Scheme::V1);
        let t8 = run(1024, 8, 1, Scheme::V1);
        assert!(t8.total > t2.total);
    }
}
