//! The three data-distribution schemes of §7.1.

/// How the generator's block columns are laid out over a linear array
/// of `np` processors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// Version 1: one block per processor, cyclic (`owner(j) = j mod NP`).
    V1,
    /// Version 2: `b` adjacent blocks per processor, groups cyclic.
    V2 { b: usize },
    /// Version 3: each block split column-wise over `spread` adjacent
    /// processors; block groups cyclic over `NP / spread` groups.
    V3 { spread: usize },
}

impl Scheme {
    /// Owning rank of block column `j` (for V3: the first rank of the
    /// owning group).
    pub fn owner(&self, j: usize, np: usize) -> usize {
        match *self {
            Scheme::V1 => j % np,
            Scheme::V2 { b } => (j / b) % np,
            Scheme::V3 { spread } => {
                let groups = np / spread;
                (j % groups) * spread
            }
        }
    }

    /// Number of ranks cooperating on one block column.
    pub fn spread(&self) -> usize {
        match *self {
            Scheme::V3 { spread } => spread,
            _ => 1,
        }
    }

    /// Validate against a machine size.
    pub fn validate(&self, np: usize) -> Result<(), String> {
        match *self {
            Scheme::V1 => Ok(()),
            Scheme::V2 { b } => {
                if b == 0 {
                    Err("V2 requires b >= 1".into())
                } else {
                    Ok(())
                }
            }
            Scheme::V3 { spread } => {
                if spread == 0 || !np.is_multiple_of(spread) {
                    Err(format!("V3 spread {spread} must divide NP = {np}"))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Count of active block columns from `lo..hi` owned by `rank`
    /// (V3: by `rank`'s group).
    pub fn owned_in_range(&self, rank: usize, np: usize, lo: usize, hi: usize) -> usize {
        let group_of_rank = match *self {
            Scheme::V3 { spread } => rank / spread * spread,
            _ => rank,
        };
        (lo..hi)
            .filter(|&j| self.owner(j, np) == group_of_rank)
            .count()
    }

    /// Human-readable label used in figure output.
    pub fn label(&self) -> String {
        match *self {
            Scheme::V1 => "V1".to_string(),
            Scheme::V2 { b } => format!("V2(b={b})"),
            Scheme::V3 { spread } => format!("V3(spread={spread})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v1_is_cyclic() {
        let s = Scheme::V1;
        assert_eq!(s.owner(0, 4), 0);
        assert_eq!(s.owner(5, 4), 1);
        assert_eq!(s.owner(7, 4), 3);
    }

    #[test]
    fn v2_groups_adjacent_blocks() {
        let s = Scheme::V2 { b: 2 };
        assert_eq!(s.owner(0, 3), 0);
        assert_eq!(s.owner(1, 3), 0);
        assert_eq!(s.owner(2, 3), 1);
        assert_eq!(s.owner(6, 3), 0); // wraps after 3 groups
    }

    #[test]
    fn v3_spreads_blocks_over_rank_groups() {
        let s = Scheme::V3 { spread: 2 };
        // np = 4 -> 2 groups: blocks alternate between groups {0,1} and {2,3}.
        assert_eq!(s.owner(0, 4), 0);
        assert_eq!(s.owner(1, 4), 2);
        assert_eq!(s.owner(2, 4), 0);
        assert_eq!(s.spread(), 2);
    }

    #[test]
    fn validation() {
        assert!(Scheme::V1.validate(5).is_ok());
        assert!(Scheme::V2 { b: 0 }.validate(4).is_err());
        assert!(Scheme::V3 { spread: 3 }.validate(4).is_err());
        assert!(Scheme::V3 { spread: 4 }.validate(8).is_ok());
    }

    #[test]
    fn owned_in_range_counts() {
        let s = Scheme::V1;
        // Blocks 0..8 over 4 ranks: each rank owns 2.
        for r in 0..4 {
            assert_eq!(s.owned_in_range(r, 4, 0, 8), 2);
        }
        assert_eq!(s.owned_in_range(0, 4, 1, 8), 1);
        // V1 == V2 with b = 1.
        let s2 = Scheme::V2 { b: 1 };
        for j in 0..10 {
            assert_eq!(s.owner(j, 4), s2.owner(j, 4));
        }
    }
}
