#![allow(clippy::needless_range_loop)]
// index-heavy numeric kernels read
// clearer with explicit indices when several parallel arrays are walked
// together; iterator-zip rewrites were measured to obscure, not improve.

//! Cray T3D machine model and the distributed block Schur algorithm
//! under the paper's three data-distribution schemes (§7).
//!
//! Three complementary engines:
//!
//! - [`analytic`] — a fast closed-loop simulation that walks the Schur
//!   steps charging the paper's per-phase costs (shift messages, panel
//!   "blocking flops", representation broadcast, trailing "application
//!   flops", barrier synchronizations) against a [`T3DModel`]. This is
//!   what regenerates Figures 6–9: the curves are pure functions of the
//!   cost model and the exact message/flop counts.
//! - [`dist_exec`] — the *real thing*: the algorithm executed on the
//!   [`bs_distmem`] message-passing runtime with actual data movement;
//!   the resulting factor is bit-compared against the sequential
//!   `bs-core` factorization and the virtual clocks are charged with
//!   the same model, validating the analytic engine.
//! - [`shard`] — the *measured* backend: the same three distributions
//!   on the `bs-distmem` wall-clock transport, each rank a dedicated
//!   OS thread owning a packed generator shard, trailing updates
//!   through the SIMD kernel engine, `wall_s` in real seconds. This is
//!   what turns the Fig. 6–9 reproduction from simulated into
//!   measured (see `dist_sweep` in bs-bench).
//!
//! What the paper ran on hardware we run on a model; the *algorithmic*
//! quantities (who sends how many bytes to whom at which step, who
//! computes how many flops) are exact, not modeled.

pub mod analytic;
pub mod calibrated;
pub mod dist_exec;
pub mod scheme;
pub mod shard;
pub mod t3d;

pub use analytic::{simulate, SimResult};
pub use calibrated::{
    choose_distribution, measure_comm, CalibratedCost, DistChoice, DistPrediction,
};
pub use scheme::Scheme;
pub use shard::{factor_sharded, ShardOptions, ShardRun};
pub use t3d::T3DModel;
