//! Host-calibrated cost model: analytic predictions in the same units
//! as measured sharded runs.
//!
//! The historical units mismatch: [`crate::analytic::simulate`] priced
//! compute with the Cray T3D's flop rates while `dist_sweep` measures
//! wall seconds on *this* machine — the two could only ever be
//! compared in shape, not in value. [`CalibratedCost`] closes the gap
//! by seeding the model's compute rates from the kernel engine's
//! measured [`RateTable`] (the same one-shot calibration the planner
//! uses) and its message costs from ping-pong/barrier micro-benchmarks
//! on the wall transport ([`measure_comm`]). An analytic sweep under
//! this model predicts seconds on the host running the shards, so one
//! plot can carry both curves.
//!
//! [`choose_distribution`] is the paper's crossover machinery made
//! operational: sweep the candidate (scheme, NP) grid through the
//! analytic engine under the calibrated model and pick the minimum —
//! the distribution the crossover plots of Figs. 6–9 say to run.

use crate::analytic::{simulate, SimConfig};
use crate::scheme::Scheme;
use bs_distmem::{CostModel, Primitive, WallOpts, World};
use bs_perfmodel::{MeasuredComm, RateTable, Rep};
use std::time::Instant;

/// A [`CostModel`] whose compute side comes from the measured kernel
/// [`RateTable`] and whose communication side comes from measured
/// transport parameters.
#[derive(Clone, Debug)]
pub struct CalibratedCost {
    rates: RateTable,
    comm: MeasuredComm,
}

impl CalibratedCost {
    /// Build from explicit parts (tests, replaying saved numbers).
    pub fn new(rates: RateTable, comm: MeasuredComm) -> Self {
        CalibratedCost { rates, comm }
    }

    /// Calibrate against this host: kernel rates from the engine's
    /// one-shot GEMM calibration, transport parameters measured on the
    /// wall transport. The kernel calibration is cached process-wide;
    /// the comm micro-benchmark reruns per call (~a few ms).
    pub fn for_host() -> Self {
        CalibratedCost {
            rates: RateTable::new(&bs_matrix::kernel::calibrate::calibration().points),
            comm: measure_comm(),
        }
    }

    /// The measured communication parameters.
    pub fn comm(&self) -> &MeasuredComm {
        &self.comm
    }
}

impl CostModel for CalibratedCost {
    fn compute_time(&self, flops: f64, prim: Primitive) -> f64 {
        // The RateTable measures blocked level-3 throughput at operand
        // size m_s. Level-3 work interpolates it directly; level-1/2
        // and generic work run at the table's smallest-operand rate —
        // the regime where blocking cannot help (§6's motivation for
        // the blocked representations in the first place).
        let rate = match prim {
            Primitive::Blas3 { dim } => self.rates.rate(dim),
            Primitive::Blas2 { .. } | Primitive::Blas1 { .. } | Primitive::Generic => {
                self.rates.rate(1)
            }
        };
        flops / rate
    }

    fn p2p_time(&self, bytes: usize) -> f64 {
        self.comm.p2p_time(bytes)
    }

    fn broadcast_time(&self, bytes: usize, np: usize) -> f64 {
        self.comm.broadcast_time(bytes, np)
    }

    fn barrier_time(&self, np: usize) -> f64 {
        self.comm.barrier_time(np)
    }
}

/// Measure the wall transport's point-to-point latency/bandwidth and
/// barrier cost on this host.
///
/// Ping-pong between two rank threads: minimum round-trip over the
/// repetitions (the standard latency estimator — larger samples only
/// add scheduler noise) at one word gives the latency; at 64 KiB it
/// gives the bandwidth once the latency is subtracted. The barrier
/// cost is a tight rendezvous loop. All parameters are clamped to
/// sane positive floors so a noisy host cannot produce a degenerate
/// model.
pub fn measure_comm() -> MeasuredComm {
    const REPS: usize = 32;
    const BIG: usize = 8192; // doubles = 64 KiB
    let results = World::run_wall(2, WallOpts::default(), |p| {
        let small = [1.0f64];
        let big = vec![1.0f64; BIG];
        let mut min_small = f64::INFINITY;
        let mut min_big = f64::INFINITY;
        for r in 0..REPS {
            p.barrier();
            if p.rank() == 0 {
                let t0 = Instant::now();
                p.send(1, (2 * r) as u64, &small);
                let _ = p.recv(1, (2 * r + 1) as u64);
                min_small = min_small.min(t0.elapsed().as_secs_f64());
            } else {
                let v = p.recv(0, (2 * r) as u64);
                p.send(0, (2 * r + 1) as u64, &v);
            }
        }
        for r in 0..REPS {
            p.barrier();
            if p.rank() == 0 {
                let t0 = Instant::now();
                p.send(1, (1000 + 2 * r) as u64, &big);
                let _ = p.recv(1, (1000 + 2 * r + 1) as u64);
                min_big = min_big.min(t0.elapsed().as_secs_f64());
            } else {
                let v = p.recv(0, (1000 + 2 * r) as u64);
                p.send(0, (1000 + 2 * r + 1) as u64, &v);
            }
        }
        let t0 = Instant::now();
        const BARRIERS: usize = 64;
        for _ in 0..BARRIERS {
            p.barrier();
        }
        let barrier_each = t0.elapsed().as_secs_f64() / BARRIERS as f64;
        (min_small, min_big, barrier_each)
    });
    let (min_small, min_big, barrier_each) = results[0];
    let latency = (min_small / 2.0).max(1e-8);
    let big_one_way = (min_big / 2.0 - latency).max(1e-9);
    let bandwidth = ((BIG * 8) as f64 / big_one_way).max(1e6);
    // One rendezvous involves both ranks; normalize per participant.
    let per_rank = (barrier_each / 2.0).max(1e-9);
    MeasuredComm {
        p2p_latency_s: latency,
        p2p_bytes_per_s: bandwidth,
        barrier_per_rank_s: per_rank,
    }
}

/// One entry of the prediction table behind a distribution choice.
#[derive(Clone, Debug)]
pub struct DistPrediction {
    pub scheme: Scheme,
    pub np: usize,
    /// Predicted factor time (seconds) under the calibrated model.
    pub predicted_s: f64,
}

/// The model's pick for one problem shape.
#[derive(Clone, Debug)]
pub struct DistChoice {
    pub scheme: Scheme,
    pub np: usize,
    pub predicted_s: f64,
    /// Every candidate evaluated, sorted fastest-first (the crossover
    /// table a Fig. 6–9 plot is drawn from).
    pub table: Vec<DistPrediction>,
}

/// Candidate schemes valid for `(m, np)`: V1, block-cyclic V2 with
/// small groups, and split V3 where `spread` divides both `np` and the
/// block size.
pub fn candidate_schemes(m: usize, np: usize) -> Vec<Scheme> {
    let mut out = vec![Scheme::V1, Scheme::V2 { b: 2 }, Scheme::V2 { b: 4 }];
    for spread in [2usize, 4] {
        if spread > 1
            && np.is_multiple_of(spread)
            && np >= spread
            && m.is_multiple_of(spread)
            && m >= spread
        {
            out.push(Scheme::V3 { spread });
        }
    }
    out
}

/// Sweep the candidate (scheme, NP) grid through the analytic engine
/// under `model` and pick the fastest — how the paper's crossover
/// plots (Figs. 6–9) choose a distribution for a given (m, p, n).
///
/// Panics if no candidate is valid (empty `np_candidates`).
pub fn choose_distribution(
    n: usize,
    m: usize,
    np_candidates: &[usize],
    rep: Rep,
    model: &dyn CostModel,
) -> DistChoice {
    let mut table: Vec<DistPrediction> = Vec::new();
    for &np in np_candidates {
        for scheme in candidate_schemes(m, np) {
            if scheme.validate(np).is_err() {
                continue;
            }
            let sim = simulate(
                &SimConfig {
                    n,
                    m,
                    np,
                    scheme,
                    rep,
                },
                model,
            );
            table.push(DistPrediction {
                scheme,
                np,
                predicted_s: sim.total,
            });
        }
    }
    assert!(!table.is_empty(), "no valid (scheme, np) candidate");
    table.sort_by(|a, b| a.predicted_s.total_cmp(&b.predicted_s));
    let best = table[0].clone();
    DistChoice {
        scheme: best.scheme,
        np: best.np,
        predicted_s: best.predicted_s,
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_model() -> CalibratedCost {
        CalibratedCost::new(
            RateTable::new(&[(1, 2e8), (8, 1e9), (32, 4e9)]),
            MeasuredComm::assumed(),
        )
    }

    #[test]
    fn compute_time_uses_blas3_interpolation_and_small_rate_floor() {
        let c = fixed_model();
        let t3 = c.compute_time(1e9, Primitive::Blas3 { dim: 32 });
        let t2 = c.compute_time(1e9, Primitive::Blas2 { dim: 32 });
        assert!((t3 - 0.25).abs() < 1e-12, "blas3 at table rate: {t3}");
        assert!((t2 - 5.0).abs() < 1e-9, "blas2 at the m_s=1 rate: {t2}");
        assert!(t2 > t3, "level-2 work must be priced slower per flop");
    }

    #[test]
    fn measured_comm_is_sane() {
        let c = measure_comm();
        assert!(c.p2p_latency_s > 0.0 && c.p2p_latency_s < 0.1);
        assert!(c.p2p_bytes_per_s >= 1e6);
        assert!(c.barrier_per_rank_s > 0.0 && c.barrier_per_rank_s < 0.1);
    }

    #[test]
    fn choose_distribution_returns_sorted_table() {
        let c = fixed_model();
        let choice = choose_distribution(512, 8, &[1, 2, 4], Rep::VY2, &c);
        assert!(!choice.table.is_empty());
        for w in choice.table.windows(2) {
            assert!(w[0].predicted_s <= w[1].predicted_s, "table must be sorted");
        }
        assert!((choice.predicted_s - choice.table[0].predicted_s).abs() == 0.0);
        // V3 spread 2 and 4 must appear for np=4, m=8.
        assert!(choice
            .table
            .iter()
            .any(|e| matches!(e.scheme, Scheme::V3 { spread: 2 }) && e.np == 4));
    }

    #[test]
    fn single_rank_prediction_has_no_comm_advantage() {
        // At np=1 every scheme degenerates to sequential: predictions
        // must agree across schemes to within the barrier-only slack.
        let c = fixed_model();
        let choice = choose_distribution(256, 8, &[1], Rep::VY2, &c);
        let times: Vec<f64> = choice.table.iter().map(|e| e.predicted_s).collect();
        let spread = times.iter().cloned().fold(f64::MIN, f64::max)
            - times.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 1e-3, "np=1 schemes should converge: {times:?}");
    }
}
