//! Real distributed execution of the block Schur algorithm on the
//! `bs-distmem` runtime (V1/V2 block-column distributions).
//!
//! Data movement is performed for real — every rank only ever touches
//! the block columns it owns, blocks crossing ownership boundaries
//! travel through channels — so the result can be compared
//! bit-for-bit-ish against the sequential `bs-core` factorization.
//! Virtual time is charged with the same quantities the analytic
//! simulator uses, which keeps the two engines mutually validating:
//! the per-phase charges are identical by construction, the *data* is
//! identical by test.
//!
//! V3 (split blocks) runs for real too ([`factor_distributed_v3`]):
//! each rank holds an m/spread column slice of every block its group
//! owns, the pivot panel is factored in `spread` pipelined chunks with
//! one partial-reflector broadcast per chunk, and the trailing update
//! applies the chunk transformations to the local column slices.

use crate::scheme::Scheme;
use bs_core::panel::factor_panel;
use bs_core::rep::BlockReflector;
use bs_core::rep::RepKind;
use bs_distmem::{CostModel, Primitive, Proc, World};
use bs_matrix::ldlt::Signature;
use bs_matrix::{ExecPolicy, Matrix};
use bs_perfmodel as pm;
use bs_probe::metrics::{self, Counter};
use bs_toeplitz::{build_generator, SymBlockToeplitz};
use std::collections::HashMap;
use std::sync::Arc;

/// Result of a distributed factorization.
#[derive(Debug)]
pub struct DistResult {
    /// The assembled factor (gathered on rank 0 after timing stopped).
    pub r: Matrix,
    /// Virtual completion time per rank (at the final barrier).
    pub times: Vec<f64>,
    /// Max completion time — "the" factor time.
    pub max_time: f64,
    /// Bytes each rank pushed into the network.
    pub bytes_sent: Vec<usize>,
}

/// Map a `bs-core` representation to its cost-model counterpart.
fn rep_to_model(rep: RepKind) -> pm::Rep {
    match rep {
        RepKind::Accumulated => pm::Rep::Accumulated,
        RepKind::VY1 => pm::Rep::VY1,
        RepKind::VY2 | RepKind::Sequential => pm::Rep::VY2,
        RepKind::YTY => pm::Rep::YTY,
    }
}

/// Factor an SPD block Toeplitz matrix on `np` virtual processors.
///
/// Panics on invalid configurations; numerical failures propagate as
/// panics inside ranks (tests exercise valid SPD inputs).
pub fn factor_distributed(
    t: &SymBlockToeplitz,
    np: usize,
    scheme: Scheme,
    rep: RepKind,
    model: Arc<dyn CostModel>,
) -> DistResult {
    if let Scheme::V3 { spread } = scheme {
        return factor_distributed_v3(t, np, spread, rep, model);
    }
    scheme.validate(np).expect("invalid scheme");
    let m = t.block_size();
    let p = t.num_blocks();
    let n = m * p;
    let _span = bs_probe::span!("factor_distributed", n = n, m = m, p = p, np = np);
    // Generator construction is the (untimed) input distribution step;
    // each rank derives its own columns from it.
    let gen = build_generator(t).expect("SPD generator");
    assert!(gen.is_spd_signature(), "dist_exec requires SPD input");
    let gen = Arc::new(gen.data);
    let w = Signature::hyperbolic(m);
    let mrep = rep_to_model(rep);
    let scale = t.norm_inf().max(1.0);

    struct RankOut {
        r_blocks: Vec<(usize, usize, Vec<f64>)>,
        time: f64,
        max_time: f64,
        bytes: usize,
    }

    let outs: Vec<RankOut> = World::run(np, model, |px: &mut Proc| {
        let rank = px.rank();
        // Owned block columns: (upper, lower) m×m blocks.
        let mut gu: HashMap<usize, Matrix> = HashMap::new();
        let mut gl: HashMap<usize, Matrix> = HashMap::new();
        for j in 0..p {
            if scheme.owner(j, np) == rank {
                gu.insert(j, gen.sub(0, j * m, m, m).to_matrix());
                gl.insert(j, gen.sub(m, j * m, m, m).to_matrix());
            }
        }
        let mut r_blocks: Vec<(usize, usize, Vec<f64>)> = Vec::new();
        // Emit block row 0.
        for (&j, blk) in &gu {
            r_blocks.push((0, j, blk.as_slice().to_vec()));
        }

        for s in 1..p {
            // ---- Shift: upper block j -> column j+1, crossing blocks
            // batched into one message per destination rank (ascending
            // j on both ends keeps the framing deterministic). ----
            let mut new_gu: HashMap<usize, Matrix> = HashMap::new();
            let mut outgoing: HashMap<usize, Vec<f64>> = HashMap::new();
            for j in (s - 1)..(p - 1) {
                if scheme.owner(j, np) == rank {
                    let blk = gu.remove(&j).expect("owned upper block");
                    let dst = scheme.owner(j + 1, np);
                    if dst == rank {
                        new_gu.insert(j + 1, blk);
                    } else {
                        outgoing.entry(dst).or_default().extend(blk.as_slice());
                    }
                }
            }
            for (dst, data) in outgoing {
                px.send(dst, s as u64, &data);
            }
            let mut incoming: HashMap<usize, Vec<usize>> = HashMap::new();
            for j in s..p {
                if scheme.owner(j, np) == rank && !new_gu.contains_key(&j) {
                    let src = scheme.owner(j - 1, np);
                    if src != rank {
                        incoming.entry(src).or_default().push(j);
                    }
                }
            }
            for (src, js) in incoming {
                let data = px.recv(src, s as u64);
                assert_eq!(data.len(), js.len() * m * m, "shift framing");
                for (idx, &j) in js.iter().enumerate() {
                    let blk =
                        Matrix::from_col_major(m, m, data[idx * m * m..(idx + 1) * m * m].to_vec());
                    new_gu.insert(j, blk);
                }
            }
            gu = new_gu;
            px.barrier();

            // ---- Panel: pivot owner factors, panel is broadcast raw
            // but charged at the representation's wire size. ----
            let piv_owner = scheme.owner(s, np);
            let wire = pm::comm_words(mrep, m) * 8;
            let panel_data: Vec<f64> = if rank == piv_owner {
                px.compute(pm::blocking_flops(mrep, m, m), Primitive::Blas2 { dim: m });
                let mut panel = Matrix::zeros(2 * m, m);
                panel.sub_mut(0, 0, m, m).copy_from(gu[&s].rf());
                panel.sub_mut(m, 0, m, m).copy_from(gl[&s].rf());
                let data = panel.as_slice().to_vec();
                if np > 1 {
                    // The broadcast is charged at the representation's
                    // wire size; mirror that volume in the probe
                    // registry (words, root's outbound fan-out).
                    metrics::add(Counter::CommWords, ((wire / 8) * (np - 1)) as u64);
                    px.broadcast_charged(piv_owner, (p * p + s) as u64, &data, wire);
                }
                data
            } else {
                px.broadcast_charged(piv_owner, (p * p + s) as u64, &[], wire)
            };
            // Every rank rebuilds the reflector deterministically
            // (bookkeeping — the model already charged the owner).
            let mut panel = Matrix::from_col_major(2 * m, m, panel_data);
            let block_refl = factor_panel(panel.mt(), &w, rep, s, 1e-13, scale)
                .expect("SPD panel factorization");
            if rank == piv_owner {
                gu.get_mut(&s)
                    .expect("pivot upper")
                    .mt()
                    .copy_from(panel.sub(0, 0, m, m));
                gl.get_mut(&s).expect("pivot lower").fill(0.0);
            }

            // ---- Apply to owned trailing columns. ----
            let local: Vec<usize> = (s + 1..p)
                .filter(|&j| scheme.owner(j, np) == rank)
                .collect();
            if !local.is_empty() {
                px.compute(
                    pm::apply_flops(mrep, m, m, local.len()),
                    Primitive::Blas3 {
                        dim: crate::analytic::apply_dim(m, 1),
                    },
                );
                for j in local {
                    let guj = gu.get_mut(&j).expect("upper").mt();
                    // Work around double mutable borrow of the two maps
                    // by splitting the operation on raw entries.
                    let glj = gl.get_mut(&j).expect("lower");
                    block_refl.apply_split(guj, glj.mt(), &ExecPolicy::sequential());
                }
            }
            px.barrier();

            // ---- Emit block row s. ----
            for j in s..p {
                if scheme.owner(j, np) == rank {
                    r_blocks.push((s, j, gu[&j].as_slice().to_vec()));
                }
            }
        }

        let time = px.time();
        let max_time = px.allreduce_max(time);
        RankOut {
            r_blocks,
            time,
            max_time,
            bytes: px.bytes_sent(),
        }
    });

    // Assemble R from all ranks' emitted blocks (untimed gather).
    let mut r = Matrix::zeros(n, n);
    for out in &outs {
        for (s, j, data) in &out.r_blocks {
            let blk = Matrix::from_col_major(m, m, data.clone());
            r.sub_mut(s * m, j * m, m, m).copy_from(blk.rf());
        }
    }
    // Positive-diagonal normalization + sub-diagonal cleanup, matching
    // the sequential driver's convention.
    for i in 0..n {
        if r[(i, i)] < 0.0 {
            for j in i..n {
                r[(i, j)] = -r[(i, j)];
            }
        }
    }
    for j in 0..n {
        for i in j + 1..n {
            r[(i, j)] = 0.0;
        }
    }

    let times: Vec<f64> = outs.iter().map(|o| o.time).collect();
    let max_time = outs.first().map(|o| o.max_time).unwrap_or(0.0);
    let bytes_sent = outs.iter().map(|o| o.bytes).collect();
    DistResult {
        r,
        times,
        max_time,
        bytes_sent,
    }
}

/// Real execution of the Version-3 distribution (§7.1.3): block column
/// `j` belongs to group `j mod (NP/spread)`; rank `g·spread + c` of a
/// group holds columns `c·(m/spread)..(c+1)·(m/spread)` of each of the
/// group's blocks, stored stacked as a `2m × m/spread` slice (upper
/// generator half on top, lower half below).
pub fn factor_distributed_v3(
    t: &SymBlockToeplitz,
    np: usize,
    spread: usize,
    rep: RepKind,
    model: Arc<dyn CostModel>,
) -> DistResult {
    let scheme = Scheme::V3 { spread };
    scheme.validate(np).expect("invalid scheme");
    let m = t.block_size();
    let p = t.num_blocks();
    let n = m * p;
    assert!(
        m.is_multiple_of(spread),
        "V3 requires spread ({spread}) to divide the block size ({m})"
    );
    let groups = np / spread;
    let mc = m / spread; // columns per rank
    let _span = bs_probe::span!(
        "factor_distributed_v3",
        n = n,
        m = m,
        np = np,
        spread = spread
    );
    let gen = build_generator(t).expect("SPD generator");
    assert!(gen.is_spd_signature(), "dist_exec requires SPD input");
    let gen = Arc::new(gen.data);
    let w = Signature::hyperbolic(m);
    let mrep = rep_to_model(rep);
    let scale = t.norm_inf().max(1.0);

    struct RankOut {
        // (step, block col, col offset, m x mc upper-slice data)
        r_blocks: Vec<(usize, usize, usize, Vec<f64>)>,
        time: f64,
        max_time: f64,
        bytes: usize,
    }

    let outs: Vec<RankOut> = World::run(np, model, |px: &mut Proc| {
        let rank = px.rank();
        let group = rank / spread;
        let intra = rank % spread;
        let cstart = intra * mc;
        // Stacked 2m x mc slices of each owned block column.
        let mut slices: HashMap<usize, Matrix> = HashMap::new();
        for j in 0..p {
            if j % groups == group {
                slices.insert(j, gen.sub(0, j * m + cstart, 2 * m, mc).to_matrix());
            }
        }
        let mut r_blocks: Vec<(usize, usize, usize, Vec<f64>)> = Vec::new();
        for (&j, sl) in &slices {
            r_blocks.push((
                0,
                j,
                cstart,
                sl.sub(0, 0, m, mc).to_matrix().as_slice().to_vec(),
            ));
        }

        for s in 1..p {
            // ---- Shift: upper halves move to the next group, same
            // intra-group index; one batched message. ----
            let dst_rank = (((group + 1) % groups) * spread) + intra;
            let src_rank = (((group + groups - 1) % groups) * spread) + intra;
            let mut outgoing: Vec<f64> = Vec::new();
            let mut sent_any = false;
            for j in (s - 1)..(p - 1) {
                if j % groups == group {
                    let sl = slices.get(&j).expect("owned slice");
                    let up = sl.sub(0, 0, m, mc).to_matrix();
                    if groups == 1 {
                        // Self-shift within the single group.
                        continue;
                    }
                    outgoing.extend(up.as_slice());
                    sent_any = true;
                }
            }
            if groups == 1 {
                // All blocks stay local: move upper halves j -> j+1.
                let mut ups: Vec<(usize, Matrix)> = Vec::new();
                for j in (s - 1)..(p - 1) {
                    ups.push((j + 1, slices[&j].sub(0, 0, m, mc).to_matrix()));
                }
                for (j, up) in ups {
                    slices
                        .get_mut(&j)
                        .expect("dest slice")
                        .sub_mut(0, 0, m, mc)
                        .copy_from(up.rf());
                }
            } else {
                if sent_any {
                    px.send(dst_rank, s as u64, &outgoing);
                }
                // Receive the upper halves for my blocks j in s..p-1
                // whose predecessor j-1 belongs to the previous group.
                let expect: Vec<usize> = (s..p).filter(|&j| j % groups == group).collect();
                if !expect.is_empty() {
                    let data = px.recv(src_rank, s as u64);
                    assert_eq!(data.len(), expect.len() * m * mc, "v3 shift framing");
                    for (idx, &j) in expect.iter().enumerate() {
                        let up = Matrix::from_col_major(
                            m,
                            mc,
                            data[idx * m * mc..(idx + 1) * m * mc].to_vec(),
                        );
                        slices
                            .get_mut(&j)
                            .expect("dest slice")
                            .sub_mut(0, 0, m, mc)
                            .copy_from(up.rf());
                    }
                }
            }
            px.barrier();

            // ---- Panel: `spread` pipelined chunks over the pivot
            // block column s (owned by group gs). ----
            let gs = s % groups;
            let wire = pm::comm_words(mrep, m) * 8 / spread;
            let mut chunk_reps: Vec<BlockReflector> = Vec::with_capacity(spread);
            for c in 0..spread {
                let owner = gs * spread + c;
                let tag = (p + s) * spread + c;
                let wire_data: Vec<f64> = if rank == owner {
                    // Previous chunks were already applied to this
                    // rank's pivot slice as their broadcasts arrived
                    // (the `intra > c` branch below); factor my chunk
                    // columns directly.
                    let sl = slices.get_mut(&s).expect("pivot slice");
                    px.compute(
                        pm::blocking_flops(mrep, m, m) / spread as f64,
                        Primitive::Blas2 { dim: m },
                    );
                    let mut wire_out = Vec::with_capacity(mc * (2 * m + 3));
                    for local_c in 0..mc {
                        let k = c * mc + local_c; // global pivot row
                        let u_top = sl[(k, local_c)];
                        let u_low: Vec<f64> = (0..m).map(|i| sl[(m + i, local_c)]).collect();
                        let (outcome, refl) = bs_core::reflector::PivotReflector::compute(
                            u_top, &u_low, &w, m, k, 1e-13, scale,
                        );
                        assert!(
                            matches!(outcome, bs_core::reflector::PivotOutcome::Ok),
                            "SPD pivot expected"
                        );
                        let refl = refl.expect("Ok outcome");
                        // Finalize column and update the rest of my chunk.
                        sl[(k, local_c)] = -refl.sigma;
                        for i in 0..m {
                            sl[(m + i, local_c)] = 0.0;
                        }
                        for j2 in local_c + 1..mc {
                            let col = sl.col_mut(j2);
                            let (top, low) = col.split_at_mut(m);
                            refl.apply_split(&w, m, &mut top[k], low);
                        }
                        let full = refl.to_full(m);
                        wire_out.push(full.beta);
                        wire_out.push(full.sigma);
                        wire_out.push(full.pivot as f64);
                        wire_out.extend(&full.x);
                    }
                    if np > 1 {
                        metrics::add(Counter::CommWords, ((wire / 8) * (np - 1)) as u64);
                        px.broadcast_charged(owner, tag as u64, &wire_out, wire);
                    }
                    wire_out
                } else {
                    px.broadcast_charged(owner, tag as u64, &[], wire)
                };
                // Rebuild the chunk's block reflector everywhere.
                let mut crep = BlockReflector::new(rep, w.clone(), mc);
                let stride = 2 * m + 3;
                assert_eq!(wire_data.len(), mc * stride, "v3 panel framing");
                for lc in 0..mc {
                    let off = lc * stride;
                    let refl = bs_core::reflector::HypReflector {
                        beta: wire_data[off],
                        sigma: wire_data[off + 1],
                        pivot: wire_data[off + 2] as usize,
                        x: wire_data[off + 3..off + 3 + 2 * m].to_vec(),
                    };
                    crep.push(&refl);
                }
                // Ranks of the pivot group with later chunks apply it to
                // their pivot slice as soon as it arrives (the pipeline
                // dependency the analytic model charges a sync for).
                if group == gs && intra > c && rank != owner {
                    let sl = slices.get_mut(&s).expect("pivot slice");
                    crep.apply(sl.mt(), &ExecPolicy::sequential());
                }
                px.barrier();
                chunk_reps.push(crep);
            }

            // ---- Apply all chunk transformations to owned trailing
            // slices, in chunk order. ----
            let local: Vec<usize> = (s + 1..p).filter(|&j| j % groups == group).collect();
            if !local.is_empty() {
                px.compute(
                    pm::apply_flops(mrep, m, m, local.len()) / spread as f64,
                    Primitive::Blas3 {
                        dim: crate::analytic::apply_dim(m, spread),
                    },
                );
                for j in local {
                    let sl = slices.get_mut(&j).expect("trailing slice");
                    for crep in &chunk_reps {
                        crep.apply(sl.mt(), &ExecPolicy::sequential());
                    }
                }
            }
            px.barrier();

            // ---- Emit block row s slices. ----
            for j in s..p {
                if j % groups == group {
                    let up = slices[&j].sub(0, 0, m, mc).to_matrix();
                    r_blocks.push((s, j, cstart, up.as_slice().to_vec()));
                }
            }
        }

        let time = px.time();
        let max_time = px.allreduce_max(time);
        RankOut {
            r_blocks,
            time,
            max_time,
            bytes: px.bytes_sent(),
        }
    });

    // Assemble R (untimed gather).
    let mut r = Matrix::zeros(n, n);
    for out in &outs {
        for (s, j, cs, data) in &out.r_blocks {
            let blk = Matrix::from_col_major(m, mc, data.clone());
            r.sub_mut(s * m, j * m + cs, m, mc).copy_from(blk.rf());
        }
    }
    for i in 0..n {
        if r[(i, i)] < 0.0 {
            for j in i..n {
                r[(i, j)] = -r[(i, j)];
            }
        }
    }
    for j in 0..n {
        for i in j + 1..n {
            r[(i, j)] = 0.0;
        }
    }

    let times: Vec<f64> = outs.iter().map(|o| o.time).collect();
    let max_time = outs.first().map(|o| o.max_time).unwrap_or(0.0);
    let bytes_sent = outs.iter().map(|o| o.bytes).collect();
    DistResult {
        r,
        times,
        max_time,
        bytes_sent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{simulate, SimConfig};
    use crate::t3d::T3DModel;
    use bs_toeplitz::workloads;

    #[test]
    fn distributed_matches_sequential_v1() {
        for (m, p, np) in [(1usize, 16usize, 4usize), (2, 8, 3), (4, 6, 2)] {
            let t = workloads::random_spd_block(m, p, 7 + (m * p) as u64);
            let seq = bs_core::factor_spd(
                &t,
                &bs_core::SchurOptions {
                    explicit_shift: true,
                    ..Default::default()
                },
            )
            .unwrap();
            let dist = factor_distributed(
                &t,
                np,
                Scheme::V1,
                RepKind::VY2,
                Arc::new(bs_distmem::ZeroCost),
            );
            assert!(
                dist.r.max_abs_diff(&seq.r) < 1e-10,
                "m={m} p={p} np={np}: {}",
                dist.r.max_abs_diff(&seq.r)
            );
        }
    }

    #[test]
    fn distributed_matches_sequential_v2_and_reps() {
        let t = workloads::random_spd_block(2, 12, 33);
        let seq = bs_core::factor_spd(&t, &bs_core::SchurOptions::default()).unwrap();
        for rep in [RepKind::VY1, RepKind::YTY, RepKind::Accumulated] {
            for b in [2usize, 3] {
                let dist = factor_distributed(
                    &t,
                    4,
                    Scheme::V2 { b },
                    rep,
                    Arc::new(bs_distmem::ZeroCost),
                );
                assert!(
                    dist.r.max_abs_diff(&seq.r) < 1e-9,
                    "rep={rep:?} b={b}: {}",
                    dist.r.max_abs_diff(&seq.r)
                );
            }
        }
    }

    #[test]
    fn virtual_time_matches_analytic_engine() {
        let t = workloads::random_spd_block(4, 12, 5);
        let model = T3DModel::default();
        let dist = factor_distributed(&t, 4, Scheme::V1, RepKind::VY2, Arc::new(model.clone()));
        let sim = simulate(
            &SimConfig {
                n: 48,
                m: 4,
                np: 4,
                scheme: Scheme::V1,
                rep: pm::Rep::VY2,
            },
            &model,
        );
        let rel = (dist.max_time - sim.total).abs() / sim.total;
        assert!(
            rel < 0.05,
            "real-execution time {} vs analytic {} (rel {rel})",
            dist.max_time,
            sim.total
        );
    }

    #[test]
    fn single_rank_runs() {
        let t = workloads::random_spd_block(2, 6, 1);
        let seq = bs_core::factor_spd(&t, &bs_core::SchurOptions::default()).unwrap();
        let dist = factor_distributed(
            &t,
            1,
            Scheme::V1,
            RepKind::VY2,
            Arc::new(bs_distmem::ZeroCost),
        );
        assert!(dist.r.max_abs_diff(&seq.r) < 1e-10);
        assert_eq!(dist.bytes_sent[0], 0);
    }

    #[test]
    fn solves_through_distributed_factor() {
        let t = workloads::random_spd_block(2, 10, 9);
        let (b, x_true) = workloads::rhs_for_ones(&t);
        let dist = factor_distributed(
            &t,
            3,
            Scheme::V1,
            RepKind::VY2,
            Arc::new(bs_distmem::ZeroCost),
        );
        let x = bs_core::solve::solve_rtdr(&dist.r, None, &b).unwrap();
        for i in 0..x.len() {
            assert!((x[i] - x_true[i]).abs() < 1e-8, "i={i}");
        }
    }
}

#[cfg(test)]
mod v3_tests {
    use super::*;
    use crate::analytic::{simulate, SimConfig};
    use crate::t3d::T3DModel;
    use bs_toeplitz::workloads;

    #[test]
    fn v3_matches_sequential() {
        for (m, p, np, spread) in [
            (4usize, 8usize, 4usize, 2usize),
            (4, 8, 2, 2),
            (8, 6, 8, 4),
            (4, 10, 8, 4),
        ] {
            let t = workloads::random_spd_block(m, p, (m * p + np) as u64);
            let seq = bs_core::factor_spd(&t, &bs_core::SchurOptions::default()).unwrap();
            let dist = factor_distributed(
                &t,
                np,
                Scheme::V3 { spread },
                RepKind::VY2,
                Arc::new(bs_distmem::ZeroCost),
            );
            let diff = dist.r.max_abs_diff(&seq.r);
            assert!(diff < 1e-9, "m={m} p={p} np={np} spread={spread}: {diff:e}");
        }
    }

    #[test]
    fn v3_single_group_works() {
        // groups = 1: all blocks in one group, shifts stay local.
        let t = workloads::random_spd_block(4, 6, 5);
        let seq = bs_core::factor_spd(&t, &bs_core::SchurOptions::default()).unwrap();
        let dist = factor_distributed(
            &t,
            2,
            Scheme::V3 { spread: 2 },
            RepKind::VY2,
            Arc::new(bs_distmem::ZeroCost),
        );
        assert!(dist.r.max_abs_diff(&seq.r) < 1e-9);
    }

    #[test]
    fn v3_virtual_time_close_to_analytic() {
        let t = workloads::random_spd_block(8, 8, 3);
        let model = T3DModel::default();
        let dist = factor_distributed(
            &t,
            4,
            Scheme::V3 { spread: 2 },
            RepKind::VY2,
            Arc::new(model.clone()),
        );
        let sim = simulate(
            &SimConfig {
                n: 64,
                m: 8,
                np: 4,
                scheme: Scheme::V3 { spread: 2 },
                rep: pm::Rep::VY2,
            },
            &model,
        );
        let rel = (dist.max_time - sim.total).abs() / sim.total;
        assert!(
            rel < 0.25,
            "v3 exec {} vs analytic {} (rel {rel})",
            dist.max_time,
            sim.total
        );
    }

    #[test]
    fn v3_solve_end_to_end() {
        let t = workloads::random_spd_block(4, 12, 21);
        let (b, x_true) = workloads::rhs_for_ones(&t);
        let dist = factor_distributed(
            &t,
            8,
            Scheme::V3 { spread: 4 },
            RepKind::YTY,
            Arc::new(bs_distmem::ZeroCost),
        );
        let x = bs_core::solve::solve_rtdr(&dist.r, None, &b).unwrap();
        for i in 0..x.len() {
            assert!((x[i] - x_true[i]).abs() < 1e-8, "i={i}");
        }
    }
}
