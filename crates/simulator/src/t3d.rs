//! The Cray T3D machine model (§7.1.4 of the paper).
//!
//! Stated hardware parameters:
//! - PE: DEC Alpha 21064, 150 MHz, 150 Mflops peak;
//! - 8 KB direct-mapped write-through data cache, 4-word (32-byte)
//!   cache lines;
//! - shmem puts with ≈1 µs latency, 300 MB/s per-neighbour links;
//! - hardware-assisted barrier/broadcast over a 3D torus.
//!
//! The *effective* flop rate of the 21064 on BLAS kernels was far below
//! peak and strongly operand-size dependent (the paper leans on this
//! for Fig. 9 and §6.5): out-of-cache BLAS1 ran at ~10–20% of peak,
//! while blocked BLAS3 on larger tiles approached ~50%. The efficiency
//! curves below encode that shape; their exact constants are a
//! calibration, the *monotonicity* (bigger operands → better rate,
//! BLAS3 > BLAS2 > BLAS1) is the modelling assumption the paper itself
//! makes.

use bs_distmem::{CostModel, Primitive};

/// Parameterized T3D-like machine.
#[derive(Clone, Debug)]
pub struct T3DModel {
    /// Peak flops per PE (default 150e6).
    pub peak_flops: f64,
    /// Point-to-point latency in seconds (default 1e-6, shmem put).
    pub latency: f64,
    /// Link bandwidth in bytes/second for contiguous transfers
    /// (default 300e6) — used by broadcasts of packed reflector panels.
    pub bandwidth: f64,
    /// Effective bandwidth for *strided* block transfers (the
    /// generator shift gathers an m×m block out of a 2m × n array;
    /// per-word cache-miss costs dominate). Default 25e6.
    pub strided_bandwidth: f64,
    /// Per-stage barrier cost in seconds; a barrier over `np` PEs costs
    /// `barrier_base + barrier_per_stage * log2(np)`.
    pub barrier_base: f64,
    pub barrier_per_stage: f64,
    /// Cache line length in 8-byte words (default 4) — vectors shorter
    /// than (or badly aligned to) a line waste memory bandwidth.
    pub cache_line_words: usize,
    /// Multiply all communication times (sensitivity studies: the
    /// paper's "if the shift operation on the T3D were slower..." and
    /// "if the cost of broadcast were to reduce..." discussions).
    pub comm_scale: f64,
}

impl Default for T3DModel {
    fn default() -> Self {
        T3DModel {
            peak_flops: 150e6,
            latency: 1e-6,
            bandwidth: 300e6,
            strided_bandwidth: 25e6,
            // Software synchronization around each compute/communicate
            // phase costs well above the raw hardware barrier; this is
            // the term that makes halving the step count pay at scale
            // (Fig. 9).
            barrier_base: 6e-6,
            barrier_per_stage: 2e-6,
            cache_line_words: 4,
            comm_scale: 1.0,
        }
    }
}

impl T3DModel {
    /// Fraction of peak achieved by a primitive — the empirical-shape
    /// efficiency model.
    pub fn efficiency(&self, prim: Primitive) -> f64 {
        // Saturating growth x/(x+c).
        let sat = |x: f64, c: f64| x / (x + c);
        match prim {
            // Out-of-cache vector ops: ~10% of peak, reached quickly.
            Primitive::Blas1 { len } => 0.02 + 0.10 * sat(len as f64, 16.0),
            // Matrix-vector: a bit better, needs a larger operand.
            Primitive::Blas2 { dim } => {
                0.03 + 0.15 * sat(dim as f64, 12.0) * self.line_utilization(dim)
            }
            // Blocked matrix-matrix: up to ~50% of peak for big tiles.
            Primitive::Blas3 { dim } => {
                0.05 + 0.45 * sat(dim as f64, 24.0) * self.line_utilization(dim)
            }
            Primitive::Generic => 0.05,
        }
    }

    /// Cache-line utilization of stride-1 vectors of length `dim`:
    /// fetching `dim` words pulls `ceil(dim/line)` lines (§7.1.7's
    /// explanation of the m = 2 vs m = 4 behaviour).
    pub fn line_utilization(&self, dim: usize) -> f64 {
        if dim == 0 {
            return 1.0;
        }
        let line = self.cache_line_words;
        let lines = dim.div_ceil(line);
        dim as f64 / (lines * line) as f64
    }
}

impl CostModel for T3DModel {
    fn compute_time(&self, flops: f64, prim: Primitive) -> f64 {
        flops / (self.peak_flops * self.efficiency(prim))
    }

    fn p2p_time(&self, bytes: usize) -> f64 {
        // Point-to-point messages in the Schur algorithm are the shift
        // transfers of strided generator blocks.
        self.comm_scale * (self.latency + bytes as f64 / self.strided_bandwidth)
    }

    fn broadcast_time(&self, bytes: usize, np: usize) -> f64 {
        // Tree broadcast: log2(np) p2p stages (hardware-assisted, so
        // per-stage latency equals the put latency).
        let stages = (np.max(2) as f64).log2().ceil();
        self.comm_scale * stages * (self.latency + bytes as f64 / self.bandwidth)
    }

    fn barrier_time(&self, np: usize) -> f64 {
        let stages = (np.max(2) as f64).log2().ceil();
        self.comm_scale * (self.barrier_base + stages * self.barrier_per_stage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_grows_with_operand_size() {
        let m = T3DModel::default();
        let e2 = m.efficiency(Primitive::Blas3 { dim: 2 });
        let e4 = m.efficiency(Primitive::Blas3 { dim: 4 });
        let e32 = m.efficiency(Primitive::Blas3 { dim: 32 });
        assert!(e2 < e4 && e4 < e32);
        // Fig. 9 requirement: the m=4 rate is better but less than 2x
        // the m=2 rate, so twice the flops still cost more time.
        assert!(e4 / e2 > 1.0 && e4 / e2 < 2.0, "ratio {}", e4 / e2);
    }

    #[test]
    fn blas_level_ordering() {
        let m = T3DModel::default();
        let dim = 32;
        let b1 = m.efficiency(Primitive::Blas1 { len: dim });
        let b2 = m.efficiency(Primitive::Blas2 { dim });
        let b3 = m.efficiency(Primitive::Blas3 { dim });
        assert!(b1 < b2 && b2 < b3);
    }

    #[test]
    fn line_utilization_partial_lines() {
        let m = T3DModel::default();
        assert_eq!(m.line_utilization(4), 1.0);
        assert_eq!(m.line_utilization(8), 1.0);
        assert_eq!(m.line_utilization(2), 0.5);
        assert_eq!(m.line_utilization(5), 5.0 / 8.0);
    }

    #[test]
    fn communication_costs_scale() {
        let mut m = T3DModel::default();
        let t1 = m.p2p_time(300);
        m.comm_scale = 2.0;
        assert!((m.p2p_time(300) - 2.0 * t1).abs() < 1e-15);
        // Broadcast grows with np.
        assert!(m.broadcast_time(64, 64) > m.broadcast_time(64, 4));
    }

    #[test]
    fn never_exceeds_peak() {
        let m = T3DModel::default();
        for dim in [1usize, 2, 4, 16, 256, 4096] {
            for prim in [
                Primitive::Blas1 { len: dim },
                Primitive::Blas2 { dim },
                Primitive::Blas3 { dim },
            ] {
                let e = m.efficiency(prim);
                assert!(e > 0.0 && e < 1.0, "{prim:?}: {e}");
            }
        }
    }
}
