//! Measured sharded execution of the block Schur algorithm: the
//! paper's three T3D distributions (§7.1) promoted from virtual clocks
//! to real multi-shard runs on the `bs-distmem` wall transport.
//!
//! Where [`crate::dist_exec`] charges a [`bs_distmem::CostModel`] and
//! reports what a modeled machine *would* have measured, this module
//! reports what this machine *did* measure: every rank is a dedicated
//! OS thread owning a packed shard of the generator, blocks crossing
//! ownership boundaries travel through real channels, the trailing
//! update runs through the PR 5 SIMD kernel engine (one
//! [`BlockReflector::apply_ws`] over the rank's packed trailing
//! suffix), and `wall_s` is elapsed wall-clock seconds.
//!
//! ## Ownership map and packing
//!
//! A rank stores its owned block columns **packed, sorted ascending by
//! block index**, stacked upper-over-lower (`2m × owned·m` for V1/V2;
//! `2m × owned·mc` column slices for V3). Ascending order makes the
//! active trailing set `{j ≥ s+1}` a *contiguous column suffix* of the
//! local shard at every step `s`, so the whole trailing update is one
//! level-3 reflector application per rank — the shared-memory strip
//! dispatch of §6 reproduced across address-space shards.
//!
//! ## Determinism contract
//!
//! Every per-step message has a deterministic (source, tag, layout):
//! shifts batch ascending-`j` blocks into one message per destination
//! and unpack by the same enumeration; the pivot panel is broadcast
//! raw and refactored identically on every rank; receives are
//! selective by `(source, tag)`. Thread scheduling can reorder
//! *arrivals*, never *contents*, so a run's factor is a pure function
//! of `(matrix, scheme, np, rep, kernel)` — byte-for-byte reproducible
//! across runs, which the integration suite asserts.

use crate::scheme::Scheme;
use bs_core::panel::factor_panel;
use bs_core::rep::{BlockReflector, RepKind};
use bs_distmem::{Proc, WallOpts, World};
use bs_matrix::ldlt::Signature;
use bs_matrix::{ExecPolicy, Matrix, Workspace};
use bs_toeplitz::{build_generator, SymBlockToeplitz};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Configuration for one measured sharded factorization.
#[derive(Clone, Debug)]
pub struct ShardOptions {
    /// Data distribution (V1 cyclic, V2 block-cyclic, V3 split).
    pub scheme: Scheme,
    /// Number of ranks (dedicated OS threads).
    pub np: usize,
    /// Block-reflector representation for panels and updates.
    pub rep: RepKind,
    /// Receive deadline forwarded to [`WallOpts`]; `None` waits
    /// forever (peer-panic poison still unblocks).
    pub recv_deadline: Option<Duration>,
}

impl ShardOptions {
    /// Defaults for `scheme` at `np`: VY2 representation, 60 s receive
    /// deadline.
    pub fn new(scheme: Scheme, np: usize) -> Self {
        ShardOptions {
            scheme,
            np,
            rep: RepKind::VY2,
            recv_deadline: WallOpts::default().recv_deadline,
        }
    }
}

/// Result of a measured sharded factorization.
#[derive(Debug)]
pub struct ShardRun {
    /// The assembled upper factor (gathered after timing stopped),
    /// normalized to the sequential driver's sign convention.
    pub r: Matrix,
    /// Elapsed wall seconds, max across ranks at the final reduce —
    /// "the" measured factor time.
    pub wall_s: f64,
    /// Per-rank elapsed wall seconds at that rank's last step.
    pub rank_wall_s: Vec<f64>,
    /// Bytes each rank pushed into the network.
    pub bytes_sent: Vec<usize>,
    /// Bytes each rank consumed from the network.
    pub bytes_received: Vec<usize>,
    /// Seconds each rank spent blocked in receives and barriers.
    pub comm_wait_s: Vec<f64>,
}

impl ShardRun {
    /// Total bytes crossing rank boundaries (sum over ranks).
    pub fn comm_volume(&self) -> usize {
        self.bytes_sent.iter().sum()
    }
}

/// Per-rank output collected by both scheme executors:
/// `(step, block col, col offset, width, m×width upper data)` tiles
/// plus the timing/traffic footers.
struct RankOut {
    r_tiles: Vec<(usize, usize, usize, usize, Vec<f64>)>,
    wall: f64,
    max_wall: f64,
    bytes_sent: usize,
    bytes_recv: usize,
    wait_ns: u64,
}

/// Factor an SPD block Toeplitz matrix on `np` real rank threads under
/// `opts.scheme`, measuring wall-clock time.
///
/// Panics on invalid configurations; numerical failures propagate as
/// panics inside ranks (the sweep exercises valid SPD inputs).
pub fn factor_sharded(t: &SymBlockToeplitz, opts: &ShardOptions) -> ShardRun {
    opts.scheme.validate(opts.np).expect("invalid scheme");
    let m = t.block_size();
    let p = t.num_blocks();
    let _span = bs_probe::span!("factor_sharded", n = m * p, m = m, p = p, np = opts.np);
    let gen = build_generator(t).expect("SPD generator");
    assert!(gen.is_spd_signature(), "factor_sharded requires SPD input");
    let gen = Arc::new(gen.data);
    let scale = t.norm_inf().max(1.0);
    let wall = WallOpts {
        recv_deadline: opts.recv_deadline,
    };
    let outs = match opts.scheme {
        Scheme::V3 { spread } => run_v3(&gen, m, p, spread, opts, scale, wall),
        _ => run_v12(&gen, m, p, opts, scale, wall),
    };
    assemble(outs, m, p)
}

/// Gather the per-rank tiles into the full factor and normalize signs,
/// matching the sequential driver's convention (positive diagonal,
/// explicit zero sub-diagonal).
fn assemble(outs: Vec<RankOut>, m: usize, p: usize) -> ShardRun {
    let n = m * p;
    let mut r = Matrix::zeros(n, n);
    for out in &outs {
        for (s, j, coff, width, data) in &out.r_tiles {
            let tile = Matrix::from_col_major(m, *width, data.clone());
            r.sub_mut(s * m, j * m + coff, m, *width)
                .copy_from(tile.rf());
        }
    }
    for i in 0..n {
        if r[(i, i)] < 0.0 {
            for j in i..n {
                r[(i, j)] = -r[(i, j)];
            }
        }
    }
    for j in 0..n {
        for i in j + 1..n {
            r[(i, j)] = 0.0;
        }
    }
    ShardRun {
        r,
        wall_s: outs.first().map(|o| o.max_wall).unwrap_or(0.0),
        rank_wall_s: outs.iter().map(|o| o.wall).collect(),
        bytes_sent: outs.iter().map(|o| o.bytes_sent).collect(),
        bytes_received: outs.iter().map(|o| o.bytes_recv).collect(),
        comm_wait_s: outs.iter().map(|o| o.wait_ns as f64 * 1e-9).collect(),
    }
}

/// V1/V2 executor: whole block columns per rank, packed ascending.
fn run_v12(
    gen: &Arc<Matrix>,
    m: usize,
    p: usize,
    opts: &ShardOptions,
    scale: f64,
    wall: WallOpts,
) -> Vec<RankOut> {
    let scheme = opts.scheme;
    let np = opts.np;
    let rep = opts.rep;
    let w = Signature::hyperbolic(m);
    World::run_wall(np, wall, |px: &mut Proc| {
        let rank = px.rank();
        // Owned block columns, ascending: slot i holds block owned[i]
        // at local columns i·m..(i+1)·m, upper half stacked on lower.
        let owned: Vec<usize> = (0..p).filter(|&j| scheme.owner(j, np) == rank).collect();
        let slot_of = |j: usize| owned.binary_search(&j).expect("owned block");
        let mut local = Matrix::zeros(2 * m, owned.len() * m);
        for (i, &j) in owned.iter().enumerate() {
            local
                .sub_mut(0, i * m, 2 * m, m)
                .copy_from(gen.sub(0, j * m, 2 * m, m));
        }
        let mut ws = Workspace::new();
        let exec = ExecPolicy::sequential();
        let mut r_tiles: Vec<(usize, usize, usize, usize, Vec<f64>)> = Vec::new();
        // Emit block row 0 (the generator's upper row).
        for (i, &j) in owned.iter().enumerate() {
            let tile = local.sub(0, i * m, m, m).to_matrix();
            r_tiles.push((0, j, 0, m, tile.as_slice().to_vec()));
        }

        for s in 1..p {
            // ---- Shift: upper block j -> column j+1. Capture every
            // outgoing payload first (reads of pre-shift state), then
            // move local blocks descending j (each destination's old
            // value is already consumed), then exchange. ----
            let mut outgoing: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
            for j in (s - 1)..(p - 1) {
                if scheme.owner(j, np) == rank {
                    let dst = scheme.owner(j + 1, np);
                    if dst != rank {
                        let up = local.sub(0, slot_of(j) * m, m, m).to_matrix();
                        outgoing.entry(dst).or_default().extend(up.as_slice());
                    }
                }
            }
            for j in ((s - 1)..(p - 1)).rev() {
                if scheme.owner(j, np) == rank && scheme.owner(j + 1, np) == rank {
                    let up = local.sub(0, slot_of(j) * m, m, m).to_matrix();
                    local
                        .sub_mut(0, slot_of(j + 1) * m, m, m)
                        .copy_from(up.rf());
                }
            }
            for (dst, data) in &outgoing {
                px.send(*dst, s as u64, data);
            }
            let mut incoming: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for j in s..p {
                if scheme.owner(j, np) == rank {
                    let src = scheme.owner(j - 1, np);
                    if src != rank {
                        incoming.entry(src).or_default().push(j);
                    }
                }
            }
            for (src, js) in &incoming {
                let data = px.recv(*src, s as u64);
                assert_eq!(data.len(), js.len() * m * m, "shift framing");
                for (idx, &j) in js.iter().enumerate() {
                    let up =
                        Matrix::from_col_major(m, m, data[idx * m * m..(idx + 1) * m * m].to_vec());
                    local.sub_mut(0, slot_of(j) * m, m, m).copy_from(up.rf());
                }
            }
            px.barrier();

            // ---- Panel: the owner ships its raw 2m×m pivot panel;
            // every rank refactors it (identical arithmetic, so the
            // group agrees on the reflector bit-for-bit without a
            // representation codec on the wire). ----
            let piv_owner = scheme.owner(s, np);
            let tag = (p * p + s) as u64;
            let panel_data: Vec<f64> = if rank == piv_owner {
                let i = slot_of(s);
                let data = local
                    .sub(0, i * m, 2 * m, m)
                    .to_matrix()
                    .as_slice()
                    .to_vec();
                if np > 1 {
                    px.broadcast(piv_owner, tag, &data)
                } else {
                    data
                }
            } else {
                px.broadcast(piv_owner, tag, &[])
            };
            let mut panel = Matrix::from_col_major(2 * m, m, panel_data);
            let block_refl = factor_panel(panel.mt(), &w, rep, s, 1e-13, scale).expect("SPD panel");
            if rank == piv_owner {
                let i = slot_of(s);
                local
                    .sub_mut(0, i * m, m, m)
                    .copy_from(panel.sub(0, 0, m, m));
                local.sub_mut(m, i * m, m, m).fill(0.0);
            }

            // ---- Trailing update: one SIMD level-3 application over
            // the packed suffix of owned blocks j >= s+1. ----
            apply_trailing(&block_refl, &mut local, &owned, s, m, &exec, &mut ws);
            px.barrier();

            // ---- Emit block row s. ----
            for (i, &j) in owned.iter().enumerate() {
                if j >= s {
                    let tile = local.sub(0, i * m, m, m).to_matrix();
                    r_tiles.push((s, j, 0, m, tile.as_slice().to_vec()));
                }
            }
        }

        let wall = px.time();
        let max_wall = px.allreduce_max(wall);
        RankOut {
            r_tiles,
            wall,
            max_wall,
            bytes_sent: px.bytes_sent(),
            bytes_recv: px.bytes_received(),
            wait_ns: px.comm_wait_ns(),
        }
    })
}

/// The per-step trailing update on one rank's packed shard: blocks
/// `j ≥ s+1` are a contiguous column suffix (ascending packing), so
/// the whole distributed update is a single blocked reflector
/// application drawing scratch from the rank's workspace.
fn apply_trailing(
    refl: &BlockReflector,
    local: &mut Matrix,
    owned: &[usize],
    s: usize,
    width: usize,
    exec: &ExecPolicy,
    ws: &mut Workspace,
) {
    let start = owned.partition_point(|&j| j <= s);
    if start < owned.len() {
        let rows = local.rows();
        let ncols = (owned.len() - start) * width;
        refl.apply_ws(local.sub_mut(0, start * width, rows, ncols), exec, ws);
    }
}

/// V3 executor: rank `g·spread + c` of group `g` owns the `mc = m/spread`
/// column slice `c·mc..(c+1)·mc` of every block column `j` with
/// `j mod groups == g`, packed ascending; the pivot panel is factored
/// in `spread` pipelined chunks with one partial-reflector broadcast
/// per chunk (§7.1.3).
fn run_v3(
    gen: &Arc<Matrix>,
    m: usize,
    p: usize,
    spread: usize,
    opts: &ShardOptions,
    scale: f64,
    wall: WallOpts,
) -> Vec<RankOut> {
    let np = opts.np;
    let rep = opts.rep;
    assert!(
        m.is_multiple_of(spread),
        "V3 requires spread ({spread}) to divide the block size ({m})"
    );
    let groups = np / spread;
    let mc = m / spread;
    let w = Signature::hyperbolic(m);
    World::run_wall(np, wall, |px: &mut Proc| {
        let rank = px.rank();
        let group = rank / spread;
        let intra = rank % spread;
        let cstart = intra * mc;
        let owned: Vec<usize> = (0..p).filter(|&j| j % groups == group).collect();
        let slot_of = |j: usize| owned.binary_search(&j).expect("owned block");
        // Packed 2m × owned·mc: slot i holds block owned[i]'s column
        // slice cstart..cstart+mc, upper stacked on lower.
        let mut local = Matrix::zeros(2 * m, owned.len() * mc);
        for (i, &j) in owned.iter().enumerate() {
            local
                .sub_mut(0, i * mc, 2 * m, mc)
                .copy_from(gen.sub(0, j * m + cstart, 2 * m, mc));
        }
        let mut ws = Workspace::new();
        let exec = ExecPolicy::sequential();
        let mut r_tiles: Vec<(usize, usize, usize, usize, Vec<f64>)> = Vec::new();
        for (i, &j) in owned.iter().enumerate() {
            let tile = local.sub(0, i * mc, m, mc).to_matrix();
            r_tiles.push((0, j, cstart, mc, tile.as_slice().to_vec()));
        }

        for s in 1..p {
            // ---- Shift: upper slices move to the next group, same
            // intra-group index, one batched message (ascending j). ----
            if groups == 1 {
                for j in ((s - 1)..(p - 1)).rev() {
                    let up = local.sub(0, slot_of(j) * mc, m, mc).to_matrix();
                    local
                        .sub_mut(0, slot_of(j + 1) * mc, m, mc)
                        .copy_from(up.rf());
                }
            } else {
                let dst_rank = (((group + 1) % groups) * spread) + intra;
                let src_rank = (((group + groups - 1) % groups) * spread) + intra;
                let mut outgoing: Vec<f64> = Vec::new();
                for j in (s - 1)..(p - 1) {
                    if j % groups == group {
                        let up = local.sub(0, slot_of(j) * mc, m, mc).to_matrix();
                        outgoing.extend(up.as_slice());
                    }
                }
                if !outgoing.is_empty() {
                    px.send(dst_rank, s as u64, &outgoing);
                }
                let expect: Vec<usize> = (s..p).filter(|&j| j % groups == group).collect();
                if !expect.is_empty() {
                    let data = px.recv(src_rank, s as u64);
                    assert_eq!(data.len(), expect.len() * m * mc, "v3 shift framing");
                    for (idx, &j) in expect.iter().enumerate() {
                        let up = Matrix::from_col_major(
                            m,
                            mc,
                            data[idx * m * mc..(idx + 1) * m * mc].to_vec(),
                        );
                        local.sub_mut(0, slot_of(j) * mc, m, mc).copy_from(up.rf());
                    }
                }
            }
            px.barrier();

            // ---- Panel: `spread` pipelined chunks over the pivot
            // block column s (owned by group gs). Each chunk owner
            // factors its mc columns reflector-by-reflector and
            // broadcasts the elementary reflectors in a fixed wire
            // format (beta, sigma, pivot, x[2m]); everyone rebuilds
            // the chunk's block representation. ----
            let gs = s % groups;
            let mut chunk_reps: Vec<BlockReflector> = Vec::with_capacity(spread);
            for c in 0..spread {
                let owner = gs * spread + c;
                let tag = ((p + s) * spread + c) as u64;
                let wire_data: Vec<f64> = if rank == owner {
                    // Earlier chunks already hit this rank's pivot
                    // slice as their broadcasts arrived (the
                    // `intra > c` branch below); factor my columns.
                    let slot = slot_of(s);
                    let mut sl = local.sub(0, slot * mc, 2 * m, mc).to_matrix();
                    let mut wire_out = Vec::with_capacity(mc * (2 * m + 3));
                    for local_c in 0..mc {
                        let k = c * mc + local_c; // global pivot row
                        let u_top = sl[(k, local_c)];
                        let u_low: Vec<f64> = (0..m).map(|i| sl[(m + i, local_c)]).collect();
                        let (outcome, refl) = bs_core::reflector::PivotReflector::compute(
                            u_top, &u_low, &w, m, k, 1e-13, scale,
                        );
                        assert!(
                            matches!(outcome, bs_core::reflector::PivotOutcome::Ok),
                            "SPD pivot expected"
                        );
                        let refl = refl.expect("Ok outcome");
                        sl[(k, local_c)] = -refl.sigma;
                        for i in 0..m {
                            sl[(m + i, local_c)] = 0.0;
                        }
                        for j2 in local_c + 1..mc {
                            let col = sl.col_mut(j2);
                            let (top, low) = col.split_at_mut(m);
                            refl.apply_split(&w, m, &mut top[k], low);
                        }
                        let full = refl.to_full(m);
                        wire_out.push(full.beta);
                        wire_out.push(full.sigma);
                        wire_out.push(full.pivot as f64);
                        wire_out.extend(&full.x);
                    }
                    local.sub_mut(0, slot * mc, 2 * m, mc).copy_from(sl.rf());
                    if np > 1 {
                        px.broadcast(owner, tag, &wire_out)
                    } else {
                        wire_out
                    }
                } else {
                    px.broadcast(owner, tag, &[])
                };
                let mut crep = BlockReflector::new(rep, w.clone(), mc);
                let stride = 2 * m + 3;
                assert_eq!(wire_data.len(), mc * stride, "v3 panel framing");
                for lc in 0..mc {
                    let off = lc * stride;
                    let refl = bs_core::reflector::HypReflector {
                        beta: wire_data[off],
                        sigma: wire_data[off + 1],
                        pivot: wire_data[off + 2] as usize,
                        x: wire_data[off + 3..off + 3 + 2 * m].to_vec(),
                    };
                    crep.push(&refl);
                }
                // Later chunks of the pivot group fold the arriving
                // chunk into their pivot slice right away (the
                // pipeline dependency of §7.1.3).
                if group == gs && intra > c && rank != owner {
                    let slot = slot_of(s);
                    crep.apply_ws(local.sub_mut(0, slot * mc, 2 * m, mc), &exec, &mut ws);
                }
                px.barrier();
                chunk_reps.push(crep);
            }

            // ---- Trailing update: each chunk's reflectors over the
            // packed suffix of owned blocks j >= s+1 (chunk order;
            // columns are independent, so chunk-major equals
            // block-major bit-for-bit). ----
            for crep in &chunk_reps {
                apply_trailing(crep, &mut local, &owned, s, mc, &exec, &mut ws);
            }
            px.barrier();

            // ---- Emit block row s slices. ----
            for (i, &j) in owned.iter().enumerate() {
                if j >= s {
                    let tile = local.sub(0, i * mc, m, mc).to_matrix();
                    r_tiles.push((s, j, cstart, mc, tile.as_slice().to_vec()));
                }
            }
        }

        let wall = px.time();
        let max_wall = px.allreduce_max(wall);
        RankOut {
            r_tiles,
            wall,
            max_wall,
            bytes_sent: px.bytes_sent(),
            bytes_recv: px.bytes_received(),
            wait_ns: px.comm_wait_ns(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_toeplitz::workloads;

    fn seq_r(t: &SymBlockToeplitz) -> Matrix {
        bs_core::factor_spd(t, &bs_core::SchurOptions::default())
            .unwrap()
            .r
            .clone()
    }

    #[test]
    fn sharded_matches_sequential_v1_v2() {
        for (m, p, np, scheme) in [
            (2usize, 8usize, 1usize, Scheme::V1),
            (2, 8, 3, Scheme::V1),
            (4, 10, 4, Scheme::V2 { b: 2 }),
            (4, 6, 2, Scheme::V2 { b: 3 }),
        ] {
            let t = workloads::random_spd_block(m, p, 11 + (m * p + np) as u64);
            let seq = seq_r(&t);
            let run = factor_sharded(&t, &ShardOptions::new(scheme, np));
            let diff = run.r.max_abs_diff(&seq);
            assert!(diff < 1e-9, "m={m} p={p} np={np} {scheme:?}: {diff:e}");
        }
    }

    #[test]
    fn sharded_matches_sequential_v3() {
        for (m, p, np, spread) in [(4usize, 8usize, 4usize, 2usize), (4, 8, 2, 2), (8, 6, 8, 4)] {
            let t = workloads::random_spd_block(m, p, (m * p + np) as u64);
            let seq = seq_r(&t);
            let run = factor_sharded(&t, &ShardOptions::new(Scheme::V3 { spread }, np));
            let diff = run.r.max_abs_diff(&seq);
            assert!(diff < 1e-9, "m={m} p={p} np={np} spread={spread}: {diff:e}");
        }
    }

    #[test]
    fn wall_times_and_traffic_are_populated() {
        let t = workloads::random_spd_block(4, 8, 3);
        let run = factor_sharded(&t, &ShardOptions::new(Scheme::V1, 2));
        assert_eq!(run.rank_wall_s.len(), 2);
        assert!(run.wall_s > 0.0, "measured wall time must be positive");
        assert!(
            run.rank_wall_s.iter().all(|&t| t > 0.0 && t <= run.wall_s),
            "per-rank walls bounded by the max: {:?}",
            run.rank_wall_s
        );
        assert!(run.comm_volume() > 0, "ranks must have exchanged data");
        assert_eq!(run.bytes_sent.len(), 2);
        assert_eq!(run.bytes_received.len(), 2);
    }

    #[test]
    fn reps_agree_with_sequential() {
        let t = workloads::random_spd_block(4, 8, 77);
        let seq = seq_r(&t);
        for rep in [RepKind::VY1, RepKind::YTY, RepKind::Accumulated] {
            let mut o = ShardOptions::new(Scheme::V1, 2);
            o.rep = rep;
            let run = factor_sharded(&t, &o);
            let diff = run.r.max_abs_diff(&seq);
            assert!(diff < 1e-9, "rep={rep:?}: {diff:e}");
        }
    }
}
