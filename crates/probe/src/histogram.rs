//! Log-bucketed latency histograms with per-thread sharded slots.
//!
//! HDR-style log-linear buckets: values below [`SUB_COUNT`] land in
//! unit-width linear buckets; above that, every power-of-2 octave is
//! split into [`SUB_COUNT`] equal sub-buckets, bounding the relative
//! quantile error at `1 / (2 · SUB_COUNT)` (≈ 3%) while covering nine
//! decades of nanoseconds in a few hundred fixed slots.
//!
//! The record path mirrors [`crate::metrics`]: each thread owns an
//! atomic bucket array per histogram, a record is one index computation
//! plus one relaxed `fetch_add` on the local slot — no locks, no heap.
//! Recording is gated the same way as tracing: one relaxed atomic load
//! per site when disabled, so instrumented hot paths (per-solve,
//! per-factor-step, per-pool-dispatch, per-kernel-call) stay free until
//! someone asks for latency distributions. Reads merge every thread's
//! slot into a [`Histogram`] snapshot, so quantiles are deterministic
//! functions of the recorded multiset regardless of which thread
//! recorded which value.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sub-bucket resolution: each power-of-2 octave is split into
/// `2^SUB_BITS` linear sub-buckets.
pub const SUB_BITS: u32 = 4;

/// Sub-buckets per octave (16): relative bucket width ≤ 1/16.
pub const SUB_COUNT: usize = 1 << SUB_BITS;

/// Octave groups tracked past the linear region. Group `g ≥ 1` covers
/// `[SUB_COUNT << (g-1), SUB_COUNT << g)`, so the last group tops out
/// at `SUB_COUNT << N_GROUPS` ns ≈ 18 minutes; larger values clamp
/// into the final bucket.
const N_GROUPS: usize = 36;

/// Total buckets per histogram.
pub const N_BUCKETS: usize = (N_GROUPS + 1) * SUB_COUNT;

/// One tracked latency distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// End-to-end `ToeplitzSolver::solve` latency (ns).
    SolveNs,
    /// One block Schur elimination step (SPD or indefinite), ns.
    FactorStepNs,
    /// One worker-pool parallel region, dispatch through barrier, ns.
    PoolDispatchNs,
    /// One packed BLAS-3 kernel invocation (any ISA), ns.
    KernelCallNs,
    /// One bs-serve request, decode through response write (ns).
    ServeRequestNs,
    /// Time a rank spent blocked waiting for a message or barrier in
    /// the distributed transport (ns per wait).
    CommWaitNs,
}

/// Number of histogram categories.
pub const N_HISTS: usize = 6;

impl Hist {
    /// Every histogram, in declaration order.
    pub const ALL: [Hist; N_HISTS] = [
        Hist::SolveNs,
        Hist::FactorStepNs,
        Hist::PoolDispatchNs,
        Hist::KernelCallNs,
        Hist::ServeRequestNs,
        Hist::CommWaitNs,
    ];

    /// Stable snake_case name used in the JSON export.
    pub fn name(self) -> &'static str {
        match self {
            Hist::SolveNs => "solve_ns",
            Hist::FactorStepNs => "factor_step_ns",
            Hist::PoolDispatchNs => "pool_dispatch_ns",
            Hist::KernelCallNs => "kernel_call_ns",
            Hist::ServeRequestNs => "serve_request_ns",
            Hist::CommWaitNs => "comm_wait_ns",
        }
    }

    /// Human label for report output.
    pub fn label(self) -> &'static str {
        match self {
            Hist::SolveNs => "solve latency",
            Hist::FactorStepNs => "factor step latency",
            Hist::PoolDispatchNs => "pool dispatch latency",
            Hist::KernelCallNs => "kernel call latency",
            Hist::ServeRequestNs => "serve request latency",
            Hist::CommWaitNs => "comm wait latency",
        }
    }
}

/// Bucket index for value `v` (log-linear, clamped at the top).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        return v as usize;
    }
    let top = 63 - v.leading_zeros(); // 2^top <= v < 2^(top+1), top >= SUB_BITS
    let group = (top - SUB_BITS + 1) as usize;
    if group > N_GROUPS {
        return N_BUCKETS - 1;
    }
    let sub = ((v >> (top - SUB_BITS)) as usize) & (SUB_COUNT - 1);
    group * SUB_COUNT + sub
}

/// `[low, high)` value range of bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    let group = i / SUB_COUNT;
    let sub = (i % SUB_COUNT) as u64;
    if group == 0 {
        return (sub, sub + 1);
    }
    let shift = (group - 1) as u32;
    let low = (SUB_COUNT as u64 + sub) << shift;
    let width = 1u64 << shift;
    (low, low + width)
}

/// Representative value reported for bucket `i` (the bucket midpoint,
/// so quantiles carry at most half a bucket of relative error).
fn bucket_value(i: usize) -> u64 {
    let (low, high) = bucket_bounds(i);
    low + (high - low) / 2
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Arm histogram recording (sites start paying one index + fetch_add).
pub fn enable() {
    ENABLED.store(true, Ordering::Release);
}

/// Disarm recording; merged data stays until [`reset_all`].
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Cheap check used by every instrumentation site (one relaxed load).
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

struct Slot {
    counts: Vec<AtomicU64>, // N_HISTS * N_BUCKETS, flattened
}

impl Slot {
    fn new() -> Self {
        Slot {
            counts: (0..N_HISTS * N_BUCKETS)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }
}

static SLOTS: Mutex<Vec<Arc<Slot>>> = Mutex::new(Vec::new());

thread_local! {
    static LOCAL: Arc<Slot> = {
        let slot = Arc::new(Slot::new());
        SLOTS
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(slot.clone());
        slot
    };
}

fn slots() -> std::sync::MutexGuard<'static, Vec<Arc<Slot>>> {
    SLOTS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Record one sample (no-op when disabled). Allocation- and lock-free
/// after the thread's first record.
#[inline]
pub fn record(h: Hist, value: u64) {
    if !is_enabled() {
        return;
    }
    let idx = h as usize * N_BUCKETS + bucket_index(value);
    LOCAL.with(|slot| {
        slot.counts[idx].fetch_add(1, Ordering::Relaxed);
    });
}

/// Zero every histogram on every slot and forget slots whose thread
/// has exited.
pub fn reset_all() {
    let mut slots = slots();
    slots.retain(|s| Arc::strong_count(s) > 1);
    for s in slots.iter() {
        for c in s.counts.iter() {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// Merge every thread's buckets for `h` into one snapshot.
pub fn merged(h: Hist) -> Histogram {
    let mut counts = vec![0u64; N_BUCKETS];
    for s in slots().iter() {
        let base = h as usize * N_BUCKETS;
        for (out, c) in counts.iter_mut().zip(&s.counts[base..base + N_BUCKETS]) {
            *out += c.load(Ordering::Relaxed);
        }
    }
    Histogram::from_counts(counts)
}

/// A merged, read-only latency distribution with quantile accessors.
///
/// Quantile values are bucket midpoints, so any reported quantile is
/// within one bucket's relative error (≤ `1/SUB_COUNT`) of the true
/// order statistic.
#[must_use = "a histogram snapshot carries the merged latency distribution"]
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
}

impl Histogram {
    fn from_counts(counts: Vec<u64>) -> Histogram {
        debug_assert_eq!(counts.len(), N_BUCKETS);
        let count = counts.iter().sum();
        Histogram { counts, count }
    }

    /// Build a snapshot directly from sample values (tests, offline
    /// analysis) — identical bucketing to the recording path.
    pub fn from_values(values: &[u64]) -> Histogram {
        let mut counts = vec![0u64; N_BUCKETS];
        for &v in values {
            counts[bucket_index(v)] += 1;
        }
        Histogram::from_counts(counts)
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Value at quantile `q ∈ [0, 1]` (bucket midpoint; 0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_value(i);
            }
        }
        bucket_value(N_BUCKETS - 1)
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Midpoint of the lowest non-empty bucket (0 when empty).
    pub fn min(&self) -> u64 {
        self.counts
            .iter()
            .position(|&c| c > 0)
            .map(bucket_value)
            .unwrap_or(0)
    }

    /// Midpoint of the highest non-empty bucket (0 when empty).
    pub fn max(&self) -> u64 {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(bucket_value)
            .unwrap_or(0)
    }

    /// Mean of the bucketed distribution (midpoint-weighted).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| bucket_value(i) as f64 * c as f64)
            .sum();
        sum / self.count as f64
    }

    /// Non-empty `(bucket_low, bucket_high, count)` triples, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }

    /// One-line human summary: `count N, p50 …, p90 …, p99 …, p999 …`.
    pub fn summary(&self) -> String {
        format!(
            "count {}, p50 {}, p90 {}, p99 {}, p999 {}, max {}",
            self.count,
            fmt_ns(self.p50()),
            fmt_ns(self.p90()),
            fmt_ns(self.p99()),
            fmt_ns(self.p999()),
            fmt_ns(self.max()),
        )
    }
}

/// Render a nanosecond value at human scale.
pub fn fmt_ns(ns: u64) -> String {
    let v = ns as f64;
    if v >= 1e9 {
        format!("{:.3} s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.3} ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.3} µs", v / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Recording state is process-global; serialize the armed tests.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut last = 0usize;
        for shift in 0..64 {
            let v = 1u64 << shift;
            for v in [v, v + v / 3, v + v / 2] {
                let i = bucket_index(v);
                assert!(i < N_BUCKETS, "v={v} i={i}");
                assert!(i >= last, "index not monotone at v={v}");
                last = i;
                let (lo, hi) = bucket_bounds(i);
                if i < N_BUCKETS - 1 {
                    assert!(lo <= v && v < hi, "v={v} not in [{lo},{hi}) (i={i})");
                }
            }
        }
    }

    #[test]
    fn bucket_relative_width_is_bounded() {
        for i in SUB_COUNT..N_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            let rel = (hi - lo) as f64 / lo as f64;
            assert!(rel <= 1.0 / SUB_COUNT as f64 + 1e-12, "bucket {i}: {rel}");
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = lock();
        disable();
        reset_all();
        record(Hist::SolveNs, 123);
        assert!(merged(Hist::SolveNs).is_empty());
    }

    #[test]
    fn quantiles_land_within_one_bucket() {
        // Uniform 1..=100_000 ns: p50 ≈ 50_000, p99 ≈ 99_000.
        let values: Vec<u64> = (1..=100_000).collect();
        let h = Histogram::from_values(&values);
        assert_eq!(h.count(), 100_000);
        let tol = 1.0 / SUB_COUNT as f64;
        for (q, expect) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.quantile(q) as f64;
            assert!(
                (got - expect).abs() / expect <= tol,
                "q={q}: got {got}, expect {expect}"
            );
        }
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn bimodal_quantiles_straddle_the_modes() {
        // 90% fast mode at ~1 µs, 10% slow mode at ~1 ms: p50 must sit
        // in the fast mode's bucket, p999 in the slow mode's, and p90
        // within one bucket of either mode (the order statistic lands
        // exactly on the seam between them).
        let mut values = vec![1_000u64; 9_000];
        values.extend(std::iter::repeat_n(1_000_000u64, 1_000));
        let h = Histogram::from_values(&values);
        let tol = 1.0 / SUB_COUNT as f64;
        let near = |got: u64, mode: f64| (got as f64 - mode).abs() / mode <= tol;
        assert!(near(h.p50(), 1_000.0), "p50 {} not in fast mode", h.p50());
        assert!(
            near(h.p90(), 1_000.0) || near(h.p90(), 1_000_000.0),
            "p90 {} on neither mode",
            h.p90()
        );
        assert!(
            near(h.p999(), 1_000_000.0),
            "p999 {} not in slow mode",
            h.p999()
        );
        assert!(near(h.quantile(0.95), 1_000_000.0));
    }

    #[test]
    fn single_value_distribution_collapses() {
        let h = Histogram::from_values(&[777; 1000]);
        let (lo, hi) = bucket_bounds(bucket_index(777));
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            let v = h.quantile(q);
            assert!(lo <= v && v <= hi, "q={q}: {v} outside [{lo},{hi}]");
        }
        assert_eq!(h.min(), h.max());
    }

    #[test]
    fn cross_thread_merge_is_deterministic() {
        let _g = lock();
        reset_all();
        enable();
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for i in 0..250u64 {
                        record(Hist::KernelCallNs, 1000 * t + i * 17);
                    }
                });
            }
        });
        disable();
        let merged_parallel = merged(Hist::KernelCallNs);
        // Same multiset recorded on one thread must merge identically.
        let mut values = Vec::new();
        for t in 0..4u64 {
            for i in 0..250u64 {
                values.push(1000 * t + i * 17);
            }
        }
        let reference = Histogram::from_values(&values);
        assert_eq!(merged_parallel, reference);
        assert_eq!(merged_parallel.count(), 1000);
        reset_all();
        assert!(merged(Hist::KernelCallNs).is_empty());
    }

    #[test]
    fn huge_values_clamp_into_last_bucket() {
        let h = Histogram::from_values(&[u64::MAX, u64::MAX / 2]);
        assert_eq!(h.count(), 2);
        assert!(h.max() > 0);
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(950), "950 ns");
        assert_eq!(fmt_ns(1_500), "1.500 µs");
        assert_eq!(fmt_ns(2_500_000), "2.500 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
