//! Span/event tracer with per-thread ring buffers.
//!
//! Tracing is off by default. Every record site first performs one
//! relaxed atomic load; when disabled nothing else happens, so
//! instrumented hot loops pay an unmeasurable cost. When enabled,
//! events carry a nanosecond timestamp relative to the first recorded
//! event, the recording thread's probe-assigned id, and a small list of
//! named `f64` fields.
//!
//! Buffers are rings: once a thread's buffer reaches the configured
//! capacity the oldest events are overwritten (and counted in
//! [`dropped_events`]), so a long run keeps the most recent window.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// What a trace [`Event`] marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Span opened.
    Enter,
    /// Span closed.
    Exit,
    /// Point event with no duration.
    Instant,
}

impl EventKind {
    /// Stable lowercase name used in the JSON export.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Enter => "enter",
            EventKind::Exit => "exit",
            EventKind::Instant => "instant",
        }
    }
}

/// One recorded trace event.
#[derive(Clone, Debug)]
pub struct Event {
    pub kind: EventKind,
    /// Span or event name (static so recording never allocates for it).
    pub name: &'static str,
    /// Nanoseconds since the trace epoch (first use after enable).
    pub t_ns: u64,
    /// Probe-assigned id of the recording thread (0 = first thread seen).
    pub thread: u64,
    /// Named numeric payload, e.g. `[("step", 3.0)]`.
    pub fields: Vec<(&'static str, f64)>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(1 << 16);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

#[derive(Default)]
struct ThreadBuf {
    events: Vec<Event>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
}

impl ThreadBuf {
    fn push(&mut self, e: Event, cap: usize) {
        if self.events.len() < cap {
            self.events.push(e);
        } else if cap > 0 {
            self.events[self.head] = e;
            self.head = (self.head + 1) % cap;
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn drain(&mut self) -> Vec<Event> {
        let head = self.head;
        self.head = 0;
        let mut v = std::mem::take(&mut self.events);
        v.rotate_left(head);
        v
    }
}

static REGISTRY: Mutex<Vec<Arc<Mutex<ThreadBuf>>>> = Mutex::new(Vec::new());

thread_local! {
    static LOCAL: (Arc<Mutex<ThreadBuf>>, u64) = {
        let buf = Arc::new(Mutex::new(ThreadBuf::default()));
        lock_poison_ok(&REGISTRY).push(buf.clone());
        (buf, NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed))
    };
}

/// Lock a mutex, recovering the data if a panicking thread poisoned it
/// (trace buffers stay usable after a worker panic).
fn lock_poison_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Turn tracing on. Events recorded before this call were dropped.
pub fn enable() {
    EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::Release);
}

/// Turn tracing off. Already-recorded events stay buffered.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Cheap check used by every instrumentation site.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Cap each thread's ring buffer at `cap` events (default 65536).
pub fn set_capacity(cap: usize) {
    CAPACITY.store(cap.max(1), Ordering::Relaxed);
}

/// Events overwritten because a ring buffer filled up.
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Record one event on the current thread (no-op when disabled).
#[inline]
pub fn record(kind: EventKind, name: &'static str, fields: Vec<(&'static str, f64)>) {
    if !is_enabled() {
        return;
    }
    let t_ns = now_ns();
    LOCAL.with(|(buf, thread)| {
        let cap = CAPACITY.load(Ordering::Relaxed);
        lock_poison_ok(buf).push(
            Event {
                kind,
                name,
                t_ns,
                thread: *thread,
                fields,
            },
            cap,
        );
    });
}

/// Record an [`EventKind::Instant`] event (no-op when disabled).
#[inline]
pub fn instant(name: &'static str, fields: Vec<(&'static str, f64)>) {
    record(EventKind::Instant, name, fields);
}

/// RAII guard emitting an [`EventKind::Exit`] event when dropped.
///
/// Produced by [`span`] / the [`span!`](crate::span) macro. When
/// tracing was disabled at creation the guard is inert, even if
/// tracing is enabled before it drops (spans never half-appear).
#[must_use = "a span guard records its exit when dropped"]
pub struct SpanGuard {
    name: &'static str,
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            record(EventKind::Exit, self.name, Vec::new());
        }
    }
}

/// Open a span: records an [`EventKind::Enter`] event now and an exit
/// when the returned guard drops. Prefer the [`span!`](crate::span)
/// macro, which skips building `fields` while tracing is disabled.
#[inline]
pub fn span(name: &'static str, fields: Vec<(&'static str, f64)>) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { name, armed: false };
    }
    record(EventKind::Enter, name, fields);
    SpanGuard { name, armed: true }
}

/// Drain every thread's buffered events, sorted by timestamp.
pub fn take_events() -> Vec<Event> {
    let mut out = Vec::new();
    let mut registry = lock_poison_ok(&REGISTRY);
    for buf in registry.iter() {
        out.append(&mut lock_poison_ok(buf).drain());
    }
    // Forget buffers whose thread has exited (their events were just taken).
    registry.retain(|buf| Arc::strong_count(buf) > 1);
    drop(registry);
    out.sort_by_key(|e| e.t_ns);
    out
}

/// Discard all buffered events.
pub fn clear() {
    let _ = take_events();
    DROPPED.store(0, Ordering::Relaxed);
}

/// Open a trace span with optional numeric fields.
///
/// ```
/// let _guard = bs_probe::span!("factor_spd");
/// let k = 3usize;
/// let _inner = bs_probe::span!("apply_rep", step = k, cols = 8);
/// ```
///
/// Field values are evaluated and the field vector allocated only when
/// tracing is enabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span($name, ::std::vec::Vec::new())
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        $crate::trace::span(
            $name,
            if $crate::trace::is_enabled() {
                <[_]>::into_vec(::std::boxed::Box::new([
                    $((stringify!($key), ($val) as f64)),+
                ]))
            } else {
                ::std::vec::Vec::new()
            },
        )
    };
}

/// Record an instant event with optional numeric fields; same shape as
/// [`span!`](crate::span) but with no guard.
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        $crate::trace::instant($name, ::std::vec::Vec::new())
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        $crate::trace::instant(
            $name,
            if $crate::trace::is_enabled() {
                <[_]>::into_vec(::std::boxed::Box::new([
                    $((stringify!($key), ($val) as f64)),+
                ]))
            } else {
                ::std::vec::Vec::new()
            },
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing state is process-global; serialize the tests that toggle it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_records_nothing() {
        let _l = lock_poison_ok(&TEST_LOCK);
        disable();
        clear();
        record(EventKind::Instant, "ghost", Vec::new());
        let _g = span("ghost_span", Vec::new());
        drop(_g);
        assert!(take_events().is_empty());
    }

    #[test]
    fn span_macro_brackets_events() {
        let _l = lock_poison_ok(&TEST_LOCK);
        clear();
        enable();
        {
            let _g = crate::span!("outer", step = 2usize);
            crate::event!("inner", flops = 10.0);
        }
        disable();
        let ev = take_events();
        let names: Vec<_> = ev.iter().map(|e| (e.kind, e.name)).collect();
        assert_eq!(
            names,
            vec![
                (EventKind::Enter, "outer"),
                (EventKind::Instant, "inner"),
                (EventKind::Exit, "outer"),
            ]
        );
        assert_eq!(ev[0].fields, vec![("step", 2.0)]);
        assert!(ev[0].t_ns <= ev[1].t_ns && ev[1].t_ns <= ev[2].t_ns);
    }

    #[test]
    fn events_from_spawned_threads_are_collected() {
        let _l = lock_poison_ok(&TEST_LOCK);
        clear();
        enable();
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| crate::event!("worker", one = 1));
            }
        });
        disable();
        let ev = take_events();
        let workers = ev.iter().filter(|e| e.name == "worker").count();
        assert_eq!(workers, 3);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let _l = lock_poison_ok(&TEST_LOCK);
        clear();
        set_capacity(4);
        enable();
        for _ in 0..10 {
            crate::event!("tick");
        }
        disable();
        let ev = take_events();
        set_capacity(1 << 16);
        let ticks = ev.iter().filter(|e| e.name == "tick").count();
        assert_eq!(ticks, 4);
        assert!(dropped_events() >= 6);
        clear();
    }
}
