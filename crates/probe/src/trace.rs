//! Span/event tracer with per-thread ring buffers.
//!
//! Tracing is off by default. Every record site first performs one
//! relaxed atomic load; when disabled nothing else happens, so
//! instrumented hot loops pay an unmeasurable cost. When enabled,
//! events carry a nanosecond timestamp relative to the first recorded
//! event, the recording thread's probe-assigned id, and a small list of
//! named `f64` fields.
//!
//! Buffers are rings: once a thread's buffer reaches the configured
//! capacity the oldest events are overwritten (and counted in
//! [`dropped_events`]), so a long run keeps the most recent window.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// What a trace [`Event`] marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Span opened.
    Enter,
    /// Span closed.
    Exit,
    /// Point event with no duration.
    Instant,
}

impl EventKind {
    /// Stable lowercase name used in the JSON export.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Enter => "enter",
            EventKind::Exit => "exit",
            EventKind::Instant => "instant",
        }
    }
}

/// Maximum named fields one event carries. Events store their fields
/// inline (see [`FieldList`]) so recording never touches the heap;
/// extra fields beyond this are silently dropped.
pub const MAX_FIELDS: usize = 6;

/// Fixed-capacity inline list of named `f64` fields.
///
/// The record path must not allocate (the overhead contract is one
/// relaxed atomic load per disabled site and a ring-buffer store per
/// enabled one), so events carry their payload in a `[_; MAX_FIELDS]`
/// array instead of a `Vec`.
#[derive(Clone, Copy, Debug)]
pub struct FieldList {
    buf: [(&'static str, f64); MAX_FIELDS],
    len: u8,
}

impl FieldList {
    /// The empty field list (what `span!("name")` records).
    pub const fn empty() -> FieldList {
        FieldList {
            buf: [("", 0.0); MAX_FIELDS],
            len: 0,
        }
    }

    /// Build from a slice, keeping the first [`MAX_FIELDS`] entries.
    #[inline]
    pub fn new(fields: &[(&'static str, f64)]) -> FieldList {
        debug_assert!(
            fields.len() <= MAX_FIELDS,
            "event carries {} fields; MAX_FIELDS is {MAX_FIELDS}",
            fields.len()
        );
        let mut out = FieldList::empty();
        for &f in fields.iter().take(MAX_FIELDS) {
            out.buf[out.len as usize] = f;
            out.len += 1;
        }
        out
    }

    /// The recorded `(name, value)` pairs.
    #[inline]
    pub fn as_slice(&self) -> &[(&'static str, f64)] {
        &self.buf[..self.len as usize]
    }

    /// Iterator over the recorded pairs.
    pub fn iter(&self) -> std::slice::Iter<'_, (&'static str, f64)> {
        self.as_slice().iter()
    }

    /// Value of field `key`, if recorded.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.as_slice()
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for FieldList {
    fn default() -> Self {
        FieldList::empty()
    }
}

impl PartialEq for FieldList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[(&'static str, f64)]> for FieldList {
    fn eq(&self, other: &&[(&'static str, f64)]) -> bool {
        self.as_slice() == *other
    }
}

impl<'a> IntoIterator for &'a FieldList {
    type Item = &'a (&'static str, f64);
    type IntoIter = std::slice::Iter<'a, (&'static str, f64)>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// One recorded trace event.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub kind: EventKind,
    /// Span or event name (static so recording never allocates for it).
    pub name: &'static str,
    /// Nanoseconds since the trace epoch (first use after enable).
    pub t_ns: u64,
    /// Probe-assigned id of the recording thread (0 = first thread seen).
    pub thread: u64,
    /// Named numeric payload, e.g. `[("step", 3.0)]`, stored inline.
    pub fields: FieldList,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(1 << 16);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

#[derive(Default)]
struct ThreadBuf {
    events: Vec<Event>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
}

impl ThreadBuf {
    fn push(&mut self, e: Event, cap: usize) {
        if self.events.len() < cap {
            self.events.push(e);
        } else if cap > 0 {
            self.events[self.head] = e;
            self.head = (self.head + 1) % cap;
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn drain(&mut self) -> Vec<Event> {
        let head = self.head;
        self.head = 0;
        let mut v = std::mem::take(&mut self.events);
        v.rotate_left(head);
        v
    }
}

static REGISTRY: Mutex<Vec<Arc<Mutex<ThreadBuf>>>> = Mutex::new(Vec::new());

thread_local! {
    static LOCAL: (Arc<Mutex<ThreadBuf>>, u64) = {
        let buf = Arc::new(Mutex::new(ThreadBuf::default()));
        lock_poison_ok(&REGISTRY).push(buf.clone());
        (buf, NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed))
    };
}

/// Lock a mutex, recovering the data if a panicking thread poisoned it
/// (trace buffers stay usable after a worker panic).
fn lock_poison_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Turn tracing on. Events recorded before this call were dropped.
pub fn enable() {
    EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::Release);
}

/// Turn tracing off. Already-recorded events stay buffered.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Cheap check used by every instrumentation site.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Cap each thread's ring buffer at `cap` events (default 65536).
pub fn set_capacity(cap: usize) {
    CAPACITY.store(cap.max(1), Ordering::Relaxed);
}

/// Events overwritten because a ring buffer filled up.
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Record one event on the current thread (no-op when disabled).
/// Allocation-free: the event (fields included) is stored by value in
/// the thread's ring buffer.
#[inline]
pub fn record(kind: EventKind, name: &'static str, fields: FieldList) {
    if !is_enabled() {
        return;
    }
    let t_ns = now_ns();
    LOCAL.with(|(buf, thread)| {
        let cap = CAPACITY.load(Ordering::Relaxed);
        lock_poison_ok(buf).push(
            Event {
                kind,
                name,
                t_ns,
                thread: *thread,
                fields,
            },
            cap,
        );
    });
}

/// Record an [`EventKind::Instant`] event (no-op when disabled).
#[inline]
pub fn instant(name: &'static str, fields: FieldList) {
    record(EventKind::Instant, name, fields);
}

/// RAII guard emitting an [`EventKind::Exit`] event when dropped.
///
/// Produced by [`span`] / the [`span!`](crate::span) macro. When
/// tracing was disabled at creation the guard is inert, even if
/// tracing is enabled before it drops (spans never half-appear).
#[must_use = "a span guard records its exit when dropped"]
pub struct SpanGuard {
    name: &'static str,
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            record(EventKind::Exit, self.name, FieldList::empty());
        }
    }
}

/// Open a span: records an [`EventKind::Enter`] event now and an exit
/// when the returned guard drops. Prefer the [`span!`](crate::span)
/// macro, which skips evaluating `fields` while tracing is disabled.
#[inline]
pub fn span(name: &'static str, fields: FieldList) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { name, armed: false };
    }
    record(EventKind::Enter, name, fields);
    SpanGuard { name, armed: true }
}

/// Drain every thread's buffered events, sorted by timestamp.
pub fn take_events() -> Vec<Event> {
    let mut out = Vec::new();
    let mut registry = lock_poison_ok(&REGISTRY);
    for buf in registry.iter() {
        out.append(&mut lock_poison_ok(buf).drain());
    }
    // Forget buffers whose thread has exited (their events were just taken).
    registry.retain(|buf| Arc::strong_count(buf) > 1);
    drop(registry);
    out.sort_by_key(|e| e.t_ns);
    out
}

/// Discard all buffered events.
pub fn clear() {
    let _ = take_events();
    DROPPED.store(0, Ordering::Relaxed);
}

/// Open a trace span with optional numeric fields.
///
/// ```
/// let _guard = bs_probe::span!("factor_spd");
/// let k = 3usize;
/// let _inner = bs_probe::span!("apply_rep", step = k, cols = 8);
/// ```
///
/// Field values are evaluated only when tracing is enabled, and the
/// field list is a fixed-size inline array ([`FieldList`]) — an enabled
/// trace site performs no heap allocation.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span($name, $crate::trace::FieldList::empty())
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        $crate::trace::span(
            $name,
            if $crate::trace::is_enabled() {
                $crate::trace::FieldList::new(&[
                    $((stringify!($key), ($val) as f64)),+
                ])
            } else {
                $crate::trace::FieldList::empty()
            },
        )
    };
}

/// Record an instant event with optional numeric fields; same shape as
/// [`span!`](crate::span) but with no guard.
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        $crate::trace::instant($name, $crate::trace::FieldList::empty())
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        $crate::trace::instant(
            $name,
            if $crate::trace::is_enabled() {
                $crate::trace::FieldList::new(&[
                    $((stringify!($key), ($val) as f64)),+
                ])
            } else {
                $crate::trace::FieldList::empty()
            },
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing state is process-global; serialize the tests that toggle it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_records_nothing() {
        let _l = lock_poison_ok(&TEST_LOCK);
        disable();
        clear();
        record(EventKind::Instant, "ghost", FieldList::empty());
        let _g = span("ghost_span", FieldList::empty());
        drop(_g);
        assert!(take_events().is_empty());
    }

    #[test]
    fn span_macro_brackets_events() {
        let _l = lock_poison_ok(&TEST_LOCK);
        clear();
        enable();
        {
            let _g = crate::span!("outer", step = 2usize);
            crate::event!("inner", flops = 10.0);
        }
        disable();
        let ev = take_events();
        let names: Vec<_> = ev.iter().map(|e| (e.kind, e.name)).collect();
        assert_eq!(
            names,
            vec![
                (EventKind::Enter, "outer"),
                (EventKind::Instant, "inner"),
                (EventKind::Exit, "outer"),
            ]
        );
        assert_eq!(ev[0].fields.as_slice(), &[("step", 2.0)]);
        assert_eq!(ev[0].fields.get("step"), Some(2.0));
        assert!(ev[0].t_ns <= ev[1].t_ns && ev[1].t_ns <= ev[2].t_ns);
    }

    #[test]
    fn field_list_truncates_and_compares() {
        let a = FieldList::new(&[("a", 1.0), ("b", 2.0)]);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert_eq!(a.get("b"), Some(2.0));
        assert_eq!(a.get("c"), None);
        assert_eq!(a, FieldList::new(&[("a", 1.0), ("b", 2.0)]));
        assert_ne!(a, FieldList::empty());
        assert_eq!(a.iter().count(), 2);
    }

    #[test]
    fn events_from_spawned_threads_are_collected() {
        let _l = lock_poison_ok(&TEST_LOCK);
        clear();
        enable();
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| crate::event!("worker", one = 1));
            }
        });
        disable();
        let ev = take_events();
        let workers = ev.iter().filter(|e| e.name == "worker").count();
        assert_eq!(workers, 3);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let _l = lock_poison_ok(&TEST_LOCK);
        clear();
        set_capacity(4);
        enable();
        for _ in 0..10 {
            crate::event!("tick");
        }
        disable();
        let ev = take_events();
        set_capacity(1 << 16);
        let ticks = ev.iter().filter(|e| e.name == "tick").count();
        assert_eq!(ticks, 4);
        assert!(dropped_events() >= 6);
        clear();
    }
}
