//! Categorized counters with cross-thread aggregation.
//!
//! Each thread owns a slot of atomic counters; a bump is one relaxed
//! `fetch_add` on the local slot, so worker threads in the parallel
//! kernels never contend. Slots are kept alive by a global registry
//! even after their thread exits, so [`total`] always reflects every
//! contribution since the last [`reset_all`].
//!
//! Counters are always on — this module generalizes the old
//! `bs_matrix::flops` thread-local tally, and the flops shim there
//! still needs per-thread reads ([`local_get`] / [`local_reset`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One category of counted work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Floating-point operations in level-1 (vector) kernels.
    FlopsBlas1,
    /// Floating-point operations in level-2 (matrix-vector) kernels.
    FlopsBlas2,
    /// Floating-point operations in level-3 (matrix-matrix) kernels.
    FlopsBlas3,
    /// Floating-point operations outside the BLAS kernels.
    FlopsOther,
    /// Matrix-vector products performed.
    Matvecs,
    /// Rank-1 updates performed.
    Rank1Updates,
    /// Triangular solves performed (any number of right-hand sides).
    TriangularSolves,
    /// Bytes read+written by the level-3 kernels (traffic estimate).
    BytesMoved,
    /// Bytes crossing simulated process boundaries (bs-distmem).
    CommBytes,
    /// Messages crossing simulated process boundaries.
    CommMessages,
    /// Bytes received from a peer rank (the receive-side mirror of
    /// `CommBytes`; per-rank sends and receives need not balance under
    /// broadcast).
    CommRecvBytes,
    /// Messages received from a peer rank.
    CommRecvMessages,
    /// Words of generator data exchanged per the paper's comm model.
    CommWords,
    /// Block Schur steps completed.
    SchurSteps,
    /// Elementary hyperbolic reflectors generated.
    Reflectors,
    /// Perturbations applied by the indefinite factorization.
    Perturbations,
    /// Row exchanges applied by the indefinite factorization.
    Exchanges,
    /// Iterative-refinement iterations performed.
    RefineIterations,
    /// Cold heap allocations made by a `Workspace` arena (pool misses).
    WorkspaceAllocs,
    /// Elements (f64 words) heap-allocated by `Workspace` pool misses.
    WorkspaceElems,
    /// Runtime invariant-contract violations observed (the `paranoid`
    /// feature's checks in bs-core / bs-matrix).
    ContractViolations,
    /// Parallel regions dispatched to the persistent worker pool.
    PoolDispatches,
    /// Work strips executed by the pool (dispatcher strips included).
    PoolStrips,
    /// Nanoseconds spent executing pool strips, summed over workers.
    PoolStripNanos,
    /// Packed-GEMM kernel invocations dispatched (any ISA).
    KernelDispatches,
    /// Flops executed by the portable scalar microkernel.
    KernelFlopsPortable,
    /// Flops executed by the AVX2+FMA microkernel.
    KernelFlopsAvx2,
    /// Flops executed by the AVX-512F microkernel.
    KernelFlopsAvx512,
    /// Flops executed by the NEON microkernel.
    KernelFlopsNeon,
    /// Nanoseconds spent in packed GEMM on the portable microkernel.
    KernelNanosPortable,
    /// Nanoseconds spent in packed GEMM on the AVX2+FMA microkernel.
    KernelNanosAvx2,
    /// Nanoseconds spent in packed GEMM on the AVX-512F microkernel.
    KernelNanosAvx512,
    /// Nanoseconds spent in packed GEMM on the NEON microkernel.
    KernelNanosNeon,
    /// Flops executed by the f32 microkernels (any ISA; the per-ISA
    /// kernel counters above attribute the f64 path).
    KernelFlopsF32,
    /// Nanoseconds spent in packed GEMM on the f32 microkernels.
    KernelNanosF32,
    /// Mixed-precision solves that abandoned the f32 factor because
    /// refinement stalled and refactored in full f64.
    MixedStallFallbacks,
    /// Memory/concurrency audit findings: interleaving-harness
    /// divergences, unbalanced worker workspaces, and sanitizer-tier
    /// failures surfaced at runtime (the static `bs-lint` passes fail
    /// the gate directly and never reach this counter).
    AuditViolations,
}

/// Number of counter categories.
pub const N_COUNTERS: usize = 37;

impl Counter {
    /// Every counter, in declaration order.
    pub const ALL: [Counter; N_COUNTERS] = [
        Counter::FlopsBlas1,
        Counter::FlopsBlas2,
        Counter::FlopsBlas3,
        Counter::FlopsOther,
        Counter::Matvecs,
        Counter::Rank1Updates,
        Counter::TriangularSolves,
        Counter::BytesMoved,
        Counter::CommBytes,
        Counter::CommMessages,
        Counter::CommRecvBytes,
        Counter::CommRecvMessages,
        Counter::CommWords,
        Counter::SchurSteps,
        Counter::Reflectors,
        Counter::Perturbations,
        Counter::Exchanges,
        Counter::RefineIterations,
        Counter::WorkspaceAllocs,
        Counter::WorkspaceElems,
        Counter::ContractViolations,
        Counter::PoolDispatches,
        Counter::PoolStrips,
        Counter::PoolStripNanos,
        Counter::KernelDispatches,
        Counter::KernelFlopsPortable,
        Counter::KernelFlopsAvx2,
        Counter::KernelFlopsAvx512,
        Counter::KernelFlopsNeon,
        Counter::KernelNanosPortable,
        Counter::KernelNanosAvx2,
        Counter::KernelNanosAvx512,
        Counter::KernelNanosNeon,
        Counter::KernelFlopsF32,
        Counter::KernelNanosF32,
        Counter::MixedStallFallbacks,
        Counter::AuditViolations,
    ];

    /// Stable snake_case name used in the JSON export.
    pub fn name(self) -> &'static str {
        match self {
            Counter::FlopsBlas1 => "flops_blas1",
            Counter::FlopsBlas2 => "flops_blas2",
            Counter::FlopsBlas3 => "flops_blas3",
            Counter::FlopsOther => "flops_other",
            Counter::Matvecs => "matvecs",
            Counter::Rank1Updates => "rank1_updates",
            Counter::TriangularSolves => "triangular_solves",
            Counter::BytesMoved => "bytes_moved",
            Counter::CommBytes => "comm_bytes",
            Counter::CommMessages => "comm_messages",
            Counter::CommRecvBytes => "comm_recv_bytes",
            Counter::CommRecvMessages => "comm_recv_messages",
            Counter::CommWords => "comm_words",
            Counter::SchurSteps => "schur_steps",
            Counter::Reflectors => "reflectors",
            Counter::Perturbations => "perturbations",
            Counter::Exchanges => "exchanges",
            Counter::RefineIterations => "refine_iterations",
            Counter::WorkspaceAllocs => "workspace_allocs",
            Counter::WorkspaceElems => "workspace_elems",
            Counter::ContractViolations => "contract_violations",
            Counter::PoolDispatches => "pool_dispatches",
            Counter::PoolStrips => "pool_strips",
            Counter::PoolStripNanos => "pool_strip_nanos",
            Counter::KernelDispatches => "kernel_dispatches",
            Counter::KernelFlopsPortable => "kernel_flops_portable",
            Counter::KernelFlopsAvx2 => "kernel_flops_avx2",
            Counter::KernelFlopsAvx512 => "kernel_flops_avx512",
            Counter::KernelFlopsNeon => "kernel_flops_neon",
            Counter::KernelNanosPortable => "kernel_nanos_portable",
            Counter::KernelNanosAvx2 => "kernel_nanos_avx2",
            Counter::KernelNanosAvx512 => "kernel_nanos_avx512",
            Counter::KernelNanosNeon => "kernel_nanos_neon",
            Counter::KernelFlopsF32 => "kernel_flops_f32",
            Counter::KernelNanosF32 => "kernel_nanos_f32",
            Counter::MixedStallFallbacks => "mixed_stall_fallbacks",
            Counter::AuditViolations => "audit_violations",
        }
    }
}

struct Slot {
    vals: [AtomicU64; N_COUNTERS],
}

impl Slot {
    fn new() -> Self {
        Slot {
            vals: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

static SLOTS: Mutex<Vec<Arc<Slot>>> = Mutex::new(Vec::new());

thread_local! {
    static LOCAL: Arc<Slot> = {
        let slot = Arc::new(Slot::new());
        SLOTS
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(slot.clone());
        slot
    };
}

fn slots() -> std::sync::MutexGuard<'static, Vec<Arc<Slot>>> {
    SLOTS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Add `n` to counter `c` on the current thread's slot.
#[inline]
pub fn add(c: Counter, n: u64) {
    if n == 0 {
        return;
    }
    LOCAL.with(|slot| {
        slot.vals[c as usize].fetch_add(n, Ordering::Relaxed);
    });
}

/// Increment counter `c` by one.
#[inline]
pub fn incr(c: Counter) {
    add(c, 1);
}

/// Current thread's contribution to counter `c` since its last
/// [`local_reset`] of that counter.
pub fn local_get(c: Counter) -> u64 {
    LOCAL.with(|slot| slot.vals[c as usize].load(Ordering::Relaxed))
}

/// Zero the given counters on the current thread's slot only.
pub fn local_reset(counters: &[Counter]) {
    LOCAL.with(|slot| {
        for &c in counters {
            slot.vals[c as usize].store(0, Ordering::Relaxed);
        }
    });
}

/// Sum of counter `c` across every thread that ever recorded
/// (including threads that have since exited).
pub fn total(c: Counter) -> u64 {
    slots()
        .iter()
        .map(|s| s.vals[c as usize].load(Ordering::Relaxed))
        .sum()
}

/// Snapshot of all counter totals, indexed like [`Counter::ALL`].
pub fn snapshot_total() -> [u64; N_COUNTERS] {
    let mut out = [0u64; N_COUNTERS];
    for s in slots().iter() {
        for (o, v) in out.iter_mut().zip(s.vals.iter()) {
            *o += v.load(Ordering::Relaxed);
        }
    }
    out
}

/// Total floating-point operations across all categories and threads.
pub fn flops_total() -> u64 {
    let snap = snapshot_total();
    snap[Counter::FlopsBlas1 as usize]
        + snap[Counter::FlopsBlas2 as usize]
        + snap[Counter::FlopsBlas3 as usize]
        + snap[Counter::FlopsOther as usize]
}

/// Zero every counter on every slot and forget slots whose thread has
/// exited.
pub fn reset_all() {
    let mut slots = slots();
    slots.retain(|s| Arc::strong_count(s) > 1);
    for s in slots.iter() {
        for v in s.vals.iter() {
            v.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_counts_are_per_thread_but_total_aggregates() {
        local_reset(&[Counter::CommWords]);
        add(Counter::CommWords, 5);
        let before_total = total(Counter::CommWords);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    add(Counter::CommWords, 100);
                    // A worker's local view sees only its own bumps.
                    assert_eq!(local_get(Counter::CommWords), 100);
                });
            }
        });
        assert_eq!(local_get(Counter::CommWords), 5);
        assert_eq!(total(Counter::CommWords), before_total + 400);
    }

    #[test]
    fn totals_survive_thread_exit() {
        let before = total(Counter::CommMessages);
        std::thread::spawn(|| add(Counter::CommMessages, 7))
            .join()
            .unwrap();
        assert_eq!(total(Counter::CommMessages), before + 7);
    }

    #[test]
    fn snapshot_matches_individual_totals() {
        add(Counter::Matvecs, 3);
        let snap = snapshot_total();
        for c in Counter::ALL {
            assert_eq!(snap[c as usize], total(c), "{}", c.name());
        }
    }
}
