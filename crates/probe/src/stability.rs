//! Numerical-stability monitor for the Schur factorizations.
//!
//! Bojanczyk/Brent/de Hoog show the stability of Bareiss/Schur-type
//! Toeplitz factorizations is governed by per-step generator growth:
//! each hyperbolic reflector can amplify the generator by a factor of
//! roughly `1 + |β|·‖x‖²` (its norm estimate), and the product of these
//! factors bounds the backward error. The monitor records that quantity
//! per eliminated column together with the generator column norm and the
//! pivot's hyperbolic norm, and flags steps whose growth exceeds a
//! configurable threshold — near-singular leading minors announce
//! themselves here long before the residual blows up.
//!
//! Like tracing, the monitor is off by default and costs one relaxed
//! atomic load per site when disabled.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Stability record for one eliminated generator column.
#[derive(Clone, Debug)]
pub struct StepRecord {
    /// Block Schur step (block row of `R`) this column belongs to.
    pub step: usize,
    /// Column within the step's panel.
    pub column: usize,
    /// Euclidean norm of the generator column before elimination.
    pub gen_col_norm: f64,
    /// Hyperbolic norm `x₁² − ‖x₂‖²` of the pivot (signed).
    pub hnorm: f64,
    /// Reflector norm estimate `1 + |β|·‖x‖²` — the step's growth factor.
    pub gamma: f64,
    /// Growth relative to the problem scale:
    /// `max(gamma, gen_col_norm / scale)`.
    pub growth: f64,
    /// True when `growth` exceeded the configured threshold.
    pub flagged: bool,
}

/// One runtime invariant-contract violation (recorded by the
/// `paranoid`-feature checks in bs-core / bs-matrix).
#[derive(Clone, Debug)]
pub struct ContractViolation {
    /// Stable contract name, e.g. `hyperbolic_existence`.
    pub contract: &'static str,
    /// What was observed, with the offending values.
    pub detail: String,
}

/// Everything the monitor captured since it was enabled (or last
/// [`take_report`]).
#[derive(Clone, Debug, Default)]
pub struct StabilityReport {
    /// Per-column records in elimination order.
    pub steps: Vec<StepRecord>,
    /// Residual norms recorded by iterative refinement, in order
    /// (first entry is the pre-refinement residual).
    pub residual_norms: Vec<f64>,
    /// Contract violations, in the order they were observed. Unlike
    /// `steps`, these are recorded even while the monitor is disabled —
    /// a broken invariant is a correctness event, not a sample.
    pub violations: Vec<ContractViolation>,
    /// Largest growth factor seen.
    pub peak_growth: f64,
    /// Threshold used for flagging (0 = flagging disabled).
    pub threshold: f64,
}

impl StabilityReport {
    /// Indices into `steps` of the flagged records.
    pub fn flagged(&self) -> Vec<usize> {
        self.steps
            .iter()
            .enumerate()
            .filter(|(_, s)| s.flagged)
            .map(|(i, _)| i)
            .collect()
    }

    /// Human-readable warnings for flagged steps.
    pub fn warnings(&self) -> Vec<String> {
        self.steps
            .iter()
            .filter(|s| s.flagged)
            .map(|s| {
                format!(
                    "step {} column {}: growth factor {:.3e} exceeds threshold {:.3e} \
                     (hyperbolic norm {:.3e}) — leading minor may be near-singular",
                    s.step, s.column, s.growth, self.threshold, s.hnorm
                )
            })
            .collect()
    }
}

struct State {
    threshold: f64,
    scale: f64,
    report: StabilityReport,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<State> = Mutex::new(State {
    threshold: 0.0,
    scale: 1.0,
    report: StabilityReport {
        steps: Vec::new(),
        residual_norms: Vec::new(),
        violations: Vec::new(),
        peak_growth: 0.0,
        threshold: 0.0,
    },
});

fn state() -> MutexGuard<'static, State> {
    STATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Enable the monitor, clearing previous records. Steps whose growth
/// exceeds `threshold` are flagged (pass 0.0 to record without
/// flagging).
pub fn enable(threshold: f64) {
    let mut s = state();
    s.threshold = threshold;
    s.scale = 1.0;
    s.report = StabilityReport {
        threshold,
        ..Default::default()
    };
    ENABLED.store(true, Ordering::Release);
}

/// Stop recording; captured records stay available.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Cheap check used by instrumentation sites.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clear records without changing the enabled state.
pub fn reset() {
    let mut s = state();
    let threshold = s.threshold;
    s.report = StabilityReport {
        threshold,
        ..Default::default()
    };
}

/// Set the problem scale (e.g. `‖T‖∞`) that generator column norms are
/// measured against. No-op when disabled.
pub fn set_scale(scale: f64) {
    if !is_enabled() {
        return;
    }
    state().scale = if scale > 0.0 { scale } else { 1.0 };
}

/// Record the elimination of one generator column. No-op when disabled.
pub fn record_step(step: usize, column: usize, gen_col_norm: f64, hnorm: f64, gamma: f64) {
    if !is_enabled() {
        return;
    }
    let mut s = state();
    let growth = gamma.max(gen_col_norm / s.scale);
    let flagged = s.threshold > 0.0 && growth > s.threshold;
    if growth > s.report.peak_growth {
        s.report.peak_growth = growth;
    }
    s.report.steps.push(StepRecord {
        step,
        column,
        gen_col_norm,
        hnorm,
        gamma,
        growth,
        flagged,
    });
}

/// Append a residual norm from iterative refinement. No-op when
/// disabled.
pub fn record_residual(norm: f64) {
    if !is_enabled() {
        return;
    }
    state().report.residual_norms.push(norm);
}

/// Record an invariant-contract violation. Unlike the sampling
/// recorders above this is **not** gated on [`is_enabled`]: a violated
/// invariant is a correctness event that must not be droppable by
/// monitor configuration. Also bumps
/// [`Counter::ContractViolations`](crate::metrics::Counter) so fleet
/// dashboards see it without pulling a report.
pub fn record_violation(contract: &'static str, detail: String) {
    crate::metrics::incr(crate::metrics::Counter::ContractViolations);
    crate::event!("contract_violation");
    state()
        .report
        .violations
        .push(ContractViolation { contract, detail });
}

/// Record a memory/concurrency **audit** finding — an interleaving
/// divergence, an unbalanced worker workspace, or a sanitizer-tier
/// failure surfaced at runtime. Like [`record_violation`] this is not
/// gated on [`is_enabled`]: audit findings are correctness events.
/// Bumps [`Counter::AuditViolations`](crate::metrics::Counter) and
/// lands in the violation buffer under the `audit:` prefix so existing
/// report plumbing (JSONL export, `--metrics`) carries it unchanged.
pub fn record_audit_violation(check: &'static str, detail: String) {
    crate::metrics::incr(crate::metrics::Counter::AuditViolations);
    crate::event!("audit_violation");
    state().report.violations.push(ContractViolation {
        contract: check,
        detail,
    });
}

/// Number of contract violations recorded since the last report drain.
pub fn violation_count() -> usize {
    state().report.violations.len()
}

/// Largest growth factor recorded (0.0 when nothing was recorded).
pub fn peak_growth() -> f64 {
    state().report.peak_growth
}

/// Clone the report without clearing it.
pub fn report() -> StabilityReport {
    state().report.clone()
}

/// Take the report, leaving an empty one behind.
pub fn take_report() -> StabilityReport {
    let mut s = state();
    let threshold = s.threshold;
    std::mem::replace(
        &mut s.report,
        StabilityReport {
            threshold,
            ..Default::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn records_and_flags_growth() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        enable(10.0);
        set_scale(2.0);
        record_step(0, 0, 1.0, 0.5, 1.5);
        record_step(1, 0, 50.0, 1e-8, 40.0);
        record_residual(1e-3);
        record_residual(1e-7);
        disable();
        let r = take_report();
        assert_eq!(r.steps.len(), 2);
        assert!(!r.steps[0].flagged);
        assert!(r.steps[1].flagged);
        assert_eq!(r.flagged(), vec![1]);
        assert_eq!(r.steps[1].growth, 40.0);
        assert_eq!(r.peak_growth, 40.0);
        assert_eq!(r.residual_norms, vec![1e-3, 1e-7]);
        assert_eq!(r.warnings().len(), 1);
    }

    #[test]
    fn violations_recorded_even_while_disabled() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        enable(0.0);
        disable();
        let before = crate::metrics::total(crate::metrics::Counter::ContractViolations);
        record_violation("test_contract", "h*w = -1 at step 3".to_string());
        assert_eq!(violation_count(), 1);
        let r = take_report();
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].contract, "test_contract");
        assert!(r.violations[0].detail.contains("step 3"));
        assert_eq!(
            crate::metrics::total(crate::metrics::Counter::ContractViolations),
            before + 1
        );
        assert_eq!(violation_count(), 0, "take_report drains violations");
    }

    #[test]
    fn disabled_monitor_records_nothing() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        enable(0.0);
        disable();
        record_step(0, 0, 1.0, 1.0, 1.0);
        record_residual(1.0);
        assert!(take_report().steps.is_empty());
    }

    #[test]
    fn growth_uses_scale_relative_column_norm() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        enable(0.0);
        set_scale(4.0);
        record_step(0, 0, 20.0, 1.0, 1.0);
        disable();
        let r = take_report();
        assert_eq!(r.steps[0].growth, 5.0);
        assert!(!r.steps[0].flagged, "threshold 0 disables flagging");
    }
}
