//! `bs-probe` — observability for the block Schur factorization stack.
//!
//! Zero-dependency building blocks shared by every layer of the
//! workspace, from the BLAS kernels up to the CLI:
//!
//! * [`trace`] — a lightweight span/event tracer. Each thread records
//!   into its own ring buffer; when tracing is disabled the cost is a
//!   single relaxed atomic load per site. Use the [`span!`] macro:
//!   `let _s = bs_probe::span!("apply_rep", step = k);`
//! * [`metrics`] — categorized counters (flops by BLAS level, matvec
//!   and rank-1 counts, bytes moved, simulated communication volume)
//!   kept in per-thread atomic slots so the parallel paths aggregate
//!   across worker threads without contention. Always on; a counter
//!   bump is one relaxed `fetch_add` on a thread-local slot.
//! * [`stability`] — a numerical-stability monitor recording per-step
//!   generator column norms, hyperbolic reflector norm estimates
//!   (the growth factors of Bojanczyk/Brent/de Hoog), and residual
//!   history from iterative refinement, flagging steps whose growth
//!   exceeds a configurable threshold.
//! * [`histogram`] — HDR-style log-bucketed latency histograms
//!   (per-solve, per-factor-step, per-pool-dispatch, per-kernel-call)
//!   with per-thread sharded slots merged on read and
//!   p50/p90/p99/p999 quantile accessors.
//! * [`profile`] — span aggregation: folds drained trace events into a
//!   hierarchical call-tree [`Profile`] (folded-stack / flamegraph and
//!   top-N exports) and joins kernel counters with a calibrated rate
//!   into a [`Roofline`] efficiency report.
//! * [`json`] / [`export`] — a minimal JSON value type plus writers
//!   that serialize traces as JSON-lines, Chrome/Perfetto trace-event
//!   JSON, and metrics/stability/histogram reports as JSON documents.
//!
//! The overhead contract, everywhere: a *disabled* instrumentation
//! site costs one relaxed atomic load; an *enabled* one never touches
//! the global allocator (inline [`trace::FieldList`] payloads,
//! fixed-size histogram buckets, per-thread counter slots).
//!
//! The crate deliberately has no dependencies (not even on the rest of
//! the workspace) so any crate can instrument itself without cycles.

pub mod export;
pub mod histogram;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod stability;
pub mod trace;

pub use histogram::{Hist, Histogram};
pub use json::Json;
pub use metrics::Counter;
pub use profile::{Profile, Roofline};
pub use stability::{StabilityReport, StepRecord};
pub use trace::{Event, EventKind, FieldList, SpanGuard};

/// Enable tracing, latency histograms, and stability monitoring
/// together.
///
/// `growth_threshold` is forwarded to [`stability::enable`]; steps whose
/// growth factor exceeds it are flagged in the report.
pub fn enable_all(growth_threshold: f64) {
    trace::enable();
    histogram::enable();
    stability::enable(growth_threshold);
}

/// Disable tracing, histograms, and stability monitoring (metrics
/// counters are always on) without clearing recorded data.
pub fn disable_all() {
    trace::disable();
    histogram::disable();
    stability::disable();
}

/// Clear every recorded event, histogram bucket, counter, and
/// stability record.
pub fn reset_all() {
    trace::clear();
    histogram::reset_all();
    metrics::reset_all();
    stability::reset();
}
