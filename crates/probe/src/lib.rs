//! `bs-probe` — observability for the block Schur factorization stack.
//!
//! Zero-dependency building blocks shared by every layer of the
//! workspace, from the BLAS kernels up to the CLI:
//!
//! * [`trace`] — a lightweight span/event tracer. Each thread records
//!   into its own ring buffer; when tracing is disabled the cost is a
//!   single relaxed atomic load per site. Use the [`span!`] macro:
//!   `let _s = bs_probe::span!("apply_rep", step = k);`
//! * [`metrics`] — categorized counters (flops by BLAS level, matvec
//!   and rank-1 counts, bytes moved, simulated communication volume)
//!   kept in per-thread atomic slots so the parallel paths aggregate
//!   across worker threads without contention. Always on; a counter
//!   bump is one relaxed `fetch_add` on a thread-local slot.
//! * [`stability`] — a numerical-stability monitor recording per-step
//!   generator column norms, hyperbolic reflector norm estimates
//!   (the growth factors of Bojanczyk/Brent/de Hoog), and residual
//!   history from iterative refinement, flagging steps whose growth
//!   exceeds a configurable threshold.
//! * [`json`] / [`export`] — a minimal JSON value type plus writers
//!   that serialize traces as JSON-lines and metrics/stability
//!   reports as single JSON documents.
//!
//! The crate deliberately has no dependencies (not even on the rest of
//! the workspace) so any crate can instrument itself without cycles.

pub mod export;
pub mod json;
pub mod metrics;
pub mod stability;
pub mod trace;

pub use json::Json;
pub use metrics::Counter;
pub use stability::{StabilityReport, StepRecord};
pub use trace::{Event, EventKind, SpanGuard};

/// Enable tracing and stability monitoring together.
///
/// `growth_threshold` is forwarded to [`stability::enable`]; steps whose
/// growth factor exceeds it are flagged in the report.
pub fn enable_all(growth_threshold: f64) {
    trace::enable();
    stability::enable(growth_threshold);
}

/// Disable tracing and stability monitoring (metrics counters are
/// always on) without clearing recorded data.
pub fn disable_all() {
    trace::disable();
    stability::disable();
}

/// Clear every recorded event, counter, and stability record.
pub fn reset_all() {
    trace::clear();
    metrics::reset_all();
    stability::reset();
}
