//! JSON-lines export of traces, metrics, and stability reports.
//!
//! The trace file format is one JSON object per line, discriminated by
//! a `"type"` member:
//!
//! * `{"type":"span","kind":"enter|exit|instant","name":...,"t_ns":...,
//!   "thread":...,"fields":{...}}` — one line per trace event;
//! * `{"type":"step","step":...,"column":...,"gen_col_norm":...,
//!   "hnorm":...,"gamma":...,"growth":...,"flagged":...}` — one line
//!   per stability record (per-step growth factors);
//! * `{"type":"residual","iter":...,"norm":...}` — refinement history;
//! * `{"type":"metrics",...}` — final counter totals, one line.

use crate::histogram::{self, Hist};
use crate::json::Json;
use crate::metrics::{self, Counter};
use crate::stability::{StabilityReport, StepRecord};
use crate::trace::Event;
use std::io::{self, Write};
use std::path::Path;

/// Serialize one trace event as a JSON object.
pub fn event_json(e: &Event) -> Json {
    Json::obj(vec![
        ("type", Json::Str("span".into())),
        ("kind", Json::Str(e.kind.name().into())),
        ("name", Json::Str(e.name.into())),
        ("t_ns", Json::Num(e.t_ns as f64)),
        ("thread", Json::Num(e.thread as f64)),
        (
            "fields",
            Json::Obj(
                e.fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), Json::Num(*v)))
                    .collect(),
            ),
        ),
    ])
}

/// Serialize one stability step record as a JSON object.
pub fn step_json(s: &StepRecord) -> Json {
    Json::obj(vec![
        ("type", Json::Str("step".into())),
        ("step", Json::Num(s.step as f64)),
        ("column", Json::Num(s.column as f64)),
        ("gen_col_norm", Json::Num(s.gen_col_norm)),
        ("hnorm", Json::Num(s.hnorm)),
        ("gamma", Json::Num(s.gamma)),
        ("growth", Json::Num(s.growth)),
        ("flagged", Json::Bool(s.flagged)),
    ])
}

/// Serialize current counter totals as a JSON object (no `"type"` tag;
/// the trace file carries the same totals as a `"metrics"`-typed line).
pub fn metrics_json() -> Json {
    let snap = metrics::snapshot_total();
    let mut fields: Vec<(String, Json)> = Counter::ALL
        .iter()
        .map(|&c| (c.name().to_string(), Json::Num(snap[c as usize] as f64)))
        .collect();
    fields.push((
        "flops_total".to_string(),
        Json::Num(metrics::flops_total() as f64),
    ));
    fields.push((
        "dropped_events".to_string(),
        Json::Num(crate::trace::dropped_events() as f64),
    ));
    Json::Obj(fields)
}

/// Serialize one merged latency histogram (count + quantiles + the
/// non-empty bucket list) as a JSON object.
pub fn histogram_json(h: Hist) -> Json {
    let snap = histogram::merged(h);
    Json::obj(vec![
        ("name", Json::Str(h.name().into())),
        ("count", Json::Num(snap.count() as f64)),
        ("p50_ns", Json::Num(snap.p50() as f64)),
        ("p90_ns", Json::Num(snap.p90() as f64)),
        ("p99_ns", Json::Num(snap.p99() as f64)),
        ("p999_ns", Json::Num(snap.p999() as f64)),
        ("min_ns", Json::Num(snap.min() as f64)),
        ("max_ns", Json::Num(snap.max() as f64)),
        ("mean_ns", Json::Num(snap.mean())),
        (
            "buckets",
            Json::Arr(
                snap.nonzero_buckets()
                    .into_iter()
                    .map(|(lo, hi, c)| {
                        Json::obj(vec![
                            ("low_ns", Json::Num(lo as f64)),
                            ("high_ns", Json::Num(hi as f64)),
                            ("count", Json::Num(c as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Serialize every latency histogram as one JSON object keyed by
/// histogram name (empty histograms included, with `count` 0).
pub fn histograms_json() -> Json {
    Json::Obj(
        Hist::ALL
            .iter()
            .map(|&h| (h.name().to_string(), histogram_json(h)))
            .collect(),
    )
}

/// Render trace events as Chrome/Perfetto trace-event JSON
/// (`chrome://tracing` "JSON Array Format": a top-level object with a
/// `traceEvents` array of `B`/`E`/`i` phase records, timestamps in
/// microseconds).
pub fn perfetto_json(events: &[Event]) -> Json {
    let trace_events: Vec<Json> = events
        .iter()
        .map(|e| {
            let ph = match e.kind {
                crate::trace::EventKind::Enter => "B",
                crate::trace::EventKind::Exit => "E",
                crate::trace::EventKind::Instant => "i",
            };
            let mut obj = vec![
                ("name", Json::Str(e.name.into())),
                ("ph", Json::Str(ph.into())),
                ("ts", Json::Num(e.t_ns as f64 / 1e3)),
                ("pid", Json::Num(1.0)),
                ("tid", Json::Num(e.thread as f64)),
            ];
            if matches!(e.kind, crate::trace::EventKind::Instant) {
                // Thread-scoped instant marker.
                obj.push(("s", Json::Str("t".into())));
            }
            if !e.fields.is_empty() {
                obj.push((
                    "args",
                    Json::Obj(
                        e.fields
                            .iter()
                            .map(|(k, v)| (k.to_string(), Json::Num(*v)))
                            .collect(),
                    ),
                ));
            }
            Json::obj(obj)
        })
        .collect();
    Json::obj(vec![
        ("traceEvents", Json::Arr(trace_events)),
        ("displayTimeUnit", Json::Str("ns".into())),
    ])
}

/// Write events as a Perfetto-loadable trace-event JSON file.
pub fn write_perfetto(path: &Path, events: &[Event]) -> io::Result<()> {
    let mut text = String::new();
    perfetto_json(events).write(&mut text);
    text.push('\n');
    std::fs::write(path, text)
}

fn metrics_line() -> Json {
    match metrics_json() {
        Json::Obj(mut fields) => {
            fields.insert(0, ("type".to_string(), Json::Str("metrics".into())));
            Json::Obj(fields)
        }
        other => other,
    }
}

/// Serialize a stability report as one JSON document (used by
/// `--metrics` output rather than the JSONL trace).
pub fn stability_json(report: &StabilityReport) -> Json {
    Json::obj(vec![
        ("threshold", Json::Num(report.threshold)),
        ("peak_growth", Json::Num(report.peak_growth)),
        (
            "steps",
            Json::Arr(report.steps.iter().map(step_json).collect()),
        ),
        (
            "residual_norms",
            Json::Arr(
                report
                    .residual_norms
                    .iter()
                    .map(|&r| Json::Num(r))
                    .collect(),
            ),
        ),
        (
            "warnings",
            Json::Arr(report.warnings().into_iter().map(Json::Str).collect()),
        ),
        (
            "violations",
            Json::Arr(report.violations.iter().map(violation_json).collect()),
        ),
    ])
}

fn violation_json(v: &crate::stability::ContractViolation) -> Json {
    Json::obj(vec![
        ("type", Json::Str("contract_violation".into())),
        ("contract", Json::Str(v.contract.to_string())),
        ("detail", Json::Str(v.detail.clone())),
    ])
}

/// Render trace events, a stability report, and the counter totals as
/// JSON-lines text.
pub fn trace_jsonl(events: &[Event], report: &StabilityReport) -> String {
    let mut out = String::new();
    for e in events {
        event_json(e).write(&mut out);
        out.push('\n');
    }
    for s in &report.steps {
        step_json(s).write(&mut out);
        out.push('\n');
    }
    for v in &report.violations {
        violation_json(v).write(&mut out);
        out.push('\n');
    }
    for (i, r) in report.residual_norms.iter().enumerate() {
        Json::obj(vec![
            ("type", Json::Str("residual".into())),
            ("iter", Json::Num(i as f64)),
            ("norm", Json::Num(*r)),
        ])
        .write(&mut out);
        out.push('\n');
    }
    for &h in Hist::ALL.iter() {
        if histogram::merged(h).is_empty() {
            continue;
        }
        match histogram_json(h) {
            Json::Obj(mut fields) => {
                fields.insert(0, ("type".to_string(), Json::Str("hist".into())));
                Json::Obj(fields).write(&mut out);
                out.push('\n');
            }
            _ => unreachable!("histogram_json returns an object"),
        }
    }
    metrics_line().write(&mut out);
    out.push('\n');
    out
}

/// Drain the trace and stability buffers and write them as JSON-lines
/// to `path`.
pub fn write_trace_jsonl(path: &Path) -> io::Result<()> {
    let events = crate::trace::take_events();
    let report = crate::stability::take_report();
    let mut f = std::fs::File::create(path)?;
    f.write_all(trace_jsonl(&events, &report).as_bytes())?;
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{EventKind, FieldList};

    #[test]
    fn jsonl_lines_are_each_valid_json() {
        let events = vec![
            Event {
                kind: EventKind::Enter,
                name: "factor",
                t_ns: 10,
                thread: 0,
                fields: FieldList::new(&[("n", 64.0)]),
            },
            Event {
                kind: EventKind::Exit,
                name: "factor",
                t_ns: 99,
                thread: 0,
                fields: FieldList::empty(),
            },
        ];
        let report = StabilityReport {
            steps: vec![StepRecord {
                step: 1,
                column: 0,
                gen_col_norm: 2.0,
                hnorm: 0.5,
                gamma: 1.5,
                growth: 1.5,
                flagged: false,
            }],
            residual_norms: vec![1e-3, 1e-9],
            violations: vec![crate::stability::ContractViolation {
                contract: "spd_diagonal",
                detail: "r[(2,2)] = -1e-16".to_string(),
            }],
            peak_growth: 1.5,
            threshold: 0.0,
        };
        let text = trace_jsonl(&events, &report);
        let lines: Vec<Json> = text
            .lines()
            .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("invalid line ({e:?}): {l}")))
            .collect();
        let count = |ty: &str| {
            lines
                .iter()
                .filter(|v| v.get("type").and_then(|t| t.as_str()) == Some(ty))
                .count()
        };
        // 2 spans + 1 step + 1 violation + 2 residuals + 1 metrics line
        // (other tests may race histogram lines in; those are separate).
        assert_eq!(count("span"), 2);
        assert_eq!(count("step"), 1);
        assert_eq!(count("contract_violation"), 1);
        assert_eq!(count("residual"), 2);
        assert_eq!(count("metrics"), 1);
        let first = &lines[0];
        assert_eq!(first.get("name").unwrap().as_str(), Some("factor"));
        assert_eq!(
            first.get("fields").unwrap().get("n").unwrap().as_f64(),
            Some(64.0)
        );
        let step = &lines[2];
        assert_eq!(step.get("type").unwrap().as_str(), Some("step"));
        assert_eq!(step.get("growth").unwrap().as_f64(), Some(1.5));
        let violation = &lines[3];
        assert_eq!(
            violation.get("type").unwrap().as_str(),
            Some("contract_violation")
        );
        assert_eq!(
            violation.get("contract").unwrap().as_str(),
            Some("spd_diagonal")
        );
        let metrics = lines.last().unwrap();
        assert_eq!(metrics.get("type").unwrap().as_str(), Some("metrics"));
        assert!(metrics.get("flops_total").is_some());
        assert!(metrics.get("dropped_events").is_some());
    }

    #[test]
    fn perfetto_json_has_balanced_phases() {
        let events = vec![
            Event {
                kind: EventKind::Enter,
                name: "solve",
                t_ns: 1_000,
                thread: 0,
                fields: FieldList::new(&[("n", 64.0)]),
            },
            Event {
                kind: EventKind::Instant,
                name: "tick",
                t_ns: 1_500,
                thread: 1,
                fields: FieldList::empty(),
            },
            Event {
                kind: EventKind::Exit,
                name: "solve",
                t_ns: 9_000,
                thread: 0,
                fields: FieldList::empty(),
            },
        ];
        let doc = perfetto_json(&events);
        // Round-trip through text to prove the output is valid JSON.
        let mut text = String::new();
        doc.write(&mut text);
        let parsed = Json::parse(&text).expect("perfetto doc parses");
        let arr = match parsed.get("traceEvents").expect("traceEvents") {
            Json::Arr(a) => a.clone(),
            other => panic!("traceEvents not an array: {other:?}"),
        };
        assert_eq!(arr.len(), 3);
        let phs: Vec<&str> = arr
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phs, ["B", "i", "E"]);
        // Timestamps are microseconds.
        assert_eq!(arr[0].get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            arr[0].get("args").unwrap().get("n").unwrap().as_f64(),
            Some(64.0)
        );
        assert_eq!(arr[1].get("s").unwrap().as_str(), Some("t"));
        assert_eq!(arr[1].get("tid").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn histograms_json_lists_every_histogram() {
        let doc = histograms_json();
        for h in Hist::ALL {
            let entry = doc.get(h.name()).expect("histogram entry");
            assert!(entry.get("count").unwrap().as_f64().is_some());
            assert!(entry.get("p50_ns").is_some());
            assert!(entry.get("p999_ns").is_some());
        }
    }
}
