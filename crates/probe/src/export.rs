//! JSON-lines export of traces, metrics, and stability reports.
//!
//! The trace file format is one JSON object per line, discriminated by
//! a `"type"` member:
//!
//! * `{"type":"span","kind":"enter|exit|instant","name":...,"t_ns":...,
//!   "thread":...,"fields":{...}}` — one line per trace event;
//! * `{"type":"step","step":...,"column":...,"gen_col_norm":...,
//!   "hnorm":...,"gamma":...,"growth":...,"flagged":...}` — one line
//!   per stability record (per-step growth factors);
//! * `{"type":"residual","iter":...,"norm":...}` — refinement history;
//! * `{"type":"metrics",...}` — final counter totals, one line.

use crate::json::Json;
use crate::metrics::{self, Counter};
use crate::stability::{StabilityReport, StepRecord};
use crate::trace::Event;
use std::io::{self, Write};
use std::path::Path;

/// Serialize one trace event as a JSON object.
pub fn event_json(e: &Event) -> Json {
    Json::obj(vec![
        ("type", Json::Str("span".into())),
        ("kind", Json::Str(e.kind.name().into())),
        ("name", Json::Str(e.name.into())),
        ("t_ns", Json::Num(e.t_ns as f64)),
        ("thread", Json::Num(e.thread as f64)),
        (
            "fields",
            Json::Obj(
                e.fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), Json::Num(*v)))
                    .collect(),
            ),
        ),
    ])
}

/// Serialize one stability step record as a JSON object.
pub fn step_json(s: &StepRecord) -> Json {
    Json::obj(vec![
        ("type", Json::Str("step".into())),
        ("step", Json::Num(s.step as f64)),
        ("column", Json::Num(s.column as f64)),
        ("gen_col_norm", Json::Num(s.gen_col_norm)),
        ("hnorm", Json::Num(s.hnorm)),
        ("gamma", Json::Num(s.gamma)),
        ("growth", Json::Num(s.growth)),
        ("flagged", Json::Bool(s.flagged)),
    ])
}

/// Serialize current counter totals as a JSON object (no `"type"` tag;
/// the trace file carries the same totals as a `"metrics"`-typed line).
pub fn metrics_json() -> Json {
    let snap = metrics::snapshot_total();
    let mut fields: Vec<(String, Json)> = Counter::ALL
        .iter()
        .map(|&c| (c.name().to_string(), Json::Num(snap[c as usize] as f64)))
        .collect();
    fields.push((
        "flops_total".to_string(),
        Json::Num(metrics::flops_total() as f64),
    ));
    Json::Obj(fields)
}

fn metrics_line() -> Json {
    match metrics_json() {
        Json::Obj(mut fields) => {
            fields.insert(0, ("type".to_string(), Json::Str("metrics".into())));
            Json::Obj(fields)
        }
        other => other,
    }
}

/// Serialize a stability report as one JSON document (used by
/// `--metrics` output rather than the JSONL trace).
pub fn stability_json(report: &StabilityReport) -> Json {
    Json::obj(vec![
        ("threshold", Json::Num(report.threshold)),
        ("peak_growth", Json::Num(report.peak_growth)),
        (
            "steps",
            Json::Arr(report.steps.iter().map(step_json).collect()),
        ),
        (
            "residual_norms",
            Json::Arr(
                report
                    .residual_norms
                    .iter()
                    .map(|&r| Json::Num(r))
                    .collect(),
            ),
        ),
        (
            "warnings",
            Json::Arr(report.warnings().into_iter().map(Json::Str).collect()),
        ),
        (
            "violations",
            Json::Arr(report.violations.iter().map(violation_json).collect()),
        ),
    ])
}

fn violation_json(v: &crate::stability::ContractViolation) -> Json {
    Json::obj(vec![
        ("type", Json::Str("contract_violation".into())),
        ("contract", Json::Str(v.contract.to_string())),
        ("detail", Json::Str(v.detail.clone())),
    ])
}

/// Render trace events, a stability report, and the counter totals as
/// JSON-lines text.
pub fn trace_jsonl(events: &[Event], report: &StabilityReport) -> String {
    let mut out = String::new();
    for e in events {
        event_json(e).write(&mut out);
        out.push('\n');
    }
    for s in &report.steps {
        step_json(s).write(&mut out);
        out.push('\n');
    }
    for v in &report.violations {
        violation_json(v).write(&mut out);
        out.push('\n');
    }
    for (i, r) in report.residual_norms.iter().enumerate() {
        Json::obj(vec![
            ("type", Json::Str("residual".into())),
            ("iter", Json::Num(i as f64)),
            ("norm", Json::Num(*r)),
        ])
        .write(&mut out);
        out.push('\n');
    }
    metrics_line().write(&mut out);
    out.push('\n');
    out
}

/// Drain the trace and stability buffers and write them as JSON-lines
/// to `path`.
pub fn write_trace_jsonl(path: &Path) -> io::Result<()> {
    let events = crate::trace::take_events();
    let report = crate::stability::take_report();
    let mut f = std::fs::File::create(path)?;
    f.write_all(trace_jsonl(&events, &report).as_bytes())?;
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::EventKind;

    #[test]
    fn jsonl_lines_are_each_valid_json() {
        let events = vec![
            Event {
                kind: EventKind::Enter,
                name: "factor",
                t_ns: 10,
                thread: 0,
                fields: vec![("n", 64.0)],
            },
            Event {
                kind: EventKind::Exit,
                name: "factor",
                t_ns: 99,
                thread: 0,
                fields: vec![],
            },
        ];
        let report = StabilityReport {
            steps: vec![StepRecord {
                step: 1,
                column: 0,
                gen_col_norm: 2.0,
                hnorm: 0.5,
                gamma: 1.5,
                growth: 1.5,
                flagged: false,
            }],
            residual_norms: vec![1e-3, 1e-9],
            violations: vec![crate::stability::ContractViolation {
                contract: "spd_diagonal",
                detail: "r[(2,2)] = -1e-16".to_string(),
            }],
            peak_growth: 1.5,
            threshold: 0.0,
        };
        let text = trace_jsonl(&events, &report);
        let lines: Vec<&str> = text.lines().collect();
        // 2 spans + 1 step + 1 violation + 2 residuals + 1 metrics line.
        assert_eq!(lines.len(), 7);
        for line in &lines {
            let v = Json::parse(line).expect("line parses");
            assert!(v.get("type").is_some());
        }
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("name").unwrap().as_str(), Some("factor"));
        assert_eq!(
            first.get("fields").unwrap().get("n").unwrap().as_f64(),
            Some(64.0)
        );
        let step = Json::parse(lines[2]).unwrap();
        assert_eq!(step.get("type").unwrap().as_str(), Some("step"));
        assert_eq!(step.get("growth").unwrap().as_f64(), Some(1.5));
        let violation = Json::parse(lines[3]).unwrap();
        assert_eq!(
            violation.get("type").unwrap().as_str(),
            Some("contract_violation")
        );
        assert_eq!(
            violation.get("contract").unwrap().as_str(),
            Some("spd_diagonal")
        );
        let metrics = Json::parse(lines[6]).unwrap();
        assert_eq!(metrics.get("type").unwrap().as_str(), Some("metrics"));
        assert!(metrics.get("flops_total").is_some());
    }
}
