//! Minimal JSON value with writer and parser.
//!
//! The probe crate must stay dependency-free, so it carries its own
//! tiny JSON implementation: enough to serialize traces/metrics and to
//! parse them back in tests and in `reproduce_all`'s bench aggregation.
//! Non-finite numbers serialize as `null` (JSON has no NaN/Inf).

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (no deduplication).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object literals.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub pos: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for probe output.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::obj(vec![
            ("name", Json::Str("factor \"spd\"\n".into())),
            ("steps", Json::Num(12.0)),
            ("growth", Json::Num(1.25e-7)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "arr",
                Json::Arr(vec![Json::Num(-3.0), Json::Num(0.5), Json::Num(1e18)]),
            ),
        ]);
        let text = v.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integers_print_without_exponent_or_dot() {
        assert_eq!(Json::Num(123456789.0).to_string(), "123456789");
        assert_eq!(Json::Num(-4.0).to_string(), "-4");
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\\u0041\" : [ 1 , 2.5e1 , \"x\\ty\" ] } ").unwrap();
        assert_eq!(
            v.get("aA").unwrap().as_array().unwrap(),
            &[Json::Num(1.0), Json::Num(25.0), Json::Str("x\ty".into())]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("nul").is_err());
    }
}
