//! Span aggregation: fold the raw trace event stream into a
//! hierarchical call-tree profile plus roofline-style efficiency
//! attribution.
//!
//! [`Profile::from_events`] replays each thread's Enter/Exit/Instant
//! stream against a per-thread span stack and merges frames into one
//! tree keyed by `(parent, name)` — the same span on two worker
//! threads lands in one node with a per-thread nanosecond breakdown.
//! The tree exports as:
//!
//! * a flamegraph-compatible folded-stack text ([`Profile::folded`],
//!   one `root;child;leaf self_ns` line per node with self time);
//! * a flat top-N table by self time ([`Profile::top_table`]);
//! * root totals ([`Profile::root_total_ns`]) that reconcile against
//!   wall time — the acceptance check for a complete trace.
//!
//! Ring-buffer truncation (oldest events overwritten) shows up as
//! unmatched Enter/Exit pairs; the profile repairs what it can and
//! raises [`Profile::truncated`] so a partial window is never reported
//! as a complete run.
//!
//! [`Roofline`] joins the per-ISA `KernelFlops*`/`KernelNanos*`
//! counters and the per-phase flop instants with an externally
//! calibrated peak rate (the perf-model `RateTable` lives upstream of
//! this dependency-free crate, so the caller passes calibrated Gflop/s
//! in) to report achieved-vs-calibrated efficiency per phase and the
//! pool's `strip_efficiency` / `dispatch_overhead_ns`.

use crate::metrics::{self, Counter};
use crate::trace::{Event, EventKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One merged call-tree node.
#[derive(Clone, Debug)]
pub struct Node {
    /// Span (or instant) name.
    pub name: &'static str,
    /// Index of the parent node in [`Profile::nodes`], `None` for roots.
    pub parent: Option<usize>,
    /// Indices of child nodes.
    pub children: Vec<usize>,
    /// Completed invocations merged into this node.
    pub calls: u64,
    /// Total nanoseconds spent inside this span, children included.
    pub total_ns: u64,
    /// Total nanoseconds per recording thread id.
    pub thread_ns: BTreeMap<u64, u64>,
}

/// Flat per-name aggregate for the top-N table.
#[derive(Clone, Debug)]
pub struct FlatEntry {
    pub name: &'static str,
    pub calls: u64,
    /// Sum of self time over every node with this name.
    pub self_ns: u64,
    /// Sum of total time over every node with this name (nested
    /// recursion of one name double-counts; self time never does).
    pub total_ns: u64,
}

/// Hierarchical profile folded from a drained trace event stream.
#[must_use = "a profile holds the aggregated trace; export or render it"]
#[derive(Clone, Debug, Default)]
pub struct Profile {
    nodes: Vec<Node>,
    /// Root node indices (spans entered with an empty stack).
    roots: Vec<usize>,
    /// Field sums of Instant events: name → field → Σ value.
    field_sums: BTreeMap<&'static str, BTreeMap<&'static str, f64>>,
    truncated: bool,
}

struct Frame {
    node: usize,
    t_enter: u64,
}

impl Profile {
    /// Fold a (timestamp-sorted or not) event stream into a call tree.
    pub fn from_events(events: &[Event]) -> Profile {
        let mut p = Profile::default();
        // Replay per thread: each thread's events are in record order
        // after a stable sort by (thread, t_ns).
        let mut by_thread: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
        for e in events {
            by_thread.entry(e.thread).or_default().push(e);
        }
        for (thread, evs) in by_thread {
            let mut evs = evs;
            evs.sort_by_key(|e| e.t_ns);
            let mut stack: Vec<Frame> = Vec::new();
            let mut last_t = 0u64;
            for e in evs {
                last_t = last_t.max(e.t_ns);
                match e.kind {
                    EventKind::Enter => {
                        let parent = stack.last().map(|f| f.node);
                        let node = p.intern(parent, e.name);
                        stack.push(Frame {
                            node,
                            t_enter: e.t_ns,
                        });
                    }
                    EventKind::Exit => {
                        // Usually the top of stack; a ring that dropped
                        // the matching Enter (or nested Exits) leaves a
                        // mismatch we repair by scanning down.
                        match stack.iter().rposition(|f| p.nodes[f.node].name == e.name) {
                            Some(pos) => {
                                if pos + 1 != stack.len() {
                                    p.truncated = true;
                                }
                                let frame = stack.drain(pos..).next().expect("frame at pos");
                                p.close(frame.node, thread, e.t_ns.saturating_sub(frame.t_enter));
                            }
                            None => p.truncated = true,
                        }
                    }
                    EventKind::Instant => {
                        let parent = stack.last().map(|f| f.node);
                        let node = p.intern(parent, e.name);
                        p.nodes[node].calls += 1;
                        let sums = p.field_sums.entry(e.name).or_default();
                        for &(k, v) in e.fields.iter() {
                            *sums.entry(k).or_insert(0.0) += v;
                        }
                    }
                }
            }
            // Frames still open when the trace was drained: close them
            // at the thread's last timestamp and flag the truncation.
            if !stack.is_empty() {
                p.truncated = true;
                while let Some(frame) = stack.pop() {
                    p.close(frame.node, thread, last_t.saturating_sub(frame.t_enter));
                }
            }
        }
        p
    }

    /// Find or create the child of `parent` named `name`.
    fn intern(&mut self, parent: Option<usize>, name: &'static str) -> usize {
        let siblings: &[usize] = match parent {
            Some(i) => &self.nodes[i].children,
            None => &self.roots,
        };
        if let Some(&found) = siblings.iter().find(|&&c| self.nodes[c].name == name) {
            return found;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name,
            parent,
            children: Vec::new(),
            calls: 0,
            total_ns: 0,
            thread_ns: BTreeMap::new(),
        });
        match parent {
            Some(i) => self.nodes[i].children.push(idx),
            None => self.roots.push(idx),
        }
        idx
    }

    fn close(&mut self, node: usize, thread: u64, elapsed: u64) {
        let n = &mut self.nodes[node];
        n.calls += 1;
        n.total_ns += elapsed;
        *n.thread_ns.entry(thread).or_insert(0) += elapsed;
    }

    /// All merged nodes (tree structure via `parent`/`children`).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// `true` when ring saturation or a drain mid-span lost events and
    /// the profile is a repaired partial window.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Self time of node `i`: total minus children's totals.
    pub fn self_ns(&self, i: usize) -> u64 {
        let n = &self.nodes[i];
        let child: u64 = n.children.iter().map(|&c| self.nodes[c].total_ns).sum();
        n.total_ns.saturating_sub(child)
    }

    /// Sum of root span totals — for a complete trace this reconciles
    /// with wall time spent inside instrumented top-level phases.
    pub fn root_total_ns(&self) -> u64 {
        self.roots.iter().map(|&r| self.nodes[r].total_ns).sum()
    }

    /// Total time of every span named `name`, anywhere in the tree.
    pub fn span_total_ns(&self, name: &str) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.name == name)
            .map(|n| n.total_ns)
            .sum()
    }

    /// Sum of field `field` over every Instant event named `event`.
    pub fn field_sum(&self, event: &str, field: &str) -> f64 {
        self.field_sums
            .get(event)
            .and_then(|m| m.get(field))
            .copied()
            .unwrap_or(0.0)
    }

    /// Total nanoseconds attributed to each thread id, root spans only
    /// (nested spans would double-count).
    pub fn thread_breakdown(&self) -> BTreeMap<u64, u64> {
        let mut out = BTreeMap::new();
        for &r in &self.roots {
            for (&t, &ns) in &self.nodes[r].thread_ns {
                *out.entry(t).or_insert(0) += ns;
            }
        }
        out
    }

    fn path_of(&self, mut i: usize) -> String {
        let mut parts = vec![self.nodes[i].name];
        while let Some(pi) = self.nodes[i].parent {
            parts.push(self.nodes[pi].name);
            i = pi;
        }
        parts.reverse();
        parts.join(";")
    }

    /// Folded-stack text (one `a;b;c self_ns` line per node with self
    /// time), the input format of `flamegraph.pl` / inferno / speedscope.
    /// Lines are sorted by path so output is deterministic.
    pub fn folded(&self) -> String {
        let mut lines: Vec<String> = (0..self.nodes.len())
            .filter(|&i| self.self_ns(i) > 0)
            .map(|i| format!("{} {}", self.path_of(i), self.self_ns(i)))
            .collect();
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Flat per-name aggregates sorted by self time, largest first.
    pub fn flat(&self) -> Vec<FlatEntry> {
        let mut by_name: BTreeMap<&'static str, FlatEntry> = BTreeMap::new();
        for i in 0..self.nodes.len() {
            let n = &self.nodes[i];
            let e = by_name.entry(n.name).or_insert(FlatEntry {
                name: n.name,
                calls: 0,
                self_ns: 0,
                total_ns: 0,
            });
            e.calls += n.calls;
            e.self_ns += self.self_ns(i);
            e.total_ns += n.total_ns;
        }
        let mut out: Vec<FlatEntry> = by_name.into_values().collect();
        out.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(b.name)));
        out
    }

    /// Human-readable top-`n` table by self time.
    pub fn top_table(&self, n: usize) -> String {
        let total: u64 = self.root_total_ns().max(1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<22} {:>10} {:>14} {:>14} {:>7}",
            "span", "calls", "self", "total", "self%"
        );
        for e in self.flat().into_iter().take(n) {
            let _ = writeln!(
                out,
                "{:<22} {:>10} {:>14} {:>14} {:>6.1}%",
                e.name,
                e.calls,
                crate::histogram::fmt_ns(e.self_ns),
                crate::histogram::fmt_ns(e.total_ns),
                100.0 * e.self_ns as f64 / total as f64,
            );
        }
        if self.truncated {
            let _ = writeln!(
                out,
                "(trace truncated: ring buffer dropped events; totals are a partial window)"
            );
        }
        out
    }
}

/// Achieved rate for one kernel ISA dispatch class.
#[derive(Clone, Debug)]
pub struct KernelEff {
    /// ISA name (`portable`, `avx2`, `avx512`, `neon`).
    pub isa: &'static str,
    pub flops: u64,
    pub nanos: u64,
    /// Achieved Gflop/s (`flops / nanos`; flop-per-ns ≡ Gflop/s).
    pub achieved_gflops: f64,
    /// Achieved / calibrated, in `[0, ~1]` when calibration is honest.
    pub efficiency: f64,
}

/// Achieved rate for one algorithm phase (span + its flop instants).
#[derive(Clone, Debug)]
pub struct PhaseEff {
    /// Phase span name (`factor_panel`, `apply_rep`, `tri_solve`).
    pub name: &'static str,
    pub nanos: u64,
    pub flops: u64,
    pub achieved_gflops: f64,
    pub efficiency: f64,
}

/// Roofline-style attribution: achieved vs calibrated rate per kernel
/// ISA and per algorithm phase, plus worker-pool granularity numbers.
#[must_use = "a roofline report attributes achieved vs calibrated rate"]
#[derive(Clone, Debug)]
pub struct Roofline {
    /// Calibrated peak Gflop/s the caller measured (0 ⇒ efficiencies
    /// are reported as 0 rather than dividing by zero).
    pub calibrated_gflops: f64,
    /// Threads the pool ran with (for ideal-time accounting).
    pub threads: usize,
    pub kernels: Vec<KernelEff>,
    pub phases: Vec<PhaseEff>,
    /// Busy-time fraction of the pool: Σ strip work ns over
    /// `threads ×` dispatch wall ns. 1.0 = perfectly packed strips;
    /// ROADMAP item 3's granularity loss is `1 − strip_efficiency`.
    pub strip_efficiency: f64,
    /// Dispatch wall time not covered by ideal strip work
    /// (`dispatch_wall − strip_work / threads`): fork/join plus
    /// imbalance overhead, total across all dispatches.
    pub dispatch_overhead_ns: u64,
}

/// Phase span names joined with `<name>_done` flop instants.
const PHASES: [(&str, &str); 3] = [
    ("factor_panel", "panel_done"),
    ("apply_rep", "apply_done"),
    ("tri_solve", "tri_solve_done"),
];

impl Roofline {
    /// Join current counter totals and the given profile into a
    /// roofline report. `calibrated_gflops` comes from the caller's
    /// calibrated `RateTable` at the plan's block size; pass 0.0 when
    /// no calibration is available (efficiencies read 0).
    pub fn compute(profile: &Profile, calibrated_gflops: f64, threads: usize) -> Roofline {
        let snap = metrics::snapshot_total();
        let get = |c: Counter| snap[c as usize];
        let isa_counters: [(&'static str, Counter, Counter); 4] = [
            (
                "portable",
                Counter::KernelFlopsPortable,
                Counter::KernelNanosPortable,
            ),
            ("avx2", Counter::KernelFlopsAvx2, Counter::KernelNanosAvx2),
            (
                "avx512",
                Counter::KernelFlopsAvx512,
                Counter::KernelNanosAvx512,
            ),
            ("neon", Counter::KernelFlopsNeon, Counter::KernelNanosNeon),
        ];
        let eff = |gflops: f64| {
            if calibrated_gflops > 0.0 {
                gflops / calibrated_gflops
            } else {
                0.0
            }
        };
        let kernels = isa_counters
            .iter()
            .filter(|&&(_, f, n)| get(f) > 0 && get(n) > 0)
            .map(|&(isa, f, n)| {
                let achieved = get(f) as f64 / get(n) as f64;
                KernelEff {
                    isa,
                    flops: get(f),
                    nanos: get(n),
                    achieved_gflops: achieved,
                    efficiency: eff(achieved),
                }
            })
            .collect();
        let phases = PHASES
            .iter()
            .map(|&(span, done)| {
                let nanos = profile.span_total_ns(span);
                let flops = profile.field_sum(done, "flops") as u64;
                let achieved = if nanos > 0 {
                    flops as f64 / nanos as f64
                } else {
                    0.0
                };
                PhaseEff {
                    name: span,
                    nanos,
                    flops,
                    achieved_gflops: achieved,
                    efficiency: eff(achieved),
                }
            })
            .filter(|p| p.nanos > 0 || p.flops > 0)
            .collect();
        let threads = threads.max(1);
        let dispatch_wall = profile.span_total_ns("pool_dispatch");
        let strip_work = get(Counter::PoolStripNanos);
        let strip_efficiency = if dispatch_wall > 0 {
            strip_work as f64 / (threads as f64 * dispatch_wall as f64)
        } else {
            0.0
        };
        let dispatch_overhead_ns = dispatch_wall.saturating_sub(strip_work / threads as u64);
        Roofline {
            calibrated_gflops,
            threads,
            kernels,
            phases,
            strip_efficiency,
            dispatch_overhead_ns,
        }
    }

    /// Re-derive every efficiency against a new calibrated rate.
    ///
    /// Lets the caller snapshot achieved rates *before* running a
    /// calibration (whose own kernel work would pollute the counters)
    /// and attach the calibrated ceiling afterwards.
    pub fn with_calibrated(mut self, calibrated_gflops: f64) -> Roofline {
        self.calibrated_gflops = calibrated_gflops;
        let eff = |gflops: f64| {
            if calibrated_gflops > 0.0 {
                gflops / calibrated_gflops
            } else {
                0.0
            }
        };
        for k in &mut self.kernels {
            k.efficiency = eff(k.achieved_gflops);
        }
        for p in &mut self.phases {
            p.efficiency = eff(p.achieved_gflops);
        }
        self
    }

    /// Human-readable report block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "roofline (calibrated {:.2} Gflop/s, {} thread{}):",
            self.calibrated_gflops,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
        );
        for k in &self.kernels {
            let _ = writeln!(
                out,
                "  kernel {:<9} {:>8.2} Gflop/s  ({:>5.1}% of calibrated)",
                k.isa,
                k.achieved_gflops,
                100.0 * k.efficiency
            );
        }
        for p in &self.phases {
            let _ = writeln!(
                out,
                "  phase  {:<12} {:>8.2} Gflop/s  ({:>5.1}% of calibrated, {} over {})",
                p.name,
                p.achieved_gflops,
                100.0 * p.efficiency,
                p.flops,
                crate::histogram::fmt_ns(p.nanos),
            );
        }
        let _ = writeln!(
            out,
            "  pool   strip_efficiency {:.3}, dispatch_overhead {}",
            self.strip_efficiency,
            crate::histogram::fmt_ns(self.dispatch_overhead_ns),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::FieldList;

    fn ev(kind: EventKind, name: &'static str, t_ns: u64, thread: u64) -> Event {
        Event {
            kind,
            name,
            t_ns,
            thread,
            fields: FieldList::empty(),
        }
    }

    #[test]
    fn folds_nested_spans_into_a_tree() {
        use EventKind::*;
        let events = vec![
            ev(Enter, "solve", 0, 0),
            ev(Enter, "factor", 100, 0),
            ev(Exit, "factor", 600, 0),
            ev(Enter, "factor", 700, 0),
            ev(Exit, "factor", 900, 0),
            ev(Exit, "solve", 1000, 0),
        ];
        let p = Profile::from_events(&events);
        assert!(!p.truncated());
        assert_eq!(p.root_total_ns(), 1000);
        assert_eq!(p.span_total_ns("factor"), 700);
        let folded = p.folded();
        assert!(folded.contains("solve 300\n"), "folded:\n{folded}");
        assert!(folded.contains("solve;factor 700\n"), "folded:\n{folded}");
        let flat = p.flat();
        assert_eq!(flat[0].name, "factor"); // largest self time first
        assert_eq!(flat[0].calls, 2);
        assert_eq!(flat[1].self_ns, 300);
    }

    #[test]
    fn merges_same_span_across_threads() {
        use EventKind::*;
        let events = vec![
            ev(Enter, "strip", 0, 1),
            ev(Enter, "strip", 0, 2),
            ev(Exit, "strip", 400, 1),
            ev(Exit, "strip", 600, 2),
        ];
        let p = Profile::from_events(&events);
        assert_eq!(p.nodes().len(), 1);
        assert_eq!(p.nodes()[0].calls, 2);
        assert_eq!(p.nodes()[0].total_ns, 1000);
        assert_eq!(p.nodes()[0].thread_ns[&1], 400);
        assert_eq!(p.nodes()[0].thread_ns[&2], 600);
        assert_eq!(p.thread_breakdown()[&2], 600);
    }

    #[test]
    fn instants_become_counted_leaves_with_field_sums() {
        use EventKind::*;
        let events = vec![
            ev(Enter, "factor", 0, 0),
            Event {
                kind: Instant,
                name: "panel_done",
                t_ns: 50,
                thread: 0,
                fields: FieldList::new(&[("flops", 128.0)]),
            },
            Event {
                kind: Instant,
                name: "panel_done",
                t_ns: 80,
                thread: 0,
                fields: FieldList::new(&[("flops", 72.0)]),
            },
            ev(Exit, "factor", 100, 0),
        ];
        let p = Profile::from_events(&events);
        assert_eq!(p.field_sum("panel_done", "flops"), 200.0);
        let flat = p.flat();
        let panel = flat.iter().find(|e| e.name == "panel_done").unwrap();
        assert_eq!(panel.calls, 2);
        assert_eq!(panel.self_ns, 0);
        // Instants do not eat the parent's self time.
        assert_eq!(p.span_total_ns("factor"), 100);
        assert_eq!(p.folded(), "factor 100\n");
    }

    #[test]
    fn truncated_ring_is_repaired_and_flagged() {
        use EventKind::*;
        // The Enter of "lost" was overwritten by the ring; its Exit
        // arrives with no matching frame. A later well-formed span
        // still profiles correctly.
        let events = vec![
            ev(Exit, "lost", 10, 0),
            ev(Enter, "solve", 20, 0),
            ev(Exit, "solve", 120, 0),
            ev(Enter, "open_at_drain", 150, 0),
        ];
        let p = Profile::from_events(&events);
        assert!(p.truncated());
        assert_eq!(p.span_total_ns("solve"), 100);
        assert!(p.top_table(10).contains("truncated"));
    }

    #[test]
    fn roofline_attributes_phase_and_pool_numbers() {
        use EventKind::*;
        let events = vec![
            ev(Enter, "factor_panel", 0, 0),
            Event {
                kind: Instant,
                name: "panel_done",
                t_ns: 900,
                thread: 0,
                fields: FieldList::new(&[("flops", 2000.0)]),
            },
            ev(Exit, "factor_panel", 1000, 0),
            ev(Enter, "pool_dispatch", 2000, 0),
            ev(Exit, "pool_dispatch", 4000, 0),
        ];
        let p = Profile::from_events(&events);
        let r = Roofline::compute(&p, 4.0, 2);
        let panel = r.phases.iter().find(|x| x.name == "factor_panel").unwrap();
        assert_eq!(panel.flops, 2000);
        assert_eq!(panel.nanos, 1000);
        assert!((panel.achieved_gflops - 2.0).abs() < 1e-12);
        assert!((panel.efficiency - 0.5).abs() < 1e-12);
        // strip_efficiency reads PoolStripNanos, which this test does
        // not control (other tests may add to it); just bound it.
        assert!(r.strip_efficiency >= 0.0);
        assert!(r.dispatch_overhead_ns <= 2000);
        assert!(r.render().contains("strip_efficiency"));
        // Late-attached calibration rescales every efficiency.
        let r2 = r.with_calibrated(2.0);
        let panel = r2.phases.iter().find(|x| x.name == "factor_panel").unwrap();
        assert!((panel.efficiency - 1.0).abs() < 1e-12);
    }
}
