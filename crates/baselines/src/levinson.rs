//! Levinson–Durbin solver for symmetric positive definite scalar
//! Toeplitz systems, O(n²) flops and O(n) workspace.
//!
//! Golub & Van Loan's formulation (Algorithm 4.7.3): maintains the
//! Yule–Walker solution alongside the right-hand-side solution. The
//! recursion divides by `β = Π(1 − α²ₖ)`, which stays positive exactly
//! when every principal minor is positive — i.e. the SPD case. For
//! indefinite or singular-minor matrices it breaks down, which is the
//! gap the paper's perturbed Schur + refinement fills.

use bs_matrix::flops;

/// Error from the Levinson recursion.
#[derive(Debug, Clone, PartialEq)]
pub enum LevinsonError {
    /// `t₀ ≤ 0` or a reflection coefficient reached `|α| ≥ 1`: the
    /// matrix is not positive definite (or is singular).
    NotPositiveDefinite { step: usize },
}

impl std::fmt::Display for LevinsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LevinsonError::NotPositiveDefinite { step } => {
                write!(
                    f,
                    "Levinson breakdown at step {step}: not positive definite"
                )
            }
        }
    }
}

impl std::error::Error for LevinsonError {}

/// Solve `T x = b` for a symmetric Toeplitz matrix given by its first
/// row `t` (`t[0]` is the diagonal).
///
/// ```
/// use bs_baselines::levinson_solve;
/// // T = [[2, 1], [1, 2]], b = (4, 5)  =>  x = (1, 2).
/// let x = levinson_solve(&[2.0, 1.0], &[4.0, 5.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-14 && (x[1] - 2.0).abs() < 1e-14);
/// ```
pub fn levinson_solve(t: &[f64], b: &[f64]) -> Result<Vec<f64>, LevinsonError> {
    let n = t.len();
    assert_eq!(b.len(), n, "dimension mismatch");
    assert!(n > 0);
    if t[0] <= 0.0 {
        return Err(LevinsonError::NotPositiveDefinite { step: 0 });
    }
    // Normalize to unit diagonal.
    let r: Vec<f64> = t.iter().map(|v| v / t[0]).collect();
    let bn: Vec<f64> = b.iter().map(|v| v / t[0]).collect();
    flops::add(2 * n as u64);

    let mut x = vec![0.0f64; n];
    let mut y = vec![0.0f64; n];
    x[0] = bn[0];
    if n == 1 {
        return Ok(x);
    }
    y[0] = -r[1];
    let mut alpha = -r[1];
    let mut beta = 1.0f64;

    for k in 1..n {
        beta *= 1.0 - alpha * alpha;
        if beta <= 0.0 || !beta.is_finite() {
            return Err(LevinsonError::NotPositiveDefinite { step: k });
        }
        // mu = (b_{k+1} − r(1:k)ᵀ x(k:−1:1)) / β
        let mut dot = 0.0;
        for i in 0..k {
            dot += r[i + 1] * x[k - 1 - i];
        }
        let mu = (bn[k] - dot) / beta;
        for i in 0..k {
            x[i] += mu * y[k - 1 - i];
        }
        x[k] = mu;
        flops::add(4 * k as u64 + 4);

        if k < n - 1 {
            // α = −(r_{k+1} + r(1:k)ᵀ y(k:−1:1)) / β
            let mut dyt = 0.0;
            for i in 0..k {
                dyt += r[i + 1] * y[k - 1 - i];
            }
            alpha = -(r[k + 1] + dyt) / beta;
            if alpha.abs() >= 1.0 {
                return Err(LevinsonError::NotPositiveDefinite { step: k });
            }
            // y(1:k) += α y(k:−1:1), in place with two-pointer sweep.
            let mut lo = 0;
            let mut hi = k - 1;
            while lo < hi {
                let (a, c) = (y[lo], y[hi]);
                y[lo] = a + alpha * c;
                y[hi] = c + alpha * a;
                lo += 1;
                hi -= 1;
            }
            if lo == hi {
                y[lo] += alpha * y[lo];
            }
            y[k] = alpha;
            flops::add(4 * k as u64 + 4);
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_toeplitz::workloads;

    fn first_row(t: &bs_toeplitz::SymBlockToeplitz) -> Vec<f64> {
        (0..t.order()).map(|j| t.get(0, j)).collect()
    }

    #[test]
    fn solves_kms_system() {
        let t = workloads::kms(32, 0.8);
        let (b, x_true) = workloads::rhs_for_ones(&t);
        let x = levinson_solve(&first_row(&t), &b).unwrap();
        for i in 0..32 {
            assert!((x[i] - x_true[i]).abs() < 1e-9, "i={i}: {}", x[i]);
        }
    }

    #[test]
    fn solves_random_spd_with_general_rhs() {
        let t = workloads::random_spd_scalar(40, 11);
        let n = t.order();
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let b = t.matvec(&x_true);
        let x = levinson_solve(&first_row(&t), &b).unwrap();
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-8, "i={i}");
        }
    }

    #[test]
    fn matches_dense_cholesky_solution() {
        let t = workloads::kms(12, 0.6);
        let b: Vec<f64> = (0..12).map(|i| (i as f64).sin()).collect();
        let x_lev = levinson_solve(&first_row(&t), &b).unwrap();
        let l = bs_matrix::chol::cholesky(&t.to_dense()).unwrap();
        let x_dense = bs_matrix::chol::cholesky_solve(&l, &b).unwrap();
        for i in 0..12 {
            assert!((x_lev[i] - x_dense[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let t = workloads::random_indefinite_scalar(10, 4);
        let row = first_row(&t);
        let b = vec![1.0; 10];
        assert!(levinson_solve(&row, &b).is_err());
    }

    #[test]
    fn rejects_singular_minor() {
        let t = workloads::paper_singular_minor_example();
        let row = first_row(&t);
        let b = vec![1.0; 6];
        assert!(
            levinson_solve(&row, &b).is_err(),
            "singular minor must break the recursion"
        );
    }

    #[test]
    fn one_by_one() {
        let x = levinson_solve(&[4.0], &[8.0]).unwrap();
        assert_eq!(x, vec![2.0]);
    }
}
