//! Structure-oblivious dense baselines: O(n³) Cholesky and LU solves
//! on the expanded Toeplitz matrix.

use bs_toeplitz::SymBlockToeplitz;

/// Solve `T x = b` by dense Cholesky on the expanded matrix.
pub fn dense_cholesky_solve(t: &SymBlockToeplitz, b: &[f64]) -> bs_matrix::Result<Vec<f64>> {
    let dense = t.to_dense();
    let l = bs_matrix::chol::cholesky(&dense)?;
    bs_matrix::chol::cholesky_solve(&l, b)
}

/// Solve `T x = b` by dense LU with partial pivoting (works for any
/// nonsingular symmetric Toeplitz, including indefinite/singular-minor
/// ones — the accuracy reference for §8).
pub fn dense_lu_solve(t: &SymBlockToeplitz, b: &[f64]) -> bs_matrix::Result<Vec<f64>> {
    let dense = t.to_dense();
    let f = bs_matrix::lu::lu_factor(&dense)?;
    f.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_toeplitz::workloads;

    #[test]
    fn cholesky_baseline_solves_spd() {
        let t = workloads::random_spd_block(2, 6, 4);
        let (b, x_true) = workloads::rhs_for_ones(&t);
        let x = dense_cholesky_solve(&t, &b).unwrap();
        for i in 0..x.len() {
            assert!((x[i] - x_true[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn lu_baseline_solves_indefinite() {
        let t = workloads::random_indefinite_scalar(15, 9);
        let (b, x_true) = workloads::rhs_for_ones(&t);
        let x = dense_lu_solve(&t, &b).unwrap();
        for i in 0..x.len() {
            assert!((x[i] - x_true[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn lu_baseline_solves_paper_example() {
        // The singular *minor* does not make T itself singular.
        let t = workloads::paper_singular_minor_example();
        let (b, x_true) = workloads::rhs_for_ones(&t);
        let x = dense_lu_solve(&t, &b).unwrap();
        for i in 0..6 {
            assert!((x[i] - x_true[i]).abs() < 1e-10);
        }
    }
}
