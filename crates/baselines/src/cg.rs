//! Conjugate gradients and preconditioned conjugate gradients.
//!
//! The comparator for §8's claim that iterative refinement with the
//! perturbed `LDLᵀ` factorization "requires significantly lesser work
//! than the preconditioned conjugate-gradient algorithm per iteration"
//! (Concus–Saylor use the same perturbed factorization as a CG
//! preconditioner). Per iteration, PCG needs one operator matvec, one
//! preconditioner solve, two inner products and three axpys;
//! refinement needs one matvec and one solve only.

use bs_matrix::flops;
use bs_matrix::norms::vec_two;

/// Outcome of a (P)CG run.
#[derive(Clone, Debug)]
pub struct CgResult {
    pub x: Vec<f64>,
    pub iterations: usize,
    /// `‖rᵢ‖₂` trace including the initial residual.
    pub residual_norms: Vec<f64>,
    pub converged: bool,
}

/// Plain conjugate gradients on `A x = b` with `A` given as a matvec.
pub fn cg(matvec: impl Fn(&[f64]) -> Vec<f64>, b: &[f64], tol: f64, max_iter: usize) -> CgResult {
    pcg(matvec, |r| r.to_vec(), b, tol, max_iter)
}

/// Preconditioned conjugate gradients: `precond(r)` must apply `M⁻¹`.
pub fn pcg(
    matvec: impl Fn(&[f64]) -> Vec<f64>,
    precond: impl Fn(&[f64]) -> Vec<f64>,
    b: &[f64],
    tol: f64,
    max_iter: usize,
) -> CgResult {
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let bnorm = vec_two(b).max(f64::MIN_POSITIVE);
    let mut residual_norms = vec![vec_two(&r)];
    if residual_norms[0] <= tol * bnorm {
        return CgResult {
            x,
            iterations: 0,
            residual_norms,
            converged: true,
        };
    }
    let mut z = precond(&r);
    let mut p = z.clone();
    let mut rz: f64 = dot(&r, &z);
    let mut converged = false;
    let mut iterations = 0;

    for _ in 0..max_iter {
        let ap = matvec(&p);
        let pap = dot(&p, &ap);
        if pap == 0.0 || !pap.is_finite() {
            break;
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        flops::add(4 * n as u64);
        iterations += 1;
        let rnorm = vec_two(&r);
        residual_norms.push(rnorm);
        if rnorm <= tol * bnorm {
            converged = true;
            break;
        }
        z = precond(&r);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
        flops::add(2 * n as u64);
    }

    CgResult {
        x,
        iterations,
        residual_norms,
        converged,
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    bs_matrix::blas1::dot(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_toeplitz::workloads;

    #[test]
    fn cg_solves_spd_toeplitz() {
        let t = workloads::kms(30, 0.5);
        let (b, x_true) = workloads::rhs_for_ones(&t);
        let res = cg(|v| t.matvec(v), &b, 1e-12, 200);
        assert!(res.converged, "iterations: {}", res.iterations);
        for i in 0..30 {
            assert!((res.x[i] - x_true[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn preconditioning_cuts_iterations() {
        // Ill-conditioned KMS; Jacobi does nothing (constant diagonal),
        // so precondition with the exact Schur factorization — one
        // iteration territory.
        let t = workloads::kms(64, 0.95);
        let (b, _) = workloads::rhs_for_ones(&t);
        let plain = cg(|v| t.matvec(v), &b, 1e-10, 500);
        let f = bs_core::factor_spd(&t, &bs_core::SchurOptions::default()).unwrap();
        let pre = pcg(|v| t.matvec(v), |r| f.solve(r).unwrap(), &b, 1e-10, 500);
        assert!(pre.converged);
        assert!(
            pre.iterations * 5 <= plain.iterations.max(5),
            "pcg {} vs cg {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn perturbed_factor_preconditioner_on_singular_minor_system() {
        // The Concus–Saylor setting: perturbed LDLᵀ as preconditioner.
        let t = workloads::paper_singular_minor_example();
        let f = bs_core::factor_indefinite(&t, &bs_core::IndefOptions::default()).unwrap();
        let (b, x_true) = workloads::rhs_for_ones(&t);
        let res = pcg(|v| t.matvec(v), |r| f.solve(r).unwrap(), &b, 1e-13, 50);
        assert!(res.converged);
        assert!(res.iterations <= 5, "iterations: {}", res.iterations);
        for i in 0..6 {
            assert!((res.x[i] - x_true[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let t = workloads::kms(8, 0.3);
        let res = cg(|v| t.matvec(v), &[0.0; 8], 1e-12, 10);
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
        assert!(res.x.iter().all(|&v| v == 0.0));
    }
}
