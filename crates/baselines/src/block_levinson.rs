//! Block Levinson (Whittle–Wiggins–Robinson) solver for symmetric
//! block Toeplitz systems — the O(m³p²) = O(m n²) classical competitor
//! of the block Schur algorithm.
//!
//! Bordering derivation with our convention `T(i,j) = R(j−i)`,
//! `R(−d) = R(d)ᵀ` (`R(d)` = d-th block of the first block row):
//! maintain, for the leading `k`-block system `T_k`,
//!
//! - `F`: `T_k F = [I; 0; …]` (forward solution),
//! - `B`: `T_k B = [0; …; I]` (backward solution),
//! - `X`: `T_k X = b_{0..k}`.
//!
//! Growing the order computes the mismatch blocks
//! `α_F = Σ R(k−j)ᵀ F_j` and `α_B = Σ R(j+1) B_j` and mixes `[F;0]`
//! with `[0;B]` through `(I − α_B α_F)⁻¹` — the block analogue of the
//! scalar reflection-coefficient update. Like scalar Levinson it
//! requires every leading principal (block) minor to be nonsingular;
//! the mixing matrix going singular is exactly the breakdown the
//! paper's perturbed Schur algorithm avoids.

use bs_matrix::blas3::{gemm, Trans};
use bs_matrix::Matrix;
use bs_toeplitz::SymBlockToeplitz;

/// Breakdown of the block Levinson recursion.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockLevinsonError {
    /// The leading block `R(0)` (or a later mixing matrix
    /// `I − α_B α_F`) is singular: a leading principal block minor of
    /// `T` is singular.
    SingularMinor { order: usize },
}

impl std::fmt::Display for BlockLevinsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockLevinsonError::SingularMinor { order } => {
                write!(f, "block Levinson breakdown at block order {order}")
            }
        }
    }
}

impl std::error::Error for BlockLevinsonError {}

/// `m × m` inverse via LU (returns `None` when singular).
fn invert(a: &Matrix) -> Option<Matrix> {
    let m = a.rows();
    let f = bs_matrix::lu::lu_factor(a).ok()?;
    let mut inv = Matrix::zeros(m, m);
    let mut e = vec![0.0; m];
    for j in 0..m {
        e.fill(0.0);
        e[j] = 1.0;
        let col = f.solve(&e).ok()?;
        for i in 0..m {
            inv[(i, j)] = col[i];
        }
    }
    Some(inv)
}

/// Solve `T x = b` for a symmetric block Toeplitz matrix by the block
/// Levinson recursion. Requires nonsingular leading principal block
/// minors (in particular any SPD matrix works).
pub fn block_levinson_solve(
    t: &SymBlockToeplitz,
    b: &[f64],
) -> Result<Vec<f64>, BlockLevinsonError> {
    let m = t.block_size();
    let p = t.num_blocks();
    let n = m * p;
    assert_eq!(b.len(), n, "dimension mismatch");
    let r = t.first_block_row();

    // Order 1.
    let r0_inv = invert(&r[0]).ok_or(BlockLevinsonError::SingularMinor { order: 1 })?;
    let mut fwd: Vec<Matrix> = vec![r0_inv.clone()];
    let mut bwd: Vec<Matrix> = vec![r0_inv.clone()];
    let mut x = vec![0.0f64; n];
    {
        let mut x0 = vec![0.0; m];
        bs_matrix::blas2::gemv(1.0, r0_inv.rf(), &b[..m], 0.0, &mut x0);
        x[..m].copy_from_slice(&x0);
    }

    let mut alpha_f = Matrix::zeros(m, m);
    let mut alpha_b = Matrix::zeros(m, m);
    let mut tmp = Matrix::zeros(m, m);

    for k in 1..p {
        // α_F = Σ_{j<k} R(k−j)ᵀ F_j ;  α_B = Σ_{j<k} R(j+1) B_j.
        alpha_f.fill(0.0);
        alpha_b.fill(0.0);
        for j in 0..k {
            gemm(
                1.0,
                r[k - j].rf(),
                Trans::Yes,
                fwd[j].rf(),
                Trans::No,
                1.0,
                alpha_f.mt(),
            );
            gemm(
                1.0,
                r[j + 1].rf(),
                Trans::No,
                bwd[j].rf(),
                Trans::No,
                1.0,
                alpha_b.mt(),
            );
        }
        // Mixing inverses S_F = (I − α_B α_F)⁻¹, S_B = (I − α_F α_B)⁻¹.
        let mut mf = Matrix::identity(m);
        gemm(
            -1.0,
            alpha_b.rf(),
            Trans::No,
            alpha_f.rf(),
            Trans::No,
            1.0,
            mf.mt(),
        );
        let sf = invert(&mf).ok_or(BlockLevinsonError::SingularMinor { order: k + 1 })?;
        let mut mb = Matrix::identity(m);
        gemm(
            -1.0,
            alpha_f.rf(),
            Trans::No,
            alpha_b.rf(),
            Trans::No,
            1.0,
            mb.mt(),
        );
        let sb = invert(&mb).ok_or(BlockLevinsonError::SingularMinor { order: k + 1 })?;

        // F' = ([F;0] − [0;B] α_F) S_F ; B' = ([0;B] − [F;0] α_B) S_B.
        let mut new_fwd: Vec<Matrix> = Vec::with_capacity(k + 1);
        let mut new_bwd: Vec<Matrix> = Vec::with_capacity(k + 1);
        for j in 0..=k {
            // Forward block j: F_j − B_{j−1} α_F, then × S_F.
            tmp.fill(0.0);
            if j < k {
                tmp.axpy(1.0, &fwd[j]);
            }
            if j >= 1 {
                gemm(
                    -1.0,
                    bwd[j - 1].rf(),
                    Trans::No,
                    alpha_f.rf(),
                    Trans::No,
                    1.0,
                    tmp.mt(),
                );
            }
            let mut fj = Matrix::zeros(m, m);
            gemm(1.0, tmp.rf(), Trans::No, sf.rf(), Trans::No, 0.0, fj.mt());
            new_fwd.push(fj);

            // Backward block j: B_{j−1} − F_j α_B, then × S_B.
            tmp.fill(0.0);
            if j >= 1 {
                tmp.axpy(1.0, &bwd[j - 1]);
            }
            if j < k {
                gemm(
                    -1.0,
                    fwd[j].rf(),
                    Trans::No,
                    alpha_b.rf(),
                    Trans::No,
                    1.0,
                    tmp.mt(),
                );
            }
            let mut bj = Matrix::zeros(m, m);
            gemm(1.0, tmp.rf(), Trans::No, sb.rf(), Trans::No, 0.0, bj.mt());
            new_bwd.push(bj);
        }
        fwd = new_fwd;
        bwd = new_bwd;

        // Solution update: r_x = b_k − Σ_{j<k} R(k−j)ᵀ x_j,
        // X' = [X; 0] + B' r_x.
        let mut rx = b[k * m..(k + 1) * m].to_vec();
        for j in 0..k {
            bs_matrix::blas2::gemv_t(-1.0, r[k - j].rf(), &x[j * m..(j + 1) * m], 1.0, &mut rx);
        }
        for (j, bj) in bwd.iter().enumerate() {
            let seg = &mut x[j * m..(j + 1) * m];
            let mut upd = vec![0.0; m];
            bs_matrix::blas2::gemv(1.0, bj.rf(), &rx, 0.0, &mut upd);
            for (si, ui) in seg.iter_mut().zip(&upd) {
                *si += ui;
            }
        }
        bs_matrix::flops::add((m * (k + 1)) as u64);
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_toeplitz::workloads;

    fn max_err(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solves_spd_block_systems() {
        for (m, p) in [(1usize, 12usize), (2, 8), (3, 6), (4, 5)] {
            let t = workloads::random_spd_block(m, p, (7 * m + p) as u64);
            let (b, x_true) = workloads::rhs_for_ones(&t);
            let x = block_levinson_solve(&t, &b).unwrap();
            assert!(
                max_err(&x, &x_true) < 1e-8,
                "m={m} p={p}: {:e}",
                max_err(&x, &x_true)
            );
        }
    }

    #[test]
    fn matches_scalar_levinson_at_m_equals_1() {
        let t = workloads::random_spd_scalar(24, 5);
        let row: Vec<f64> = (0..24).map(|j| t.get(0, j)).collect();
        let (b, _) = workloads::rhs_for_ones(&t);
        let x_scalar = crate::levinson::levinson_solve(&row, &b).unwrap();
        let x_block = block_levinson_solve(&t, &b).unwrap();
        assert!(max_err(&x_scalar, &x_block) < 1e-10);
    }

    #[test]
    fn matches_block_schur_solution() {
        let t = workloads::spd_ar1_block(3, 10, 0.6, 11);
        let n = t.order();
        let x_star: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let b = t.matvec(&x_star);
        let x_lev = block_levinson_solve(&t, &b).unwrap();
        let f = bs_core::factor_spd(&t, &bs_core::SchurOptions::default()).unwrap();
        let x_schur = f.solve(&b).unwrap();
        assert!(max_err(&x_lev, &x_schur) < 1e-7);
        assert!(max_err(&x_lev, &x_star) < 1e-7);
    }

    #[test]
    fn solves_general_rhs_on_indefinite_with_nonsingular_minors() {
        // Block Levinson only needs nonsingular block minors, not
        // positive definiteness.
        let t = workloads::random_indefinite_block(2, 6, 3);
        let (b, x_true) = workloads::rhs_for_ones(&t);
        let x = block_levinson_solve(&t, &b).unwrap();
        assert!(max_err(&x, &x_true) < 1e-7, "{:e}", max_err(&x, &x_true));
    }

    #[test]
    fn breaks_down_on_singular_minor() {
        let t = workloads::paper_singular_minor_example();
        let (b, _) = workloads::rhs_for_ones(&t);
        match block_levinson_solve(&t, &b) {
            Err(BlockLevinsonError::SingularMinor { order: 2 }) => {}
            other => panic!("expected breakdown at order 2, got {other:?}"),
        }
    }

    #[test]
    fn singular_leading_block_detected() {
        let t1 = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let t2 = Matrix::identity(2);
        let t = SymBlockToeplitz::new(vec![t1, t2]);
        let b = vec![1.0; 4];
        assert_eq!(
            block_levinson_solve(&t, &b),
            Err(BlockLevinsonError::SingularMinor { order: 1 })
        );
    }
}
