#![allow(clippy::needless_range_loop)]
// index-heavy numeric kernels read
// clearer with explicit indices when several parallel arrays are walked
// together; iterator-zip rewrites were measured to obscure, not improve.

//! Baseline solvers the paper's method is measured against.
//!
//! - [`dense`] — O(n³) dense Cholesky / LU solves (structure-oblivious
//!   floor for accuracy and ceiling for cost).
//! - [`levinson`] / [`block_levinson`] — the classical Levinson–Durbin
//!   O(n²) scalar solver and its multichannel (Whittle–Wiggins–Robinson)
//!   block generalization — the O(m n²) scalar Toeplitz
//!   solver (the algorithm the Schur family competes with; also the
//!   method Concus & Saylor's modified preconditioner is built for).
//! - [`scalar_schur`] — an independent implementation of the
//!   Cybenko–Berry scalar hyperbolic Schur factorization using
//!   hyperbolic *rotations*, cross-checking `bs-core` at `m = 1`.
//! - [`mod@cg`] — conjugate gradients and preconditioned CG; the paper
//!   argues its iterative refinement needs "significantly lesser work
//!   than the preconditioned conjugate-gradient algorithm per
//!   iteration" (§8) — the `refinement_study` bench measures exactly
//!   that.

pub mod block_levinson;
pub mod cg;
pub mod dense;
pub mod levinson;
pub mod scalar_schur;

pub use block_levinson::block_levinson_solve;
pub use cg::{cg, pcg, CgResult};
pub use dense::{dense_cholesky_solve, dense_lu_solve};
pub use levinson::levinson_solve;
pub use scalar_schur::scalar_schur_factor;
