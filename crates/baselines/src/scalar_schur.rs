//! Independent scalar (m = 1) hyperbolic Schur factorization in the
//! style of Cybenko & Berry, using hyperbolic *rotations*
//! (`H = 1/√(1−ρ²) · [[1, −ρ], [−ρ, 1]]`) instead of reflectors.
//!
//! This is deliberately a from-scratch second implementation: `bs-core`
//! at `m = 1` must produce the same `R` (the Cholesky factor transpose
//! is unique), so the two act as cross-checks on each other.

use bs_matrix::flops;
use bs_matrix::Matrix;

/// Error from the scalar Schur recursion.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarSchurError {
    /// `t₀ ≤ 0` at the start.
    NotPositiveDefinite { step: usize },
    /// `|ρ| ≥ 1` at some step: a principal minor is non-positive.
    ReflectionOutOfRange { step: usize, rho: f64 },
}

impl std::fmt::Display for ScalarSchurError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScalarSchurError::NotPositiveDefinite { step } => {
                write!(f, "scalar Schur: not positive definite at step {step}")
            }
            ScalarSchurError::ReflectionOutOfRange { step, rho } => {
                write!(f, "scalar Schur: |rho| = {rho} >= 1 at step {step}")
            }
        }
    }
}

impl std::error::Error for ScalarSchurError {}

/// Factor a symmetric positive definite scalar Toeplitz matrix (first
/// row `t`) as `T = RᵀR`, returning upper triangular `R` with positive
/// diagonal.
pub fn scalar_schur_factor(t: &[f64]) -> Result<Matrix, ScalarSchurError> {
    let n = t.len();
    assert!(n > 0);
    if t[0] <= 0.0 {
        return Err(ScalarSchurError::NotPositiveDefinite { step: 0 });
    }
    let s0 = t[0].sqrt();
    // Generator rows (eq. 9 at m = 1).
    let mut g1: Vec<f64> = t.iter().map(|v| v / s0).collect();
    let mut g2 = g1.clone();
    g2[0] = 0.0;
    flops::add(2 * n as u64 + 1);

    let mut r = Matrix::zeros(n, n);
    for j in 0..n {
        r[(0, j)] = g1[j];
    }

    for s in 1..n {
        // Shift g1 right by one.
        for j in (s..n).rev() {
            g1[j] = g1[j - 1];
        }
        // Hyperbolic rotation eliminating g2[s] against g1[s].
        let a = g1[s];
        let b = g2[s];
        if a == 0.0 {
            return Err(ScalarSchurError::ReflectionOutOfRange {
                step: s,
                rho: f64::INFINITY,
            });
        }
        let rho = b / a;
        if rho.abs() >= 1.0 {
            return Err(ScalarSchurError::ReflectionOutOfRange { step: s, rho });
        }
        let c = 1.0 / (1.0 - rho * rho).sqrt();
        flops::add(5);
        for j in s..n {
            let (x, y) = (g1[j], g2[j]);
            g1[j] = c * (x - rho * y);
            g2[j] = c * (y - rho * x);
        }
        flops::add(6 * (n - s) as u64);
        g2[s] = 0.0;
        for j in s..n {
            r[(s, j)] = g1[j];
        }
    }
    // Normalize diagonal positive.
    for i in 0..n {
        if r[(i, i)] < 0.0 {
            for j in i..n {
                r[(i, j)] = -r[(i, j)];
            }
        }
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_toeplitz::workloads;

    fn first_row(t: &bs_toeplitz::SymBlockToeplitz) -> Vec<f64> {
        (0..t.order()).map(|j| t.get(0, j)).collect()
    }

    #[test]
    fn reconstructs_t() {
        let t = workloads::random_spd_scalar(20, 3);
        let r = scalar_schur_factor(&first_row(&t)).unwrap();
        let mut rec = Matrix::zeros(20, 20);
        bs_matrix::gemm(
            1.0,
            r.rf(),
            bs_matrix::Trans::Yes,
            r.rf(),
            bs_matrix::Trans::No,
            0.0,
            rec.mt(),
        );
        assert!(rec.max_abs_diff(&t.to_dense()) < 1e-11);
    }

    #[test]
    fn agrees_with_block_schur_at_m_equals_1() {
        let t = workloads::kms(24, 0.85);
        let r1 = scalar_schur_factor(&first_row(&t)).unwrap();
        let f = bs_core::factor_spd(&t, &bs_core::SchurOptions::default()).unwrap();
        assert!(
            r1.max_abs_diff(&f.r) < 1e-10,
            "independent implementations disagree: {}",
            r1.max_abs_diff(&f.r)
        );
    }

    #[test]
    fn rejects_indefinite() {
        let t = workloads::random_indefinite_scalar(8, 2);
        assert!(scalar_schur_factor(&first_row(&t)).is_err());
    }

    #[test]
    fn rejects_singular_minor() {
        let t = workloads::paper_singular_minor_example();
        match scalar_schur_factor(&first_row(&t)) {
            Err(ScalarSchurError::ReflectionOutOfRange { step: 1, .. }) => {}
            other => panic!("expected breakdown at step 1, got {other:?}"),
        }
    }
}
