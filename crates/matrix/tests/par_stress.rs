//! Stress test: `par::for_each` workers hammering the thread-local
//! bs-probe flop counters concurrently.
//!
//! Each worker thread bumps its own thread-local slot (a relaxed
//! `fetch_add`), and `bs_probe::metrics::total` must aggregate every
//! contribution — including those from scoped threads that have long
//! exited — with no lost updates across many spawn/join cycles.

use bs_matrix::{flops, par};
use bs_probe::metrics::{self, Counter};
use std::sync::Mutex;

/// The flop counters are process-global, so the delta assertions below
/// serialize on one lock (the harness otherwise runs tests on
/// concurrent threads and the FlopsBlas3 deltas would interleave).
static LOCK: Mutex<()> = Mutex::new(());

#[test]
fn concurrent_flop_counting_loses_nothing() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    const ROUNDS: u64 = 50;
    const ITEMS: u64 = 16;
    const ADDS_PER_ITEM: u64 = 1_000;
    let before = metrics::total(Counter::FlopsBlas3);
    for _ in 0..ROUNDS {
        par::for_each((0..ITEMS).collect::<Vec<u64>>(), |_| {
            for _ in 0..ADDS_PER_ITEM {
                flops::add_l3(3);
            }
        });
    }
    let after = metrics::total(Counter::FlopsBlas3);
    assert_eq!(
        after - before,
        ROUNDS * ITEMS * ADDS_PER_ITEM * 3,
        "every worker bump must survive thread exit and aggregation"
    );
}

#[test]
fn mixed_counter_categories_stay_separated_under_contention() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    const ROUNDS: u64 = 20;
    const ITEMS: u64 = 8;
    let b1 = metrics::total(Counter::FlopsBlas1);
    let b2 = metrics::total(Counter::FlopsBlas2);
    for _ in 0..ROUNDS {
        par::for_each((0..ITEMS).collect::<Vec<u64>>(), |i| {
            // Odd workers count level-1 work, even workers level-2 —
            // the per-thread slots must never bleed across categories.
            if i % 2 == 0 {
                flops::add_l2(5);
            } else {
                flops::add_l1(7);
            }
        });
    }
    assert_eq!(
        metrics::total(Counter::FlopsBlas1) - b1,
        ROUNDS * (ITEMS / 2) * 7
    );
    assert_eq!(
        metrics::total(Counter::FlopsBlas2) - b2,
        ROUNDS * (ITEMS / 2) * 5
    );
}

#[test]
fn parallel_gemm_flops_aggregate_across_workers() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // A real level-3 workload through the parallel path: the counted
    // flops must match the sequential count for the same problem.
    let n = 48;
    let a = bs_matrix::Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
    let b = bs_matrix::Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 29) % 11) as f64 - 5.0);

    let mut c_seq = bs_matrix::Matrix::zeros(n, n);
    let before_seq = metrics::total(Counter::FlopsBlas3);
    bs_matrix::gemm(
        1.0,
        a.rf(),
        bs_matrix::Trans::No,
        b.rf(),
        bs_matrix::Trans::No,
        0.0,
        c_seq.mt(),
    );
    let seq_flops = metrics::total(Counter::FlopsBlas3) - before_seq;

    let mut c_par = bs_matrix::Matrix::zeros(n, n);
    let before_par = metrics::total(Counter::FlopsBlas3);
    bs_matrix::blas3::par_gemm(
        1.0,
        a.rf(),
        bs_matrix::Trans::No,
        b.rf(),
        bs_matrix::Trans::No,
        0.0,
        c_par.mt(),
    );
    let par_flops = metrics::total(Counter::FlopsBlas3) - before_par;

    assert_eq!(c_seq.max_abs_diff(&c_par), 0.0);
    assert_eq!(
        seq_flops, par_flops,
        "parallel workers must count the same work"
    );
}
