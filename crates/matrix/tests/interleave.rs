//! Exhaustive interleaving coverage for the worker pool's strip
//! claiming, driving **real GEMM strip closures** through the
//! serialized shim in `bs_matrix::sched` — every claim order a small
//! region can see, asserted bitwise identical — plus a cross-check
//! that the real pool agrees with the shim on the same workload.
//!
//! The coverage argument lives on `bs_matrix::sched`: with disjoint
//! strip bodies, the only scheduling freedom that can reach the
//! output is which worker wins each `fetch_add` claim, so replaying
//! all `w^n` claim words exhausts the schedule space.

use bs_matrix::sched::{self, Trial};
use bs_matrix::{gemm, gemm_ws, Matrix, Trans, Workspace};
use bs_probe::metrics::{self, Counter};

/// Deterministic pseudo-random test operands (no rand dependency).
fn operands(m: usize, k: usize, n: usize) -> (Matrix, Matrix) {
    let a = Matrix::from_fn(m, k, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
    let b = Matrix::from_fn(k, n, |i, j| ((i * 7 + j * 29) % 11) as f64 - 5.0);
    (a, b)
}

/// Run `C = A * B` strip by strip under one claim word: strip `s`
/// covers columns `[s*w, s*w + w)`, computed by a real `gemm_ws` call
/// against the claiming worker's arena — the same shape of closure the
/// plan layer hands `par::run_indexed`.
fn gemm_trial(
    a: &Matrix,
    b: &Matrix,
    strips: usize,
    workers: usize,
    word: &[usize],
) -> Result<Trial, sched::SchedError> {
    let (m, k, n) = (a.rows(), b.rows(), b.cols());
    let w = n / strips;
    assert_eq!(n % strips, 0, "test geometry: equal strips");
    let mut c = Matrix::zeros(m, n);
    let replay = sched::replay(word, workers, strips, |_worker, s, arena| {
        let j0 = s * w;
        gemm_ws(
            1.0,
            a.rf(),
            Trans::No,
            b.sub(0, j0, k, w),
            Trans::No,
            0.0,
            c.sub_mut(0, j0, m, w),
            arena,
        );
    })?;
    Ok(Trial {
        bits: c.as_slice().iter().map(|x| x.to_bits()).collect(),
        unbalanced: replay.unbalanced,
    })
}

/// Every schedule of a strip-decomposed GEMM must produce the same
/// bits, and the monolithic (non-stripped) product must match them:
/// the determinism contract end to end, over the full schedule space.
fn assert_schedule_space_clean(strips: usize, workers: usize) {
    let (m, k) = (32, 24);
    let n = strips * 8;
    let (a, b) = operands(m, k, n);
    let report = sched::exhaustive(strips, workers, |word| {
        gemm_trial(&a, &b, strips, workers, word)
    })
    .unwrap();
    assert_eq!(report.schedules, workers.pow(strips as u32));
    assert_eq!(
        report.divergences, 0,
        "schedule-dependent bits in {strips} strips x {workers} workers: \
         first divergent word {:?}",
        report.first_divergent
    );
    assert_eq!(
        report.unbalanced, 0,
        "some schedule left a worker arena unbalanced"
    );
    // The stripped baseline equals the monolithic product bitwise —
    // column grouping must not change any entry's accumulation chain.
    let baseline = gemm_trial(&a, &b, strips, workers, &vec![0; strips]).unwrap();
    let mut c_full = Matrix::zeros(m, n);
    gemm(1.0, a.rf(), Trans::No, b.rf(), Trans::No, 0.0, c_full.mt());
    let full_bits: Vec<u64> = c_full.as_slice().iter().map(|x| x.to_bits()).collect();
    assert_eq!(baseline.bits, full_bits, "strip grouping changed bits");
}

#[test]
fn four_strips_two_workers_all_sixteen_schedules_bitwise_identical() {
    assert_schedule_space_clean(4, 2);
}

#[test]
fn five_strips_two_workers_all_thirty_two_schedules_bitwise_identical() {
    assert_schedule_space_clean(5, 2);
}

#[test]
fn four_strips_three_workers_all_eighty_one_schedules_bitwise_identical() {
    assert_schedule_space_clean(4, 3);
}

#[test]
fn claim_history_dependent_region_is_caught_and_counted() {
    // A deliberately broken region: each strip's output depends on how
    // many strips its worker has already run (worker-local state
    // leaking into the answer). The harness must find a diverging
    // schedule and count every one into `audit_violations`.
    let before = metrics::total(Counter::AuditViolations);
    let report = sched::exhaustive(4, 2, |word| {
        let mut c = [0.0f64; 4];
        let mut per_worker_count = [0.0f64; 2];
        let replay = sched::replay(word, 2, 4, |worker, s, _| {
            c[s] = per_worker_count[worker];
            per_worker_count[worker] += 1.0;
        })?;
        Ok(Trial {
            bits: c.iter().map(|x| x.to_bits()).collect(),
            unbalanced: replay.unbalanced,
        })
    })
    .unwrap();
    assert!(report.divergences > 0, "the harness missed a real bug");
    let after = metrics::total(Counter::AuditViolations);
    assert!(
        after >= before + report.divergences as u64,
        "divergences must reach the audit_violations counter \
         (before {before}, after {after}, divergences {})",
        report.divergences
    );
}

#[test]
fn leaked_checkout_is_caught_and_counted() {
    let before = metrics::total(Counter::AuditViolations);
    let report = sched::exhaustive(3, 2, |word| {
        let replay = sched::replay(word, 2, 3, |worker, _s, arena| {
            let v = arena.take_vec(16);
            if worker == 0 {
                arena.give_vec(v); // worker 1 leaks its checkout
            }
        })?;
        Ok(Trial {
            bits: Vec::new(),
            unbalanced: replay.unbalanced,
        })
    })
    .unwrap();
    // Every word that hands worker 1 at least one strip leaks.
    assert!(report.unbalanced > 0, "the harness missed the leak");
    assert_eq!(report.divergences, 0);
    assert!(metrics::total(Counter::AuditViolations) >= before + report.unbalanced as u64);
}

#[test]
fn real_pool_agrees_with_the_shim_workload() {
    // The same strip decomposition the shim replays, now through the
    // real dispatcher with real racing claims: output must be bitwise
    // identical to the serialized baseline at any thread count.
    let strips = 4;
    let (m, k) = (32, 24);
    let n = strips * 8;
    let w = n / strips;
    let (a, b) = operands(m, k, n);
    let baseline = gemm_trial(&a, &b, strips, 2, &vec![0; strips]).unwrap();
    for threads in [2usize, 3, 8] {
        let mut c = Matrix::zeros(m, n);
        {
            let mut strip_views: Vec<(usize, bs_matrix::MatMut<'_>)> = Vec::new();
            let mut rest = c.mt();
            for s in 0..strips {
                let (head, tail) = rest.split_at_col(w);
                strip_views.push((s, head));
                rest = tail;
            }
            bs_matrix::par::for_each_policy(
                &bs_matrix::ExecPolicy::with_threads(threads),
                strip_views,
                |(s, view)| {
                    bs_matrix::par::with_worker_ws(|ws: &mut Workspace| {
                        gemm_ws(
                            1.0,
                            a.rf(),
                            Trans::No,
                            b.sub(0, s * w, k, w),
                            Trans::No,
                            0.0,
                            view,
                            ws,
                        );
                    });
                },
            );
        }
        let bits: Vec<u64> = c.as_slice().iter().map(|x| x.to_bits()).collect();
        assert_eq!(
            bits, baseline.bits,
            "real pool at {threads} threads diverged from the serialized shim"
        );
    }
}
