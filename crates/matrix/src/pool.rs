//! Thread-safe checkout pool of [`Workspace`] arenas.
//!
//! A [`Workspace`] is deliberately single-threaded: one factorization
//! (or one worker) owns it. A shared, immutable factor served to many
//! concurrent tenants needs the complementary shape — a pool of warm
//! arenas that any thread can check out for the duration of one solve
//! and return on drop. [`WorkspacePool`] is that pool: `checkout()`
//! hands out an idle arena (or creates a cold one on a miss), the
//! returned [`PooledWorkspace`] guard derefs to `Workspace`, and
//! dropping the guard puts the arena — with whatever buffers it has
//! accumulated — back on the idle list for the next caller.
//!
//! Concurrency model: the idle list lives behind a `Mutex` (checkout
//! and return are O(1) push/pop, so the critical section is a few
//! nanoseconds), while the checkout *balance* is a lone relaxed
//! `AtomicI64` so [`outstanding`](WorkspacePool::outstanding) and the
//! [`audit_balanced`](WorkspacePool::audit_balanced) contract never
//! take the lock. Relaxed suffices: the counter is a statistic whose
//! only consistency requirement is that increments and decrements all
//! land, which `fetch_add`/`fetch_sub` guarantee at any ordering. The
//! arenas themselves need no synchronization — ownership transfers
//! through the mutex, which provides the necessary happens-before
//! edge.
//!
//! Determinism: pooled checkout cannot change arithmetic. A
//! `Workspace` zero-fills every buffer it hands out, so a solve
//! running on a recycled arena sees exactly the state a fresh one
//! provides — which thread previously used the arena is unobservable.

use crate::scalar::Scalar;
use crate::workspace::Workspace;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Mutex;

/// Inner state guarded by the pool mutex: the idle arenas plus the
/// statistics that must change atomically with the list itself.
#[derive(Debug, Default)]
struct PoolInner<T: Scalar> {
    idle: Vec<Workspace<T>>,
    /// Checkouts that found the idle list empty and created an arena.
    cold: u64,
    /// Total checkouts served.
    checkouts: u64,
    /// Peak simultaneously checked-out arenas.
    high_water: usize,
}

/// A concurrent pool of [`Workspace`] arenas for shared-factor serving.
///
/// ```
/// use bs_matrix::pool::WorkspacePool;
///
/// let pool: WorkspacePool = WorkspacePool::new();
/// {
///     let mut ws = pool.checkout();
///     let v = ws.take_vec(64);
///     ws.give_vec(v);
/// } // arena returns to the pool here
/// assert_eq!(pool.outstanding(), 0);
/// assert_eq!(pool.idle_arenas(), 1);
/// ```
#[derive(Debug, Default)]
#[must_use]
pub struct WorkspacePool<T: Scalar = f64> {
    inner: Mutex<PoolInner<T>>,
    /// Checkouts minus returns — lock-free so the balance contract is
    /// readable from any thread without contending with checkouts.
    outstanding: AtomicI64,
}

impl<T: Scalar> WorkspacePool<T> {
    /// An empty pool; the first checkouts create cold arenas.
    pub fn new() -> Self {
        WorkspacePool {
            inner: Mutex::new(PoolInner {
                idle: Vec::new(),
                cold: 0,
                checkouts: 0,
                high_water: 0,
            }),
            outstanding: AtomicI64::new(0),
        }
    }

    /// Check out an arena for the duration of one solve (or any other
    /// bounded region). Prefers a warm idle arena; creates a cold one
    /// when none is available. The guard returns the arena on drop.
    pub fn checkout(&self) -> PooledWorkspace<'_, T> {
        let ws = {
            let mut inner = self.lock();
            inner.checkouts += 1;
            match inner.idle.pop() {
                Some(ws) => ws,
                None => {
                    inner.cold += 1;
                    Workspace::new()
                }
            }
        };
        let live = self.outstanding.fetch_add(1, Ordering::Relaxed) + 1;
        if live >= 0 {
            let mut inner = self.lock();
            inner.high_water = inner.high_water.max(live as usize);
        }
        PooledWorkspace {
            ws: Some(ws),
            pool: self,
        }
    }

    /// Return an arena to the idle list (called by the guard's drop;
    /// also usable directly to donate a pre-warmed arena — donations
    /// drive [`outstanding`](Self::outstanding) negative, exactly like
    /// [`Workspace::give_vec`] donations).
    pub fn give_back(&self, ws: Workspace<T>) {
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        self.lock().idle.push(ws);
    }

    /// Checkout balance: checkouts minus returns since creation.
    /// Zero whenever no guard is alive (and the pool received no
    /// donations).
    pub fn outstanding(&self) -> i64 {
        self.outstanding.load(Ordering::Relaxed)
    }

    /// Arenas currently idle in the pool.
    pub fn idle_arenas(&self) -> usize {
        self.lock().idle.len()
    }

    /// Total checkouts served since creation.
    pub fn checkouts(&self) -> u64 {
        self.lock().checkouts
    }

    /// Checkouts that found no idle arena and created a cold one. A
    /// steady-state serving loop holds this flat: the count stops
    /// growing once the pool has as many arenas as peak concurrency.
    pub fn cold_checkouts(&self) -> u64 {
        self.lock().cold
    }

    /// Peak simultaneously checked-out arenas.
    pub fn high_water(&self) -> usize {
        self.lock().high_water
    }

    /// Audit hook: assert the pool is quiescent (every checkout
    /// returned). A nonzero balance means a guard was leaked or an
    /// arena double-returned; the violation is recorded through
    /// `bs_probe::stability::record_audit_violation` (bumping
    /// `Counter::AuditViolations`) and `false` is returned. Call at
    /// the end of a serving session or a stress test.
    pub fn audit_balanced(&self, site: &'static str) -> bool {
        let bal = self.outstanding();
        if bal != 0 {
            bs_probe::stability::record_audit_violation(
                "workspace_pool_balance",
                format!(
                    "{site}: workspace pool checkout balance is {bal} at audit \
                     (expected 0) — an arena was leaked or double-returned"
                ),
            );
            return false;
        }
        true
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolInner<T>> {
        // A poisoned pool mutex only means another thread panicked
        // mid-checkout; the inner state (a list of arenas and some
        // counters) is valid regardless, so recover rather than
        // propagate the panic across every tenant.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard over a checked-out arena; derefs to [`Workspace`] and
/// returns the arena to its pool on drop.
#[derive(Debug)]
#[must_use]
pub struct PooledWorkspace<'p, T: Scalar = f64> {
    /// `Some` until drop; `Option` only so drop can move the arena out.
    ws: Option<Workspace<T>>,
    pool: &'p WorkspacePool<T>,
}

impl<T: Scalar> Deref for PooledWorkspace<'_, T> {
    type Target = Workspace<T>;

    fn deref(&self) -> &Workspace<T> {
        // Invariant: `ws` is only None after drop has run.
        match &self.ws {
            Some(ws) => ws,
            None => unreachable!("PooledWorkspace used after drop"),
        }
    }
}

impl<T: Scalar> DerefMut for PooledWorkspace<'_, T> {
    fn deref_mut(&mut self) -> &mut Workspace<T> {
        match &mut self.ws {
            Some(ws) => ws,
            None => unreachable!("PooledWorkspace used after drop"),
        }
    }
}

impl<T: Scalar> Drop for PooledWorkspace<'_, T> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            self.pool.give_back(ws);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_returned_arenas() {
        let pool: WorkspacePool = WorkspacePool::new();
        {
            let mut ws = pool.checkout();
            let v = ws.take_vec(32);
            ws.give_vec(v);
        }
        assert_eq!(pool.cold_checkouts(), 1);
        assert_eq!(pool.idle_arenas(), 1);
        {
            // Warm arena: the pooled buffer survives the round trip.
            let mut ws = pool.checkout();
            let v = ws.take_vec(32);
            assert_eq!(ws.allocations(), 1, "buffer came from the arena's pool");
            ws.give_vec(v);
        }
        assert_eq!(pool.cold_checkouts(), 1, "second checkout was warm");
        assert_eq!(pool.checkouts(), 2);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_arenas_and_balance() {
        let pool: WorkspacePool = WorkspacePool::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        let mut ws = pool.checkout();
                        let v = ws.take_vec(16);
                        assert!(v.iter().all(|&x| x == 0.0));
                        ws.give_vec(v);
                    }
                });
            }
        });
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.checkouts(), 800);
        assert!(pool.high_water() <= 8);
        assert!(pool.idle_arenas() as u64 == pool.cold_checkouts());
        assert!(pool.audit_balanced("pool_test"));
    }

    #[test]
    fn unbalanced_pool_records_audit_violation() {
        let pool: WorkspacePool = WorkspacePool::new();
        let guard = pool.checkout();
        let before = bs_probe::metrics::total(bs_probe::metrics::Counter::AuditViolations);
        assert!(!pool.audit_balanced("pool_test_unbalanced"));
        let after = bs_probe::metrics::total(bs_probe::metrics::Counter::AuditViolations);
        assert_eq!(after, before + 1);
        drop(guard);
        assert!(pool.audit_balanced("pool_test_rebalanced"));
    }

    #[test]
    fn high_water_tracks_peak_concurrency() {
        let pool: WorkspacePool = WorkspacePool::new();
        let a = pool.checkout();
        let b = pool.checkout();
        let c = pool.checkout();
        drop(a);
        drop(b);
        drop(c);
        assert_eq!(pool.high_water(), 3);
        let _d = pool.checkout();
        assert_eq!(pool.high_water(), 3);
    }
}
