//! The sealed [`Scalar`] trait: the two floating-point element types
//! (`f64`, `f32`) the dense engine is generic over.
//!
//! The paper's algorithm is precision-agnostic — what changes with the
//! element type is (a) SIMD width (twice the lanes in f32, which is the
//! whole point of the mixed-precision factor + refine pipeline) and
//! (b) the unit roundoff that the §8.1 refinement loop must recover
//! from. Everything precision-specific is funnelled through this trait:
//! the per-ISA microkernel table, the probe counters a kernel charges,
//! and the per-worker scratch arena used by parallel strips.
//!
//! The trait is sealed: the kernel engine monomorphizes over exactly
//! these two types, and the determinism contract ("fixed kernel ⇒
//! bitwise identical across thread counts") is only audited for them.

use crate::kernel::{self, Isa, MicroFn};
use crate::workspace::Workspace;
use bs_probe::metrics::Counter;

mod sealed {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for f32 {}
}

/// Element type of the dense/Toeplitz engine: `f64` or `f32`.
///
/// Generic numeric code must use only the operations exposed here (plus
/// the `std::ops` bounds), so that the `f64` instantiation performs the
/// *identical* operation sequence the pre-generic code did — keeping
/// pure-f64 results bitwise unchanged.
pub trait Scalar:
    sealed::Sealed
    + Copy
    + Default
    + Send
    + Sync
    + 'static
    + std::fmt::Debug
    + std::fmt::Display
    + std::fmt::LowerExp
    + PartialEq
    + PartialOrd
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
    + std::ops::AddAssign
    + std::ops::SubAssign
    + std::ops::MulAssign
    + std::ops::DivAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Unit roundoff of this type, expressed in f64 (drives the
    /// mixed-precision residual-bound bookkeeping).
    const EPSILON: f64;
    /// Stable lowercase name (`"f64"` / `"f32"`) for CLI reports,
    /// bench records and metrics.
    const NAME: &'static str;
    /// Element size in bytes (BytesMoved accounting).
    const BYTES: usize;

    /// Lossy conversion from f64 (identity for `f64`; the demotion step
    /// of the mixed-precision pipeline for `f32`).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to f64 (identity for `f64`; the promotion
    /// step before iterative refinement for `f32`).
    fn to_f64(self) -> f64;

    /// `|self|`.
    fn abs(self) -> Self;
    /// `sqrt(self)`.
    fn sqrt(self) -> Self;
    /// IEEE `max` as `f64::max` defines it.
    fn max(self, other: Self) -> Self;
    /// IEEE `min` as `f64::min` defines it.
    fn min(self, other: Self) -> Self;
    /// `self.is_finite()`.
    fn is_finite(self) -> bool;
    /// Total order (for pivot search / `iamax`).
    fn total_cmp(&self, other: &Self) -> std::cmp::Ordering;
    /// `self.signum()`.
    fn signum(self) -> Self;

    /// The microkernel for `isa` at this precision. An ISA with no
    /// kernel at this precision degrades to the portable one.
    #[doc(hidden)]
    fn micro_for(isa: Isa) -> MicroFn<Self>;
    /// Rows of `C` the [`Scalar::micro_for`] kernel covers per call —
    /// always a multiple of the packed panel height `MR`, so a
    /// double-height kernel reads two adjacent panels.
    #[doc(hidden)]
    fn micro_rows(isa: Isa) -> usize;
    /// The probe counter blocked GEMM charges its flops to at this
    /// precision (per-ISA for f64, the aggregate f32 counter for f32).
    fn kernel_flops_counter(isa: Isa) -> Counter;
    /// The probe counter blocked GEMM charges its wall-time to.
    fn kernel_nanos_counter(isa: Isa) -> Counter;

    /// Hand `f` this thread's pooled worker [`Workspace`] at this
    /// precision (parallel strips borrow scratch without allocating).
    #[doc(hidden)]
    fn with_worker_ws<R>(f: impl FnOnce(&mut Workspace<Self>) -> R) -> R;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: f64 = f64::EPSILON;
    const NAME: &'static str = "f64";
    const BYTES: usize = 8;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f64::min(self, other)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline(always)]
    fn total_cmp(&self, other: &Self) -> std::cmp::Ordering {
        f64::total_cmp(self, other)
    }
    #[inline(always)]
    fn signum(self) -> Self {
        f64::signum(self)
    }

    fn micro_for(isa: Isa) -> MicroFn<Self> {
        kernel::micro_for_f64(isa)
    }
    fn micro_rows(_isa: Isa) -> usize {
        kernel::MR
    }
    fn kernel_flops_counter(isa: Isa) -> Counter {
        isa.flops_counter()
    }
    fn kernel_nanos_counter(isa: Isa) -> Counter {
        isa.nanos_counter()
    }
    #[inline]
    fn with_worker_ws<R>(f: impl FnOnce(&mut Workspace<Self>) -> R) -> R {
        crate::par::with_worker_ws_f64(f)
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: f64 = f32::EPSILON as f64;
    const NAME: &'static str = "f32";
    const BYTES: usize = 4;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f32::min(self, other)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline(always)]
    fn total_cmp(&self, other: &Self) -> std::cmp::Ordering {
        f32::total_cmp(self, other)
    }
    #[inline(always)]
    fn signum(self) -> Self {
        f32::signum(self)
    }

    fn micro_for(isa: Isa) -> MicroFn<Self> {
        kernel::micro_for_f32(isa)
    }
    fn micro_rows(isa: Isa) -> usize {
        kernel::micro_rows_f32(isa)
    }
    fn kernel_flops_counter(_isa: Isa) -> Counter {
        Counter::KernelFlopsF32
    }
    fn kernel_nanos_counter(_isa: Isa) -> Counter {
        Counter::KernelNanosF32
    }
    #[inline]
    fn with_worker_ws<R>(f: impl FnOnce(&mut Workspace<Self>) -> R) -> R {
        crate::par::with_worker_ws_f32(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip_for_f64() {
        let v = 1.2345678901234567_f64;
        assert_eq!(f64::from_f64(v).to_f64(), v);
    }

    #[test]
    fn f32_demotion_rounds() {
        let v = 1.2345678901234567_f64;
        let demoted = f32::from_f64(v);
        assert!((demoted.to_f64() - v).abs() <= f32::EPSILON as f64 * v.abs());
        assert_ne!(demoted.to_f64(), v);
    }

    #[test]
    fn names_and_sizes_are_stable() {
        assert_eq!(<f64 as Scalar>::NAME, "f64");
        assert_eq!(<f32 as Scalar>::NAME, "f32");
        assert_eq!(<f64 as Scalar>::BYTES, 8);
        assert_eq!(<f32 as Scalar>::BYTES, 4);
        assert_eq!(<f32 as Scalar>::EPSILON, f32::EPSILON as f64);
    }

    #[test]
    fn every_isa_resolves_a_microkernel_per_scalar() {
        use crate::kernel::Isa;
        for isa in [Isa::Portable, Isa::Avx2, Isa::Avx512, Isa::Neon] {
            // Unsupported ISAs degrade to portable rather than faulting;
            // the point is that resolution is total for both scalars.
            let _ = <f64 as Scalar>::micro_for(isa);
            let _ = <f32 as Scalar>::micro_for(isa);
        }
    }
}
