//! Level-2 kernels: matrix-vector products, rank-1 updates, triangular
//! solves with a single right-hand side.
//!
//! The paper's first VY form wants two matrix-vector products per step,
//! the second VY form one matvec plus one rank-1 update (§4); these are
//! those primitives.

use crate::blas1;
use crate::flops;
use crate::scalar::Scalar;
use crate::view::{MatMut, MatRef};
use crate::{Error, Result};
use bs_probe::metrics::{self, Counter};

/// `y <- alpha * A x + beta * y`.
pub fn gemv<T: Scalar>(alpha: T, a: MatRef<'_, T>, x: &[T], beta: T, y: &mut [T]) {
    assert_eq!(a.cols(), x.len(), "gemv: A cols vs x len");
    assert_eq!(a.rows(), y.len(), "gemv: A rows vs y len");
    metrics::incr(Counter::Matvecs);
    if beta == T::ZERO {
        y.fill(T::ZERO);
    // bs-lint: allow(float-eq) -- BLAS convention: beta = 1.0 exactly means "skip the scale", not a computed value
    } else if beta != T::ONE {
        blas1::scal(beta, y);
    }
    // Column-major: accumulate one column at a time (axpy per column),
    // which keeps accesses contiguous.
    for j in 0..a.cols() {
        blas1::axpy(alpha * x[j], a.col(j), y);
    }
}

/// `y <- alpha * Aᵀ x + beta * y`.
pub fn gemv_t<T: Scalar>(alpha: T, a: MatRef<'_, T>, x: &[T], beta: T, y: &mut [T]) {
    assert_eq!(a.rows(), x.len(), "gemv_t: A rows vs x len");
    assert_eq!(a.cols(), y.len(), "gemv_t: A cols vs y len");
    metrics::incr(Counter::Matvecs);
    for j in 0..a.cols() {
        let d = blas1::dot(a.col(j), x);
        y[j] = alpha * d
            + if beta == T::ZERO {
                T::ZERO
            } else {
                beta * y[j]
            };
    }
    if beta != T::ZERO {
        flops::add_l2(2 * a.cols() as u64);
    }
}

/// Rank-1 update `A += alpha * x yᵀ`.
pub fn ger<T: Scalar>(alpha: T, x: &[T], y: &[T], mut a: MatMut<'_, T>) {
    assert_eq!(a.rows(), x.len(), "ger: A rows vs x len");
    assert_eq!(a.cols(), y.len(), "ger: A cols vs y len");
    metrics::incr(Counter::Rank1Updates);
    for j in 0..a.cols() {
        blas1::axpy(alpha * y[j], x, a.col_mut(j));
    }
}

/// Symmetric matrix-vector product using only the given triangle of `A`:
/// `y <- alpha * A x + beta * y` with `A = Aᵀ`.
pub fn symv<T: Scalar>(
    uplo: crate::Uplo,
    alpha: T,
    a: MatRef<'_, T>,
    x: &[T],
    beta: T,
    y: &mut [T],
) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "symv: A must be square");
    assert_eq!(x.len(), n);
    assert_eq!(y.len(), n);
    if beta == T::ZERO {
        y.fill(T::ZERO);
    // bs-lint: allow(float-eq) -- BLAS gemv convention: beta exactly 1.0 skips the y rescale; computed betas take the scal path
    } else if beta != T::ONE {
        blas1::scal(beta, y);
    }
    metrics::incr(Counter::Matvecs);
    flops::add_l2(2 * (n * n) as u64);
    match uplo {
        crate::Uplo::Lower => {
            for j in 0..n {
                let ajj = a.get(j, j);
                let mut t = ajj * x[j];
                for i in j + 1..n {
                    let aij = a.get(i, j);
                    y[i] += alpha * aij * x[j];
                    t += aij * x[i];
                }
                y[j] += alpha * t;
            }
        }
        crate::Uplo::Upper => {
            for j in 0..n {
                let ajj = a.get(j, j);
                let mut t = ajj * x[j];
                for i in 0..j {
                    let aij = a.get(i, j);
                    y[i] += alpha * aij * x[j];
                    t += aij * x[i];
                }
                y[j] += alpha * t;
            }
        }
    }
}

/// Solve `L x = b` (unit or non-unit lower triangle) in place in `b`.
pub fn trsv_lower<T: Scalar>(a: MatRef<'_, T>, b: &mut [T], unit_diag: bool) -> Result<()> {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    assert_eq!(b.len(), n);
    metrics::incr(Counter::TriangularSolves);
    flops::add_l2((n * n) as u64);
    for j in 0..n {
        if !unit_diag {
            let d = a.get(j, j);
            if d == T::ZERO {
                return Err(Error::SingularTriangle { index: j });
            }
            b[j] /= d;
        }
        let bj = b[j];
        if bj != T::ZERO {
            let col = a.col(j);
            for i in j + 1..n {
                b[i] -= bj * col[i];
            }
        }
    }
    Ok(())
}

/// Solve `U x = b` (non-unit upper triangle) in place in `b`.
pub fn trsv_upper<T: Scalar>(a: MatRef<'_, T>, b: &mut [T]) -> Result<()> {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    assert_eq!(b.len(), n);
    metrics::incr(Counter::TriangularSolves);
    flops::add_l2((n * n) as u64);
    for j in (0..n).rev() {
        let d = a.get(j, j);
        if d == T::ZERO {
            return Err(Error::SingularTriangle { index: j });
        }
        b[j] /= d;
        let bj = b[j];
        if bj != T::ZERO {
            let col = a.col(j);
            for i in 0..j {
                b[i] -= bj * col[i];
            }
        }
    }
    Ok(())
}

/// Solve `Lᵀ x = b` with `L` lower triangular, in place in `b`.
pub fn trsv_lower_t<T: Scalar>(a: MatRef<'_, T>, b: &mut [T]) -> Result<()> {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    assert_eq!(b.len(), n);
    metrics::incr(Counter::TriangularSolves);
    flops::add_l2((n * n) as u64);
    for j in (0..n).rev() {
        let col = a.col(j);
        let mut s = b[j];
        for i in j + 1..n {
            s -= col[i] * b[i];
        }
        let d = col[j];
        if d == T::ZERO {
            return Err(Error::SingularTriangle { index: j });
        }
        b[j] = s / d;
    }
    Ok(())
}

/// Solve `Uᵀ x = b` with `U` upper triangular, in place in `b`.
pub fn trsv_upper_t<T: Scalar>(a: MatRef<'_, T>, b: &mut [T]) -> Result<()> {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    assert_eq!(b.len(), n);
    metrics::incr(Counter::TriangularSolves);
    flops::add_l2((n * n) as u64);
    for j in 0..n {
        let col = a.col(j);
        let mut s = b[j];
        for i in 0..j {
            s -= col[i] * b[i];
        }
        let d = col[j];
        if d == T::ZERO {
            return Err(Error::SingularTriangle { index: j });
        }
        b[j] = s / d;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Matrix;

    fn a_3x2() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]])
    }

    #[test]
    fn gemv_plain() {
        let a = a_3x2();
        let x = [1.0, -1.0];
        let mut y = [100.0, 100.0, 100.0];
        gemv(1.0, a.rf(), &x, 0.0, &mut y);
        assert_eq!(y, [-1.0, -1.0, -1.0]);
    }

    #[test]
    fn gemv_with_beta() {
        let a = a_3x2();
        let x = [1.0, 0.0];
        let mut y = [1.0, 1.0, 1.0];
        gemv(2.0, a.rf(), &x, 3.0, &mut y);
        assert_eq!(y, [5.0, 9.0, 13.0]);
    }

    #[test]
    fn gemv_t_matches_transpose() {
        let a = a_3x2();
        let at = a.transpose();
        let x = [1.0, 2.0, 3.0];
        let mut y1 = [0.0, 0.0];
        let mut y2 = [0.0, 0.0];
        gemv_t(1.0, a.rf(), &x, 0.0, &mut y1);
        gemv(1.0, at.rf(), &x, 0.0, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn ger_rank1() {
        let mut a = Matrix::zeros(2, 3);
        ger(2.0, &[1.0, 2.0], &[1.0, 10.0, 100.0], a.mt());
        assert_eq!(a[(0, 0)], 2.0);
        assert_eq!(a[(1, 2)], 400.0);
    }

    #[test]
    fn symv_uses_one_triangle() {
        // Full symmetric matrix.
        let full = Matrix::from_rows(&[&[2.0, 1.0, 0.5], &[1.0, 3.0, -1.0], &[0.5, -1.0, 4.0]]);
        // Store only the lower triangle; junk in the upper.
        let mut low = full.clone();
        low[(0, 1)] = f64::NAN;
        low[(0, 2)] = f64::NAN;
        low[(1, 2)] = f64::NAN;
        let x = [1.0, 2.0, 3.0];
        let mut want = [0.0; 3];
        gemv(1.0, full.rf(), &x, 0.0, &mut want);
        let mut got = [0.0; 3];
        symv(crate::Uplo::Lower, 1.0, low.rf(), &x, 0.0, &mut got);
        for i in 0..3 {
            assert!((got[i] - want[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn trsv_round_trips() {
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[3.0, 4.0]]);
        let x = [1.0, 2.0];
        let mut b = [0.0, 0.0];
        gemv(1.0, l.rf(), &x, 0.0, &mut b);
        trsv_lower(l.rf(), &mut b, false).unwrap();
        assert!((b[0] - 1.0).abs() < 1e-14 && (b[1] - 2.0).abs() < 1e-14);

        let u = l.transpose();
        let mut b2 = [0.0, 0.0];
        gemv(1.0, u.rf(), &x, 0.0, &mut b2);
        trsv_upper(u.rf(), &mut b2).unwrap();
        assert!((b2[0] - 1.0).abs() < 1e-14 && (b2[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn trsv_transposed_variants() {
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[3.0, 4.0]]);
        let u = Matrix::from_rows(&[&[2.0, 5.0], &[0.0, 4.0]]);
        let x = [1.0, -2.0];

        let lt = l.transpose();
        let mut b = [0.0, 0.0];
        gemv(1.0, lt.rf(), &x, 0.0, &mut b);
        trsv_lower_t(l.rf(), &mut b).unwrap();
        assert!((b[0] - 1.0).abs() < 1e-14 && (b[1] + 2.0).abs() < 1e-14);

        let ut = u.transpose();
        let mut b2 = [0.0, 0.0];
        gemv(1.0, ut.rf(), &x, 0.0, &mut b2);
        trsv_upper_t(u.rf(), &mut b2).unwrap();
        assert!((b2[0] - 1.0).abs() < 1e-14 && (b2[1] + 2.0).abs() < 1e-14);
    }

    #[test]
    fn trsv_reports_singularity() {
        let l = Matrix::from_rows(&[&[0.0, 0.0], &[3.0, 4.0]]);
        let mut b = [1.0, 1.0];
        assert_eq!(
            trsv_lower(l.rf(), &mut b, false),
            Err(crate::Error::SingularTriangle { index: 0 })
        );
    }

    #[test]
    fn trsv_unit_diag_ignores_diagonal() {
        // Diagonal entries deliberately wrong; unit_diag must ignore them.
        let l = Matrix::from_rows(&[&[9.0, 0.0], &[3.0, 9.0]]);
        let mut b = [1.0, 5.0];
        trsv_lower(l.rf(), &mut b, true).unwrap();
        assert_eq!(b, [1.0, 2.0]);
    }
}
