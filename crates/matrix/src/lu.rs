//! LU factorization with partial pivoting.
//!
//! Used as the general-purpose dense solver for verification (computing
//! reference solutions and `‖T⁻¹‖` estimates in the perturbation analysis
//! of §8) — the Schur algorithm itself never calls this.

use crate::dense::Matrix;
use crate::flops;
use crate::{Error, Result};

/// Packed LU factors of a square matrix, `P A = L U`.
pub struct LuFactors {
    /// Unit-lower `L` (strict part) and `U` packed in one matrix.
    pub lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    pub perm: Vec<usize>,
    /// Sign of the permutation (`+1`/`-1`), so `det` is easy.
    pub sign: f64,
}

/// Factor `P A = L U` with partial (row) pivoting.
pub fn lu_factor(a: &Matrix) -> Result<LuFactors> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "lu: matrix must be square");
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;
    flops::add(2 * (n * n * n) as u64 / 3);
    for k in 0..n {
        // Pivot search in column k.
        let mut piv = k;
        let mut pmax = lu[(k, k)].abs();
        for i in k + 1..n {
            let v = lu[(i, k)].abs();
            if v > pmax {
                pmax = v;
                piv = i;
            }
        }
        if pmax == 0.0 {
            return Err(Error::SingularPivot {
                index: k,
                pivot: 0.0,
            });
        }
        if piv != k {
            for j in 0..n {
                let t = lu[(k, j)];
                lu[(k, j)] = lu[(piv, j)];
                lu[(piv, j)] = t;
            }
            perm.swap(k, piv);
            sign = -sign;
        }
        let d = lu[(k, k)];
        for i in k + 1..n {
            let l = lu[(i, k)] / d;
            lu[(i, k)] = l;
            if l != 0.0 {
                for j in k + 1..n {
                    let v = lu[(k, j)];
                    lu[(i, j)] -= l * v;
                }
            }
        }
    }
    Ok(LuFactors { lu, perm, sign })
}

impl LuFactors {
    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        assert_eq!(b.len(), n);
        // Apply the permutation, then forward/back substitution.
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        crate::blas2::trsv_lower(self.lu.rf(), &mut x, true)?;
        crate::blas2::trsv_upper(self.lu.rf(), &mut x)?;
        Ok(x)
    }

    /// Solve `Aᵀ x = b` (needed by the 1-norm condition estimator).
    pub fn solve_transposed(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        assert_eq!(b.len(), n);
        // Aᵀ = Uᵀ Lᵀ Pᵀ... solve Uᵀ y = b, Lᵀ z = y, x = Pᵀ z.
        let mut y = b.to_vec();
        crate::blas2::trsv_upper_t(self.lu.rf(), &mut y)?;
        // Lᵀ with unit diagonal.
        let n2 = y.len();
        for j in (0..n2).rev() {
            let mut s = y[j];
            for i in j + 1..n2 {
                s -= self.lu[(i, j)] * y[i];
            }
            y[j] = s;
        }
        flops::add((n2 * n2) as u64);
        let mut x = vec![0.0; n];
        for (i, &p) in self.perm.iter().enumerate() {
            x[p] = y[i];
        }
        Ok(x)
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.rows();
        let mut d = self.sign;
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn testmat(n: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(n, n, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 2001) as f64 - 1000.0) / 500.0
        })
    }

    #[test]
    fn solve_recovers_known_solution() {
        for &n in &[1usize, 2, 5, 12, 33] {
            let a = testmat(n, n as u64 + 3);
            let x_true: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
            let mut b = vec![0.0; n];
            crate::blas2::gemv(1.0, a.rf(), &x_true, 0.0, &mut b);
            let f = lu_factor(&a).unwrap();
            let x = f.solve(&b).unwrap();
            for i in 0..n {
                assert!((x[i] - x_true[i]).abs() < 1e-8 * n as f64, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn transposed_solve() {
        let n = 10;
        let a = testmat(n, 77);
        let at = a.transpose();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 2.0).collect();
        let mut b = vec![0.0; n];
        crate::blas2::gemv(1.0, at.rf(), &x_true, 0.0, &mut b);
        let f = lu_factor(&a).unwrap();
        let x = f.solve_transposed(&b).unwrap();
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-9, "i={i}");
        }
    }

    #[test]
    fn det_of_known_matrix() {
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[3.0, 4.0]]); // det = -6, needs pivoting
        let f = lu_factor(&a).unwrap();
        assert!((f.det() + 6.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            lu_factor(&a),
            Err(Error::SingularPivot { index: 1, .. })
        ));
    }
}
