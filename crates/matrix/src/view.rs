//! Borrowed matrix views.
//!
//! `MatRef`/`MatMut` describe a `rows x cols` window into column-major
//! storage with column stride `cstride` (row stride is always 1, so each
//! column is contiguous). Views are how the kernels address sub-blocks of
//! the Schur generator without copying.

use crate::dense::Matrix;
use crate::scalar::Scalar;

/// Immutable view into column-major storage.
#[derive(Clone, Copy)]
pub struct MatRef<'a, T: Scalar = f64> {
    data: &'a [T],
    rows: usize,
    cols: usize,
    cstride: usize,
}

/// Mutable view into column-major storage.
pub struct MatMut<'a, T: Scalar = f64> {
    data: &'a mut [T],
    rows: usize,
    cols: usize,
    cstride: usize,
}

#[inline]
fn required_len(rows: usize, cols: usize, cstride: usize) -> usize {
    if rows == 0 || cols == 0 {
        0
    } else {
        (cols - 1) * cstride + rows
    }
}

impl<'a, T: Scalar> MatRef<'a, T> {
    /// Construct from raw parts. `data` must hold at least
    /// `(cols-1)*cstride + rows` elements.
    #[inline]
    pub fn from_parts(data: &'a [T], rows: usize, cols: usize, cstride: usize) -> Self {
        assert!(
            cstride >= rows || cols <= 1,
            "column stride smaller than rows"
        );
        assert!(
            data.len() >= required_len(rows, cols, cstride),
            "backing slice too short: {} < {}",
            data.len(),
            required_len(rows, cols, cstride)
        );
        MatRef {
            data,
            rows,
            cols,
            cstride,
        }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn cstride(&self) -> usize {
        self.cstride
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.cstride]
    }

    /// Column `j` as a contiguous slice of length `rows`.
    #[inline]
    pub fn col(&self, j: usize) -> &'a [T] {
        debug_assert!(j < self.cols);
        &self.data[j * self.cstride..j * self.cstride + self.rows]
    }

    /// Sub-view at `(row, col)` of shape `nrows x ncols`.
    #[inline]
    pub fn sub(&self, row: usize, col: usize, nrows: usize, ncols: usize) -> MatRef<'a, T> {
        assert!(row + nrows <= self.rows, "row range out of bounds");
        assert!(col + ncols <= self.cols, "col range out of bounds");
        let offset = row + col * self.cstride;
        let end = offset + required_len(nrows, ncols, self.cstride);
        MatRef {
            data: &self.data[offset..end.max(offset)],
            rows: nrows,
            cols: ncols,
            cstride: self.cstride,
        }
    }

    /// Copy into an owned [`Matrix`].
    pub fn to_matrix(&self) -> Matrix<T> {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for j in 0..self.cols {
            out.col_mut(j).copy_from_slice(self.col(j));
        }
        out
    }
}

impl<'a, T: Scalar> MatMut<'a, T> {
    /// Construct from raw parts; same contract as [`MatRef::from_parts`].
    #[inline]
    pub fn from_parts(data: &'a mut [T], rows: usize, cols: usize, cstride: usize) -> Self {
        assert!(
            cstride >= rows || cols <= 1,
            "column stride smaller than rows"
        );
        assert!(
            data.len() >= required_len(rows, cols, cstride),
            "backing slice too short: {} < {}",
            data.len(),
            required_len(rows, cols, cstride)
        );
        MatMut {
            data,
            rows,
            cols,
            cstride,
        }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn cstride(&self) -> usize {
        self.cstride
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.cstride]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.cstride] = v;
    }

    /// Column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[T] {
        debug_assert!(j < self.cols);
        &self.data[j * self.cstride..j * self.cstride + self.rows]
    }

    /// Column `j` as a contiguous mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        debug_assert!(j < self.cols);
        let s = self.cstride;
        &mut self.data[j * s..j * s + self.rows]
    }

    /// Reborrow immutably.
    #[inline]
    pub fn rb(&self) -> MatRef<'_, T> {
        MatRef {
            data: self.data,
            rows: self.rows,
            cols: self.cols,
            cstride: self.cstride,
        }
    }

    /// Reborrow mutably with a shorter lifetime.
    #[inline]
    pub fn rb_mut(&mut self) -> MatMut<'_, T> {
        MatMut {
            data: self.data,
            rows: self.rows,
            cols: self.cols,
            cstride: self.cstride,
        }
    }

    /// Consume the view and return a sub-view (keeps the original lifetime).
    #[inline]
    pub fn sub_move(self, row: usize, col: usize, nrows: usize, ncols: usize) -> MatMut<'a, T> {
        assert!(row + nrows <= self.rows, "row range out of bounds");
        assert!(col + ncols <= self.cols, "col range out of bounds");
        let offset = row + col * self.cstride;
        let end = offset + required_len(nrows, ncols, self.cstride);
        MatMut {
            data: &mut self.data[offset..end.max(offset)],
            rows: nrows,
            cols: ncols,
            cstride: self.cstride,
        }
    }

    /// Shorter-lifetime sub-view (borrows `self`).
    #[inline]
    pub fn sub_mut(&mut self, row: usize, col: usize, nrows: usize, ncols: usize) -> MatMut<'_, T> {
        self.rb_mut().sub_move(row, col, nrows, ncols)
    }

    /// Split into disjoint left (`..col`) and right (`col..`) column ranges.
    #[inline]
    pub fn split_at_col(self, col: usize) -> (MatMut<'a, T>, MatMut<'a, T>) {
        assert!(col <= self.cols);
        let rows = self.rows;
        let cstride = self.cstride;
        let rcols = self.cols - col;
        let split = col * cstride;
        // The left part only needs elements below `split`; the right part
        // starts exactly at `split`.
        let (l, r) = self.data.split_at_mut(split);
        (
            MatMut {
                data: l,
                rows,
                cols: col,
                cstride,
            },
            MatMut {
                data: r,
                rows,
                cols: rcols,
                cstride,
            },
        )
    }

    /// Copy every element from `src` (shapes must match).
    pub fn copy_from(&mut self, src: MatRef<'_, T>) {
        assert_eq!((self.rows, self.cols), (src.rows(), src.cols()));
        for j in 0..self.cols {
            self.col_mut(j).copy_from_slice(src.col(j));
        }
    }

    /// Set every element to `v`.
    pub fn fill(&mut self, v: T) {
        for j in 0..self.cols {
            self.col_mut(j).fill(v);
        }
    }

    /// Copy into an owned [`Matrix`].
    pub fn to_matrix(&self) -> Matrix<T> {
        self.rb().to_matrix()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_fn(4, 5, |i, j| (i * 100 + j) as f64)
    }

    #[test]
    fn full_view_round_trips() {
        let m = sample();
        assert_eq!(m.rf().to_matrix(), m);
    }

    #[test]
    fn sub_view_indexes_correctly() {
        let m = sample();
        let v = m.sub(1, 2, 2, 3);
        assert_eq!(v.get(0, 0), m[(1, 2)]);
        assert_eq!(v.get(1, 2), m[(2, 4)]);
    }

    #[test]
    fn sub_view_col_slice() {
        let m = sample();
        let v = m.sub(2, 1, 2, 2);
        assert_eq!(v.col(0), &[m[(2, 1)], m[(3, 1)]]);
    }

    #[test]
    fn mut_view_set_get() {
        let mut m = sample();
        {
            let mut v = m.sub_mut(0, 0, 2, 2);
            v.set(1, 1, -5.0);
        }
        assert_eq!(m[(1, 1)], -5.0);
    }

    #[test]
    fn split_at_col_is_disjoint_and_aligned() {
        let mut m = sample();
        let orig = m.clone();
        let (mut l, mut r) = m.mt().split_at_col(2);
        assert_eq!(l.cols(), 2);
        assert_eq!(r.cols(), 3);
        assert_eq!(l.get(3, 1), orig[(3, 1)]);
        assert_eq!(r.get(0, 0), orig[(0, 2)]);
        l.set(0, 0, 7.0);
        r.set(0, 0, 8.0);
        assert_eq!(m[(0, 0)], 7.0);
        assert_eq!(m[(0, 2)], 8.0);
    }

    #[test]
    fn copy_from_copies_subblock() {
        let src = sample();
        let mut dst = Matrix::zeros(2, 2);
        dst.mt().copy_from(src.sub(1, 1, 2, 2));
        assert_eq!(dst[(0, 0)], src[(1, 1)]);
        assert_eq!(dst[(1, 1)], src[(2, 2)]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_sub_panics() {
        let m = sample();
        let _ = m.sub(3, 3, 3, 3);
    }
}
