//! Thread-local floating-point operation counters.
//!
//! The reproduced paper argues its representation choices with explicit
//! flop counts (eqs. 25-32). Every kernel in this workspace reports the
//! flops it performs here, *once per call* (not per element), so the
//! counter costs nothing measurable and the analytic formulas in
//! `bs-perfmodel` can be validated against instrumented reality.

use std::cell::Cell;

thread_local! {
    static FLOPS: Cell<u64> = const { Cell::new(0) };
}

/// Add `n` flops to the current thread's counter.
#[inline]
pub fn add(n: u64) {
    FLOPS.with(|f| f.set(f.get() + n));
}

/// Read the current thread's counter.
#[inline]
pub fn get() -> u64 {
    FLOPS.with(|f| f.get())
}

/// Reset the current thread's counter to zero.
#[inline]
pub fn reset() {
    FLOPS.with(|f| f.set(0));
}

/// Run `f` and return `(result, flops performed by f on this thread)`.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = get();
    let out = f();
    (out, get() - before)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        reset();
        add(10);
        add(5);
        assert_eq!(get(), 15);
        reset();
        assert_eq!(get(), 0);
    }

    #[test]
    fn measure_reports_delta_only() {
        reset();
        add(100);
        let ((), d) = measure(|| add(42));
        assert_eq!(d, 42);
        assert_eq!(get(), 142);
    }

    #[test]
    fn counters_are_thread_local() {
        reset();
        add(7);
        let handle = std::thread::spawn(|| {
            add(1);
            get()
        });
        assert_eq!(handle.join().unwrap(), 1);
        assert_eq!(get(), 7);
    }
}
