//! Flop counters, backed by the `bs-probe` metrics registry.
//!
//! The reproduced paper argues its representation choices with explicit
//! flop counts (eqs. 25-32). Every kernel in this workspace reports the
//! flops it performs here, *once per call* (not per element), so the
//! counter costs nothing measurable and the analytic formulas in
//! `bs-perfmodel` can be validated against instrumented reality.
//!
//! This module is now a shim over [`bs_probe::metrics`]: counts land in
//! per-thread atomic slots, categorized by BLAS level. The historical
//! API is preserved — [`add`]/[`get`]/[`reset`]/[`measure`] still see
//! only the *current thread's* flops, exactly like the old thread-local
//! `Cell` — while [`total`] aggregates every thread's contribution
//! (what the parallel kernels' worker threads recorded included).

use bs_probe::metrics::{self, Counter};

const FLOP_COUNTERS: [Counter; 4] = [
    Counter::FlopsBlas1,
    Counter::FlopsBlas2,
    Counter::FlopsBlas3,
    Counter::FlopsOther,
];

/// Add `n` uncategorized flops to the current thread's counter.
#[inline]
pub fn add(n: u64) {
    metrics::add(Counter::FlopsOther, n);
}

/// Add `n` level-1 (vector kernel) flops.
#[inline]
pub fn add_l1(n: u64) {
    metrics::add(Counter::FlopsBlas1, n);
}

/// Add `n` level-2 (matrix-vector kernel) flops.
#[inline]
pub fn add_l2(n: u64) {
    metrics::add(Counter::FlopsBlas2, n);
}

/// Add `n` level-3 (matrix-matrix kernel) flops.
#[inline]
pub fn add_l3(n: u64) {
    metrics::add(Counter::FlopsBlas3, n);
}

/// Read the current thread's counter (all categories).
#[inline]
pub fn get() -> u64 {
    FLOP_COUNTERS.iter().map(|&c| metrics::local_get(c)).sum()
}

/// Reset the current thread's counter to zero (all categories).
/// Other threads' slots — and hence their share of [`total`] — are
/// unaffected.
#[inline]
pub fn reset() {
    metrics::local_reset(&FLOP_COUNTERS);
}

/// Sum of flops across *every* thread since the last
/// [`bs_probe::metrics::reset_all`], including parallel-kernel workers.
#[inline]
pub fn total() -> u64 {
    metrics::flops_total()
}

/// Run `f` and return `(result, flops performed by f on this thread)`.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = get();
    let out = f();
    (out, get() - before)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        reset();
        add(10);
        add(5);
        assert_eq!(get(), 15);
        reset();
        assert_eq!(get(), 0);
    }

    #[test]
    fn measure_reports_delta_only() {
        reset();
        add(100);
        let ((), d) = measure(|| add(42));
        assert_eq!(d, 42);
        assert_eq!(get(), 142);
    }

    #[test]
    fn counters_are_thread_local() {
        reset();
        add(7);
        let handle = std::thread::spawn(|| {
            add(1);
            get()
        });
        assert_eq!(handle.join().unwrap(), 1);
        assert_eq!(get(), 7);
    }

    #[test]
    fn categories_all_land_in_get() {
        reset();
        add_l1(1);
        add_l2(2);
        add_l3(4);
        add(8);
        assert_eq!(get(), 15);
    }

    #[test]
    fn total_aggregates_across_worker_threads() {
        // The seed counter lost worker-thread flops entirely; the probe
        // registry keeps every thread's slot, so `total` must grow by the
        // full amount while the local `get` view stays thread-local.
        reset();
        let before_total = total();
        add(3);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    add_l3(1000);
                    assert_eq!(get(), 1000, "worker sees only its own flops");
                });
            }
        });
        assert_eq!(get(), 3, "local view unchanged by workers");
        assert!(
            total() >= before_total + 3 + 4000,
            "total must include all worker contributions"
        );
    }
}
