//! Symmetric eigenvalues: Householder tridiagonalization followed by
//! the implicit-shift QL iteration.
//!
//! Used for *analysis*, not by the Schur algorithm itself: exact
//! condition numbers of the Toeplitz test matrices, inertia
//! cross-checks, and CG iteration-count predictions in the experiment
//! harness.

use crate::dense::Matrix;
use crate::flops;
use crate::{Error, Result};

/// Reduce a symmetric matrix to tridiagonal form, returning the
/// diagonal `d` and sub-diagonal `e` (`e[0]` unused). Only the lower
/// triangle of `a` is referenced.
pub fn tridiagonalize(a: &Matrix) -> (Vec<f64>, Vec<f64>) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "tridiagonalize: matrix must be square");
    let mut w = a.clone();
    let mut d = vec![0.0f64; n];
    let mut e = vec![0.0f64; n];
    flops::add(4 * (n * n * n) as u64 / 3);
    // Classic Householder reduction (EISPACK TRED2 without vectors),
    // working on the lower triangle, from the last row up.
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0f64;
        if l > 0 {
            let mut scale = 0.0;
            for k in 0..=l {
                scale += w[(i, k)].abs();
            }
            if scale == 0.0 {
                e[i] = w[(i, l)];
            } else {
                for k in 0..=l {
                    w[(i, k)] /= scale;
                    h += w[(i, k)] * w[(i, k)];
                }
                let f = w[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                w[(i, l)] = f - g;
                let mut tau = 0.0;
                // u = w[i, 0..=l]; p = A u / h with symmetric A.
                let mut p = vec![0.0f64; l + 1];
                for j in 0..=l {
                    let mut s = 0.0;
                    for k in 0..=j {
                        s += w[(j, k)] * w[(i, k)];
                    }
                    for k in j + 1..=l {
                        s += w[(k, j)] * w[(i, k)];
                    }
                    p[j] = s / h;
                    tau += p[j] * w[(i, j)];
                }
                tau /= 2.0 * h;
                // q = p − tau u ; A ← A − u qᵀ − q uᵀ.
                for j in 0..=l {
                    p[j] -= tau * w[(i, j)];
                }
                for j in 0..=l {
                    for k in 0..=j {
                        let upd = w[(i, j)] * p[k] + p[j] * w[(i, k)];
                        w[(j, k)] -= upd;
                    }
                }
            }
        } else {
            e[i] = w[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    for i in 0..n {
        d[i] = w[(i, i)];
    }
    (d, e)
}

/// Eigenvalues of a symmetric tridiagonal matrix (diagonal `d`,
/// sub-diagonal `e` with `e[0]` unused), ascending. Implicit-shift QL.
pub fn tridiag_eigenvalues(d: &[f64], e: &[f64]) -> Result<Vec<f64>> {
    let n = d.len();
    assert_eq!(e.len(), n);
    let mut d = d.to_vec();
    // Shift the sub-diagonal left (EISPACK convention).
    let mut e: Vec<f64> = {
        let mut v = e[1..].to_vec();
        v.push(0.0);
        v
    };
    flops::add(30 * (n * n) as u64);
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small off-diagonal to split at.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(Error::SingularPivot {
                    index: l,
                    pivot: e[l],
                });
            }
            // Implicit shift from the trailing 2x2.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            let sgn = if g >= 0.0 { r } else { -r };
            g = d[m] - d[l] + e[l] / (g + sgn);
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                f = 0.0;
                let _ = f;
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    d.sort_by(|a, b| a.total_cmp(b));
    Ok(d)
}

/// Eigenvalues of a symmetric dense matrix, ascending.
pub fn sym_eigenvalues(a: &Matrix) -> Result<Vec<f64>> {
    let (d, e) = tridiagonalize(a);
    tridiag_eigenvalues(&d, &e)
}

/// Exact 2-norm condition number of an SPD matrix via its spectrum.
pub fn spd_condition(a: &Matrix) -> Result<f64> {
    let ev = sym_eigenvalues(a)?;
    let lo = ev.first().copied().unwrap_or(0.0);
    let hi = ev.last().copied().unwrap_or(0.0);
    if lo <= 0.0 {
        return Err(Error::NotPositiveDefinite {
            index: 0,
            pivot: lo,
        });
    }
    Ok(hi / lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let mut a = Matrix::zeros(4, 4);
        for (i, v) in [3.0, -1.0, 7.0, 0.5].iter().enumerate() {
            a[(i, i)] = *v;
        }
        let ev = sym_eigenvalues(&a).unwrap();
        let want = [-1.0, 0.5, 3.0, 7.0];
        for i in 0..4 {
            assert!((ev[i] - want[i]).abs() < 1e-12, "i={i}: {}", ev[i]);
        }
    }

    #[test]
    fn two_by_two_closed_form() {
        // [[2, 1], [1, 2]] -> 1 and 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let ev = sym_eigenvalues(&a).unwrap();
        assert!((ev[0] - 1.0).abs() < 1e-12);
        assert!((ev[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn laplacian_has_known_spectrum() {
        // Second-difference matrix: eigenvalues 2 − 2 cos(kπ/(n+1)).
        let n = 12;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                2.0
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let ev = sym_eigenvalues(&a).unwrap();
        for k in 1..=n {
            let want = 2.0 - 2.0 * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!(
                (ev[k - 1] - want).abs() < 1e-10,
                "k={k}: {} vs {want}",
                ev[k - 1]
            );
        }
    }

    #[test]
    fn trace_and_inertia_preserved() {
        let mut state = 0xC0FFEEu64;
        let n = 20;
        let mut a = Matrix::from_fn(n, n, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 1000) as f64 - 500.0) / 250.0
        });
        a.symmetrize();
        let ev = sym_eigenvalues(&a).unwrap();
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let evsum: f64 = ev.iter().sum();
        assert!((trace - evsum).abs() < 1e-9 * trace.abs().max(1.0));
        // Inertia via eigenvalues must match LDLᵀ (when it exists).
        if let Ok(d) = crate::ldlt::ldlt_in_place(a.clone().mt(), 1e-12) {
            let neg_ldlt = d.iter().filter(|&&v| v < 0.0).count();
            let neg_eig = ev.iter().filter(|&&v| v < 0.0).count();
            assert_eq!(neg_ldlt, neg_eig);
        }
    }

    #[test]
    fn spd_condition_of_scaled_identity() {
        let mut a = Matrix::identity(6);
        a[(5, 5)] = 100.0;
        assert!((spd_condition(&a).unwrap() - 100.0).abs() < 1e-9);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(spd_condition(&b).is_err()); // indefinite
    }

    #[test]
    fn matches_power_iteration_extremes() {
        let mut state = 7u64;
        let n = 16;
        let mut b = Matrix::from_fn(n, n, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 1000) as f64) / 1000.0
        });
        // SPD: A = B Bᵀ + I.
        let bt = b.transpose();
        let mut a = Matrix::identity(n);
        let mut bbt = Matrix::zeros(n, n);
        crate::blas3::gemm(
            1.0,
            b.rf(),
            crate::Trans::No,
            bt.rf(),
            crate::Trans::No,
            0.0,
            bbt.mt(),
        );
        a.axpy(1.0, &bbt);
        a.symmetrize();
        b = a.clone();
        let ev = sym_eigenvalues(&a).unwrap();
        let sigma_max = crate::norms::mat_two_estimate(&b, 200);
        assert!(
            (ev[n - 1] - sigma_max).abs() < 1e-6 * sigma_max,
            "{} vs {sigma_max}",
            ev[n - 1]
        );
    }
}
