//! Deterministic interleaving harness for the worker pool's dynamic
//! strip claiming.
//!
//! `par::dispatch` hands every worker the same `(closure, counter)`
//! pair and lets the threads race on `fetch_add` to claim strip
//! indices. The pool's determinism contract says the *output* cannot
//! depend on who wins those races: strips write disjoint column
//! ranges, and each strip computes exactly its sequential content.
//! This module checks that claim not by stressing the scheduler and
//! hoping, but by replaying **every** claim order a set of workers
//! could produce through an instrumented, serialized shim of the
//! claim loop in `par::run_strips`, comparing outputs bitwise.
//!
//! ## Coverage model
//!
//! The claim counter is a single `AtomicUsize` bumped with
//! `fetch_add`, so the k-th successful claim always receives strip
//! index `k` — the scheduler's only freedom is *which worker* wins
//! each claim. A region with `n` strips and `w` workers therefore has
//! exactly `w^n` distinguishable schedules: the words over worker ids
//! saying who claimed strip 0, strip 1, ... Replaying a word serially
//! (claim, then body, in word order) preserves every worker's program
//! order, and because a correct strip body touches only its own
//! strip's data plus the counter, body-level instruction interleaving
//! cannot add observable behaviour beyond the claim order. Exhausting
//! the words exhausts the schedule space.
//!
//! What a divergence means: a body whose output depends on worker
//! identity or claim history — stale per-worker scratch, thread-local
//! accumulation leaking across strips, order-sensitive shared writes —
//! produces bitwise-different output under some word. [`exhaustive`]
//! counts each such word into the `audit_violations` probe counter via
//! [`bs_probe::stability::record_audit_violation`] and reports the
//! first offending schedule.
//!
//! The harness is test infrastructure, but it lives in the library so
//! integration suites and future stress binaries can drive real strip
//! closures through it; everything is `Result`-based (library crates
//! must not panic) and allocation is O(`w^n`) schedule words, gated by
//! [`MAX_SCHEDULES`].

use crate::workspace::Workspace;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Hard cap on the number of schedules [`all_schedules`] enumerates:
/// `w^n` grows geometrically, and past ~1e5 replays the harness stops
/// being a unit-test-speed tool. 4 strips x 2 workers is 16 words;
/// 8 x 4 is already 65536.
pub const MAX_SCHEDULES: usize = 100_000;

/// Why a harness call could not run. The harness never panics: the
/// matrix crate's no-panic contract covers it like any library path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedError {
    /// Zero workers can never claim a strip.
    NoWorkers,
    /// `workers^strips` exceeds [`MAX_SCHEDULES`].
    TooManySchedules { strips: usize, workers: usize },
    /// A schedule word's length differs from the strip count.
    BadWordLength { expected: usize, got: usize },
    /// A schedule word names a worker id `>= workers`.
    BadWorker { worker: usize, workers: usize },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::NoWorkers => write!(f, "interleaving harness needs at least one worker"),
            SchedError::TooManySchedules { strips, workers } => write!(
                f,
                "{workers}^{strips} schedules exceed the harness cap of {MAX_SCHEDULES}"
            ),
            SchedError::BadWordLength { expected, got } => write!(
                f,
                "schedule word has {got} claims but the region has {expected} strips"
            ),
            SchedError::BadWorker { worker, workers } => write!(
                f,
                "schedule word names worker {worker} but only {workers} exist"
            ),
        }
    }
}

impl std::error::Error for SchedError {}

/// Every claim order `strips` strips can see from `workers` workers:
/// the `workers^strips` base-`workers` words, in lexicographic order
/// (`word[k]` = the worker that wins the k-th claim, i.e. strip `k`).
/// The all-zeros word is the sequential baseline: worker 0 claims
/// everything in ascending order, exactly like an inline run.
pub fn all_schedules(strips: usize, workers: usize) -> Result<Vec<Vec<usize>>, SchedError> {
    if workers == 0 {
        return Err(SchedError::NoWorkers);
    }
    let mut count: usize = 1;
    for _ in 0..strips {
        count = match count.checked_mul(workers) {
            Some(c) if c <= MAX_SCHEDULES => c,
            _ => return Err(SchedError::TooManySchedules { strips, workers }),
        };
    }
    let mut out = Vec::with_capacity(count);
    for word_idx in 0..count {
        let mut word = vec![0usize; strips];
        let mut rest = word_idx;
        for slot in word.iter_mut().rev() {
            *slot = rest % workers;
            rest /= workers;
        }
        out.push(word);
    }
    Ok(out)
}

/// What one [`replay`] observed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Replay {
    /// Strip indices each worker claimed, in its claim order. Strips
    /// partition across workers: every index appears exactly once.
    pub claims: Vec<Vec<usize>>,
    /// Workers whose arena had a non-zero checkout balance after the
    /// region, as `(worker, outstanding)`. A correct strip body
    /// returns every buffer it takes — the pool's zero-allocation
    /// steady state depends on it — so this must be empty.
    pub unbalanced: Vec<(usize, i64)>,
}

/// Replay one schedule word through the instrumented claim loop.
///
/// The shim performs the real pool's claim — the same `fetch_add` on
/// a live `AtomicUsize`, the same `>= strips` exit test — but
/// serialized: the word decides which worker wins each claim, and the
/// claimed strip's `body` runs to completion before the next claim.
/// Each worker gets its own [`Workspace`] arena standing in for the
/// pool's per-thread scratch, so bodies that misuse worker-local
/// state are observable. `body(worker, strip, arena)` must mirror the
/// closure the region would hand `par::run_indexed`.
pub fn replay<F>(
    word: &[usize],
    workers: usize,
    strips: usize,
    mut body: F,
) -> Result<Replay, SchedError>
where
    F: FnMut(usize, usize, &mut Workspace),
{
    if workers == 0 {
        return Err(SchedError::NoWorkers);
    }
    if word.len() != strips {
        return Err(SchedError::BadWordLength {
            expected: strips,
            got: word.len(),
        });
    }
    if let Some(&worker) = word.iter().find(|&&w| w >= workers) {
        return Err(SchedError::BadWorker { worker, workers });
    }
    let next = AtomicUsize::new(0);
    let mut claims: Vec<Vec<usize>> = (0..workers).map(|_| Vec::new()).collect();
    let mut arenas: Vec<Workspace> = (0..workers).map(|_| Workspace::new()).collect();
    for &w in word {
        // The real claim from `par::run_strips`, serialized: the word
        // has exactly `strips` entries, so the bound test never fires
        // here; it fires on the terminal claims below, as each worker
        // would observe before exiting its loop.
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= strips {
            break;
        }
        claims[w].push(i);
        body(w, i, &mut arenas[w]);
    }
    // Terminal claims: every worker's last `fetch_add` observes an
    // index past the end and exits — the counter is monotonic, so once
    // the word is consumed no schedule can revive a claim.
    let mut spurious = 0usize;
    for _ in 0..workers {
        if next.fetch_add(1, Ordering::Relaxed) < strips {
            spurious += 1;
        }
    }
    let _ = spurious; // structurally impossible; kept for shim fidelity
    let unbalanced: Vec<(usize, i64)> = arenas
        .iter()
        .enumerate()
        .filter(|(_, a)| a.outstanding() != 0)
        .map(|(w, a)| (w, a.outstanding()))
        .collect();
    Ok(Replay { claims, unbalanced })
}

/// What [`exhaustive`] found across the whole schedule space.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Report {
    /// Number of schedule words replayed (`workers^strips`).
    pub schedules: usize,
    /// Words whose output differed bitwise from the sequential
    /// baseline. Zero for a correct region.
    pub divergences: usize,
    /// The lexicographically first diverging word, for reproduction.
    pub first_divergent: Option<Vec<usize>>,
    /// Words whose replay left some worker's arena checkout
    /// unbalanced (as reported by the `trial` closure; see
    /// [`exhaustive`]). Zero for a correct region.
    pub unbalanced: usize,
}

/// Outcome of one trial run under a single schedule word: the output
/// bits plus whether every worker's arena balanced its checkouts.
pub struct Trial {
    /// Bit patterns of the region's output (`f64::to_bits` of every
    /// entry, in a fixed traversal order).
    pub bits: Vec<u64>,
    /// `Replay::unbalanced` from the word's replay.
    pub unbalanced: Vec<(usize, i64)>,
}

/// Replay the region under **every** schedule of `strips` strips on
/// `workers` workers and compare outputs bitwise against the
/// sequential baseline (the all-zeros word).
///
/// `trial` runs the region once under the given word — typically by
/// allocating a fresh output, calling [`replay`] with the real strip
/// body, and returning the output's bit patterns — and is called once
/// per word plus once for the baseline. Any divergence or unbalanced
/// checkout is recorded into the `audit_violations` probe counter via
/// [`bs_probe::stability::record_audit_violation`], so CI harnesses
/// that already watch probe counters see interleaving bugs with no
/// new plumbing.
pub fn exhaustive<F>(strips: usize, workers: usize, mut trial: F) -> Result<Report, SchedError>
where
    F: FnMut(&[usize]) -> Result<Trial, SchedError>,
{
    let words = all_schedules(strips, workers)?;
    let baseline = trial(&vec![0usize; strips])?.bits;
    let mut report = Report {
        schedules: words.len(),
        divergences: 0,
        first_divergent: None,
        unbalanced: 0,
    };
    for word in &words {
        let t = trial(word)?;
        if t.bits != baseline {
            report.divergences += 1;
            if report.first_divergent.is_none() {
                report.first_divergent = Some(word.clone());
            }
            bs_probe::stability::record_audit_violation(
                "interleave_divergence",
                format!(
                    "{strips} strips x {workers} workers: schedule {word:?} \
                     diverges bitwise from the sequential baseline"
                ),
            );
        }
        if !t.unbalanced.is_empty() {
            report.unbalanced += 1;
            bs_probe::stability::record_audit_violation(
                "workspace_imbalance",
                format!(
                    "{strips} strips x {workers} workers: schedule {word:?} \
                     left worker arenas unbalanced: {:?}",
                    t.unbalanced
                ),
            );
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_space_has_w_to_the_n_words() {
        assert_eq!(all_schedules(4, 2).unwrap().len(), 16);
        assert_eq!(all_schedules(5, 2).unwrap().len(), 32);
        assert_eq!(all_schedules(4, 3).unwrap().len(), 81);
        assert_eq!(all_schedules(0, 2).unwrap(), vec![Vec::<usize>::new()]);
        // Words are distinct, full-length, and in-range.
        let words = all_schedules(3, 3).unwrap();
        assert_eq!(words.len(), 27);
        for w in &words {
            assert_eq!(w.len(), 3);
            assert!(w.iter().all(|&x| x < 3));
        }
        let mut dedup = words.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 27);
    }

    #[test]
    fn schedule_space_is_capped_not_exploding() {
        assert_eq!(
            all_schedules(64, 4),
            Err(SchedError::TooManySchedules {
                strips: 64,
                workers: 4
            })
        );
        assert_eq!(all_schedules(3, 0), Err(SchedError::NoWorkers));
    }

    #[test]
    fn replay_partitions_strips_per_the_word() {
        let word = [0usize, 1, 1, 0, 2];
        let mut ran = Vec::new();
        let r = replay(&word, 3, 5, |w, s, _| ran.push((w, s))).unwrap();
        // Claim k always receives strip k; the word names the winner.
        assert_eq!(ran, vec![(0, 0), (1, 1), (1, 2), (0, 3), (2, 4)]);
        assert_eq!(r.claims, vec![vec![0, 3], vec![1, 2], vec![4]]);
        assert!(r.unbalanced.is_empty());
    }

    #[test]
    fn replay_rejects_malformed_words() {
        assert_eq!(
            replay(&[0, 0], 1, 3, |_, _, _| {}),
            Err(SchedError::BadWordLength {
                expected: 3,
                got: 2
            })
        );
        assert_eq!(
            replay(&[0, 2, 0], 2, 3, |_, _, _| {}),
            Err(SchedError::BadWorker {
                worker: 2,
                workers: 2
            })
        );
        assert_eq!(replay(&[], 0, 0, |_, _, _| {}), Err(SchedError::NoWorkers));
    }

    #[test]
    fn replay_reports_unbalanced_worker_arenas() {
        // Worker 1 leaks one checkout; worker 0 balances its own.
        let r = replay(&[0, 1], 2, 2, |w, _, arena| {
            let v = arena.take_vec(8);
            if w == 0 {
                arena.give_vec(v);
            }
        })
        .unwrap();
        assert_eq!(r.unbalanced, vec![(1, 1)]);
    }

    #[test]
    fn exhaustive_flags_claim_history_dependence() {
        use bs_probe::metrics::{self, Counter};
        let before = metrics::total(Counter::AuditViolations);
        // Buggy region: each strip's output depends on how many strips
        // its worker already ran — worker-local state leaking into the
        // answer. Every word except the baseline-equivalent ones must
        // diverge bitwise.
        let report = exhaustive(3, 2, |word| {
            let mut c = [0.0f64; 3];
            let mut seen = [0.0f64; 2];
            replay(word, 2, 3, |w, s, _| {
                c[s] = seen[w];
                seen[w] += 1.0;
            })?;
            Ok(Trial {
                bits: c.iter().map(|x| x.to_bits()).collect(),
                unbalanced: Vec::new(),
            })
        })
        .unwrap();
        assert_eq!(report.schedules, 8);
        assert!(report.divergences > 0, "harness must catch the bug");
        assert!(report.first_divergent.is_some());
        assert!(
            metrics::total(Counter::AuditViolations) >= before + report.divergences as u64,
            "divergences must land in the audit_violations counter"
        );
    }

    #[test]
    fn exhaustive_passes_a_disjoint_region() {
        let report = exhaustive(4, 2, |word| {
            let mut c = [0.0f64; 4];
            replay(word, 2, 4, |_, s, _| {
                c[s] = (s as f64 + 1.0).sqrt();
            })?;
            Ok(Trial {
                bits: c.iter().map(|x| x.to_bits()).collect(),
                unbalanced: Vec::new(),
            })
        })
        .unwrap();
        assert_eq!(report.schedules, 16);
        assert_eq!(report.divergences, 0);
        assert_eq!(report.unbalanced, 0);
    }
}
