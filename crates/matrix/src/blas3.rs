//! Level-3 kernels: general matrix multiply (packed, cache-blocked, with
//! an optional scoped-thread parallel driver), symmetric rank-k update,
//! and triangular solves with multiple right-hand sides.
//!
//! The paper's whole premise is that block algorithms are "rich in
//! level-3 BLAS operations" (§1) and that BLAS3 on larger operands runs
//! at a higher rate than BLAS1/2 on small ones. The blocked `gemm` here
//! reproduces that behaviour on a modern cache hierarchy: a packed
//! BLIS-style loop nest whose `MR x NR` register microkernel is
//! runtime-dispatched to the best SIMD the machine supports (see
//! [`crate::kernel`]), with cache-block extents autotuned from the
//! detected hierarchy (see [`crate::kernel::tuning`]). `syrk` and
//! `trsm` route their bulk work through the same packed engine: `syrk`
//! builds its triangle from packed sub-products, and `trsm` solves in
//! diagonal blocks whose trailing updates are packed GEMMs.

use crate::blas1;
use crate::blas2;
use crate::flops;
use crate::kernel::{self, pack, tuning, Kernel, MR, NR};
use crate::par::{self, ExecPolicy};
use crate::scalar::Scalar;
use crate::view::{MatMut, MatRef};
use crate::workspace::Workspace;
use crate::{Error, Result};
use bs_probe::metrics::{self, Counter};
use std::sync::Mutex;
use std::time::Instant;

/// Transposition flag for `gemm` operands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    No,
    Yes,
}

/// Which triangle of a symmetric/triangular matrix is referenced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Uplo {
    Lower,
    Upper,
}

/// Which side a triangular factor multiplies from in `trsm`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    Left,
    Right,
}

#[inline]
fn op_rows<T: Scalar>(a: MatRef<'_, T>, t: Trans) -> usize {
    match t {
        Trans::No => a.rows(),
        Trans::Yes => a.cols(),
    }
}

#[inline]
fn op_cols<T: Scalar>(a: MatRef<'_, T>, t: Trans) -> usize {
    match t {
        Trans::No => a.cols(),
        Trans::Yes => a.rows(),
    }
}

#[inline]
fn op_get<T: Scalar>(a: MatRef<'_, T>, t: Trans, i: usize, j: usize) -> T {
    match t {
        Trans::No => a.get(i, j),
        Trans::Yes => a.get(j, i),
    }
}

/// Whether a `gemm` of these full-problem dimensions takes the packed
/// path. The packed path only pays when every dimension offers reuse;
/// with any extent below a register-tile's worth, packing traffic
/// dominates and the direct column-axpy loop is faster.
///
/// Shared by the sequential dispatch, the parallel driver, and the
/// calibration harness so all three agree on which kernel a shape runs.
#[inline]
pub(crate) fn uses_packed(m: usize, n: usize, k: usize) -> bool {
    !(m < 16 || n < 16 || k < 16 || m * n * k <= 16 * 16 * 16)
}

/// General matrix multiply: `C <- alpha * op(A) op(B) + beta * C`.
///
/// Shapes: `op(A)` is `m x k`, `op(B)` is `k x n`, `C` is `m x n`.
pub fn gemm<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    ta: Trans,
    b: MatRef<'_, T>,
    tb: Trans,
    beta: T,
    c: MatMut<'_, T>,
) {
    gemm_dispatch(alpha, a, ta, b, tb, beta, c, None);
}

/// [`gemm`] with packing buffers checked out of `ws` instead of heap
/// allocated — the form the warm factorization path uses so repeated
/// multiplies of the same shape allocate nothing.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS gemm signature plus the arena
pub fn gemm_ws<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    ta: Trans,
    b: MatRef<'_, T>,
    tb: Trans,
    beta: T,
    c: MatMut<'_, T>,
    ws: &mut Workspace<T>,
) {
    gemm_dispatch(alpha, a, ta, b, tb, beta, c, Some(ws));
}

#[allow(clippy::too_many_arguments)] // internal driver mirrors the BLAS signature
fn gemm_dispatch<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    ta: Trans,
    b: MatRef<'_, T>,
    tb: Trans,
    beta: T,
    mut c: MatMut<'_, T>,
    ws: Option<&mut Workspace<T>>,
) {
    let m = c.rows();
    let n = c.cols();
    let k = op_cols(a, ta);
    assert_eq!(op_rows(a, ta), m, "gemm: op(A) rows vs C rows");
    assert_eq!(op_rows(b, tb), k, "gemm: op(B) rows vs op(A) cols");
    assert_eq!(op_cols(b, tb), n, "gemm: op(B) cols vs C cols");

    scale_c(beta, c.rb_mut());
    if alpha == T::ZERO || m == 0 || n == 0 || k == 0 {
        return;
    }
    flops::add_l3(2 * (m * n * k) as u64);
    metrics::add(
        Counter::BytesMoved,
        (T::BYTES * (m * k + k * n + 2 * m * n)) as u64,
    );

    if !uses_packed(m, n, k) {
        gemm_naive_acc(alpha, a, ta, b, tb, c);
        return;
    }
    gemm_blocked(alpha, a, ta, b, tb, c, ws, kernel::active::<T>());
}

/// Parallel `gemm` driver under an [`ExecPolicy`]: splits `C` (and
/// `op(B)`) into deterministic column strips and runs the blocked
/// kernel on each strip via the persistent pool. Falls back to the
/// sequential path for sequential policies, small problems, or when
/// already inside a pool dispatch.
///
/// Determinism: the packed/naive kernel choice is made from the *full*
/// problem dimensions (the same predicate [`gemm`] uses), the SIMD
/// microkernel is resolved once here and handed to every strip, and the
/// packed kernel computes each column of `C` independently of how the
/// columns are grouped — so the stripped parallel result is bitwise
/// identical to the monolithic sequential one at every thread count.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS gemm signature plus the policy
pub fn par_gemm_policy<T: Scalar>(
    policy: &ExecPolicy,
    alpha: T,
    a: MatRef<'_, T>,
    ta: Trans,
    b: MatRef<'_, T>,
    tb: Trans,
    beta: T,
    c: MatMut<'_, T>,
) {
    let m = c.rows();
    let n = c.cols();
    let k = op_cols(a, ta);
    let work = m as u128 * n as u128 * k as u128;
    // Same predicate as gemm_dispatch: a problem the sequential path
    // would hand to the naive kernel is never worth stripping (and
    // stripping it would change the kernel choice, breaking bitwise
    // equality with the sequential run).
    let blocked = uses_packed(m, n, k);
    if !blocked
        || policy.threads <= 1
        || par::in_dispatch()
        || work < policy.min_work as u128
        || n < 2 * NR
    {
        gemm(alpha, a, ta, b, tb, beta, c);
        return;
    }
    assert_eq!(op_rows(a, ta), m);
    assert_eq!(op_rows(b, tb), k);
    assert_eq!(op_cols(b, tb), n);

    // Resolve the microkernel once so a concurrent override flip can
    // never mix kernels across this multiply's strips.
    let kern = kernel::active::<T>();
    let width = policy.partition.strip_width(n);
    // Decompose C into disjoint column strips; each strip multiplies the
    // matching columns of op(B). Strip boundaries depend only on (n,
    // partition) — never on the thread count.
    // bs-lint: allow(no-alloc-hot) -- O(strips) strip descriptors at dispatch; the descriptors borrow C, so they cannot live in a pool
    let mut strips: Vec<(usize, MatMut<'_, T>)> = Vec::with_capacity(n.div_ceil(width));
    let mut rest = c;
    let mut start = 0;
    while start < n {
        let w = width.min(n - start);
        let (head, tail) = rest.split_at_col(w);
        strips.push((start, head));
        rest = tail;
        start += w;
    }
    // Flop accounting: each worker charges its own strip on its own
    // thread-local probe slot; read the aggregate with `flops::total`.
    par::for_each_policy(policy, strips, |(j0, cj)| {
        let w = cj.cols();
        let bj = match tb {
            Trans::No => b.sub(0, j0, k, w),
            Trans::Yes => b.sub(j0, 0, w, k),
        };
        let mut cj = cj;
        scale_c(beta, cj.rb_mut());
        if alpha != T::ZERO && m != 0 && w != 0 && k != 0 {
            flops::add_l3(2 * (m * w * k) as u64);
            metrics::add(
                Counter::BytesMoved,
                (T::BYTES * (m * k + k * w + 2 * m * w)) as u64,
            );
            // Pack buffers come from the executing thread's persistent
            // workspace, so warm dispatches allocate nothing.
            par::with_worker_ws(|ws| gemm_blocked(alpha, a, ta, bj, tb, cj, Some(ws), kern));
        }
    });
}

/// [`par_gemm_policy`] with every hardware thread (compatibility shim
/// for callers without a policy).
pub fn par_gemm<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    ta: Trans,
    b: MatRef<'_, T>,
    tb: Trans,
    beta: T,
    c: MatMut<'_, T>,
) {
    par_gemm_policy(&ExecPolicy::max_threads(), alpha, a, ta, b, tb, beta, c);
}

#[inline]
fn scale_c<T: Scalar>(beta: T, mut c: MatMut<'_, T>) {
    // bs-lint: allow(float-eq) -- scale_c fast paths: beta exactly 1.0 (no-op) and 0.0 (fill) are BLAS sentinel values, never computed results
    if beta == T::ONE {
        return;
    }
    if beta == T::ZERO {
        c.fill(T::ZERO);
    } else {
        for j in 0..c.cols() {
            blas1::scal(beta, c.col_mut(j));
        }
    }
}

/// Reference triple loop, accumulating into C (C already scaled by beta).
pub(crate) fn gemm_naive_acc<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    ta: Trans,
    b: MatRef<'_, T>,
    tb: Trans,
    mut c: MatMut<'_, T>,
) {
    let m = c.rows();
    let n = c.cols();
    let k = op_cols(a, ta);
    for j in 0..n {
        for p in 0..k {
            let bpj = alpha * op_get(b, tb, p, j);
            if bpj == T::ZERO {
                continue;
            }
            match ta {
                Trans::No => {
                    // column p of A is contiguous
                    let acol = a.col(p);
                    let ccol = c.col_mut(j);
                    for i in 0..m {
                        ccol[i] += bpj * acol[i];
                    }
                }
                Trans::Yes => {
                    let ccol = c.col_mut(j);
                    for i in 0..m {
                        ccol[i] += bpj * a.get(p, i);
                    }
                }
            }
        }
    }
}

/// Packed, cache-blocked gemm (C already scaled by beta; alpha folded in
/// during packing of A). The register microkernel is `kern` — resolved
/// once by the caller so one multiply never mixes ISAs — and the cache
/// blocking comes from the [`tuning`] autotuner.
#[allow(clippy::too_many_arguments)] // internal engine: BLAS signature plus arena and kernel
pub(crate) fn gemm_blocked<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    ta: Trans,
    b: MatRef<'_, T>,
    tb: Trans,
    mut c: MatMut<'_, T>,
    ws: Option<&mut Workspace<T>>,
    kern: Kernel<T>,
) {
    let m = c.rows();
    let n = c.cols();
    let k = op_cols(a, ta);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    metrics::incr(Counter::KernelDispatches);
    let t0 = Instant::now();
    let bl = tuning::blocking();

    // The packing buffers are the only heap traffic in the kernel; a
    // caller-supplied workspace turns them into pool checkouts. Sized
    // for the problem at hand, not the worst-case cache block, so small
    // multiplies don't drag full-block buffers out of the pool.
    let apack_len = m.min(bl.mc).div_ceil(MR) * MR * k.min(bl.kc);
    let bpack_len = k.min(bl.kc) * n.min(bl.nc).div_ceil(NR) * NR;
    let (mut apack, mut bpack, ws) = match ws {
        Some(ws) => {
            let a = ws.take_vec(apack_len);
            let b = ws.take_vec(bpack_len);
            (a, b, Some(ws))
        }
        // bs-lint: allow(no-alloc-hot) -- fallback for callers without a Workspace; pooled callers take the branch above
        None => (vec![T::ZERO; apack_len], vec![T::ZERO; bpack_len], None),
    };

    let mut jc = 0;
    while jc < n {
        let nc = bl.nc.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = bl.kc.min(k - pc);
            pack::pack_b(&mut bpack, b, tb, pc, jc, kc, nc);
            let mut ic = 0;
            while ic < m {
                let mc = bl.mc.min(m - ic);
                pack::pack_a(&mut apack, a, ta, alpha, ic, pc, mc, kc);
                macro_kernel(&apack, &bpack, mc, nc, kc, c.rb_mut(), ic, jc, kern);
                ic += mc;
            }
            pc += kc;
        }
        jc += nc;
    }
    if let Some(ws) = ws {
        ws.give_vec(apack);
        ws.give_vec(bpack);
    }
    let isa = kern.isa();
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    metrics::add(T::kernel_flops_counter(isa), 2 * (m * n * k) as u64);
    metrics::add(T::kernel_nanos_counter(isa), elapsed_ns);
    bs_probe::histogram::record(bs_probe::histogram::Hist::KernelCallNs, elapsed_ns);
}

#[allow(clippy::too_many_arguments)] // BLIS-style kernels take the full tile geometry
fn macro_kernel<T: Scalar>(
    apack: &[T],
    bpack: &[T],
    mc: usize,
    nc: usize,
    kc: usize,
    mut c: MatMut<'_, T>,
    ic: usize,
    jc: usize,
    kern: Kernel<T>,
) {
    // `ir` strides by the kernel's tile height — `MR`, or `2 * MR` for
    // the double-height f32 AVX2 kernel, whose calls with `mr > MR`
    // read the second adjacent packed panel.
    let step = kern.micro_rows();
    let mut jr = 0;
    while jr < nc {
        let nr = NR.min(nc - jr);
        let bpanel = &bpack[(jr / NR) * kc * NR..];
        let mut ir = 0;
        while ir < mc {
            let mr = step.min(mc - ir);
            let apanel = &apack[(ir / MR) * kc * MR..];
            // SAFETY: [isa `kernel_for` hands out a SIMD microkernel
            // only after runtime ISA detection] [bounds the panels
            // hold at least kc*MR / kc*NR elements — 2*kc*MR when
            // `mr` exceeds `MR`, which `pack_a` filled — and every
            // kernel indexes them through bounds-checked slices]
            unsafe { (kern.micro)(apanel, bpanel, kc, c.rb_mut(), ic + ir, jc + jr, mr, nr) };
            ir += step;
        }
        jr += NR;
    }
}

/// Whether a `syrk` of order `n`, depth `k` builds its triangle from
/// packed sub-products instead of the direct dot loop.
#[inline]
pub(crate) fn syrk_uses_packed(n: usize, k: usize) -> bool {
    n >= 16 && k >= 16
}

/// Column-block width of the packed `syrk` path: each block of the
/// triangle is one packed GEMM of `nb` columns against the rows at and
/// below (or above) it.
const SYRK_NB: usize = 64;

/// Symmetric rank-k update on the `uplo` triangle:
/// `C <- alpha * A Aᵀ + beta * C` (`trans = No`, `A` is `n x k`) or
/// `C <- alpha * Aᵀ A + beta * C` (`trans = Yes`, `A` is `k x n`).
///
/// Only the requested triangle of `C` is read or written. Large updates
/// route through the packed SIMD engine; small ones use the direct dot
/// loop.
pub fn syrk<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let n = c.rows();
    assert_eq!(c.cols(), n, "syrk: C must be square");
    assert_eq!(op_rows(a, trans), n, "syrk: op(A) rows vs C order");
    let k = op_cols(a, trans);
    if syrk_uses_packed(n, k) {
        syrk_strip_packed(
            uplo,
            trans,
            alpha,
            a,
            beta,
            c.rb_mut(),
            0,
            n,
            None,
            kernel::active::<T>(),
        );
    } else {
        syrk_cols(uplo, trans, alpha, a, beta, c.rb_mut(), 0, n);
    }
}

/// One full-height column strip of [`syrk`]: global columns
/// `j0 .. j0 + w` of the order-`n` update, where `c` views those
/// columns with all `n` rows. Every `C(i, j)` entry is computed by the
/// same fixed-order dot product regardless of how columns are grouped,
/// so any strip decomposition reproduces the monolithic result
/// bitwise.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS syrk signature plus the strip window
fn syrk_cols<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
    j0: usize,
    w: usize,
) {
    let n = c.rows();
    let k = op_cols(a, trans);
    flops::add_l3((n * w * k) as u64 + (n * w) as u64);
    metrics::add(Counter::BytesMoved, (T::BYTES * (w * k + n * w)) as u64);
    // Row i of op(A) dotted with row j of op(A).
    let dot_rows = |i: usize, j: usize| -> T {
        match trans {
            Trans::No => {
                let mut s = T::ZERO;
                for p in 0..k {
                    s += a.get(i, p) * a.get(j, p);
                }
                s
            }
            // opposite orientation: rows of Aᵀ are columns of A (contiguous)
            Trans::Yes => blas1::dot(a.col(i), a.col(j)),
        }
    };
    for j in 0..w {
        let jj = j0 + j;
        match uplo {
            Uplo::Lower => {
                for i in jj..n {
                    let v = alpha * dot_rows(i, jj) + beta * c.get(i, j);
                    c.set(i, j, v);
                }
            }
            Uplo::Upper => {
                for i in 0..=jj {
                    let v = alpha * dot_rows(i, jj) + beta * c.get(i, j);
                    c.set(i, j, v);
                }
            }
        }
    }
}

/// One full-height column strip of the *packed* [`syrk`]: the strip's
/// columns are processed in [`SYRK_NB`]-wide blocks, each computed as a
/// packed GEMM of the triangle rows against the block's rows of
/// `op(A)`, staged through a scratch rectangle so only the triangle is
/// written back.
///
/// Determinism: each scratch entry's accumulation chain depends only on
/// the depth-`k` blocking and order — never on the block's row offset,
/// width, or position within a strip — so any strip decomposition of
/// the update reproduces the monolithic packed result bitwise.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS syrk signature plus strip window, arena, kernel
fn syrk_strip_packed<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
    j0: usize,
    w: usize,
    mut ws: Option<&mut Workspace<T>>,
    kern: Kernel<T>,
) {
    let n = c.rows();
    let k = op_cols(a, trans);
    flops::add_l3((n * w * k) as u64 + (n * w) as u64);
    metrics::add(Counter::BytesMoved, (T::BYTES * (w * k + n * w)) as u64);
    let mut jb = 0;
    while jb < w {
        let nb = SYRK_NB.min(w - jb);
        let jj0 = j0 + jb;
        // Rows of the triangle this block touches.
        let (r0, r1) = match uplo {
            Uplo::Lower => (jj0, n),
            Uplo::Upper => (0, jj0 + nb),
        };
        let rows = r1 - r0;
        let len = rows * nb;
        let mut tmp = match ws.as_deref_mut() {
            Some(w) => w.take_vec(len),
            // bs-lint: allow(no-alloc-hot) -- syrk packed path without a Workspace heap-allocates its nb-column staging once; arena callers hit the Some branch
            None => vec![T::ZERO; len],
        };
        {
            let tm = MatMut::from_parts(&mut tmp, rows, nb, rows);
            // tmp <- alpha * op(A)[r0..r1, :] * op(A)[jj0..jj0+nb, :]ᵀ
            match trans {
                Trans::No => gemm_blocked(
                    alpha,
                    a.sub(r0, 0, rows, k),
                    Trans::No,
                    a.sub(jj0, 0, nb, k),
                    Trans::Yes,
                    tm,
                    ws.as_deref_mut(),
                    kern,
                ),
                Trans::Yes => gemm_blocked(
                    alpha,
                    a.sub(0, r0, k, rows),
                    Trans::Yes,
                    a.sub(0, jj0, k, nb),
                    Trans::No,
                    tm,
                    ws.as_deref_mut(),
                    kern,
                ),
            }
        }
        for j in 0..nb {
            let jj = jj0 + j;
            let tcol = &tmp[j * rows..(j + 1) * rows];
            let ccol = c.col_mut(jb + j);
            let (i0, i1) = match uplo {
                Uplo::Lower => (jj, n),
                Uplo::Upper => (0, jj + 1),
            };
            for i in i0..i1 {
                ccol[i] = tcol[i - r0] + beta * ccol[i];
            }
        }
        if let Some(w) = ws.as_deref_mut() {
            w.give_vec(tmp);
        }
        jb += nb;
    }
}

/// Parallel [`syrk`] under an [`ExecPolicy`]: the update's column
/// strips run on the pool. Entries are computed independently of the
/// strip decomposition (for both the packed and the dot-loop path), so
/// the result is bitwise identical to the sequential update.
pub fn syrk_policy<T: Scalar>(
    policy: &ExecPolicy,
    uplo: Uplo,
    trans: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let n = c.rows();
    assert_eq!(c.cols(), n, "syrk: C must be square");
    assert_eq!(op_rows(a, trans), n, "syrk: op(A) rows vs C order");
    let k = op_cols(a, trans);
    // Kernel-choice predicate from the full dims, microkernel resolved
    // once — both shared by every strip, for bitwise determinism.
    let packed = syrk_uses_packed(n, k);
    let kern = kernel::active::<T>();
    // The triangle holds ~n²/2 entries of k-long dots.
    let work = (n as u128 * n as u128 * k as u128) / 2;
    if policy.threads <= 1 || par::in_dispatch() || work < policy.min_work as u128 {
        if packed {
            syrk_strip_packed(uplo, trans, alpha, a, beta, c.rb_mut(), 0, n, None, kern);
        } else {
            syrk_cols(uplo, trans, alpha, a, beta, c.rb_mut(), 0, n);
        }
        return;
    }
    let width = policy.partition.strip_width(n);
    // bs-lint: allow(no-alloc-hot) -- O(strips) syrk strip descriptors; each mutably borrows a disjoint column block of C, which a pool cannot hand out
    let mut strips: Vec<(usize, MatMut<'_, T>)> = Vec::with_capacity(n.div_ceil(width));
    let mut rest = c;
    let mut start = 0;
    while start < n {
        let w = width.min(n - start);
        let (head, tail) = rest.split_at_col(w);
        strips.push((start, head));
        rest = tail;
        start += w;
    }
    par::for_each_policy(policy, strips, |(j0, cj)| {
        let w = cj.cols();
        if packed {
            par::with_worker_ws(|ws| {
                syrk_strip_packed(uplo, trans, alpha, a, beta, cj, j0, w, Some(ws), kern)
            });
        } else {
            syrk_cols(uplo, trans, alpha, a, beta, cj, j0, w);
        }
    });
}

/// [`syrk`] in workspace-threaded form: the packed path stages its
/// scratch rectangle and pack buffers through `ws`, so repeated updates
/// of the same shape allocate nothing.
pub fn syrk_ws<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
    ws: &mut Workspace<T>,
) {
    let n = c.rows();
    assert_eq!(c.cols(), n, "syrk: C must be square");
    assert_eq!(op_rows(a, trans), n, "syrk: op(A) rows vs C order");
    let k = op_cols(a, trans);
    if syrk_uses_packed(n, k) {
        syrk_strip_packed(
            uplo,
            trans,
            alpha,
            a,
            beta,
            c.rb_mut(),
            0,
            n,
            Some(ws),
            kernel::active::<T>(),
        );
    } else {
        syrk_cols(uplo, trans, alpha, a, beta, c.rb_mut(), 0, n);
    }
}

/// Order above which `trsm` solves in diagonal blocks with packed-GEMM
/// trailing updates instead of whole-triangle vector solves.
const TRSM_NB: usize = 32;

/// Triangular solve with multiple right-hand sides.
///
/// - `Side::Left`:  solves `op(A) X = alpha * B`, overwriting `B` with `X`.
/// - `Side::Right`: solves `X op(A) = alpha * B`, overwriting `B` with `X`.
///
/// `A` must be square triangular per `uplo`; `unit_diag` treats its
/// diagonal as ones. Orders above `TRSM_NB` solve blockwise so the
/// bulk of the work runs in the packed SIMD engine.
pub fn trsm<T: Scalar>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    unit_diag: bool,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatMut<'_, T>,
) -> Result<()> {
    trsm_dispatch(side, uplo, trans, unit_diag, alpha, a, b, None)
}

/// [`trsm`] with scratch (the blocked paths' staging buffers, the small
/// `Side::Right` row buffer) checked out of `ws` instead of heap
/// allocated.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS trsm signature plus the arena
pub fn trsm_ws<T: Scalar>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    unit_diag: bool,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatMut<'_, T>,
    ws: &mut Workspace<T>,
) -> Result<()> {
    trsm_dispatch(side, uplo, trans, unit_diag, alpha, a, b, Some(ws))
}

#[allow(clippy::too_many_arguments)]
fn trsm_dispatch<T: Scalar>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    unit_diag: bool,
    alpha: T,
    a: MatRef<'_, T>,
    mut b: MatMut<'_, T>,
    ws: Option<&mut Workspace<T>>,
) -> Result<()> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "trsm: A must be square");
    match side {
        Side::Left => assert_eq!(b.rows(), n, "trsm left: A order vs B rows"),
        Side::Right => assert_eq!(b.cols(), n, "trsm right: A order vs B cols"),
    }
    // bs-lint: allow(float-eq) -- BLAS convention: alpha = 1.0 exactly means "skip the scale", not a computed value
    if alpha != T::ONE {
        for j in 0..b.cols() {
            blas1::scal(alpha, b.col_mut(j));
        }
    }
    match side {
        Side::Left => {
            if n > TRSM_NB {
                return trsm_left_blocked(uplo, trans, unit_diag, a, b, ws, kernel::active::<T>());
            }
            for j in 0..b.cols() {
                trsm_left_col(uplo, trans, unit_diag, a, b.col_mut(j))?;
            }
            Ok(())
        }
        Side::Right => {
            if n > TRSM_NB {
                return trsm_right_blocked(uplo, trans, unit_diag, a, b, ws, kernel::active::<T>());
            }
            // X op(A) = B  <=>  op(A)ᵀ Xᵀ = Bᵀ: solve row by row of B.
            let m = b.rows();
            let (mut row, ws) = match ws {
                Some(ws) => {
                    let r = ws.take_vec(n);
                    (r, Some(ws))
                }
                // bs-lint: allow(no-alloc-hot) -- row-staging fallback when no arena is supplied; the warm factor path always passes Some(ws)
                None => (vec![T::ZERO; n], None),
            };
            let r = (0..m).try_for_each(|i| {
                for j in 0..n {
                    row[j] = b.get(i, j);
                }
                match (uplo, trans) {
                    // op(A)=A lower => Aᵀ (upper) solves the transposed system
                    (Uplo::Lower, Trans::No) => blas2::trsv_lower_t(a, &mut row)?,
                    (Uplo::Lower, Trans::Yes) => blas2::trsv_lower(a, &mut row, unit_diag)?,
                    (Uplo::Upper, Trans::No) => blas2::trsv_upper_t(a, &mut row)?,
                    (Uplo::Upper, Trans::Yes) => blas2::trsv_upper(a, &mut row)?,
                }
                for j in 0..n {
                    b.set(i, j, row[j]);
                }
                Ok(())
            });
            if let Some(ws) = ws {
                ws.give_vec(row);
            }
            r
        }
    }
}

/// Map a block-local singular diagnosis to the global diagonal index.
fn offset_singular(e: Error, off: usize) -> Error {
    match e {
        Error::SingularTriangle { index } => Error::SingularTriangle { index: index + off },
        other => other,
    }
}

/// A trailing/leading update inside the blocked `trsm`: charges the
/// usual level-3 accounting and always runs the packed engine, so the
/// per-column accumulation chains are independent of how `B`'s columns
/// are stripped.
#[allow(clippy::too_many_arguments)] // internal engine: BLAS signature plus arena and kernel
fn gemm_update<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    ta: Trans,
    b: MatRef<'_, T>,
    tb: Trans,
    c: MatMut<'_, T>,
    ws: Option<&mut Workspace<T>>,
    kern: Kernel<T>,
) {
    let m = c.rows();
    let n = c.cols();
    let k = op_cols(a, ta);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    flops::add_l3(2 * (m * n * k) as u64);
    metrics::add(
        Counter::BytesMoved,
        (T::BYTES * (m * k + k * n + 2 * m * n)) as u64,
    );
    gemm_blocked(alpha, a, ta, b, tb, c, ws, kern);
}

/// Blocked `Side::Left` solve: `op(A) X = B` in [`TRSM_NB`]-order
/// diagonal blocks. Each block's columns are solved by the level-2
/// kernels, then the solved block (staged contiguously in `xbuf`)
/// updates the remaining rows through one packed GEMM.
///
/// Flop accounting is conserved against the per-column solve: for each
/// column, `Σ nb²` (block solves) plus `2 Σ nb·rest` (updates) equals
/// the `n²` the whole-triangle solve charges.
fn trsm_left_blocked<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    unit_diag: bool,
    a: MatRef<'_, T>,
    b: MatMut<'_, T>,
    mut ws: Option<&mut Workspace<T>>,
    kern: Kernel<T>,
) -> Result<()> {
    let ncols = b.cols();
    if ncols == 0 {
        return Ok(());
    }
    let len = TRSM_NB * ncols;
    let mut xbuf = match ws.as_deref_mut() {
        Some(w) => w.take_vec(len),
        // bs-lint: allow(no-alloc-hot) -- trsm-left block buffer for arena-less callers; pooled solves check out of ws above
        None => vec![T::ZERO; len],
    };
    let r = trsm_left_blocked_go(
        uplo,
        trans,
        unit_diag,
        a,
        b,
        &mut xbuf,
        ws.as_deref_mut(),
        kern,
    );
    if let Some(w) = ws {
        w.give_vec(xbuf);
    }
    r
}

#[allow(clippy::too_many_arguments)] // internal: split from trsm_left_blocked so `?` cannot leak the checkout
fn trsm_left_blocked_go<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    unit_diag: bool,
    a: MatRef<'_, T>,
    mut b: MatMut<'_, T>,
    xbuf: &mut [T],
    mut ws: Option<&mut Workspace<T>>,
    kern: Kernel<T>,
) -> Result<()> {
    let n = a.rows();
    let ncols = b.cols();
    // Forward when op(A) is lower triangular (solve top block first).
    let forward = matches!(
        (uplo, trans),
        (Uplo::Lower, Trans::No) | (Uplo::Upper, Trans::Yes)
    );
    let nblocks = n.div_ceil(TRSM_NB);
    for step in 0..nblocks {
        let bi = if forward { step } else { nblocks - 1 - step };
        let kb = bi * TRSM_NB;
        let nb = TRSM_NB.min(n - kb);
        let adiag = a.sub(kb, kb, nb, nb);
        // Solve the diagonal block column by column, staging the solved
        // block contiguously (column-major, leading dimension nb) so the
        // update below can read it while the rest of B is written.
        for j in 0..ncols {
            let col = &mut b.col_mut(j)[kb..kb + nb];
            trsm_left_col(uplo, trans, unit_diag, adiag, col)
                .map_err(|e| offset_singular(e, kb))?;
            xbuf[j * nb..(j + 1) * nb].copy_from_slice(col);
        }
        let xk = MatRef::from_parts(&xbuf[..nb * ncols], nb, ncols, nb);
        let rest = n - kb - nb;
        match (uplo, trans) {
            (Uplo::Lower, Trans::No) if rest > 0 => gemm_update(
                -T::ONE,
                a.sub(kb + nb, kb, rest, nb),
                Trans::No,
                xk,
                Trans::No,
                b.sub_mut(kb + nb, 0, rest, ncols),
                ws.as_deref_mut(),
                kern,
            ),
            (Uplo::Upper, Trans::Yes) if rest > 0 => gemm_update(
                -T::ONE,
                a.sub(kb, kb + nb, nb, rest),
                Trans::Yes,
                xk,
                Trans::No,
                b.sub_mut(kb + nb, 0, rest, ncols),
                ws.as_deref_mut(),
                kern,
            ),
            (Uplo::Upper, Trans::No) if kb > 0 => gemm_update(
                -T::ONE,
                a.sub(0, kb, kb, nb),
                Trans::No,
                xk,
                Trans::No,
                b.sub_mut(0, 0, kb, ncols),
                ws.as_deref_mut(),
                kern,
            ),
            (Uplo::Lower, Trans::Yes) if kb > 0 => gemm_update(
                -T::ONE,
                a.sub(kb, 0, nb, kb),
                Trans::Yes,
                xk,
                Trans::No,
                b.sub_mut(0, 0, kb, ncols),
                ws.as_deref_mut(),
                kern,
            ),
            _ => {}
        }
    }
    Ok(())
}

/// Blocked `Side::Right` solve: `X op(A) = B` in [`TRSM_NB`]-order
/// diagonal blocks of `op(A)`. Each block of `B`'s columns is solved
/// row by row against the diagonal block (the transposed level-2
/// solves, exactly as the small path), then propagated to the remaining
/// column blocks through one packed GEMM.
fn trsm_right_blocked<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    unit_diag: bool,
    a: MatRef<'_, T>,
    b: MatMut<'_, T>,
    mut ws: Option<&mut Workspace<T>>,
    kern: Kernel<T>,
) -> Result<()> {
    let mut row = match ws.as_deref_mut() {
        Some(w) => w.take_vec(TRSM_NB),
        // bs-lint: allow(no-alloc-hot) -- trsm-right row buffer for arena-less callers; the Some branch serves the pooled path
        None => vec![T::ZERO; TRSM_NB],
    };
    let r = trsm_right_blocked_go(
        uplo,
        trans,
        unit_diag,
        a,
        b,
        &mut row,
        ws.as_deref_mut(),
        kern,
    );
    if let Some(w) = ws {
        w.give_vec(row);
    }
    r
}

#[allow(clippy::too_many_arguments)] // internal: split from trsm_right_blocked so `?` cannot leak the checkout
fn trsm_right_blocked_go<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    unit_diag: bool,
    a: MatRef<'_, T>,
    mut b: MatMut<'_, T>,
    row: &mut [T],
    mut ws: Option<&mut Workspace<T>>,
    kern: Kernel<T>,
) -> Result<()> {
    let n = a.rows();
    let m = b.rows();
    // Forward (left-to-right over B's column blocks) when op(A) is
    // upper triangular.
    let forward = matches!(
        (uplo, trans),
        (Uplo::Upper, Trans::No) | (Uplo::Lower, Trans::Yes)
    );
    let nblocks = n.div_ceil(TRSM_NB);
    for step in 0..nblocks {
        let bi = if forward { step } else { nblocks - 1 - step };
        let kb = bi * TRSM_NB;
        let nb = TRSM_NB.min(n - kb);
        let adiag = a.sub(kb, kb, nb, nb);
        {
            // Solve X_k op(A_kk) = B_k row by row, as the small path does
            // for the whole triangle.
            let mut bk = b.sub_mut(0, kb, m, nb);
            for i in 0..m {
                let rr = &mut row[..nb];
                for (j, r) in rr.iter_mut().enumerate() {
                    *r = bk.get(i, j);
                }
                match (uplo, trans) {
                    (Uplo::Lower, Trans::No) => blas2::trsv_lower_t(adiag, rr),
                    (Uplo::Lower, Trans::Yes) => blas2::trsv_lower(adiag, rr, unit_diag),
                    (Uplo::Upper, Trans::No) => blas2::trsv_upper_t(adiag, rr),
                    (Uplo::Upper, Trans::Yes) => blas2::trsv_upper(adiag, rr),
                }
                .map_err(|e| offset_singular(e, kb))?;
                for (j, r) in rr.iter().enumerate() {
                    bk.set(i, j, *r);
                }
            }
        }
        // Propagate the solved block into the not-yet-solved columns:
        // B_j -= X_k op(A)_{kj}.
        if forward && kb + nb < n {
            let rest = n - kb - nb;
            let bv = b.rb_mut();
            let (xpart, mut target) = bv.split_at_col(kb + nb);
            let xk = xpart.rb().sub(0, kb, m, nb);
            let (ap, tb2) = match (uplo, trans) {
                (Uplo::Upper, Trans::No) => (a.sub(kb, kb + nb, nb, rest), Trans::No),
                _ => (a.sub(kb + nb, kb, rest, nb), Trans::Yes), // (Lower, Yes)
            };
            gemm_update(
                -T::ONE,
                xk,
                Trans::No,
                ap,
                tb2,
                target.rb_mut(),
                ws.as_deref_mut(),
                kern,
            );
        } else if !forward && kb > 0 {
            let bv = b.rb_mut();
            let (mut target, xpart) = bv.split_at_col(kb);
            let xk = xpart.rb().sub(0, 0, m, nb);
            let (ap, tb2) = match (uplo, trans) {
                (Uplo::Lower, Trans::No) => (a.sub(kb, 0, nb, kb), Trans::No),
                _ => (a.sub(0, kb, kb, nb), Trans::Yes), // (Upper, Yes)
            };
            gemm_update(
                -T::ONE,
                xk,
                Trans::No,
                ap,
                tb2,
                target.rb_mut(),
                ws.as_deref_mut(),
                kern,
            );
        }
    }
    Ok(())
}

/// One column of a `Side::Left` triangular solve — the independent unit
/// of work the parallel driver distributes (and the diagonal-block
/// solve of the blocked path).
fn trsm_left_col<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    unit_diag: bool,
    a: MatRef<'_, T>,
    col: &mut [T],
) -> Result<()> {
    match (uplo, trans) {
        (Uplo::Lower, Trans::No) => blas2::trsv_lower(a, col, unit_diag),
        (Uplo::Lower, Trans::Yes) => {
            if unit_diag {
                trsv_lower_t_unit(a, col)
            } else {
                blas2::trsv_lower_t(a, col)
            }
        }
        (Uplo::Upper, Trans::No) => {
            if unit_diag {
                trsv_upper_unit(a, col)
            } else {
                blas2::trsv_upper(a, col)
            }
        }
        (Uplo::Upper, Trans::Yes) => {
            if unit_diag {
                trsv_upper_t_unit(a, col)
            } else {
                blas2::trsv_upper_t(a, col)
            }
        }
    }
}

/// Parallel [`trsm`] under an [`ExecPolicy`].
///
/// `Side::Left` distributes `B`'s columns (each an independent
/// triangular solve) across the pool in deterministic strips — results
/// are bitwise identical to the sequential solve, because the
/// blocked/level-2 choice comes from the triangle order alone and the
/// blocked path's update chains are column-decomposable. `Side::Right`
/// couples the rows of `B` through a shared scratch row and stays
/// sequential; it simply forwards to [`trsm`].
#[allow(clippy::too_many_arguments)] // mirrors the BLAS trsm signature plus the policy
pub fn trsm_policy<T: Scalar>(
    policy: &ExecPolicy,
    side: Side,
    uplo: Uplo,
    trans: Trans,
    unit_diag: bool,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatMut<'_, T>,
) -> Result<()> {
    let n = a.rows();
    let ncols = b.cols();
    // Each column costs ~n²/2 multiply-adds.
    let work = (n as u128 * n as u128 * ncols as u128) / 2;
    if side == Side::Right
        || policy.threads <= 1
        || par::in_dispatch()
        || work < policy.min_work as u128
        || ncols < 2
    {
        return trsm(side, uplo, trans, unit_diag, alpha, a, b);
    }
    assert_eq!(a.cols(), n, "trsm: A must be square");
    assert_eq!(b.rows(), n, "trsm left: A order vs B rows");

    // Blocked/level-2 choice from the triangle order, microkernel
    // resolved once — shared by every strip, for bitwise determinism.
    let blocked = n > TRSM_NB;
    let kern = kernel::active::<T>();
    let width = policy.partition.strip_width(ncols);
    // bs-lint: allow(no-alloc-hot) -- O(strips) strip descriptors at dispatch; the descriptors borrow B, so they cannot live in a pool
    let mut strips: Vec<(usize, MatMut<'_, T>)> = Vec::with_capacity(ncols.div_ceil(width));
    let mut rest = b;
    let mut start = 0;
    while start < ncols {
        let w = width.min(ncols - start);
        let (head, tail) = rest.split_at_col(w);
        strips.push((start, head));
        rest = tail;
        start += w;
    }
    // Strips report failures through a shared slot; the lowest column
    // index wins so the surfaced error is deterministic.
    let failed: Mutex<Option<(usize, Error)>> = Mutex::new(None);
    par::for_each_policy(policy, strips, |(j0, mut bj)| {
        // bs-lint: allow(float-eq) -- BLAS trmm convention: alpha exactly 1.0 skips the per-column scal inside each strip
        if alpha != T::ONE {
            for j in 0..bj.cols() {
                blas1::scal(alpha, bj.col_mut(j));
            }
        }
        let r = if blocked {
            par::with_worker_ws(|ws| {
                trsm_left_blocked(uplo, trans, unit_diag, a, bj, Some(ws), kern)
            })
        } else {
            (0..bj.cols()).try_for_each(|j| trsm_left_col(uplo, trans, unit_diag, a, bj.col_mut(j)))
        };
        if let Err(e) = r {
            let mut slot = failed.lock().unwrap_or_else(|p| p.into_inner());
            if slot.as_ref().is_none_or(|(seen, _)| j0 < *seen) {
                *slot = Some((j0, e));
            }
        }
    });
    match failed.into_inner().unwrap_or_else(|p| p.into_inner()) {
        Some((_, e)) => Err(e),
        None => Ok(()),
    }
}

fn trsv_lower_t_unit<T: Scalar>(a: MatRef<'_, T>, b: &mut [T]) -> Result<()> {
    let n = a.rows();
    metrics::incr(Counter::TriangularSolves);
    flops::add_l2((n * n) as u64);
    for j in (0..n).rev() {
        let col = a.col(j);
        let mut s = b[j];
        for i in j + 1..n {
            s -= col[i] * b[i];
        }
        b[j] = s;
    }
    Ok(())
}

fn trsv_upper_unit<T: Scalar>(a: MatRef<'_, T>, b: &mut [T]) -> Result<()> {
    let n = a.rows();
    metrics::incr(Counter::TriangularSolves);
    flops::add_l2((n * n) as u64);
    for j in (0..n).rev() {
        let bj = b[j];
        if bj != T::ZERO {
            let col = a.col(j);
            for i in 0..j {
                b[i] -= bj * col[i];
            }
        }
    }
    Ok(())
}

fn trsv_upper_t_unit<T: Scalar>(a: MatRef<'_, T>, b: &mut [T]) -> Result<()> {
    let n = a.rows();
    metrics::incr(Counter::TriangularSolves);
    flops::add_l2((n * n) as u64);
    for j in 0..n {
        let col = a.col(j);
        let mut s = b[j];
        for i in 0..j {
            s -= col[i] * b[i];
        }
        b[j] = s;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Matrix;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Small deterministic pseudo-random fill (keeps this module free
        // of the rand dependency).
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 1000) as f64 - 500.0) / 250.0
        })
    }

    fn gemm_ref(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a[(i, p)] * b[(p, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    #[test]
    fn gemm_matches_reference_over_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 4, 5),
            (8, 8, 8),
            (17, 9, 23),
            (64, 32, 48),
            (70, 130, 41),
            (129, 257, 65),
        ] {
            let a = mat(m, k, 1);
            let b = mat(k, n, 2);
            let want = gemm_ref(&a, &b);
            let mut c = Matrix::zeros(m, n);
            gemm(1.0, a.rf(), Trans::No, b.rf(), Trans::No, 0.0, c.mt());
            assert!(
                c.max_abs_diff(&want) < 1e-10,
                "gemm mismatch at shape ({m},{k},{n}): {}",
                c.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn every_supported_microkernel_matches_reference() {
        use crate::kernel::Isa;
        let shapes = [(17, 9, 23), (40, 64, 33), (64, 32, 48), (129, 300, 65)];
        for isa in [Isa::Portable, Isa::Avx2, Isa::Avx512, Isa::Neon] {
            if !kernel::isa_supported(isa) {
                continue;
            }
            let kern = kernel::kernel_for(isa);
            for &(m, k, n) in &shapes {
                let a = mat(m, k, 60);
                let b = mat(k, n, 61);
                let want = gemm_ref(&a, &b);
                let mut c = Matrix::zeros(m, n);
                gemm_blocked(
                    1.0,
                    a.rf(),
                    Trans::No,
                    b.rf(),
                    Trans::No,
                    c.mt(),
                    None,
                    kern,
                );
                for j in 0..n {
                    for i in 0..m {
                        let w = want[(i, j)];
                        let d = (c[(i, j)] - w).abs();
                        assert!(
                            d <= 1e-11 * (1.0 + w.abs()),
                            "isa={isa:?} shape=({m},{k},{n}) entry=({i},{j}) diff={d}"
                        );
                    }
                }
            }
            // Transpose coverage per kernel at one odd shape.
            let (m, k, n) = (33, 40, 29);
            let a = mat(m, k, 62);
            let b = mat(k, n, 63);
            let want = gemm_ref(&a, &b);
            let at = a.transpose();
            let bt = b.transpose();
            for (ta, tb, aa, bb) in [
                (Trans::Yes, Trans::No, &at, &b),
                (Trans::No, Trans::Yes, &a, &bt),
                (Trans::Yes, Trans::Yes, &at, &bt),
            ] {
                let mut c = Matrix::zeros(m, n);
                gemm_blocked(1.0, aa.rf(), ta, bb.rf(), tb, c.mt(), None, kern);
                assert!(
                    c.max_abs_diff(&want) < 1e-10,
                    "isa={isa:?} ta={ta:?} tb={tb:?}"
                );
            }
        }
    }

    #[test]
    fn f32_microkernels_match_reference_across_tile_edges() {
        use crate::kernel::Isa;
        // Shapes chosen to exercise every `mr` path of the double-height
        // f32 AVX2 kernel: sub-MR tails, a 9..=15 partial second panel,
        // full 16-row tiles, and multi-block strides.
        let shapes = [
            (7, 5, 3),
            (13, 9, 23),
            (25, 40, 33),
            (64, 32, 48),
            (129, 300, 65),
        ];
        for isa in [Isa::Portable, Isa::Avx2, Isa::Avx512, Isa::Neon] {
            if !kernel::isa_supported(isa) {
                continue;
            }
            let kern: Kernel<f32> = kernel::kernel_for(isa);
            for &(m, k, n) in &shapes {
                let a = mat(m, k, 80);
                let b = mat(k, n, 81);
                let want = gemm_ref(&a, &b);
                let a32 = a.convert::<f32>();
                let b32 = b.convert::<f32>();
                let mut c = Matrix::<f32>::zeros(m, n);
                gemm_blocked(
                    1.0f32,
                    a32.rf(),
                    Trans::No,
                    b32.rf(),
                    Trans::No,
                    c.mt(),
                    None,
                    kern,
                );
                for j in 0..n {
                    for i in 0..m {
                        let w = want[(i, j)];
                        let d = (c[(i, j)] as f64 - w).abs();
                        // f32 working precision over a k-long sum, not a
                        // kernel bug, is the only tolerated error.
                        assert!(
                            d <= 1e-3 * (1.0 + w.abs()),
                            "isa={isa:?} shape=({m},{k},{n}) entry=({i},{j}) diff={d}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gemm_blocked_charges_kernel_counters() {
        let kern = kernel::active::<f64>();
        let isa = kern.isa();
        let m = 64;
        let a = mat(m, m, 90);
        let b = mat(m, m, 91);
        let mut c = Matrix::zeros(m, m);
        metrics::local_reset(&[Counter::KernelDispatches, isa.flops_counter()]);
        gemm(1.0, a.rf(), Trans::No, b.rf(), Trans::No, 0.0, c.mt());
        assert_eq!(metrics::local_get(Counter::KernelDispatches), 1);
        assert_eq!(
            metrics::local_get(isa.flops_counter()),
            (2 * m * m * m) as u64
        );
    }

    #[test]
    fn gemm_transpose_flags() {
        let m = 13;
        let k = 11;
        let n = 9;
        let a = mat(m, k, 3);
        let b = mat(k, n, 4);
        let want = gemm_ref(&a, &b);
        let at = a.transpose();
        let bt = b.transpose();

        for (ta, tb, aa, bb) in [
            (Trans::Yes, Trans::No, &at, &b),
            (Trans::No, Trans::Yes, &a, &bt),
            (Trans::Yes, Trans::Yes, &at, &bt),
        ] {
            let mut c = Matrix::zeros(m, n);
            gemm(1.0, aa.rf(), ta, bb.rf(), tb, 0.0, c.mt());
            assert!(c.max_abs_diff(&want) < 1e-10, "ta={ta:?} tb={tb:?}");
        }
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = mat(6, 5, 5);
        let b = mat(5, 7, 6);
        let c0 = mat(6, 7, 7);
        let want = {
            let mut w = gemm_ref(&a, &b);
            w.scale(2.0);
            w.axpy(3.0, &c0);
            w
        };
        let mut c = c0.clone();
        gemm(2.0, a.rf(), Trans::No, b.rf(), Trans::No, 3.0, c.mt());
        assert!(c.max_abs_diff(&want) < 1e-10);
    }

    #[test]
    fn par_gemm_matches_sequential() {
        let m = 95;
        let k = 83;
        let n = 141;
        let a = mat(m, k, 8);
        let b = mat(k, n, 9);
        let mut c1 = mat(m, n, 10);
        let mut c2 = c1.clone();
        gemm(1.5, a.rf(), Trans::No, b.rf(), Trans::No, 0.5, c1.mt());
        par_gemm(1.5, a.rf(), Trans::No, b.rf(), Trans::No, 0.5, c2.mt());
        assert!(c1.max_abs_diff(&c2) < 1e-10);
    }

    #[test]
    fn gemm_on_strided_subviews() {
        let big_a = mat(20, 20, 11);
        let big_b = mat(20, 20, 12);
        let mut big_c = Matrix::zeros(20, 20);
        let a = big_a.sub(2, 3, 7, 5).to_matrix();
        let b = big_b.sub(1, 1, 5, 6).to_matrix();
        let want = gemm_ref(&a, &b);
        gemm(
            1.0,
            big_a.sub(2, 3, 7, 5),
            Trans::No,
            big_b.sub(1, 1, 5, 6),
            Trans::No,
            0.0,
            big_c.sub_mut(4, 4, 7, 6),
        );
        assert!(big_c.sub(4, 4, 7, 6).to_matrix().max_abs_diff(&want) < 1e-12);
        // Outside the written window C must remain zero.
        assert_eq!(big_c[(0, 0)], 0.0);
        assert_eq!(big_c[(3, 4)], 0.0);
    }

    #[test]
    fn syrk_lower_matches_gemm() {
        let a = mat(9, 6, 13);
        let at = a.transpose();
        let mut full = Matrix::zeros(9, 9);
        gemm(1.0, a.rf(), Trans::No, at.rf(), Trans::No, 0.0, full.mt());
        let mut c = Matrix::zeros(9, 9);
        syrk(Uplo::Lower, Trans::No, 1.0, a.rf(), 0.0, c.mt());
        for j in 0..9 {
            for i in j..9 {
                assert!((c[(i, j)] - full[(i, j)]).abs() < 1e-10);
            }
            for i in 0..j {
                assert_eq!(c[(i, j)], 0.0, "upper triangle must be untouched");
            }
        }
    }

    #[test]
    fn syrk_trans_upper() {
        let a = mat(6, 9, 14); // k x n, op = Aᵀ A
        let at = a.transpose();
        let mut full = Matrix::zeros(9, 9);
        gemm(1.0, at.rf(), Trans::No, a.rf(), Trans::No, 0.0, full.mt());
        let mut c = Matrix::zeros(9, 9);
        syrk(Uplo::Upper, Trans::Yes, 1.0, a.rf(), 0.0, c.mt());
        for j in 0..9 {
            for i in 0..=j {
                assert!((c[(i, j)] - full[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn packed_syrk_matches_gemm_and_preserves_opposite_triangle() {
        // n, k both >= 16 so the packed path runs for every variant.
        let n = 45;
        let k = 37;
        let a = mat(n, k, 64);
        let at = a.transpose();
        let c0 = mat(n, n, 65);
        let mut full = Matrix::zeros(n, n);
        gemm(1.0, a.rf(), Trans::No, at.rf(), Trans::No, 0.0, full.mt());
        for (uplo, trans, aa) in [(Uplo::Lower, Trans::No, &a), (Uplo::Upper, Trans::Yes, &at)] {
            assert!(syrk_uses_packed(n, k));
            let mut c = c0.clone();
            syrk(uplo, trans, 1.5, aa.rf(), 0.25, c.mt());
            for j in 0..n {
                for i in 0..n {
                    let in_tri = match uplo {
                        Uplo::Lower => i >= j,
                        Uplo::Upper => i <= j,
                    };
                    if in_tri {
                        let want = 1.5 * full[(i, j)] + 0.25 * c0[(i, j)];
                        assert!((c[(i, j)] - want).abs() < 1e-10, "uplo={uplo:?} ({i},{j})");
                    } else {
                        assert_eq!(
                            c[(i, j)],
                            c0[(i, j)],
                            "uplo={uplo:?}: outside triangle must be untouched"
                        );
                    }
                }
            }
        }
    }

    fn lower_tri(n: usize, seed: u64) -> Matrix {
        let mut l = mat(n, n, seed);
        for j in 0..n {
            for i in 0..j {
                l[(i, j)] = 0.0;
            }
            l[(j, j)] = l[(j, j)].abs() + 1.0;
        }
        l
    }

    /// Lower triangle that is diagonally dominant by rows *and*
    /// columns, so every `(uplo, trans)` solve of it (and its
    /// transpose) is well conditioned even at blocked-path orders —
    /// plain random triangles have condition growing like 2ⁿ.
    fn dd_lower_tri(n: usize, seed: u64) -> Matrix {
        let mut l = mat(n, n, seed);
        for j in 0..n {
            for i in 0..j {
                l[(i, j)] = 0.0;
            }
        }
        for j in 0..n {
            let mut s = 1.0;
            for p in 0..j {
                s += l[(j, p)].abs();
            }
            for i in j + 1..n {
                s += l[(i, j)].abs();
            }
            l[(j, j)] = s;
        }
        l
    }

    #[test]
    fn trsm_left_lower_roundtrip() {
        let n = 7;
        let l = lower_tri(n, 20);
        let x = mat(n, 4, 21);
        let mut b = Matrix::zeros(n, 4);
        gemm(1.0, l.rf(), Trans::No, x.rf(), Trans::No, 0.0, b.mt());
        trsm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            false,
            1.0,
            l.rf(),
            b.mt(),
        )
        .unwrap();
        assert!(b.max_abs_diff(&x) < 1e-10);
    }

    #[test]
    fn trsm_left_transposed_roundtrip() {
        let n = 7;
        let l = lower_tri(n, 22);
        let lt = l.transpose();
        let x = mat(n, 3, 23);
        let mut b = Matrix::zeros(n, 3);
        gemm(1.0, lt.rf(), Trans::No, x.rf(), Trans::No, 0.0, b.mt());
        trsm(
            Side::Left,
            Uplo::Lower,
            Trans::Yes,
            false,
            1.0,
            l.rf(),
            b.mt(),
        )
        .unwrap();
        assert!(b.max_abs_diff(&x) < 1e-10);

        let u = lt.clone();
        let mut b2 = Matrix::zeros(n, 3);
        gemm(1.0, u.rf(), Trans::No, x.rf(), Trans::No, 0.0, b2.mt());
        trsm(
            Side::Left,
            Uplo::Upper,
            Trans::No,
            false,
            1.0,
            u.rf(),
            b2.mt(),
        )
        .unwrap();
        assert!(b2.max_abs_diff(&x) < 1e-10);
    }

    #[test]
    fn trsm_right_roundtrip() {
        let n = 6;
        let l = lower_tri(n, 24);
        let x = mat(4, n, 25);
        // B = X * L
        let mut b = Matrix::zeros(4, n);
        gemm(1.0, x.rf(), Trans::No, l.rf(), Trans::No, 0.0, b.mt());
        trsm(
            Side::Right,
            Uplo::Lower,
            Trans::No,
            false,
            1.0,
            l.rf(),
            b.mt(),
        )
        .unwrap();
        assert!(b.max_abs_diff(&x) < 1e-10);

        // B = X * Lᵀ
        let mut b2 = Matrix::zeros(4, n);
        gemm(1.0, x.rf(), Trans::No, l.rf(), Trans::Yes, 0.0, b2.mt());
        trsm(
            Side::Right,
            Uplo::Lower,
            Trans::Yes,
            false,
            1.0,
            l.rf(),
            b2.mt(),
        )
        .unwrap();
        assert!(b2.max_abs_diff(&x) < 1e-10);
    }

    #[test]
    fn blocked_trsm_left_roundtrips_all_cases() {
        // n > TRSM_NB with a non-multiple tail block.
        let n = 97;
        let ncols = 13;
        let l = dd_lower_tri(n, 70);
        let u = l.transpose();
        let x = mat(n, ncols, 71);
        for (uplo, trans, aa) in [
            (Uplo::Lower, Trans::No, &l),
            (Uplo::Lower, Trans::Yes, &l),
            (Uplo::Upper, Trans::No, &u),
            (Uplo::Upper, Trans::Yes, &u),
        ] {
            // B = op(A) X, then solving must recover X.
            let mut b = Matrix::zeros(n, ncols);
            gemm(1.0, aa.rf(), trans, x.rf(), Trans::No, 0.0, b.mt());
            trsm(Side::Left, uplo, trans, false, 1.0, aa.rf(), b.mt()).unwrap();
            assert!(
                b.max_abs_diff(&x) < 1e-8,
                "uplo={uplo:?} trans={trans:?}: {}",
                b.max_abs_diff(&x)
            );
        }
    }

    #[test]
    fn blocked_trsm_right_roundtrips_all_cases() {
        let n = 97;
        let m = 9;
        let l = dd_lower_tri(n, 72);
        let u = l.transpose();
        let x = mat(m, n, 73);
        for (uplo, trans, aa) in [
            (Uplo::Lower, Trans::No, &l),
            (Uplo::Lower, Trans::Yes, &l),
            (Uplo::Upper, Trans::No, &u),
            (Uplo::Upper, Trans::Yes, &u),
        ] {
            // B = X op(A), then solving must recover X.
            let mut b = Matrix::zeros(m, n);
            gemm(1.0, x.rf(), Trans::No, aa.rf(), trans, 0.0, b.mt());
            trsm(Side::Right, uplo, trans, false, 1.0, aa.rf(), b.mt()).unwrap();
            assert!(
                b.max_abs_diff(&x) < 1e-8,
                "uplo={uplo:?} trans={trans:?}: {}",
                b.max_abs_diff(&x)
            );
        }
    }

    #[test]
    fn blocked_trsm_left_unit_diag_ignores_stored_diagonal() {
        let n = 70;
        let ncols = 5;
        // Unit-triangular with small off-diagonals (so the inverse stays
        // bounded) and garbage on the stored diagonal.
        let mut l = mat(n, n, 74);
        for j in 0..n {
            for i in 0..j {
                l[(i, j)] = 0.0;
            }
            for i in j + 1..n {
                let v = l[(i, j)] * 0.05;
                l[(i, j)] = v;
            }
            l[(j, j)] = 5.0;
        }
        let mut l1 = l.clone();
        for j in 0..n {
            l1[(j, j)] = 1.0;
        }
        let u = l.transpose();
        let u1 = l1.transpose();
        let x = mat(n, ncols, 75);
        for (uplo, trans, solve_a, mul_a) in [
            (Uplo::Lower, Trans::No, &l, &l1),
            (Uplo::Lower, Trans::Yes, &l, &l1),
            (Uplo::Upper, Trans::No, &u, &u1),
            (Uplo::Upper, Trans::Yes, &u, &u1),
        ] {
            let mut b = Matrix::zeros(n, ncols);
            gemm(1.0, mul_a.rf(), trans, x.rf(), Trans::No, 0.0, b.mt());
            trsm(Side::Left, uplo, trans, true, 1.0, solve_a.rf(), b.mt()).unwrap();
            assert!(
                b.max_abs_diff(&x) < 1e-8,
                "uplo={uplo:?} trans={trans:?}: {}",
                b.max_abs_diff(&x)
            );
        }
    }

    #[test]
    fn blocked_trsm_reports_global_singular_index() {
        // The zero lands in a later diagonal block; the surfaced index
        // must be global, not block-local.
        let n = 70;
        let mut l = dd_lower_tri(n, 76);
        l[(40, 40)] = 0.0;
        let mut b = mat(n, 3, 77);
        let r = trsm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            false,
            1.0,
            l.rf(),
            b.mt(),
        );
        assert!(matches!(
            r,
            Err(crate::Error::SingularTriangle { index: 40 })
        ));

        let mut l2 = dd_lower_tri(n, 78);
        l2[(55, 55)] = 0.0;
        let mut b2 = mat(3, n, 79);
        let r2 = trsm(
            Side::Right,
            Uplo::Lower,
            Trans::No,
            false,
            1.0,
            l2.rf(),
            b2.mt(),
        );
        assert!(matches!(
            r2,
            Err(crate::Error::SingularTriangle { index: 55 })
        ));
    }

    #[test]
    fn trsm_alpha_scales_rhs() {
        let n = 5;
        let l = lower_tri(n, 26);
        let x = mat(n, 2, 27);
        let mut b = Matrix::zeros(n, 2);
        gemm(1.0, l.rf(), Trans::No, x.rf(), Trans::No, 0.0, b.mt());
        trsm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            false,
            2.0,
            l.rf(),
            b.mt(),
        )
        .unwrap();
        let mut want = x.clone();
        want.scale(2.0);
        assert!(b.max_abs_diff(&want) < 1e-10);
    }

    #[test]
    fn trsm_singular_reports_error() {
        let mut l = lower_tri(3, 28);
        l[(1, 1)] = 0.0;
        let mut b = Matrix::zeros(3, 1);
        b[(0, 0)] = 1.0;
        let r = trsm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            false,
            1.0,
            l.rf(),
            b.mt(),
        );
        assert!(matches!(
            r,
            Err(crate::Error::SingularTriangle { index: 1 })
        ));
    }

    #[test]
    fn par_gemm_policy_is_bitwise_across_thread_counts() {
        // The determinism contract: strips are fixed by the partition,
        // the kernel choice comes from the full dims, and the blocked
        // kernel is column-decomposable — so every thread count gives
        // the exact same bits, including the sequential fallback.
        let m = 64;
        let k = 48;
        let n = 96;
        let a = mat(m, k, 40);
        let b = mat(k, n, 41);
        let c0 = mat(m, n, 42);
        let mut base = c0.clone();
        gemm(1.25, a.rf(), Trans::No, b.rf(), Trans::No, 0.5, base.mt());
        for threads in [1usize, 2, 3, par::current_num_threads().max(2) * 4] {
            let policy = ExecPolicy {
                threads,
                min_work: 1,
                partition: crate::par::Partition::Auto,
            };
            let mut c = c0.clone();
            par_gemm_policy(
                &policy,
                1.25,
                a.rf(),
                Trans::No,
                b.rf(),
                Trans::No,
                0.5,
                c.mt(),
            );
            assert_eq!(
                c.max_abs_diff(&base),
                0.0,
                "threads={threads}: parallel gemm must be bitwise sequential"
            );
        }
    }

    #[test]
    fn syrk_policy_is_bitwise_across_thread_counts() {
        let a = mat(40, 24, 43);
        let c0 = mat(40, 40, 44);
        for (uplo, trans, aa) in [
            (Uplo::Lower, Trans::No, &a),
            (Uplo::Upper, Trans::Yes, &a.transpose()),
        ] {
            let mut base = c0.clone();
            syrk(uplo, trans, 1.5, aa.rf(), 0.25, base.mt());
            for threads in [1usize, 2, 5] {
                let policy = ExecPolicy {
                    threads,
                    min_work: 1,
                    partition: crate::par::Partition::Width(7),
                };
                let mut c = c0.clone();
                syrk_policy(&policy, uplo, trans, 1.5, aa.rf(), 0.25, c.mt());
                assert_eq!(
                    c.max_abs_diff(&base),
                    0.0,
                    "threads={threads} uplo={uplo:?}: parallel syrk must be bitwise sequential"
                );
            }
        }
    }

    #[test]
    fn trsm_policy_left_is_bitwise_and_right_falls_back() {
        let n = 24;
        let l = lower_tri(n, 45);
        let b0 = mat(n, 33, 46);
        let mut base = b0.clone();
        trsm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            false,
            1.5,
            l.rf(),
            base.mt(),
        )
        .unwrap();
        for threads in [1usize, 2, 4] {
            let policy = ExecPolicy {
                threads,
                min_work: 1,
                partition: crate::par::Partition::Width(5),
            };
            let mut b = b0.clone();
            trsm_policy(
                &policy,
                Side::Left,
                Uplo::Lower,
                Trans::No,
                false,
                1.5,
                l.rf(),
                b.mt(),
            )
            .unwrap();
            assert_eq!(b.max_abs_diff(&base), 0.0, "threads={threads}");
        }
        // Right side stays sequential but must still be correct.
        let x = mat(4, n, 47);
        let mut b = Matrix::zeros(4, n);
        gemm(1.0, x.rf(), Trans::No, l.rf(), Trans::No, 0.0, b.mt());
        trsm_policy(
            &ExecPolicy::with_threads(4),
            Side::Right,
            Uplo::Lower,
            Trans::No,
            false,
            1.0,
            l.rf(),
            b.mt(),
        )
        .unwrap();
        assert!(b.max_abs_diff(&x) < 1e-10);
    }

    #[test]
    fn trsm_policy_blocked_is_bitwise_across_thread_counts() {
        // Above TRSM_NB, strips run the blocked solve; its update chains
        // are column-decomposable so strip width never changes the bits.
        let n = 80;
        let ncols = 21;
        let l = dd_lower_tri(n, 80);
        let b0 = mat(n, ncols, 81);
        let mut base = b0.clone();
        trsm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            false,
            1.5,
            l.rf(),
            base.mt(),
        )
        .unwrap();
        for threads in [1usize, 2, 4] {
            let policy = ExecPolicy {
                threads,
                min_work: 1,
                partition: crate::par::Partition::Width(5),
            };
            let mut b = b0.clone();
            trsm_policy(
                &policy,
                Side::Left,
                Uplo::Lower,
                Trans::No,
                false,
                1.5,
                l.rf(),
                b.mt(),
            )
            .unwrap();
            assert_eq!(b.max_abs_diff(&base), 0.0, "threads={threads}");
        }
    }

    #[test]
    fn trsm_policy_surfaces_deterministic_error() {
        let mut l = lower_tri(6, 48);
        l[(2, 2)] = 0.0;
        let mut b = mat(6, 20, 49);
        let r = trsm_policy(
            &ExecPolicy {
                threads: 3,
                min_work: 1,
                partition: crate::par::Partition::Width(4),
            },
            Side::Left,
            Uplo::Lower,
            Trans::No,
            false,
            1.0,
            l.rf(),
            b.mt(),
        );
        assert!(matches!(
            r,
            Err(crate::Error::SingularTriangle { index: 2 })
        ));
    }

    #[test]
    fn gemm_zero_k_behaves_like_scale() {
        let a = Matrix::zeros(4, 0);
        let b = Matrix::zeros(0, 3);
        let mut c = mat(4, 3, 30);
        let want = {
            let mut w = c.clone();
            w.scale(0.5);
            w
        };
        gemm(1.0, a.rf(), Trans::No, b.rf(), Trans::No, 0.5, c.mt());
        assert!(c.max_abs_diff(&want) < 1e-15);
    }
}
