//! Cholesky factorization `A = L Lᵀ` (lower triangular `L`).
//!
//! Used by the Schur algorithm to factor the leading block `T̂₁` when
//! building the generator (§2 of the paper), and by `bs-baselines` as the
//! dense O(n³) comparator. Blocked right-looking variant so the trailing
//! update is a level-3 `syrk`.

use crate::blas3::{syrk, trsm, Side, Trans, Uplo};
use crate::dense::Matrix;
use crate::flops;
use crate::scalar::Scalar;
use crate::view::MatMut;
use crate::{Error, Result};

const NB: usize = 64;

/// Factor `A = L Lᵀ` in place: on success the lower triangle of `a` holds
/// `L` and the strict upper triangle is zeroed.
pub fn cholesky_in_place<T: Scalar>(mut a: MatMut<'_, T>) -> Result<()> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "cholesky: matrix must be square");
    let mut k = 0;
    while k < n {
        let nb = NB.min(n - k);
        chol_unblocked(a.sub_mut(k, k, nb, nb), k)?;
        let rest = n - k - nb;
        if rest > 0 {
            // Panel solve A21 <- A21 L11^{-T}. L11 is small (<= NB); an
            // owned copy sidesteps aliasing between the read of L11 and
            // the write of A21 within the same backing storage.
            let l11 = a.rb().sub(k, k, nb, nb).to_matrix();
            trsm(
                Side::Right,
                Uplo::Lower,
                Trans::Yes,
                false,
                T::ONE,
                l11.rf(),
                a.sub_mut(k + nb, k, rest, nb),
            )?;
            // Trailing update A22 <- A22 - L21 L21ᵀ.
            let l21 = a.rb().sub(k + nb, k, rest, nb).to_matrix();
            syrk(
                Uplo::Lower,
                Trans::No,
                -T::ONE,
                l21.rf(),
                T::ONE,
                a.sub_mut(k + nb, k + nb, rest, rest),
            );
        }
        k += nb;
    }
    // Zero the strict upper triangle so callers get a clean L.
    for j in 1..n {
        for i in 0..j {
            a.set(i, j, T::ZERO);
        }
    }
    Ok(())
}

fn chol_unblocked<T: Scalar>(mut a: MatMut<'_, T>, global_offset: usize) -> Result<()> {
    let n = a.rows();
    flops::add((n * n * n) as u64 / 3);
    for j in 0..n {
        let mut d = a.get(j, j);
        for p in 0..j {
            let v = a.get(j, p);
            d -= v * v;
        }
        if d <= T::ZERO {
            return Err(Error::NotPositiveDefinite {
                index: global_offset + j,
                pivot: d.to_f64(),
            });
        }
        let d = d.sqrt();
        a.set(j, j, d);
        for i in j + 1..n {
            let mut s = a.get(i, j);
            for p in 0..j {
                s -= a.get(i, p) * a.get(j, p);
            }
            a.set(i, j, s / d);
        }
    }
    Ok(())
}

/// Convenience: factor a copy of `a`, returning `L`.
pub fn cholesky<T: Scalar>(a: &Matrix<T>) -> Result<Matrix<T>> {
    let mut l = a.clone();
    cholesky_in_place(l.mt())?;
    Ok(l)
}

/// Solve `A x = b` given `L` from [`cholesky`]: two triangular solves.
pub fn cholesky_solve<T: Scalar>(l: &Matrix<T>, b: &[T]) -> Result<Vec<T>> {
    let mut x = b.to_vec();
    crate::blas2::trsv_lower(l.rf(), &mut x, false)?;
    crate::blas2::trsv_lower_t(l.rf(), &mut x)?;
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::gemm;

    fn spd(n: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        let b = Matrix::from_fn(n, n, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 1000) as f64 - 500.0) / 500.0
        });
        let mut a = Matrix::identity(n);
        // A = B Bᵀ + n*I is comfortably SPD.
        let bt = b.transpose();
        let mut bbt = Matrix::zeros(n, n);
        gemm(1.0, b.rf(), Trans::No, bt.rf(), Trans::No, 0.0, bbt.mt());
        a.scale(n as f64);
        a.axpy(1.0, &bbt);
        a.symmetrize();
        a
    }

    #[test]
    fn factor_reconstructs() {
        for &n in &[1usize, 2, 3, 5, 17, 64, 65, 130] {
            let a = spd(n, 42 + n as u64);
            let l = cholesky(&a).unwrap();
            let lt = l.transpose();
            let mut r = Matrix::zeros(n, n);
            gemm(1.0, l.rf(), Trans::No, lt.rf(), Trans::No, 0.0, r.mt());
            let scale = (1..=n).map(|i| a[(i - 1, i - 1)].abs()).fold(1.0, f64::max);
            assert!(
                r.max_abs_diff(&a) < 1e-11 * scale,
                "n={n}: diff {}",
                r.max_abs_diff(&a)
            );
        }
    }

    #[test]
    fn upper_triangle_is_zeroed() {
        let a = spd(10, 7);
        let l = cholesky(&a).unwrap();
        for j in 1..10 {
            for i in 0..j {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn indefinite_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        match cholesky(&a) {
            Err(Error::NotPositiveDefinite { index: 1, .. }) => {}
            other => panic!("expected NotPositiveDefinite at 1, got {other:?}"),
        }
    }

    #[test]
    fn solve_recovers_solution() {
        let n = 20;
        let a = spd(n, 9);
        let l = cholesky(&a).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 10.0).collect();
        let mut b = vec![0.0; n];
        crate::blas2::gemv(1.0, a.rf(), &x_true, 0.0, &mut b);
        let x = cholesky_solve(&l, &b).unwrap();
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-9, "i={i}");
        }
    }
}
