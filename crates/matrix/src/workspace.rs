//! Scratch-buffer arena for the factorization hot path.
//!
//! The block Schur elimination loop needs many short-lived `f64`
//! buffers (panel copies, reflector scratch, trailing-update
//! temporaries). Allocating them per step is both slow and — for a
//! production solver serving repeated same-shaped systems — wasteful:
//! after one factorization the sizes never change. A [`Workspace`] is
//! a checkout/restore pool: `take_vec(len)` hands out the smallest
//! pooled buffer that fits (zero-filled, so callers see exactly the
//! semantics of `vec![0.0; len]` / [`Matrix::zeros`]), and `give_vec`
//! returns it for reuse. After warm-up every checkout is a pool hit
//! and the loop performs zero heap allocations.
//!
//! Cold growth is observable: every pool miss bumps
//! `bs_probe::metrics::Counter::{WorkspaceAllocs, WorkspaceElems}` and
//! the arena's own [`Workspace::allocations`] / high-water stats, which
//! the steady-state benchmark asserts stay flat across warm solves.

use crate::dense::Matrix;
use crate::scalar::Scalar;
use bs_probe::metrics::{self, Counter};

/// A reusable pool of scratch buffers over one [`Scalar`] type
/// (`f64` by default).
///
/// Not thread-safe by design: each factorization (or each worker)
/// owns its workspace. Buffers returned by [`take_vec`](Self::take_vec)
/// are zero-filled to the requested length so a pooled checkout is
/// indistinguishable from a fresh `vec![0.0; len]` — this is what lets
/// the plan/execute path produce bitwise-identical factors to the
/// historical allocate-per-call code.
#[derive(Debug)]
#[must_use]
pub struct Workspace<T: Scalar = f64> {
    /// Idle buffers, kept sorted by capacity (ascending) so checkout
    /// can best-fit with a linear scan over a short list.
    pool: Vec<Vec<T>>,
    /// Cold heap allocations performed (pool misses) since creation or
    /// the last [`reset_stats`](Self::reset_stats).
    allocations: u64,
    /// Elements heap-allocated by those misses.
    allocated_elems: u64,
    /// Elements currently checked out.
    live_elems: usize,
    /// Maximum of `live_elems` ever observed.
    high_water_elems: usize,
    /// When set, pooling is disabled: every checkout allocates and
    /// every return is dropped (see [`Workspace::bypass`]).
    bypass: bool,
    /// Checkouts minus returns since creation. Donated buffers (ones
    /// the workspace never handed out) drive this negative, so it is a
    /// *balance*, not a live-buffer count: region deltas are what the
    /// `paranoid` contracts compare (see [`contract_region`]).
    ///
    /// [`contract_region`]: Self::contract_region
    outstanding: i64,
}

impl<T: Scalar> Default for Workspace<T> {
    fn default() -> Self {
        Workspace {
            pool: Vec::new(),
            allocations: 0,
            allocated_elems: 0,
            live_elems: 0,
            high_water_elems: 0,
            bypass: false,
            outstanding: 0,
        }
    }
}

impl<T: Scalar> Workspace<T> {
    /// An empty workspace; the first factorization warms it up.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// A workspace with pooling disabled: every `take_*` allocates a
    /// fresh zeroed buffer and every `give_*` drops its argument. This
    /// reproduces the allocate-per-call behaviour the arena replaced —
    /// useful as a benchmark baseline and for A/B-testing the pool
    /// (results are bitwise-identical either way, since pooled
    /// checkouts are zero-filled).
    pub fn bypass() -> Self {
        Workspace {
            bypass: true,
            ..Workspace::default()
        }
    }

    /// Check out a zero-filled buffer of exactly `len` elements.
    ///
    /// Pool hit: the smallest idle buffer whose capacity covers `len`.
    /// Pool miss: a fresh allocation, counted against
    /// [`allocations`](Self::allocations) and the probe counters.
    ///
    /// Dropping the returned buffer instead of `give_vec`-ing it back
    /// leaks it from the pool, so the checkout is `#[must_use]`.
    #[must_use]
    pub fn take_vec(&mut self, len: usize) -> Vec<T> {
        self.outstanding += 1;
        self.live_elems += len;
        self.high_water_elems = self.high_water_elems.max(self.live_elems);
        if self.bypass {
            self.allocations += 1;
            self.allocated_elems += len as u64;
            metrics::incr(Counter::WorkspaceAllocs);
            metrics::add(Counter::WorkspaceElems, len as u64);
            return vec![T::ZERO; len];
        }
        // Best fit: smallest capacity >= len. The pool stays small (a
        // handful of buffers per factorization), so a scan is fine.
        let mut best: Option<usize> = None;
        for (i, b) in self.pool.iter().enumerate() {
            if b.capacity() >= len && best.is_none_or(|j| b.capacity() < self.pool[j].capacity()) {
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                let mut v = self.pool.swap_remove(i);
                v.clear();
                v.resize(len, T::ZERO);
                v
            }
            None => {
                self.allocations += 1;
                self.allocated_elems += len as u64;
                metrics::incr(Counter::WorkspaceAllocs);
                metrics::add(Counter::WorkspaceElems, len as u64);
                vec![T::ZERO; len]
            }
        }
    }

    /// Return a buffer to the pool for reuse. Accepts any vector,
    /// including ones the workspace did not hand out (that is how a
    /// solver donates a retired factor's storage).
    pub fn give_vec(&mut self, v: Vec<T>) {
        self.outstanding -= 1;
        self.live_elems = self.live_elems.saturating_sub(v.len());
        if self.bypass || v.capacity() == 0 {
            return;
        }
        self.pool.push(v);
    }

    /// Check out a zeroed `rows x cols` matrix backed by pooled storage.
    #[must_use]
    pub fn take_matrix(&mut self, rows: usize, cols: usize) -> Matrix<T> {
        Matrix::from_col_major(rows, cols, self.take_vec(rows * cols))
    }

    /// Return a matrix's storage to the pool.
    pub fn give_matrix(&mut self, m: Matrix<T>) {
        self.give_vec(m.into_col_major());
    }

    /// Cold heap allocations (pool misses) since creation or the last
    /// [`reset_stats`](Self::reset_stats). A warm workspace holds this
    /// at zero across whole factor/solve cycles.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Elements heap-allocated by pool misses in the same window.
    pub fn allocated_elems(&self) -> u64 {
        self.allocated_elems
    }

    /// Peak number of simultaneously checked-out elements.
    pub fn high_water_elems(&self) -> usize {
        self.high_water_elems
    }

    /// Number of idle buffers currently pooled.
    pub fn pooled_buffers(&self) -> usize {
        self.pool.len()
    }

    /// Total capacity (elements) of the idle pool.
    pub fn pooled_elems(&self) -> usize {
        self.pool.iter().map(|b| b.capacity()).sum()
    }

    /// Zero the allocation / high-water statistics, keeping the pooled
    /// buffers. Call between a warm-up run and a measured run.
    pub fn reset_stats(&mut self) {
        self.allocations = 0;
        self.allocated_elems = 0;
        self.high_water_elems = self.live_elems;
    }

    /// Checkout balance: `take_*` calls minus `give_*` calls since
    /// creation. Donations (giving back a buffer the workspace never
    /// handed out) push this negative, so only *deltas* across a code
    /// region are meaningful — snapshot on entry and compare on exit.
    pub fn outstanding(&self) -> i64 {
        self.outstanding
    }

    /// `paranoid` contract: assert the checkout balance changed by
    /// exactly `expected_delta` across a code region. `entry` is the
    /// [`outstanding`](Self::outstanding) snapshot taken when the
    /// region was entered. A mismatch means a buffer was leaked from
    /// (or double-returned to) the pool; the violation is recorded in
    /// `bs_probe::stability` and counted in
    /// `Counter::ContractViolations`. Compiles to nothing without the
    /// `paranoid` feature.
    #[inline]
    pub fn contract_region(&self, site: &'static str, entry: i64, expected_delta: i64) {
        if cfg!(feature = "paranoid") {
            let delta = self.outstanding - entry;
            if delta != expected_delta {
                bs_probe::stability::record_violation(
                    "workspace_balance",
                    format!(
                        "{site}: checkout balance changed by {delta} across the region \
                         (expected {expected_delta}) — a scratch buffer was leaked from \
                         or double-returned to the pool"
                    ),
                );
            }
        }
    }

    /// `paranoid` contract: assert the workspace is quiescent — every
    /// checkout since creation has been returned (balance zero). Only
    /// valid for workspaces that never received donations; regions of a
    /// long-lived workspace should use
    /// [`contract_region`](Self::contract_region) instead.
    #[inline]
    pub fn contract_quiescent(&self, site: &'static str) {
        self.contract_region(site, 0, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_is_zero_filled_and_reuses() {
        let mut ws: Workspace = Workspace::new();
        let mut a = ws.take_vec(8);
        assert_eq!(ws.allocations(), 1);
        a.iter_mut().for_each(|x| *x = 7.0);
        ws.give_vec(a);
        let b = ws.take_vec(6);
        // Same buffer reused (no new allocation), contents zeroed.
        assert_eq!(ws.allocations(), 1);
        assert!(b.iter().all(|&x| x == 0.0));
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ws: Workspace = Workspace::new();
        let big = ws.take_vec(100);
        let small = ws.take_vec(10);
        ws.give_vec(big);
        ws.give_vec(small);
        let v = ws.take_vec(9);
        assert!(v.capacity() < 100, "should pick the 10-capacity buffer");
        // The 100-capacity buffer is still pooled.
        assert_eq!(ws.pooled_buffers(), 1);
        assert_eq!(ws.allocations(), 2);
    }

    #[test]
    fn high_water_tracks_peak_live() {
        let mut ws: Workspace = Workspace::new();
        let a = ws.take_vec(30);
        let b = ws.take_vec(20);
        ws.give_vec(a);
        ws.give_vec(b);
        assert_eq!(ws.high_water_elems(), 50);
        let _ = ws.take_vec(40);
        assert_eq!(ws.high_water_elems(), 50);
    }

    #[test]
    fn warm_workspace_allocates_nothing() {
        let mut ws: Workspace = Workspace::new();
        for _ in 0..3 {
            let m = ws.take_matrix(16, 8);
            let v = ws.take_vec(64);
            ws.give_matrix(m);
            ws.give_vec(v);
        }
        assert_eq!(ws.allocations(), 2);
        ws.reset_stats();
        for _ in 0..10 {
            let m = ws.take_matrix(16, 8);
            let v = ws.take_vec(64);
            ws.give_matrix(m);
            ws.give_vec(v);
        }
        assert_eq!(ws.allocations(), 0, "warm loop must not allocate");
    }

    #[test]
    fn bypass_mode_never_pools() {
        let mut ws: Workspace = Workspace::bypass();
        for _ in 0..4 {
            let v = ws.take_vec(32);
            assert!(v.iter().all(|&x| x == 0.0));
            ws.give_vec(v);
        }
        assert_eq!(ws.allocations(), 4, "every bypass checkout allocates");
        assert_eq!(ws.pooled_buffers(), 0);
    }

    #[test]
    fn outstanding_tracks_checkout_balance() {
        let mut ws: Workspace = Workspace::new();
        assert_eq!(ws.outstanding(), 0);
        let a = ws.take_vec(8);
        let m = ws.take_matrix(2, 2);
        assert_eq!(ws.outstanding(), 2);
        ws.give_vec(a);
        ws.give_matrix(m);
        assert_eq!(ws.outstanding(), 0);
        // A donation (a buffer the pool never handed out) drives the
        // balance negative — it is a balance, not a live count.
        ws.give_vec(vec![1.0; 4]);
        assert_eq!(ws.outstanding(), -1);
    }

    #[test]
    fn matrix_roundtrip_preserves_shape() {
        let mut ws: Workspace = Workspace::new();
        let m = ws.take_matrix(3, 5);
        assert_eq!((m.rows(), m.cols()), (3, 5));
        ws.give_matrix(m);
        let m2 = ws.take_matrix(5, 3);
        assert_eq!(ws.allocations(), 1, "15 elements fit the pooled buffer");
        assert_eq!((m2.rows(), m2.cols()), (5, 3));
    }
}
