//! Owned column-major matrix storage.

use crate::scalar::Scalar;
use crate::view::{MatMut, MatRef};
use std::fmt;
use std::ops::{Index, IndexMut};

/// An owned, column-major, dense matrix over a [`Scalar`] element type
/// (`f64` by default).
///
/// Element `(i, j)` lives at `data[i + j * rows]`. Column-major order
/// matches the BLAS conventions the reproduced paper assumes and makes
/// column operations (the hot path of the Schur algorithm's generator
/// updates) contiguous.
///
/// ```
/// use bs_matrix::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(a[(1, 0)], 3.0);
/// assert_eq!(a.transpose()[(0, 1)], 3.0);
/// let mut c = Matrix::zeros(2, 2);
/// bs_matrix::gemm(
///     1.0,
///     a.rf(), bs_matrix::Trans::No,
///     a.rf(), bs_matrix::Trans::Yes,
///     0.0,
///     c.mt(),
/// );
/// assert_eq!(c[(0, 0)], 5.0); // (A Aᵀ)₀₀ = 1 + 4
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix<T: Scalar = f64> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Build from a closure evaluated at every `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Build from column-major data. Panics if `data.len() != rows * cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "column-major data length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Consume the matrix, yielding its column-major storage. The
    /// inverse of [`Matrix::from_col_major`]; lets a scratch arena
    /// recycle a matrix's buffer without copying.
    pub fn into_col_major(self) -> Vec<T> {
        self.data
    }

    /// Build from row-major data (convenient for literals in tests).
    pub fn from_rows(rows: &[&[T]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        for row in rows {
            assert_eq!(row.len(), c, "ragged row lengths");
        }
        Matrix::from_fn(r, c, |i, j| rows[i][j])
    }

    /// Column vector from a slice.
    pub fn col_vector(v: &[T]) -> Self {
        Matrix::from_col_major(v.len(), 1, v.to_vec())
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` iff the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Underlying column-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable underlying column-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Borrow as an immutable view of the whole matrix.
    #[inline]
    pub fn rf(&self) -> MatRef<'_, T> {
        MatRef::from_parts(&self.data, self.rows, self.cols, self.rows)
    }

    /// Borrow as a mutable view of the whole matrix.
    #[inline]
    pub fn mt(&mut self) -> MatMut<'_, T> {
        MatMut::from_parts(&mut self.data, self.rows, self.cols, self.rows)
    }

    /// Immutable sub-view of `nrows x ncols` starting at `(row, col)`.
    #[inline]
    pub fn sub(&self, row: usize, col: usize, nrows: usize, ncols: usize) -> MatRef<'_, T> {
        self.rf().sub(row, col, nrows, ncols)
    }

    /// Mutable sub-view of `nrows x ncols` starting at `(row, col)`.
    #[inline]
    pub fn sub_mut(&mut self, row: usize, col: usize, nrows: usize, ncols: usize) -> MatMut<'_, T> {
        self.mt().sub_move(row, col, nrows, ncols)
    }

    /// Contiguous column as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[T] {
        debug_assert!(j < self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Contiguous column as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        debug_assert!(j < self.cols);
        let r = self.rows;
        &mut self.data[j * r..(j + 1) * r]
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Fill every element with `v`.
    pub fn fill(&mut self, v: T) {
        self.data.fill(v);
    }

    /// Elementwise `self += alpha * other`.
    pub fn axpy(&mut self, alpha: T, other: &Matrix<T>) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * *b;
        }
        crate::flops::add(2 * self.data.len() as u64);
    }

    /// Scale every element by `alpha`.
    pub fn scale(&mut self, alpha: T) {
        for a in &mut self.data {
            *a *= alpha;
        }
        crate::flops::add(self.data.len() as u64);
    }

    /// Maximum absolute difference with `other` (shape must match),
    /// reported in f64 regardless of element type.
    pub fn max_abs_diff(&self, other: &Matrix<T>) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs().to_f64())
            .fold(0.0, f64::max)
    }

    /// Elementwise conversion to another scalar type: the demotion /
    /// promotion step of the mixed-precision pipeline (each element
    /// goes through f64, which is exact for widening and
    /// round-to-nearest for narrowing).
    pub fn convert<U: Scalar>(&self) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| U::from_f64(v.to_f64())).collect(),
        }
    }

    /// Symmetrize in place: `A <- (A + Aᵀ) / 2`. Panics if not square.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.rows, self.cols);
        let half = T::from_f64(0.5);
        for j in 0..self.cols {
            for i in 0..j {
                let v = half * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = v;
                self[(j, i)] = v;
            }
        }
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i + j * self.rows]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i + j * self.rows]
    }
}

impl<T: Scalar> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let rmax = self.rows.min(8);
        let cmax = self.cols.min(8);
        for i in 0..rmax {
            write!(f, "  ")?;
            for j in 0..cmax {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            if cmax < self.cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if rmax < self.rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z: Matrix = Matrix::zeros(3, 4);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 4);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i: Matrix = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_fn_is_column_major() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 10.0, 1.0, 11.0, 2.0, 12.0]);
    }

    #[test]
    fn from_rows_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(4, 3, |i, j| (i + 7 * j) as f64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn col_slices() {
        let mut m = Matrix::from_fn(3, 2, |i, j| (i + j * 3) as f64);
        assert_eq!(m.col(1), &[3.0, 4.0, 5.0]);
        m.col_mut(0)[2] = -1.0;
        assert_eq!(m[(2, 0)], -1.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        a.axpy(2.0, &b);
        assert_eq!(a[(0, 0)], 3.0);
        assert_eq!(a[(1, 0)], 6.0);
        a.scale(0.5);
        assert_eq!(a[(0, 1)], 2.0);
    }

    #[test]
    fn symmetrize_produces_symmetric() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[6.0, 3.0]]);
        m.symmetrize();
        assert_eq!(m[(0, 1)], m[(1, 0)]);
        assert_eq!(m[(0, 1)], 4.0);
    }

    #[test]
    #[should_panic]
    fn from_col_major_length_mismatch_panics() {
        let _ = Matrix::from_col_major(2, 2, vec![1.0, 2.0, 3.0]);
    }
}
