//! Householder QR factorization.
//!
//! The *orthogonal* cousin of the paper's hyperbolic reflectors. It is
//! used in the test-suite as an independent way to produce triangular
//! factors (`RᵀR = AᵀA`) against which the hyperbolic machinery can be
//! cross-checked, and by `bs-baselines` for least-squares sanity checks.

use crate::blas1;
use crate::dense::Matrix;
use crate::flops;

/// Compact QR: returns `(qr, tau)` in LAPACK-style storage — `R` in the
/// upper triangle, the Householder vectors below the diagonal (implicit
/// unit leading entry).
pub fn qr_factor(a: &Matrix) -> (Matrix, Vec<f64>) {
    let m = a.rows();
    let n = a.cols();
    let mut qr = a.clone();
    let kmax = m.min(n);
    let mut tau = vec![0.0f64; kmax];
    flops::add((2 * n * n * (3 * m.saturating_sub(n) + n)) as u64 / 3);
    for k in 0..kmax {
        // Build the reflector for column k below the diagonal.
        let alpha = qr[(k, k)];
        let mut normx2 = 0.0;
        for i in k + 1..m {
            normx2 += qr[(i, k)] * qr[(i, k)];
        }
        if normx2 == 0.0 {
            tau[k] = 0.0;
            continue;
        }
        let beta = -(alpha.signum()) * (alpha * alpha + normx2).sqrt();
        let v0 = alpha - beta;
        tau[k] = -v0 / beta; // = 2 / (vᵀv) scaled for unit leading entry
                             // Store v/v0 below the diagonal, beta on it.
        for i in k + 1..m {
            qr[(i, k)] /= v0;
        }
        qr[(k, k)] = beta;
        // Apply (I - tau v vᵀ) to the trailing columns.
        for j in k + 1..n {
            let mut s = qr[(k, j)];
            for i in k + 1..m {
                s += qr[(i, k)] * qr[(i, j)];
            }
            s *= tau[k];
            qr[(k, j)] -= s;
            for i in k + 1..m {
                let v = qr[(i, k)];
                qr[(i, j)] -= s * v;
            }
        }
    }
    (qr, tau)
}

/// Extract the `min(m,n) x n` upper-triangular factor `R`.
pub fn qr_unpack_r(qr: &Matrix) -> Matrix {
    let m = qr.rows();
    let n = qr.cols();
    let k = m.min(n);
    Matrix::from_fn(k, n, |i, j| if j >= i { qr[(i, j)] } else { 0.0 })
}

/// Apply `Qᵀ` to a vector in place.
pub fn qr_apply_qt(qr: &Matrix, tau: &[f64], x: &mut [f64]) {
    let m = qr.rows();
    assert_eq!(x.len(), m);
    let kmax = tau.len();
    for k in 0..kmax {
        if tau[k] == 0.0 {
            continue;
        }
        let mut s = x[k];
        for i in k + 1..m {
            s += qr[(i, k)] * x[i];
        }
        s *= tau[k];
        x[k] -= s;
        for i in k + 1..m {
            x[i] -= s * qr[(i, k)];
        }
        flops::add(4 * (m - k) as u64);
    }
}

/// Least-squares solve `min ‖Ax − b‖₂` for full-column-rank `A` (m >= n).
pub fn qr_solve(a: &Matrix, b: &[f64]) -> crate::Result<Vec<f64>> {
    let n = a.cols();
    assert!(a.rows() >= n, "qr_solve expects m >= n");
    let (qr, tau) = qr_factor(a);
    let mut y = b.to_vec();
    qr_apply_qt(&qr, &tau, &mut y);
    let r = qr_unpack_r(&qr);
    let mut x = y[..n].to_vec();
    crate::blas2::trsv_upper(r.sub(0, 0, n, n).to_matrix().rf(), &mut x)?;
    Ok(x)
}

/// Frobenius orthogonality defect `‖QᵀQ − I‖_F` (test utility).
pub fn orthogonality_defect(qr: &Matrix, tau: &[f64]) -> f64 {
    let m = qr.rows();
    // Build Q columns by applying Q to unit vectors: Q e_j = (Qᵀ)ᵀ e_j.
    // Using Qᵀ twice measures the same defect.
    let mut defect = 0.0;
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(m);
    for j in 0..m {
        let mut e = vec![0.0; m];
        e[j] = 1.0;
        qr_apply_qt(qr, tau, &mut e);
        cols.push(e);
    }
    for i in 0..m {
        for j in 0..m {
            let d = blas1::dot(&cols[i], &cols[j]) - if i == j { 1.0 } else { 0.0 };
            defect += d * d;
        }
    }
    defect.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::{gemm, Trans};

    fn testmat(m: usize, n: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(m, n, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 2001) as f64 - 1000.0) / 500.0
        })
    }

    #[test]
    fn r_transpose_r_equals_gram() {
        let a = testmat(12, 5, 1);
        let (qr, _) = qr_factor(&a);
        let r = qr_unpack_r(&qr);
        // RᵀR must equal AᵀA.
        let mut gram = Matrix::zeros(5, 5);
        gemm(1.0, a.rf(), Trans::Yes, a.rf(), Trans::No, 0.0, gram.mt());
        let mut rtr = Matrix::zeros(5, 5);
        gemm(1.0, r.rf(), Trans::Yes, r.rf(), Trans::No, 0.0, rtr.mt());
        assert!(rtr.max_abs_diff(&gram) < 1e-10);
    }

    #[test]
    fn q_is_orthogonal() {
        let a = testmat(8, 8, 2);
        let (qr, tau) = qr_factor(&a);
        assert!(orthogonality_defect(&qr, &tau) < 1e-12);
    }

    #[test]
    fn least_squares_exact_when_square() {
        let a = testmat(6, 6, 3);
        let x_true: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let mut b = vec![0.0; 6];
        crate::blas2::gemv(1.0, a.rf(), &x_true, 0.0, &mut b);
        let x = qr_solve(&a, &b).unwrap();
        for i in 0..6 {
            assert!((x[i] - x_true[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn least_squares_overdetermined_residual_orthogonal() {
        let a = testmat(10, 4, 4);
        let b: Vec<f64> = (0..10).map(|i| (i as f64).cos()).collect();
        let x = qr_solve(&a, &b).unwrap();
        // Residual must be orthogonal to the column space: Aᵀ r = 0.
        let mut r = b.clone();
        let mut ax = vec![0.0; 10];
        crate::blas2::gemv(1.0, a.rf(), &x, 0.0, &mut ax);
        for i in 0..10 {
            r[i] -= ax[i];
        }
        let mut atr = vec![0.0; 4];
        crate::blas2::gemv_t(1.0, a.rf(), &r, 0.0, &mut atr);
        for v in atr {
            assert!(v.abs() < 1e-10);
        }
    }
}
