//! Symmetric indefinite factorizations.
//!
//! Two flavours are provided:
//!
//! - [`ldlt_in_place`]: the classical `A = L D Lᵀ` with unit lower
//!   triangular `L` and diagonal `D` (no pivoting — it exists exactly when
//!   every leading principal submatrix is nonsingular, which is the same
//!   condition the paper states for its generalized decomposition
//!   `T₁ = L₁ Σ L₁ᵀ` in §2).
//! - [`sldlt`]: the *signature* form `A = L Σ Lᵀ` with `Σ = diag(±1)`,
//!   obtained by absorbing `|D|^{1/2}` into `L`. This is what the block
//!   Schur algorithm needs for the indefinite leading block, because the
//!   hyperbolic reflectors are defined with respect to a ±1 signature
//!   matrix `W` (eq. 11).

use crate::dense::Matrix;
use crate::flops;
use crate::scalar::Scalar;
use crate::view::MatMut;
use crate::{Error, Result};

/// A ±1 signature, the diagonal of the paper's `W` matrices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signature(pub Vec<i8>);

impl Signature {
    /// All-plus signature of length `n` (the SPD case).
    pub fn plus(n: usize) -> Self {
        Signature(vec![1; n])
    }

    /// `[+1; n] ++ [-1; n]` — the generator signature `W = diag(I, -I)`.
    pub fn hyperbolic(n: usize) -> Self {
        let mut v = vec![1i8; 2 * n];
        v[n..].fill(-1);
        Signature(v)
    }

    /// Concatenate `self` followed by the negation of `other`
    /// (builds `diag(Σ, -Σ)` from eq. 11 when `other == self`).
    pub fn extend_negated(&self, other: &Signature) -> Signature {
        let mut v = self.0.clone();
        v.extend(other.0.iter().map(|s| -s));
        Signature(v)
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    #[inline]
    pub fn sign(&self, i: usize) -> i8 {
        self.0[i]
    }

    /// Number of `-1` entries.
    pub fn negatives(&self) -> usize {
        self.0.iter().filter(|&&s| s < 0).count()
    }

    /// Apply `W` to a vector in place (flip the negative coordinates).
    pub fn apply<T: Scalar>(&self, x: &mut [T]) {
        assert_eq!(x.len(), self.0.len());
        for (xi, &s) in x.iter_mut().zip(&self.0) {
            if s < 0 {
                *xi = -*xi;
            }
        }
        flops::add(self.0.len() as u64);
    }

    /// As a dense diagonal matrix (for tests / reconstruction checks).
    pub fn to_matrix(&self) -> Matrix {
        let n = self.0.len();
        Matrix::from_fn(n, n, |i, j| if i == j { self.0[i] as f64 } else { 0.0 })
    }
}

/// Classical `A = L D Lᵀ` in place (no pivoting).
///
/// On success the strict lower triangle of `a` holds the strict part of
/// unit-lower `L` and the diagonal holds `D`. Pivots with
/// `|d| <= pivot_tol * max_abs_diag(A)` are reported as
/// [`Error::SingularPivot`].
pub fn ldlt_in_place<T: Scalar>(mut a: MatMut<'_, T>, pivot_tol: f64) -> Result<Vec<T>> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "ldlt: matrix must be square");
    let scale = (0..n)
        .map(|i| a.get(i, i).abs().to_f64())
        .fold(0.0, f64::max)
        .max(1.0);
    flops::add((n * n * n) as u64 / 3);
    let mut d = vec![T::ZERO; n];
    for j in 0..n {
        // d_j = a_jj - sum_p L_jp^2 d_p
        let mut djj = a.get(j, j);
        for p in 0..j {
            let l = a.get(j, p);
            djj -= l * l * d[p];
        }
        if djj.abs().to_f64() <= pivot_tol * scale {
            return Err(Error::SingularPivot {
                index: j,
                pivot: djj.to_f64(),
            });
        }
        d[j] = djj;
        a.set(j, j, djj);
        for i in j + 1..n {
            let mut s = a.get(i, j);
            for p in 0..j {
                s -= a.get(i, p) * a.get(j, p) * d[p];
            }
            a.set(i, j, s / djj);
        }
    }
    // Clean the strict upper triangle.
    for j in 1..n {
        for i in 0..j {
            a.set(i, j, T::ZERO);
        }
    }
    Ok(d)
}

/// Signature factorization `A = L Σ Lᵀ` with `Σ = diag(±1)`.
///
/// Returns `(L, Σ)` where `L` is lower triangular with positive diagonal
/// scaling absorbed (`L = L_unit |D|^{1/2}`). Exists iff all leading
/// principal submatrices are nonsingular (paper §2).
pub fn sldlt<T: Scalar>(a: &Matrix<T>, pivot_tol: f64) -> Result<(Matrix<T>, Signature)> {
    let n = a.rows();
    let mut l = a.clone();
    let d = ldlt_in_place(l.mt(), pivot_tol)?;
    let mut sig = Vec::with_capacity(n);
    for j in 0..n {
        let dj = d[j];
        sig.push(if dj >= T::ZERO { 1i8 } else { -1 });
        let sq = dj.abs().sqrt();
        // Column j of unit L scaled by |d_j|^{1/2}; unit diagonal -> sq.
        l[(j, j)] = sq;
        for i in j + 1..n {
            l[(i, j)] *= sq;
        }
        flops::add((n - j) as u64 + 1);
    }
    Ok((l, Signature(sig)))
}

/// Solve `A x = b` given the in-place LDLᵀ factor (`L` unit lower in the
/// strict triangle, `D` on the diagonal of `lfac`).
pub fn ldlt_solve<T: Scalar>(lfac: &Matrix<T>, b: &[T]) -> Result<Vec<T>> {
    let n = lfac.rows();
    let mut x = b.to_vec();
    crate::blas2::trsv_lower(lfac.rf(), &mut x, true)?;
    for i in 0..n {
        let d = lfac[(i, i)];
        if d == T::ZERO {
            return Err(Error::SingularPivot {
                index: i,
                pivot: d.to_f64(),
            });
        }
        x[i] /= d;
    }
    flops::add(n as u64);
    // Lᵀ x = y with unit diagonal.
    for j in (0..n).rev() {
        let mut s = x[j];
        for i in j + 1..n {
            s -= lfac[(i, j)] * x[i];
        }
        x[j] = s;
    }
    flops::add((n * n) as u64);
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::{gemm, Trans};

    fn reconstruct_ldlt(lfac: &Matrix) -> Matrix {
        let n = lfac.rows();
        let mut l = Matrix::identity(n);
        let mut d = Matrix::zeros(n, n);
        for j in 0..n {
            d[(j, j)] = lfac[(j, j)];
            for i in j + 1..n {
                l[(i, j)] = lfac[(i, j)];
            }
        }
        let lt = l.transpose();
        let mut ld = Matrix::zeros(n, n);
        gemm(1.0, l.rf(), Trans::No, d.rf(), Trans::No, 0.0, ld.mt());
        let mut out = Matrix::zeros(n, n);
        gemm(1.0, ld.rf(), Trans::No, lt.rf(), Trans::No, 0.0, out.mt());
        out
    }

    #[test]
    fn ldlt_indefinite_reconstructs() {
        // Indefinite but with nonsingular leading minors.
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, -3.0, 0.5], &[0.0, 0.5, 1.0]]);
        let mut lfac = a.clone();
        let d = ldlt_in_place(lfac.mt(), 0.0).unwrap();
        assert!(d[1] < 0.0, "second pivot must be negative");
        let r = reconstruct_ldlt(&lfac);
        assert!(r.max_abs_diff(&a) < 1e-13);
    }

    #[test]
    fn ldlt_detects_singular_minor() {
        // Leading 2x2 block [[1,1],[1,1]] is singular (the paper's §8.2
        // failure mode).
        let a = Matrix::from_rows(&[&[1.0, 1.0, 0.2], &[1.0, 1.0, 0.3], &[0.2, 0.3, 1.0]]);
        match ldlt_in_place(a.clone().mt(), 1e-12) {
            Err(Error::SingularPivot { index: 1, .. }) => {}
            other => panic!("expected singular pivot at 1, got {other:?}"),
        }
    }

    #[test]
    fn sldlt_signature_and_reconstruction() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, -1.0], &[2.0, -2.0, 0.5], &[-1.0, 0.5, 3.0]]);
        let (l, sig) = sldlt(&a, 0.0).unwrap();
        assert_eq!(sig.sign(0), 1);
        assert_eq!(sig.sign(1), -1);
        // Reconstruct L Σ Lᵀ.
        let s = sig.to_matrix();
        let lt = l.transpose();
        let mut ls = Matrix::zeros(3, 3);
        gemm(1.0, l.rf(), Trans::No, s.rf(), Trans::No, 0.0, ls.mt());
        let mut r = Matrix::zeros(3, 3);
        gemm(1.0, ls.rf(), Trans::No, lt.rf(), Trans::No, 0.0, r.mt());
        assert!(r.max_abs_diff(&a) < 1e-13);
    }

    #[test]
    fn sldlt_spd_is_cholesky() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 5.0]]);
        let (l, sig) = sldlt(&a, 0.0).unwrap();
        assert_eq!(sig, Signature::plus(2));
        let lc = crate::chol::cholesky(&a).unwrap();
        assert!(l.max_abs_diff(&lc) < 1e-14);
    }

    #[test]
    fn ldlt_solve_round_trips() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, -3.0, 0.5], &[0.0, 0.5, 1.0]]);
        let mut lfac = a.clone();
        ldlt_in_place(lfac.mt(), 0.0).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let mut b = [0.0; 3];
        crate::blas2::gemv(1.0, a.rf(), &x_true, 0.0, &mut b);
        let x = ldlt_solve(&lfac, &b).unwrap();
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn signature_helpers() {
        let s = Signature::hyperbolic(2);
        assert_eq!(s.0, vec![1, 1, -1, -1]);
        assert_eq!(s.negatives(), 2);
        let mut x = [1.0, 2.0, 3.0, 4.0];
        s.apply(&mut x);
        assert_eq!(x, [1.0, 2.0, -3.0, -4.0]);

        let sig = Signature(vec![1, -1]);
        let w = sig.extend_negated(&sig);
        assert_eq!(w.0, vec![1, -1, -1, 1]);
    }
}
