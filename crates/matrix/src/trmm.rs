//! Triangular and symmetric matrix-matrix multiplies (`trmm`, `symm`).
//!
//! Round out the level-3 kernel set: the block representations multiply
//! by the small lower-triangular `T` factor of the `YTYᵀ` form, and the
//! verification utilities form symmetric products without materializing
//! both triangles.

use crate::blas1;
use crate::blas3::{Side, Trans, Uplo};
use crate::flops;
use crate::view::{MatMut, MatRef};

/// In-place triangular multiply `B ← alpha * op(A) B` (`Side::Left`) or
/// `B ← alpha * B op(A)` (`Side::Right`), with `A` triangular per
/// `uplo` (`unit_diag` treats its diagonal as ones).
pub fn trmm(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    unit_diag: bool,
    alpha: f64,
    a: MatRef<'_>,
    mut b: MatMut<'_>,
) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "trmm: A must be square");
    match side {
        Side::Left => assert_eq!(b.rows(), n, "trmm left: A order vs B rows"),
        Side::Right => assert_eq!(b.cols(), n, "trmm right: A order vs B cols"),
    }
    flops::add(
        (n * n) as u64
            * if side == Side::Left {
                b.cols()
            } else {
                b.rows()
            } as u64,
    );
    match side {
        Side::Left => {
            for j in 0..b.cols() {
                let col = b.col_mut(j);
                trmv(uplo, trans, unit_diag, a, col);
                // bs-lint: allow(float-eq) -- BLAS trmv convention: alpha exactly 1.0 skips the column rescale after the triangular multiply
                if alpha != 1.0 {
                    blas1::scal(alpha, col);
                }
            }
        }
        Side::Right => {
            // B op(A): row-wise via the transposed identity
            // (B op(A))ᵀ = op(A)ᵀ Bᵀ.
            let m = b.rows();
            let mut row = vec![0.0f64; n];
            let tt = match trans {
                Trans::No => Trans::Yes,
                Trans::Yes => Trans::No,
            };
            for i in 0..m {
                for j in 0..n {
                    row[j] = b.get(i, j);
                }
                trmv(uplo, tt, unit_diag, a, &mut row);
                for j in 0..n {
                    b.set(i, j, alpha * row[j]);
                }
            }
        }
    }
}

/// In-place triangular matrix-vector multiply `x ← op(A) x`.
fn trmv(uplo: Uplo, trans: Trans, unit_diag: bool, a: MatRef<'_>, x: &mut [f64]) {
    let n = a.rows();
    assert_eq!(x.len(), n);
    // Effective triangle after transposition.
    let lower = matches!(
        (uplo, trans),
        (Uplo::Lower, Trans::No) | (Uplo::Upper, Trans::Yes)
    );
    if lower {
        // y_i = Σ_{j<=i} L_ij x_j: compute from the bottom up.
        for i in (0..n).rev() {
            let mut s = if unit_diag { x[i] } else { 0.0 };
            let from = 0;
            let to = if unit_diag { i } else { i + 1 };
            for j in from..to {
                let v = match trans {
                    Trans::No => a.get(i, j),
                    Trans::Yes => a.get(j, i),
                };
                s += v * x[j];
            }
            if !unit_diag {
                // include the diagonal via the loop above (j == i)
            }
            x[i] = s;
        }
    } else {
        // Upper effective triangle: compute from the top down.
        for i in 0..n {
            let mut s = if unit_diag { x[i] } else { 0.0 };
            let from = if unit_diag { i + 1 } else { i };
            for j in from..n {
                let v = match trans {
                    Trans::No => a.get(i, j),
                    Trans::Yes => a.get(j, i),
                };
                s += v * x[j];
            }
            x[i] = s;
        }
    }
}

/// Symmetric multiply `C ← alpha * A B + beta * C` (`Side::Left`) or
/// `C ← alpha * B A + beta * C` (`Side::Right`), where only the `uplo`
/// triangle of the symmetric matrix `A` is referenced.
pub fn symm(
    side: Side,
    uplo: Uplo,
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f64,
    mut c: MatMut<'_>,
) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "symm: A must be square");
    let sym = |i: usize, j: usize| -> f64 {
        match uplo {
            Uplo::Lower => {
                if i >= j {
                    a.get(i, j)
                } else {
                    a.get(j, i)
                }
            }
            Uplo::Upper => {
                if i <= j {
                    a.get(i, j)
                } else {
                    a.get(j, i)
                }
            }
        }
    };
    match side {
        Side::Left => {
            assert_eq!(b.rows(), n);
            assert_eq!(c.rows(), n);
            assert_eq!(b.cols(), c.cols());
            flops::add(2 * (n * n * b.cols()) as u64);
            for j in 0..c.cols() {
                for i in 0..n {
                    let mut s = 0.0;
                    for k in 0..n {
                        s += sym(i, k) * b.get(k, j);
                    }
                    let v = alpha * s + if beta == 0.0 { 0.0 } else { beta * c.get(i, j) };
                    c.set(i, j, v);
                }
            }
        }
        Side::Right => {
            assert_eq!(b.cols(), n);
            assert_eq!(c.cols(), n);
            assert_eq!(b.rows(), c.rows());
            flops::add(2 * (n * n * b.rows()) as u64);
            for j in 0..n {
                for i in 0..b.rows() {
                    let mut s = 0.0;
                    for k in 0..n {
                        s += b.get(i, k) * sym(k, j);
                    }
                    let v = alpha * s + if beta == 0.0 { 0.0 } else { beta * c.get(i, j) };
                    c.set(i, j, v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::gemm;
    use crate::dense::Matrix;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 1000) as f64 - 500.0) / 250.0
        })
    }

    fn tri(n: usize, uplo: Uplo, unit: bool, seed: u64) -> Matrix {
        let mut a = mat(n, n, seed);
        for j in 0..n {
            for i in 0..n {
                let keep = match uplo {
                    Uplo::Lower => i >= j,
                    Uplo::Upper => i <= j,
                };
                if !keep {
                    a[(i, j)] = 0.0;
                }
            }
            if unit {
                a[(j, j)] = 1.0;
            }
        }
        a
    }

    #[test]
    fn trmm_left_matches_gemm_all_variants() {
        let n = 7;
        let b0 = mat(n, 4, 2);
        for uplo in [Uplo::Lower, Uplo::Upper] {
            for trans in [Trans::No, Trans::Yes] {
                for unit in [false, true] {
                    let a = tri(n, uplo, unit, 5);
                    let mut want = Matrix::zeros(n, 4);
                    gemm(1.5, a.rf(), trans, b0.rf(), Trans::No, 0.0, want.mt());
                    let mut b = b0.clone();
                    trmm(Side::Left, uplo, trans, unit, 1.5, a.rf(), b.mt());
                    assert!(
                        b.max_abs_diff(&want) < 1e-12,
                        "uplo={uplo:?} trans={trans:?} unit={unit}"
                    );
                }
            }
        }
    }

    #[test]
    fn trmm_right_matches_gemm() {
        let n = 6;
        let b0 = mat(3, n, 9);
        for uplo in [Uplo::Lower, Uplo::Upper] {
            for trans in [Trans::No, Trans::Yes] {
                let a = tri(n, uplo, false, 11);
                let mut want = Matrix::zeros(3, n);
                gemm(2.0, b0.rf(), Trans::No, a.rf(), trans, 0.0, want.mt());
                let mut b = b0.clone();
                trmm(Side::Right, uplo, trans, false, 2.0, a.rf(), b.mt());
                assert!(
                    b.max_abs_diff(&want) < 1e-12,
                    "uplo={uplo:?} trans={trans:?}"
                );
            }
        }
    }

    #[test]
    fn symm_matches_gemm_on_symmetrized_matrix() {
        let n = 5;
        let mut full = mat(n, n, 4);
        full.symmetrize();
        let b = mat(n, 3, 6);
        // Poison the unused triangle.
        let mut low = full.clone();
        for j in 0..n {
            for i in 0..j {
                low[(i, j)] = f64::NAN;
            }
        }
        let mut want = Matrix::zeros(n, 3);
        gemm(1.0, full.rf(), Trans::No, b.rf(), Trans::No, 0.0, want.mt());
        let mut c = Matrix::zeros(n, 3);
        symm(Side::Left, Uplo::Lower, 1.0, low.rf(), b.rf(), 0.0, c.mt());
        assert!(c.max_abs_diff(&want) < 1e-12);

        // Right side with the upper triangle.
        let mut up = full.clone();
        for j in 0..n {
            for i in j + 1..n {
                up[(i, j)] = f64::NAN;
            }
        }
        let br = mat(4, n, 8);
        let mut want_r = Matrix::zeros(4, n);
        gemm(
            1.0,
            br.rf(),
            Trans::No,
            full.rf(),
            Trans::No,
            0.0,
            want_r.mt(),
        );
        let mut cr = Matrix::zeros(4, n);
        symm(
            Side::Right,
            Uplo::Upper,
            1.0,
            up.rf(),
            br.rf(),
            0.0,
            cr.mt(),
        );
        assert!(cr.max_abs_diff(&want_r) < 1e-12);
    }

    #[test]
    fn symm_beta_accumulates() {
        let n = 4;
        let mut a = mat(n, n, 1);
        a.symmetrize();
        let b = mat(n, 2, 2);
        let c0 = mat(n, 2, 3);
        let mut want = c0.clone();
        want.scale(0.5);
        let mut tmp = Matrix::zeros(n, 2);
        gemm(2.0, a.rf(), Trans::No, b.rf(), Trans::No, 0.0, tmp.mt());
        want.axpy(1.0, &tmp);
        let mut c = c0.clone();
        symm(Side::Left, Uplo::Lower, 2.0, a.rf(), b.rf(), 0.5, c.mt());
        assert!(c.max_abs_diff(&want) < 1e-12);
    }
}
