//! Level-1 kernels on contiguous slices.
//!
//! These are the primitives the paper calls "BLAS1 routines such as
//! dotproducts and triads" (§6.2). They operate on plain `&[f64]`
//! because every column of a view is contiguous.

use crate::flops;
use crate::scalar::Scalar;

/// Dot product `xᵀy`.
#[inline]
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len());
    flops::add_l1(2 * x.len() as u64);
    // Four accumulators give the autovectorizer latitude without
    // changing results enough to matter for f64 test tolerances.
    let mut acc = [T::ZERO; 4];
    let chunks = x.len() / 4;
    for k in 0..chunks {
        let i = 4 * k;
        acc[0] += x[i] * y[i];
        acc[1] += x[i + 1] * y[i + 1];
        acc[2] += x[i + 2] * y[i + 2];
        acc[3] += x[i + 3] * y[i + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in 4 * chunks..x.len() {
        s += x[i] * y[i];
    }
    s
}

/// `y += alpha * x`.
#[inline]
pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len());
    if alpha == T::ZERO {
        return;
    }
    flops::add_l1(2 * x.len() as u64);
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha`.
#[inline]
pub fn scal<T: Scalar>(alpha: T, x: &mut [T]) {
    flops::add_l1(x.len() as u64);
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm with scaling to avoid overflow/underflow.
pub fn nrm2<T: Scalar>(x: &[T]) -> T {
    flops::add_l1(2 * x.len() as u64);
    let amax = x.iter().fold(T::ZERO, |m, &v| m.max(v.abs()));
    if amax == T::ZERO || !amax.is_finite() {
        return amax;
    }
    let mut s = T::ZERO;
    for &v in x {
        let t = v / amax;
        s += t * t;
    }
    amax * s.sqrt()
}

/// Index of the element with the largest absolute value; `None` when empty.
pub fn iamax<T: Scalar>(x: &[T]) -> Option<usize> {
    x.iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.abs().total_cmp(&b.abs()))
        .map(|(i, _)| i)
}

/// Swap the contents of two slices.
#[inline]
pub fn swap<T: Scalar>(x: &mut [T], y: &mut [T]) {
    assert_eq!(x.len(), y.len());
    for (a, b) in x.iter_mut().zip(y.iter_mut()) {
        std::mem::swap(a, b);
    }
}

/// Signed dot product `xᵀ W y` where `W = diag(w)` with `w[i] ∈ {+1,-1}`.
///
/// This is the *hyperbolic* inner product at the heart of the paper's
/// reflectors (§3). The signature is passed as `i8` signs.
#[inline]
pub fn wdot<T: Scalar>(x: &[T], w: &[i8], y: &[T]) -> T {
    assert_eq!(x.len(), y.len());
    assert_eq!(x.len(), w.len());
    flops::add_l1(2 * x.len() as u64);
    let mut plus = T::ZERO;
    let mut minus = T::ZERO;
    for i in 0..x.len() {
        if w[i] >= 0 {
            plus += x[i] * y[i];
        } else {
            minus += x[i] * y[i];
        }
    }
    plus - minus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..13).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..13).map(|i| (2 * i + 1) as f64).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-12 * naive.abs());
    }

    #[test]
    fn axpy_updates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn nrm2_is_scaled() {
        // Values that would overflow a naive sum-of-squares.
        let x = [1e200, 1e200];
        let n = nrm2(&x);
        assert!((n - 1e200 * 2.0f64.sqrt()).abs() < 1e186);
        assert_eq!(nrm2::<f64>(&[]), 0.0);
        assert_eq!(nrm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn iamax_finds_peak() {
        assert_eq!(iamax(&[1.0, -5.0, 3.0]), Some(1));
        assert_eq!(iamax::<f64>(&[]), None);
    }

    #[test]
    fn swap_exchanges() {
        let mut a = [1.0, 2.0];
        let mut b = [3.0, 4.0];
        swap(&mut a, &mut b);
        assert_eq!(a, [3.0, 4.0]);
        assert_eq!(b, [1.0, 2.0]);
    }

    #[test]
    fn wdot_hyperbolic_norm() {
        // [3,5] with signature (+,-): 9 - 25 = -16.
        let x = [3.0, 5.0];
        assert_eq!(wdot(&x, &[1, -1], &x), -16.0);
        assert_eq!(wdot(&x, &[1, 1], &x), 34.0);
    }

    #[test]
    fn scal_scales() {
        let mut x = [1.0, -2.0, 4.0];
        scal(-0.5, &mut x);
        assert_eq!(x, [-0.5, 1.0, -2.0]);
    }
}
