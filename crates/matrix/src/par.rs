//! Minimal parallel driver for the level-3 kernels.
//!
//! The parallel gemm path hands each worker a disjoint column strip of
//! `C`; all a driver needs is "run this closure once per strip, on its
//! own thread". Scoped threads do exactly that with no external
//! dependency and no pool state, and because every strip carries a
//! whole macro-kernel's worth of work, thread spawn cost is noise.
//!
//! Worker threads count their own flops into their thread-local
//! `bs-probe` slots; aggregate with `bs_probe::metrics::total` (or
//! `flops::total`), not the per-thread `flops::get`.

/// Number of hardware threads available (1 when it cannot be queried).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` once per item, each on its own scoped thread. With zero or
/// one item (or when only one hardware thread is available) the items
/// run inline on the calling thread.
pub fn for_each<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    if items.len() <= 1 || current_num_threads() <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let fref = &f;
    std::thread::scope(|s| {
        for item in items {
            s.spawn(move || fref(item));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_item_exactly_once() {
        let hits = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        for_each((1..=10usize).collect(), |v| {
            hits.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(v, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
        assert_eq!(sum.load(Ordering::Relaxed), 55);
    }

    #[test]
    fn empty_and_single_item_run_inline() {
        for_each(Vec::<usize>::new(), |_| panic!("no items"));
        let hits = AtomicUsize::new(0);
        for_each(vec![7usize], |v| {
            assert_eq!(v, 7);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn mutable_borrows_pass_through() {
        let mut data = [0u64; 4];
        let chunks: Vec<(usize, &mut [u64])> = data.chunks_mut(2).enumerate().collect();
        for_each(chunks, |(i, chunk)| {
            for c in chunk {
                *c = i as u64 + 1;
            }
        });
        assert_eq!(data, [1, 1, 2, 2]);
    }
}
