//! Execution layer: a persistent worker pool plus the [`ExecPolicy`]
//! that every parallel-capable kernel consults.
//!
//! The paper distributes the generator's column panels across
//! processors (the three T3D schemes, §6–7); this module is the
//! shared-memory analogue. Work is cut into **deterministic column
//! strips** — strip boundaries depend only on the problem extent and
//! the [`Partition`] rule, never on the thread count — and the strips
//! are claimed dynamically by a lazily-started pool of reusable worker
//! threads. Because every strip computes exactly what it would compute
//! sequentially (same kernel, same operand shapes, same traversal
//! order), a parallel run is **bitwise identical** to a sequential run
//! at every thread count; threads only change *who* executes each
//! strip, never *what* is computed.
//!
//! Worker scratch comes from a per-thread [`Workspace`] arena (see
//! [`with_worker_ws`]), so the steady-state zero-allocation invariant
//! of the plan/execute engine survives fan-out: after one warm
//! dispatch every strip's temporaries are pool hits.
//!
//! Worker threads count their own flops into their thread-local
//! `bs-probe` slots; aggregate with `bs_probe::metrics::total` (or
//! `flops::total`), not the per-thread `flops::get`. The pool itself
//! reports `pool_dispatches` / `pool_strips` / `pool_strip_nanos`
//! counters and a `pool_dispatch` span per parallel region.

use crate::scalar::Scalar;
use crate::workspace::Workspace;
use bs_probe::metrics::{self, Counter};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Number of hardware threads available (1 when it cannot be queried).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Count of live [`FlushSubnormals`] guards: while non-zero, pool
/// workers mirror the caller's flush-to-zero state for the jobs they
/// claim (the FP control register is per-thread, so the caller's guard
/// alone cannot reach the pool).
static FLUSH_GUARDS: AtomicUsize = AtomicUsize::new(0);

/// Thread-local flush-to-zero scope: on x86_64 sets the FTZ and DAZ
/// bits of MXCSR (subnormal inputs and results become ±0) and restores
/// the caller's control word on drop. A no-op elsewhere.
struct FtzScope {
    /// Under Miri the CSR intrinsics cannot execute; the scope
    /// degrades to the no-op form and subnormals keep IEEE semantics
    /// (slower, numerically identical for the tested sizes).
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    mxcsr: u32,
}

impl FtzScope {
    fn engage() -> Self {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            let mut prev: u32 = 0;
            // SAFETY: [reg `stmxcsr`/`ldmxcsr` read and write only this
            // thread's SSE control/status register] [bounds `prev` and
            // `flushed` are stack-local `u32` slots written through
            // plain references] [lifetime the prior word is restored by
            // `drop` on the same thread — the scope is not `Send`]
            unsafe {
                core::arch::asm!(
                    "stmxcsr [{0}]",
                    in(reg) &mut prev,
                    options(nostack, preserves_flags)
                );
                let flushed: u32 = prev | 0x8040; // FTZ (bit 15) | DAZ (bit 6)
                core::arch::asm!(
                    "ldmxcsr [{0}]",
                    in(reg) &flushed,
                    options(nostack, preserves_flags)
                );
            }
            FtzScope { mxcsr: prev }
        }
        #[cfg(any(not(target_arch = "x86_64"), miri))]
        FtzScope {}
    }
}

impl Drop for FtzScope {
    fn drop(&mut self) {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        // SAFETY: [reg `ldmxcsr` writes only this thread's MXCSR word]
        // [bounds `mxcsr` is a plain field of `self`, read through a
        // reference] [sync the scope is not `Send`, so `engage` and
        // this restore run on the same thread]
        unsafe {
            core::arch::asm!(
                "ldmxcsr [{0}]",
                in(reg) &self.mxcsr,
                options(nostack, preserves_flags)
            );
        }
    }
}

/// RAII scope that flushes floating-point subnormals to zero on the
/// calling thread *and* on any pool worker running strips while the
/// guard lives (workers re-check per claimed job).
///
/// The f32 factor stage needs this: Schur generator entries decay
/// geometrically, and once intermediates fall below the f32 normal
/// range (≈ 1.2e-38) hardware subnormal assists dominate the factor
/// time (measured ~6x end-to-end on AVX2). Flushing those magnitudes
/// is far inside the demotion backward error `δT` the §8.1 refinement
/// already absorbs. x86_64 only; elsewhere the guard is a no-op and
/// subnormals take the slow path at IEEE semantics.
///
/// Caveat: the worker-side flush is a process-wide request, so an f64
/// dispatch running *concurrently* with a live guard also flushes —
/// harmless unless that job produces f64 subnormals (magnitudes below
/// ≈ 2.2e-308, which no scaled workload here approaches).
pub struct FlushSubnormals {
    _local: FtzScope,
}

impl FlushSubnormals {
    pub fn engage() -> Self {
        FLUSH_GUARDS.fetch_add(1, Ordering::Relaxed);
        FlushSubnormals {
            _local: FtzScope::engage(),
        }
    }
}

impl Drop for FlushSubnormals {
    fn drop(&mut self) {
        FLUSH_GUARDS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Columns per partition grain: strip widths are rounded up to a
/// multiple of this so micro-kernel-friendly alignment survives
/// partitioning.
pub const GRAIN_COLS: usize = 4;

/// Upper bound on the number of strips an [`Partition::Auto`] extent is
/// cut into. Kept modest so each strip carries a macro-kernel's worth
/// of work and per-strip bookkeeping stays noise.
const MAX_STRIPS: usize = 16;

/// Minimum `m·n·k`-style work (flop volume / 2) below which a parallel
/// region is not worth dispatching. One 64³ gemm is roughly where strip
/// dispatch cost disappears into arithmetic.
pub const DEFAULT_MIN_WORK: u64 = 64 * 64 * 64;

/// How a column extent is cut into strips. The rule is **deterministic
/// in the extent alone**: the same extent always yields the same strip
/// boundaries, independent of thread count, so parallel and sequential
/// execution perform identical arithmetic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Partition {
    /// `extent.div_ceil(16)` rounded up to a [`GRAIN_COLS`] multiple:
    /// at most 16 strips, each a multiple of the grain.
    Auto,
    /// Fixed strip width (clamped to at least 1 column).
    Width(usize),
}

impl Partition {
    /// Strip width for a `cols`-wide extent under this rule.
    pub fn strip_width(self, cols: usize) -> usize {
        match self {
            Partition::Auto => cols
                .div_ceil(MAX_STRIPS)
                .next_multiple_of(GRAIN_COLS)
                .max(GRAIN_COLS),
            Partition::Width(w) => w.max(1),
        }
    }
}

/// Execution policy threaded from the plan layer down to the kernels:
/// how many threads may run, how much work justifies a dispatch, and
/// how extents are partitioned.
///
/// `threads` is an upper bound, not a demand — a region never uses more
/// threads than it has strips, and `threads <= 1` short-circuits to the
/// plain sequential loop with zero pool involvement. `min_work` gates
/// dispatch on problem volume so small problems never pay fan-out
/// latency. `partition` fixes strip boundaries; see [`Partition`] for
/// the determinism contract.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecPolicy {
    /// Maximum threads a region may use (including the caller).
    pub threads: usize,
    /// Minimum work volume (product-of-extents scale) to dispatch.
    pub min_work: u64,
    /// Strip partitioning rule.
    pub partition: Partition,
}

impl ExecPolicy {
    /// Strictly sequential execution (the default).
    pub fn sequential() -> Self {
        ExecPolicy {
            threads: 1,
            min_work: DEFAULT_MIN_WORK,
            partition: Partition::Auto,
        }
    }

    /// At most `threads` threads, default work gate and partitioning.
    pub fn with_threads(threads: usize) -> Self {
        ExecPolicy {
            threads: threads.max(1),
            ..ExecPolicy::sequential()
        }
    }

    /// Use every hardware thread.
    pub fn max_threads() -> Self {
        ExecPolicy::with_threads(current_num_threads())
    }

    /// Policy from the `BS_THREADS` environment variable (a positive
    /// integer or `max`); sequential when unset or unparsable.
    pub fn from_env() -> Self {
        match env_threads() {
            Some(t) => ExecPolicy::with_threads(t),
            None => ExecPolicy::sequential(),
        }
    }

    /// Whether this policy can ever dispatch to the pool.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy::sequential()
    }
}

/// Parse a thread-count spec: a positive integer, or `max` for every
/// hardware thread.
pub fn parse_threads(s: &str) -> Option<usize> {
    let s = s.trim();
    if s.eq_ignore_ascii_case("max") {
        Some(current_num_threads())
    } else {
        s.parse::<usize>().ok().filter(|&t| t > 0)
    }
}

/// Thread count requested via the `BS_THREADS` environment variable,
/// if set and parsable.
pub fn env_threads() -> Option<usize> {
    std::env::var("BS_THREADS")
        .ok()
        .and_then(|s| parse_threads(&s))
}

/// Deterministic column strips: `(start, width)` pairs covering `cols`
/// in ascending order, each `width` wide except possibly the last.
/// Boundaries depend only on `cols` and `width` — never on threads.
pub fn strips(cols: usize, width: usize) -> Vec<(usize, usize)> {
    let w = width.max(1);
    // bs-lint: allow(no-alloc-hot) -- O(strips) descriptor list built
    // once per dispatch, proportional to MAX_STRIPS, not problem size.
    let mut out = Vec::with_capacity(cols.div_ceil(w));
    let mut j = 0;
    while j < cols {
        let sw = w.min(cols - j);
        out.push((j, sw));
        j += sw;
    }
    out
}

// ---------------------------------------------------------------------
// Persistent worker pool.
// ---------------------------------------------------------------------

/// One parallel region's worth of work, delivered to a worker's
/// mailbox. Raw pointers into the dispatcher's stack frame; see the
/// SAFETY discussion on [`dispatch`].
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    next: *const AtomicUsize,
    n: usize,
}

// A Job crosses threads only from `dispatch` to a pool worker, and
// `dispatch` keeps the pointed-to closure and strip counter alive on
// its stack until every worker that received the Job has checked in.
// SAFETY: [lifetime `dispatch` blocks on the `done` barrier until
// every worker that received the Job checks in, so the raw pointers
// never dangle] [sync the closure behind `f` is `Sync` and `next` is
// an `AtomicUsize`; shared access from several workers is sound]
unsafe impl Send for Job {}

/// A worker's private mailbox: the dispatcher delivers at most one Job
/// per parallel region, the worker takes it and runs strips to
/// completion before checking in.
struct WorkerChan {
    mail: Mutex<Option<Job>>,
    cv: Condvar,
}

struct Pool {
    /// Serializes parallel regions: one dispatch owns the whole pool.
    region: Mutex<()>,
    /// Live worker mailboxes, grown on demand (never shrunk).
    workers: Mutex<Vec<Arc<WorkerChan>>>,
    /// Count of workers that finished the current region.
    done: Mutex<usize>,
    done_cv: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        region: Mutex::new(()),
        workers: Mutex::new(Vec::new()),
        done: Mutex::new(0),
        done_cv: Condvar::new(),
    })
}

thread_local! {
    /// True while this thread is executing strips of a dispatched
    /// region; nested `run_indexed` calls then run inline (the region
    /// mutex is not reentrant, and nesting would deadlock).
    static IN_DISPATCH: Cell<bool> = const { Cell::new(false) };

    /// Per-thread scratch arena for strip execution; stays warm across
    /// dispatches, preserving the zero-allocation steady state.
    static WORKER_WS: RefCell<Workspace> = RefCell::new(Workspace::new());

    /// f32 sibling of [`WORKER_WS`]: the mixed-precision factor path
    /// runs the same strip kernels at f32 and needs its own arena (the
    /// pools are typed, so the scalars cannot share one).
    static WORKER_WS_F32: RefCell<Workspace<f32>> = RefCell::new(Workspace::new());
}

/// Whether the current thread is already inside a pool dispatch (its
/// own or as a worker). Kernels use this to fall back to their
/// sequential path instead of nesting regions.
pub fn in_dispatch() -> bool {
    IN_DISPATCH.with(Cell::get)
}

/// Run `f` against the current thread's persistent scratch workspace
/// for scalar `T` (each scalar owns a separate arena). Strip closures
/// use this for their temporaries: the workspace warms up once per
/// thread and every later checkout is a pool hit. Not reentrant — do
/// not call `with_worker_ws` from inside `f` for the same scalar.
pub fn with_worker_ws<T: Scalar, R>(f: impl FnOnce(&mut Workspace<T>) -> R) -> R {
    T::with_worker_ws(f)
}

/// The f64 worker arena ([`Scalar::with_worker_ws`] routes here).
pub(crate) fn with_worker_ws_f64<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    WORKER_WS.with(|ws| f(&mut ws.borrow_mut()))
}

/// The f32 worker arena ([`Scalar::with_worker_ws`] routes here).
pub(crate) fn with_worker_ws_f32<R>(f: impl FnOnce(&mut Workspace<f32>) -> R) -> R {
    WORKER_WS_F32.with(|ws| f(&mut ws.borrow_mut()))
}

/// Measured cost of one pool dispatch in nanoseconds: the wall-clock
/// latency of fanning an (empty) region out to one worker and joining
/// it, best of a few samples, measured once per process on first call.
///
/// This is the quantity the perf model's thread-count auto-selection
/// needs to decide when parallelism pays: a dispatch that costs more
/// than the arithmetic it distributes is a loss at any thread count.
/// Returns 0 when the machine has a single hardware thread (dispatch
/// never happens there).
pub fn dispatch_overhead_ns() -> u64 {
    static OVERHEAD: OnceLock<u64> = OnceLock::new();
    *OVERHEAD.get_or_init(|| {
        if current_num_threads() < 2 {
            return 0;
        }
        let policy = ExecPolicy::with_threads(2);
        // Warm: first dispatch pays thread spawn, which is not the
        // steady-state cost the crossover model wants.
        run_indexed(&policy, 2, |_| {});
        let mut best = u64::MAX;
        for _ in 0..5 {
            let t0 = Instant::now();
            run_indexed(&policy, 2, |_| {});
            best = best.min(t0.elapsed().as_nanos() as u64);
        }
        best
    })
}

/// Claim-and-run loop shared by the dispatcher and the workers: grab
/// the next unclaimed strip index, execute it, repeat. Dynamic
/// claiming balances uneven strips; determinism is unaffected because
/// strip *content* is fixed regardless of who runs it.
fn run_strips(f: &(dyn Fn(usize) + Sync), next: &AtomicUsize, n: usize) {
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let t0 = Instant::now();
        f(i);
        metrics::incr(Counter::PoolStrips);
        metrics::add(Counter::PoolStripNanos, t0.elapsed().as_nanos() as u64);
    }
}

fn worker_loop(chan: Arc<WorkerChan>) {
    let pool = pool();
    loop {
        let job = {
            let mut mail = chan.mail.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(j) = mail.take() {
                    break j;
                }
                mail = chan.cv.wait(mail).unwrap_or_else(|e| e.into_inner());
            }
        };
        // The dispatcher that delivered this Job is blocked on the
        // `done` barrier until this worker checks in below, so the
        // closure and counter behind these pointers are alive for the
        // whole scope of `f` / `next`.
        // SAFETY: [lifetime the dispatcher waits on the `done` barrier
        // until this worker checks in below, strictly after the last
        // use of `f` and `next`, so the `job` pointers never dangle]
        // [alias the closure is `Sync` and the counter is an
        // `AtomicUsize`; shared references from several threads are
        // sound and neither reference escapes this scope]
        let f = unsafe { &*job.f };
        let next = unsafe { &*job.next };
        IN_DISPATCH.with(|d| d.set(true));
        // Mirror a live FlushSubnormals guard for this job: the FP
        // control word is per-thread, so the dispatcher's scope cannot
        // cover the workers.
        let ftz = (FLUSH_GUARDS.load(Ordering::Relaxed) > 0).then(FtzScope::engage);
        run_strips(f, next, job.n);
        drop(ftz);
        IN_DISPATCH.with(|d| d.set(false));
        let mut done = pool.done.lock().unwrap_or_else(|e| e.into_inner());
        *done += 1;
        drop(done);
        pool.done_cv.notify_one();
    }
}

impl Pool {
    /// Grow the pool to at least `want` workers and return the first
    /// `want` mailboxes. Spawn failure degrades gracefully: the region
    /// runs on however many workers exist (possibly zero — then the
    /// dispatcher does everything itself).
    fn ensure_workers(&self, want: usize) -> Vec<Arc<WorkerChan>> {
        let mut ws = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        while ws.len() < want {
            let chan = Arc::new(WorkerChan {
                mail: Mutex::new(None),
                cv: Condvar::new(),
            });
            let body = Arc::clone(&chan);
            // bs-lint: allow(no-alloc-hot) -- one-time cold growth:
            // names and mailboxes are allocated only while the pool is
            // smaller than ever requested, never in the warm path.
            let spawned = std::thread::Builder::new()
                .name(format!("bs-pool-{}", ws.len()))
                .spawn(move || worker_loop(body));
            if spawned.is_err() {
                break; // run the region on the workers we have
            }
            ws.push(chan);
        }
        ws.iter().take(want).cloned().collect()
    }
}

/// Dispatch `n` strips across up to `threads` threads (the caller
/// included) and block until all strips have executed.
fn dispatch(threads: usize, n: usize, f: &(dyn Fn(usize) + Sync)) {
    let pool = pool();
    let region = pool.region.lock().unwrap_or_else(|e| e.into_inner());
    let want = threads.min(n).saturating_sub(1);
    let chans = pool.ensure_workers(want);
    let w = chans.len();
    let _span = bs_probe::span!("pool_dispatch", strips = n, threads = w + 1);
    let t0 = bs_probe::histogram::is_enabled().then(std::time::Instant::now);
    metrics::incr(Counter::PoolDispatches);
    {
        let mut done = pool.done.lock().unwrap_or_else(|e| e.into_inner());
        *done = 0;
    }
    let next = AtomicUsize::new(0);
    // Lifetime erasure only — the Job (and thus this pointer) never
    // outlives this stack frame.
    // SAFETY: [lifetime the `done` barrier below blocks until every
    // worker that received the `Job` checks in, bounding the erased
    // borrow to this stack frame] [alias workers receive shared `&`
    // access to a `Sync` closure; no exclusive reference exists while
    // the region runs]
    let fp: *const (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), &(dyn Fn(usize) + Sync)>(f) };
    for chan in &chans {
        let mut mail = chan.mail.lock().unwrap_or_else(|e| e.into_inner());
        *mail = Some(Job {
            f: fp,
            next: &next,
            n,
        });
        drop(mail);
        chan.cv.notify_one();
    }
    IN_DISPATCH.with(|d| d.set(true));
    run_strips(f, &next, n);
    IN_DISPATCH.with(|d| d.set(false));
    // Barrier: wait for every worker that received the Job to check in.
    // Only after this may the closure and counter leave scope (see the
    // SAFETY notes on Job / worker_loop).
    let mut done = pool.done.lock().unwrap_or_else(|e| e.into_inner());
    while *done < w {
        done = pool.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
    }
    drop(done);
    drop(region);
    if let Some(t0) = t0 {
        bs_probe::histogram::record(
            bs_probe::histogram::Hist::PoolDispatchNs,
            t0.elapsed().as_nanos() as u64,
        );
    }
}

/// Run `f(0) .. f(n-1)`, fanning the indices out to the pool when the
/// policy allows more than one thread. With `threads <= 1`, a single
/// index, or when already inside a dispatch, the indices run inline on
/// the calling thread in ascending order — the pool is never touched
/// and no per-strip bookkeeping is paid.
pub fn run_indexed<F>(policy: &ExecPolicy, n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if n == 0 {
        return;
    }
    if policy.threads <= 1 || n <= 1 || in_dispatch() {
        for i in 0..n {
            f(i);
        }
        return;
    }
    dispatch(policy.threads, n, &f);
}

/// Run `f` once per item under `policy`. Items are claimed in order;
/// with one item or a sequential policy they run inline.
pub fn for_each_policy<T, F>(policy: &ExecPolicy, items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    if items.len() <= 1 || policy.threads <= 1 || in_dispatch() {
        for item in items {
            f(item);
        }
        return;
    }
    // bs-lint: allow(no-alloc-hot) -- O(items) slot list at dispatch;
    // the slots hand each owned item to exactly one claiming worker.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    run_indexed(policy, slots.len(), |i| {
        let item = slots[i].lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(item) = item {
            f(item);
        }
    });
}

/// Run `f` once per item on every available hardware thread
/// (compatibility shim for callers without a policy).
pub fn for_each<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    for_each_policy(&ExecPolicy::max_threads(), items, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_item_exactly_once() {
        let hits = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        for_each((1..=10usize).collect(), |v| {
            hits.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(v, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
        assert_eq!(sum.load(Ordering::Relaxed), 55);
    }

    #[test]
    fn empty_and_single_item_run_inline() {
        for_each(Vec::<usize>::new(), |_| panic!("no items"));
        let hits = AtomicUsize::new(0);
        for_each(vec![7usize], |v| {
            assert_eq!(v, 7);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn mutable_borrows_pass_through() {
        let mut data = [0u64; 4];
        let chunks: Vec<(usize, &mut [u64])> = data.chunks_mut(2).enumerate().collect();
        for_each(chunks, |(i, chunk)| {
            for c in chunk {
                *c = i as u64 + 1;
            }
        });
        assert_eq!(data, [1, 1, 2, 2]);
    }

    #[test]
    fn threads_1_runs_inline_in_order() {
        // The inline fallback must run on the calling thread, in
        // ascending index order, without touching the pool.
        let caller = std::thread::current().id();
        let seen = Mutex::new(Vec::new());
        run_indexed(&ExecPolicy::with_threads(1), 8, |i| {
            assert_eq!(std::thread::current().id(), caller);
            seen.lock().unwrap().push(i);
        });
        assert_eq!(*seen.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn pooled_run_claims_every_index_exactly_once() {
        let n = 37;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(&ExecPolicy::with_threads(3), n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn oversubscription_smoke() {
        // More threads than cores (and than strips): every index still
        // runs exactly once and the dispatch terminates.
        let threads = 4 * current_num_threads() + 3;
        let n = 64;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let sum = AtomicUsize::new(0);
        run_indexed(&ExecPolicy::with_threads(threads), n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn nested_dispatch_runs_inline() {
        // A region launched from inside a strip must not deadlock on
        // the (non-reentrant) region mutex: it runs inline instead.
        let inner_hits = AtomicUsize::new(0);
        run_indexed(&ExecPolicy::with_threads(2), 4, |_| {
            run_indexed(&ExecPolicy::with_threads(2), 3, |_| {
                assert!(in_dispatch());
                inner_hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(inner_hits.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn repeated_dispatches_reuse_the_pool() {
        let before = bs_probe::metrics::total(Counter::PoolDispatches);
        for _ in 0..5 {
            let hits = AtomicUsize::new(0);
            run_indexed(&ExecPolicy::with_threads(2), 6, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 6);
        }
        assert!(bs_probe::metrics::total(Counter::PoolDispatches) >= before + 5);
    }

    #[test]
    fn worker_ws_hands_out_zeroed_scratch() {
        let first = with_worker_ws(|ws: &mut Workspace| {
            let v = ws.take_vec(32);
            let ok = v.iter().all(|&x| x == 0.0);
            ws.give_vec(v);
            ok
        });
        assert!(first);
        // Second checkout of the same size is a pool hit.
        let (allocs0, allocs1) = with_worker_ws(|ws: &mut Workspace| {
            let a0 = ws.allocations();
            let v = ws.take_vec(32);
            ws.give_vec(v);
            (a0, ws.allocations())
        });
        assert_eq!(allocs0, allocs1, "warm checkout must not allocate");
    }

    #[test]
    fn worker_ws_f32_is_a_separate_arena() {
        let zeroed = with_worker_ws(|ws: &mut Workspace<f32>| {
            let v = ws.take_vec(16);
            let ok = v.iter().all(|&x| x == 0.0f32);
            ws.give_vec(v);
            ok
        });
        assert!(zeroed);
    }

    #[test]
    fn dispatch_overhead_is_measured_once_and_finite() {
        let o1 = dispatch_overhead_ns();
        let o2 = dispatch_overhead_ns();
        assert_eq!(o1, o2, "one-shot measurement must be stable");
        if current_num_threads() >= 2 {
            // An empty 2-strip dispatch should land well under 100 ms.
            assert!(o1 > 0 && o1 < 100_000_000, "overhead {o1} ns");
        }
    }

    #[test]
    fn parse_threads_accepts_counts_and_max() {
        assert_eq!(parse_threads("1"), Some(1));
        assert_eq!(parse_threads(" 8 "), Some(8));
        assert_eq!(parse_threads("max"), Some(current_num_threads()));
        assert_eq!(parse_threads("MAX"), Some(current_num_threads()));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-2"), None);
        assert_eq!(parse_threads("lots"), None);
    }

    #[test]
    fn strip_boundaries_are_thread_independent() {
        // The partition rule sees only the extent — identical strips no
        // matter how many threads later execute them.
        for cols in [1usize, 4, 17, 64, 257, 1024] {
            let w = Partition::Auto.strip_width(cols);
            assert!(w >= GRAIN_COLS);
            assert_eq!(w % GRAIN_COLS, 0);
            let s = strips(cols, w);
            assert!(s.len() <= MAX_STRIPS + 1);
            // Strips tile the extent exactly, in order.
            let mut at = 0;
            for (j, sw) in s {
                assert_eq!(j, at);
                assert!(sw > 0);
                at += sw;
            }
            assert_eq!(at, cols);
        }
        assert_eq!(Partition::Width(5).strip_width(100), 5);
        assert_eq!(Partition::Width(0).strip_width(100), 1);
    }

    #[test]
    fn policy_constructors() {
        let seq = ExecPolicy::default();
        assert_eq!(seq.threads, 1);
        assert!(!seq.is_parallel());
        assert_eq!(seq.min_work, DEFAULT_MIN_WORK);
        assert_eq!(ExecPolicy::with_threads(0).threads, 1);
        assert_eq!(ExecPolicy::max_threads().threads, current_num_threads());
    }
}
