#![allow(clippy::needless_range_loop)]
// index-heavy numeric kernels read
// clearer with explicit indices when several parallel arrays are walked
// together; iterator-zip rewrites were measured to obscure, not improve.

//! Dense linear-algebra substrate for the block Schur Toeplitz solver.
//!
//! The 1994 ICPP paper this workspace reproduces assumes a vendor BLAS
//! (Cray Y-MP / T3D libraries). This crate is the from-scratch stand-in:
//! a column-major [`Matrix`] type with borrowed views, level-1/2/3
//! kernels (`dot`, `axpy`, `gemv`, `ger`, `gemm`, `trsm`, `syrk`, ...),
//! and the dense factorizations the Schur algorithm needs as building
//! blocks (Cholesky, signature LDLᵀ, LU, Householder QR).
//!
//! Design notes:
//! - Generic over a sealed [`Scalar`] trait (`f64` and `f32` only), with
//!   `f64` as the default type parameter everywhere so existing call
//!   sites read unchanged. The `f64` instantiation performs the exact
//!   pre-generic operation sequence (bitwise-identical results); the
//!   `f32` instantiation exists for the mixed-precision factor + refine
//!   path and the wider-SIMD kernels it unlocks.
//! - Dimension mismatches are programming errors and panic; *numerical*
//!   failures (not positive definite, singular pivot) are reported through
//!   [`Error`].
//! - Every kernel reports its flop count through [`flops`], so the
//!   paper's analytic operation counts (eqs. 25-32) can be checked against
//!   instrumented reality.

pub mod blas1;
pub mod blas2;
pub mod blas3;
pub mod chol;
pub mod dense;
pub mod eig;
pub mod flops;
pub mod kernel;
pub mod ldlt;
pub mod lu;
pub mod norms;
pub mod par;
pub mod pool;
pub mod qr;
pub mod scalar;
pub mod sched;
pub mod trmm;
pub mod view;
pub mod workspace;

pub use blas3::{
    gemm, gemm_ws, par_gemm, par_gemm_policy, syrk, syrk_policy, syrk_ws, trsm, trsm_policy,
    trsm_ws, Side, Trans, Uplo,
};
pub use chol::cholesky_in_place;
pub use dense::Matrix;
pub use ldlt::{ldlt_in_place, Signature};
pub use lu::LuFactors;
pub use par::{ExecPolicy, Partition};
pub use pool::{PooledWorkspace, WorkspacePool};
pub use scalar::Scalar;
pub use trmm::{symm, trmm};
pub use view::{MatMut, MatRef};
pub use workspace::Workspace;

/// Numerical failures surfaced by the factorization routines.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A Cholesky pivot was non-positive: the matrix is not numerically
    /// positive definite. Carries the failing pivot index and value.
    NotPositiveDefinite { index: usize, pivot: f64 },
    /// An LDLᵀ or LU pivot was exactly (or numerically) zero. The leading
    /// principal submatrix of that order is singular.
    SingularPivot { index: usize, pivot: f64 },
    /// A triangular solve met a zero diagonal entry.
    SingularTriangle { index: usize },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::NotPositiveDefinite { index, pivot } => write!(
                f,
                "matrix is not positive definite: pivot {pivot:e} at index {index}"
            ),
            Error::SingularPivot { index, pivot } => {
                write!(f, "singular pivot {pivot:e} at index {index}")
            }
            Error::SingularTriangle { index } => {
                write!(f, "triangular factor has zero diagonal at index {index}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
