//! NEON microkernel for `aarch64`.
//!
//! Same per-entry accumulation chain as the portable kernel (one
//! partial sum per `C` entry, `p` in packed order), computed with
//! 2-lane fused multiply-adds — bitwise strip-invariant for a fixed
//! kernel, last-bit different from the twice-rounded scalar kernel.

use super::{MR, NR};
use crate::view::MatMut;
use std::arch::aarch64::*;

/// `MR x NR` microkernel on NEON: each of the `NR` accumulator columns
/// is four 2-lane `float64x2_t` registers covering the 8 rows.
///
/// # Safety
///
/// The CPU must support NEON (always true on `aarch64`, but dispatch
/// still verifies it). `apanel`/`bpanel` must hold at least `kc * MR` /
/// `kc * NR` elements (slice indexing enforces this).
#[target_feature(enable = "neon")]
#[allow(clippy::too_many_arguments)] // BLIS-style kernels take the full tile geometry
                                     // SAFETY: only dispatched by `kernel_for` after
                                     // `is_aarch64_feature_detected!("neon")` reports true; all loads/stores
                                     // go through bounds-checked slices.
pub(crate) unsafe fn micro_8x4_neon(
    apanel: &[f64],
    bpanel: &[f64],
    kc: usize,
    mut c: MatMut<'_>,
    ci: usize,
    cj: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[vdupq_n_f64(0.0); 4]; NR];
    for p in 0..kc {
        let av: &[f64] = &apanel[p * MR..p * MR + MR];
        let bv: &[f64] = &bpanel[p * NR..p * NR + NR];
        let a0 = vld1q_f64(av.as_ptr());
        let a1 = vld1q_f64(av.as_ptr().add(2));
        let a2 = vld1q_f64(av.as_ptr().add(4));
        let a3 = vld1q_f64(av.as_ptr().add(6));
        for j in 0..NR {
            let bj = vdupq_n_f64(bv[j]);
            acc[j][0] = vfmaq_f64(acc[j][0], a0, bj);
            acc[j][1] = vfmaq_f64(acc[j][1], a1, bj);
            acc[j][2] = vfmaq_f64(acc[j][2], a2, bj);
            acc[j][3] = vfmaq_f64(acc[j][3], a3, bj);
        }
    }
    for j in 0..nr {
        let col = c.col_mut(cj + j);
        let dst: &mut [f64] = &mut col[ci..ci + mr];
        if mr == MR {
            for (q, lane) in acc[j].iter().enumerate() {
                let p = dst.as_mut_ptr().add(2 * q);
                vst1q_f64(p, vaddq_f64(vld1q_f64(p), *lane));
            }
        } else {
            let mut tmp = [0.0f64; MR];
            for (q, lane) in acc[j].iter().enumerate() {
                vst1q_f64(tmp.as_mut_ptr().add(2 * q), *lane);
            }
            for (d, t) in dst.iter_mut().zip(tmp.iter()) {
                *d += *t;
            }
        }
    }
}
