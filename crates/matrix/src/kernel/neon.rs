//! NEON microkernel for `aarch64`.
//!
//! Same per-entry accumulation chain as the portable kernel (one
//! partial sum per `C` entry, `p` in packed order), computed with
//! 2-lane fused multiply-adds — bitwise strip-invariant for a fixed
//! kernel, last-bit different from the twice-rounded scalar kernel.

use super::{MR, NR};
use crate::view::MatMut;
use std::arch::aarch64::*;

/// `MR x NR` microkernel on NEON: each of the `NR` accumulator columns
/// is four 2-lane `float64x2_t` registers covering the 8 rows.
///
/// # Safety
///
/// The CPU must support NEON (always true on `aarch64`, but dispatch
/// still verifies it). `apanel`/`bpanel` must hold at least `kc * MR` /
/// `kc * NR` elements (slice indexing enforces this).
// SAFETY: [isa neon — reached only through `kernel_for`, which checks
// `is_aarch64_feature_detected!` at runtime] [bounds every load and
// store goes through bounds-checked slice indexing of `apanel`,
// `bpanel`, and the output column]
#[target_feature(enable = "neon")]
#[allow(clippy::too_many_arguments)] // BLIS-style kernels take the full tile geometry
pub(crate) unsafe fn micro_8x4_neon(
    apanel: &[f64],
    bpanel: &[f64],
    kc: usize,
    mut c: MatMut<'_>,
    ci: usize,
    cj: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[vdupq_n_f64(0.0); 4]; NR];
    for p in 0..kc {
        let av: &[f64] = &apanel[p * MR..p * MR + MR];
        let bv: &[f64] = &bpanel[p * NR..p * NR + NR];
        let a0 = vld1q_f64(av.as_ptr());
        let a1 = vld1q_f64(av.as_ptr().add(2));
        let a2 = vld1q_f64(av.as_ptr().add(4));
        let a3 = vld1q_f64(av.as_ptr().add(6));
        for j in 0..NR {
            let bj = vdupq_n_f64(bv[j]);
            acc[j][0] = vfmaq_f64(acc[j][0], a0, bj);
            acc[j][1] = vfmaq_f64(acc[j][1], a1, bj);
            acc[j][2] = vfmaq_f64(acc[j][2], a2, bj);
            acc[j][3] = vfmaq_f64(acc[j][3], a3, bj);
        }
    }
    for j in 0..nr {
        let col = c.col_mut(cj + j);
        let dst: &mut [f64] = &mut col[ci..ci + mr];
        if mr == MR {
            for (q, lane) in acc[j].iter().enumerate() {
                let p = dst.as_mut_ptr().add(2 * q);
                vst1q_f64(p, vaddq_f64(vld1q_f64(p), *lane));
            }
        } else {
            let mut tmp = [0.0f64; MR];
            for (q, lane) in acc[j].iter().enumerate() {
                vst1q_f64(tmp.as_mut_ptr().add(2 * q), *lane);
            }
            for (d, t) in dst.iter_mut().zip(tmp.iter()) {
                *d += *t;
            }
        }
    }
}

/// `MR x NR` f32 microkernel on NEON: each of the `NR` accumulator
/// columns is two 4-lane `float32x4_t` registers covering the 8 rows —
/// half the FMAs per `k`-step of the f64 kernel.
///
/// # Safety
///
/// The CPU must support NEON (always true on `aarch64`, but dispatch
/// still verifies it). `apanel`/`bpanel` must hold at least `kc * MR` /
/// `kc * NR` elements (slice indexing enforces this).
// SAFETY: [isa neon — reached only through `kernel_for`, which checks
// `is_aarch64_feature_detected!` at runtime] [bounds the f32 loads and
// stores go through bounds-checked slice indexing of `apanel`,
// `bpanel`, and the output column]
#[target_feature(enable = "neon")]
#[allow(clippy::too_many_arguments)] // BLIS-style kernels take the full tile geometry
pub(crate) unsafe fn micro_8x4_neon_f32(
    apanel: &[f32],
    bpanel: &[f32],
    kc: usize,
    mut c: MatMut<'_, f32>,
    ci: usize,
    cj: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[vdupq_n_f32(0.0); 2]; NR];
    for p in 0..kc {
        let av: &[f32] = &apanel[p * MR..p * MR + MR];
        let bv: &[f32] = &bpanel[p * NR..p * NR + NR];
        let alo = vld1q_f32(av.as_ptr());
        let ahi = vld1q_f32(av.as_ptr().add(4));
        for j in 0..NR {
            let bj = vdupq_n_f32(bv[j]);
            acc[j][0] = vfmaq_f32(acc[j][0], alo, bj);
            acc[j][1] = vfmaq_f32(acc[j][1], ahi, bj);
        }
    }
    for j in 0..nr {
        let col = c.col_mut(cj + j);
        let dst: &mut [f32] = &mut col[ci..ci + mr];
        if mr == MR {
            let p = dst.as_mut_ptr();
            vst1q_f32(p, vaddq_f32(vld1q_f32(p), acc[j][0]));
            let ph = p.add(4);
            vst1q_f32(ph, vaddq_f32(vld1q_f32(ph), acc[j][1]));
        } else {
            let mut tmp = [0.0f32; MR];
            vst1q_f32(tmp.as_mut_ptr(), acc[j][0]);
            vst1q_f32(tmp.as_mut_ptr().add(4), acc[j][1]);
            for (d, t) in dst.iter_mut().zip(tmp.iter()) {
                *d += *t;
            }
        }
    }
}
