//! The kernel engine: runtime-dispatched SIMD microkernels for the
//! `MR x NR` GEMM register tile, plus the cache-aware blocking
//! parameters and the one-shot throughput calibration that feed the
//! `bs-perfmodel` cost model.
//!
//! The paper's performance claim rests on the block algorithm being
//! "rich in level-3 BLAS" — and on those BLAS kernels actually running
//! near machine speed (its Y-MP analysis even trades *extra* flops for
//! kernel rate, §6.5). This module makes that real on a modern CPU:
//!
//! - `portable` — the always-available scalar microkernel (the exact
//!   kernel the blocked `gemm` has always used; reference semantics).
//! - `x86` — AVX2+FMA, and (behind the `avx512` cargo feature)
//!   AVX-512F microkernels for `x86_64`.
//! - `neon` — NEON microkernel for `aarch64`.
//!
//! Hardware support is detected once per process
//! (`is_x86_feature_detected!`) and cached; the active kernel can be
//! forced with the `BS_KERNEL` environment variable
//! (`portable | native | avx2 | avx512 | neon`) or programmatically
//! with [`set_override`] (the CLI `--kernel` flag). An explicit ISA the
//! machine cannot run falls back to the portable kernel.
//!
//! Determinism contract: a *fixed* kernel choice computes every `C`
//! entry through a per-entry accumulation chain that is independent of
//! how columns are grouped into strips, so parallel results stay
//! bitwise identical to sequential ones at every thread count.
//! Different kernels may legitimately differ in the last bits (FMA
//! fuses the multiply-add the portable kernel rounds twice).

use crate::scalar::Scalar;
use crate::view::MatMut;
use bs_probe::metrics::Counter;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

pub mod calibrate;
pub(crate) mod pack;
pub(crate) mod portable;
pub mod tuning;

#[cfg(target_arch = "aarch64")]
pub(crate) mod neon;
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86;

/// Microkernel register-tile height: rows of C per micro-tile.
pub const MR: usize = 8;
/// Microkernel register-tile width: columns of C per micro-tile.
pub const NR: usize = 4;

/// The microkernel contract: accumulate an `MR x NR` rank-`kc` product
/// from packed panels into `C[ci.., cj..]`, honouring the `mr`/`nr`
/// edge extents. `unsafe` because the SIMD variants require their ISA
/// to be present; [`Kernel`] construction guarantees it.
// SAFETY: [isa values of this type are produced only by `kernel_for`,
// which verifies the ISA is runtime-supported before handing out a
// SIMD fn] [bounds every implementation reaches its packed panels and
// the output tile through bounds-checked slice indexing]
pub type MicroFn<T> = unsafe fn(&[T], &[T], usize, MatMut<'_, T>, usize, usize, usize, usize);

/// Instruction set a microkernel is compiled for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Isa {
    /// Scalar Rust, compiled for the baseline target — runs anywhere.
    Portable,
    /// AVX2 + FMA (`x86_64`).
    Avx2,
    /// AVX-512F (`x86_64`, `avx512` cargo feature).
    Avx512,
    /// NEON (`aarch64`).
    Neon,
}

impl Isa {
    /// Stable lowercase name (CLI reports, metrics, bench records).
    pub fn name(self) -> &'static str {
        match self {
            Isa::Portable => "portable",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
            Isa::Neon => "neon",
        }
    }

    /// The per-ISA flop counter this kernel charges.
    pub fn flops_counter(self) -> Counter {
        match self {
            Isa::Portable => Counter::KernelFlopsPortable,
            Isa::Avx2 => Counter::KernelFlopsAvx2,
            Isa::Avx512 => Counter::KernelFlopsAvx512,
            Isa::Neon => Counter::KernelFlopsNeon,
        }
    }

    /// The per-ISA wall-time counter this kernel charges.
    pub fn nanos_counter(self) -> Counter {
        match self {
            Isa::Portable => Counter::KernelNanosPortable,
            Isa::Avx2 => Counter::KernelNanosAvx2,
            Isa::Avx512 => Counter::KernelNanosAvx512,
            Isa::Neon => Counter::KernelNanosNeon,
        }
    }
}

/// A user-facing kernel request: either a concrete ISA or `native`
/// ("best the hardware supports").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Choice {
    Portable,
    Native,
    Avx2,
    Avx512,
    Neon,
}

/// Parse a `BS_KERNEL` / `--kernel` value. Case-insensitive; `None`
/// for anything unrecognized.
pub fn parse_choice(s: &str) -> Option<Choice> {
    match s.to_ascii_lowercase().as_str() {
        "portable" | "scalar" => Some(Choice::Portable),
        "native" | "auto" => Some(Choice::Native),
        "avx2" => Some(Choice::Avx2),
        "avx512" => Some(Choice::Avx512),
        "neon" => Some(Choice::Neon),
        _ => None,
    }
}

/// Best SIMD ISA the running machine supports among those compiled in.
/// Detected once per process and cached.
pub fn native_isa() -> Isa {
    static NATIVE: OnceLock<Isa> = OnceLock::new();
    *NATIVE.get_or_init(detect_native)
}

// Under Miri there is no point (and no soundness story) in running
// `#[target_feature]` kernels, so detection lands on the portable
// kernel and `cargo miri test` exercises the reference path.
fn detect_native() -> Isa {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        #[cfg(feature = "avx512")]
        if std::arch::is_x86_feature_detected!("avx512f") {
            return Isa::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return Isa::Avx2;
        }
    }
    #[cfg(all(target_arch = "aarch64", not(miri)))]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return Isa::Neon;
        }
    }
    Isa::Portable
}

/// `true` when the running machine can execute microkernels for `isa`
/// (compiled in *and* runtime-detected).
pub fn isa_supported(isa: Isa) -> bool {
    match isa {
        Isa::Portable => true,
        Isa::Avx2 => {
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(any(not(target_arch = "x86_64"), miri))]
            {
                false
            }
        }
        Isa::Avx512 => {
            #[cfg(all(target_arch = "x86_64", feature = "avx512", not(miri)))]
            {
                std::arch::is_x86_feature_detected!("avx512f")
            }
            #[cfg(not(all(target_arch = "x86_64", feature = "avx512", not(miri))))]
            {
                false
            }
        }
        Isa::Neon => {
            #[cfg(all(target_arch = "aarch64", not(miri)))]
            {
                std::arch::is_aarch64_feature_detected!("neon")
            }
            #[cfg(any(not(target_arch = "aarch64"), miri))]
            {
                false
            }
        }
    }
}

/// Resolve a request to a runnable ISA: `Native` picks the best
/// supported SIMD kernel, an explicit ISA the machine cannot run falls
/// back to `Portable`.
pub fn resolve_choice(c: Choice) -> Isa {
    let want = match c {
        Choice::Portable => return Isa::Portable,
        Choice::Native => return native_isa(),
        Choice::Avx2 => Isa::Avx2,
        Choice::Avx512 => Isa::Avx512,
        Choice::Neon => Isa::Neon,
    };
    if isa_supported(want) {
        want
    } else {
        Isa::Portable
    }
}

// Process-wide programmatic override (the CLI `--kernel` flag and the
// bench harness set it). 0 = none; otherwise Choice discriminant + 1.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn choice_to_code(c: Choice) -> u8 {
    match c {
        Choice::Portable => 1,
        Choice::Native => 2,
        Choice::Avx2 => 3,
        Choice::Avx512 => 4,
        Choice::Neon => 5,
    }
}

fn code_to_choice(code: u8) -> Option<Choice> {
    match code {
        1 => Some(Choice::Portable),
        2 => Some(Choice::Native),
        3 => Some(Choice::Avx2),
        4 => Some(Choice::Avx512),
        5 => Some(Choice::Neon),
        _ => None,
    }
}

/// Force (or with `None`, release) the process-wide kernel choice.
/// Takes precedence over `BS_KERNEL`. Each BLAS-3 driver call resolves
/// the kernel once on entry, so a concurrent change never mixes
/// kernels within one multiply.
pub fn set_override(c: Option<Choice>) {
    OVERRIDE.store(c.map_or(0, choice_to_code), Ordering::Relaxed);
}

/// The `BS_KERNEL` environment request, parsed once per process.
/// Unrecognized values behave as unset (the CLI validates `--kernel`
/// before it gets here).
fn env_choice() -> Option<Choice> {
    static ENV: OnceLock<Option<Choice>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("BS_KERNEL")
            .ok()
            .and_then(|v| parse_choice(&v))
    })
}

/// A dispatched kernel: the resolved ISA plus its microkernel at one
/// precision. `Copy` so drivers resolve once and hand the same kernel
/// to every strip.
#[derive(Clone, Copy)]
pub struct Kernel<T: Scalar = f64> {
    isa: Isa,
    pub(crate) micro: MicroFn<T>,
    pub(crate) rows: usize,
}

impl<T: Scalar> std::fmt::Debug for Kernel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("isa", &self.isa)
            .field("scalar", &T::NAME)
            .finish()
    }
}

impl<T: Scalar> Kernel<T> {
    /// The ISA this kernel executes.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// Rows of `C` one microkernel call covers — the macrokernel's `ir`
    /// stride. `MR` for every kernel except the f32 AVX2 one, which
    /// spans two adjacent packed panels (`2 * MR` rows) to double its
    /// accumulator chains. Always a multiple of `MR`, so the packed
    /// panel layout is shared by every kernel.
    pub fn micro_rows(&self) -> usize {
        self.rows
    }
}

/// The f64 microkernel table for a *supported* ISA (callers degrade
/// unsupported requests first).
pub(crate) fn micro_for_f64(isa: Isa) -> MicroFn<f64> {
    match isa {
        Isa::Portable => portable::micro_8x4::<f64>,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => x86::micro_8x4_avx2,
        #[cfg(all(target_arch = "x86_64", feature = "avx512"))]
        Isa::Avx512 => x86::micro_8x4_avx512,
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::micro_8x4_neon,
        // ISAs compiled out are never "supported" above.
        #[allow(unreachable_patterns)]
        _ => portable::micro_8x4::<f64>,
    }
}

/// The f32 microkernel table. With `MR = 8`, one 256-bit register holds
/// a full f32 column tile, so the AVX2 kernel covers a double-height
/// `2*MR x NR` tile (two adjacent packed panels) — the f64 kernel's
/// accumulator structure at twice the rows per register, and the
/// ≥1.5x Gflop/s the mixed-precision pipeline banks on. AVX-512F uses
/// the same 256-bit kernel (a 512-bit register would cover two column
/// tiles; the double-height tile gets the chains without a new path).
pub(crate) fn micro_for_f32(isa: Isa) -> MicroFn<f32> {
    match isa {
        Isa::Portable => portable::micro_8x4::<f32>,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => x86::micro_16x4_avx2_f32,
        #[cfg(all(target_arch = "x86_64", feature = "avx512"))]
        Isa::Avx512 => x86::micro_16x4_avx2_f32,
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::micro_8x4_neon_f32,
        #[allow(unreachable_patterns)]
        _ => portable::micro_8x4::<f32>,
    }
}

/// Rows per f32 microkernel call (the macrokernel's `ir` stride): the
/// AVX2/AVX-512F dispatch runs the double-height 16-row tile; every
/// other ISA covers `MR` rows.
pub(crate) fn micro_rows_f32(isa: Isa) -> usize {
    let _ = isa;
    #[cfg(target_arch = "x86_64")]
    if matches!(isa, Isa::Avx2 | Isa::Avx512) {
        return 2 * MR;
    }
    MR
}

/// The kernel for a concrete ISA. Callers must only pass supported
/// ISAs ([`resolve_choice`] guarantees this); an unsupported request
/// degrades to the portable kernel rather than faulting.
pub(crate) fn kernel_for<T: Scalar>(isa: Isa) -> Kernel<T> {
    let isa = if isa_supported(isa) {
        isa
    } else {
        Isa::Portable
    };
    Kernel {
        isa,
        micro: T::micro_for(isa),
        rows: T::micro_rows(isa),
    }
}

/// The ISA the BLAS-3 drivers resolve right now:
/// [`set_override`] > `BS_KERNEL` > native detection.
pub fn active_isa() -> Isa {
    let choice = code_to_choice(OVERRIDE.load(Ordering::Relaxed))
        .or_else(env_choice)
        .unwrap_or(Choice::Native);
    resolve_choice(choice)
}

/// The kernel the BLAS-3 drivers dispatch to right now at precision
/// `T`: [`set_override`] > `BS_KERNEL` > native detection.
pub fn active<T: Scalar>() -> Kernel<T> {
    kernel_for(active_isa())
}

/// Name of the ISA [`active`] dispatches to (CLI reports, plans).
pub fn active_isa_name() -> &'static str {
    active_isa().name()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_choice_accepts_known_names() {
        assert_eq!(parse_choice("portable"), Some(Choice::Portable));
        assert_eq!(parse_choice("NATIVE"), Some(Choice::Native));
        assert_eq!(parse_choice("avx2"), Some(Choice::Avx2));
        assert_eq!(parse_choice("avx512"), Some(Choice::Avx512));
        assert_eq!(parse_choice("neon"), Some(Choice::Neon));
        assert_eq!(parse_choice("bogus"), None);
        assert_eq!(parse_choice(""), None);
    }

    #[test]
    fn native_is_supported_and_resolution_is_total() {
        let native = native_isa();
        assert!(isa_supported(native), "detected ISA must be runnable");
        assert!(isa_supported(Isa::Portable));
        for c in [
            Choice::Portable,
            Choice::Native,
            Choice::Avx2,
            Choice::Avx512,
            Choice::Neon,
        ] {
            let isa = resolve_choice(c);
            assert!(isa_supported(isa), "{c:?} resolved to unrunnable {isa:?}");
        }
        assert_eq!(resolve_choice(Choice::Portable), Isa::Portable);
    }

    #[test]
    fn isa_names_are_stable() {
        assert_eq!(Isa::Portable.name(), "portable");
        assert_eq!(Isa::Avx2.name(), "avx2");
        assert_eq!(Isa::Avx512.name(), "avx512");
        assert_eq!(Isa::Neon.name(), "neon");
    }
}
