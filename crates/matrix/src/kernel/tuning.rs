//! Cache-aware blocking autotuner: pick the `MC/KC/NC` cache-block
//! extents from the detected cache hierarchy instead of hard-coded
//! constants.
//!
//! The BLIS sizing rules, applied once per process:
//!
//! - `KC` so one A micro-panel (`MR x KC`) plus one B micro-panel
//!   (`KC x NR`) fill about half of L1d — the microkernel streams both
//!   per iteration.
//! - `MC` so the packed A block (`MC x KC`) fills about half of L2,
//!   leaving room for the B panel and the C tile.
//! - `NC` so the packed B block (`KC x NC`) fills about a quarter of
//!   L3 (shared, so stay modest), capped to keep the pack buffer small.
//!
//! Extents are sized for 8-byte (f64) elements and shared by every
//! scalar: the f32 panels occupy half the bytes of the same extents, so
//! they sit comfortably inside the same cache budgets, and sharing one
//! blocking keeps strip boundaries scalar-independent.
//!
//! Sizes come from Linux sysfs (`/sys/devices/system/cpu/cpu0/cache`);
//! when that is unavailable (other OSes, stripped containers) the
//! historical constants `128/256/1024` are used. Each extent can be
//! forced with `BS_MC` / `BS_KC` / `BS_NC` (values are sanitized to the
//! register-tile granularity, never trusted blindly).

use super::{MR, NR};
use std::sync::OnceLock;

/// The three cache-block extents of the packed GEMM loop nest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Blocking {
    /// Rows of the packed A block (multiple of `MR`).
    pub mc: usize,
    /// Depth of both packed blocks.
    pub kc: usize,
    /// Columns of the packed B block (multiple of `NR`).
    pub nc: usize,
}

/// The pre-autotuner constants, kept as the no-information fallback
/// (sized so the packed A block is 256 KiB — a safe half-L2 for the
/// small end of x86 parts).
pub const FALLBACK: Blocking = Blocking {
    mc: 128,
    kc: 256,
    nc: 1024,
};

/// The blocking the packed GEMM uses, detected once per process.
pub fn blocking() -> Blocking {
    static TUNED: OnceLock<Blocking> = OnceLock::new();
    *TUNED.get_or_init(|| detect(&sysfs_cache_sizes()))
}

fn round_up(x: usize, q: usize) -> usize {
    x.div_ceil(q) * q
}

/// Derive the blocking from `(l1d, l2, l3)` byte sizes (any of which
/// may be unknown), then apply the env overrides. Pure so tests can
/// probe it with synthetic hierarchies.
fn detect(caches: &CacheSizes) -> Blocking {
    const F64: usize = 8;
    let kc = match caches.l1d {
        // Half of L1d split across one MR-row and one NR-column panel.
        Some(l1d) => (l1d / 2 / (F64 * (MR + NR))).clamp(64, 512) / 8 * 8,
        None => FALLBACK.kc,
    };
    let mc = match caches.l2 {
        // Packed A (mc x kc) in half of L2.
        Some(l2) => (l2 / 2 / (F64 * kc)).clamp(MR * 4, 1024) / MR * MR,
        None => FALLBACK.mc,
    };
    let nc = match caches.l3 {
        // Packed B (kc x nc) in a quarter of (shared) L3, capped so the
        // pack buffer stays a few MiB at most.
        Some(l3) => (l3 / 4 / (F64 * kc)).clamp(NR * 64, 4096) / NR * NR,
        None => FALLBACK.nc,
    };
    Blocking {
        mc: env_extent("BS_MC", mc, MR),
        kc: env_extent("BS_KC", kc, 8),
        nc: env_extent("BS_NC", nc, NR),
    }
}

/// An extent override from the environment, rounded up to the tile
/// granularity `q`; unset or unparsable values keep the detected one.
fn env_extent(var: &str, detected: usize, q: usize) -> usize {
    match std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n > 0 => round_up(n, q),
        _ => detected,
    }
}

/// Cache sizes in bytes, where detectable.
#[derive(Clone, Copy, Debug, Default)]
struct CacheSizes {
    l1d: Option<usize>,
    l2: Option<usize>,
    l3: Option<usize>,
}

/// Walk `/sys/devices/system/cpu/cpu0/cache/index*` for the data/
/// unified cache sizes at each level. Missing sysfs (non-Linux) yields
/// all-`None`, which lands on [`FALLBACK`].
fn sysfs_cache_sizes() -> CacheSizes {
    // Miri isolates the interpreter from the host filesystem (and the
    // host's cache hierarchy is meaningless to it anyway): land on the
    // deterministic FALLBACK constants instead of touching sysfs.
    if cfg!(miri) {
        return CacheSizes::default();
    }
    let mut out = CacheSizes::default();
    for idx in 0..8 {
        let base = format!("/sys/devices/system/cpu/cpu0/cache/index{idx}");
        let read = |f: &str| std::fs::read_to_string(format!("{base}/{f}")).ok();
        let (Some(level), Some(ty), Some(size)) = (read("level"), read("type"), read("size"))
        else {
            continue;
        };
        let Some(bytes) = parse_size(size.trim()) else {
            continue;
        };
        let ty = ty.trim();
        if ty == "Instruction" {
            continue;
        }
        match level.trim() {
            "1" => out.l1d = Some(bytes),
            "2" => out.l2 = Some(bytes),
            "3" => out.l3 = Some(bytes),
            _ => {}
        }
    }
    out
}

/// Parse a sysfs cache size like `48K`, `2048K`, or `8M` into bytes.
fn parse_size(s: &str) -> Option<usize> {
    if let Some(k) = s.strip_suffix('K') {
        k.parse::<usize>().ok().map(|v| v * 1024)
    } else if let Some(m) = s.strip_suffix('M') {
        m.parse::<usize>().ok().map(|v| v * 1024 * 1024)
    } else {
        s.parse::<usize>().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_size_handles_sysfs_suffixes() {
        assert_eq!(parse_size("48K"), Some(48 * 1024));
        assert_eq!(parse_size("2048K"), Some(2048 * 1024));
        assert_eq!(parse_size("8M"), Some(8 * 1024 * 1024));
        assert_eq!(parse_size("32768"), Some(32768));
        assert_eq!(parse_size("lots"), None);
    }

    #[test]
    fn detect_scales_with_the_hierarchy() {
        // A typical client part: 48K L1d, 2M L2, large L3.
        let b = detect(&CacheSizes {
            l1d: Some(48 * 1024),
            l2: Some(2 * 1024 * 1024),
            l3: Some(256 * 1024 * 1024),
        });
        assert_eq!(b.kc, 256);
        assert_eq!(b.mc, 512);
        assert_eq!(b.nc, 4096);
        // A small part halves kc and mc accordingly.
        let small = detect(&CacheSizes {
            l1d: Some(24 * 1024),
            l2: Some(512 * 1024),
            l3: None,
        });
        assert_eq!(small.kc, 128);
        assert_eq!(small.mc, 256);
        assert_eq!(small.nc, FALLBACK.nc);
        // No information at all lands on the historical constants.
        assert_eq!(detect(&CacheSizes::default()), FALLBACK);
    }

    #[test]
    fn detected_blocking_is_tile_aligned_and_sane() {
        let b = blocking();
        assert!(b.mc >= MR && b.mc.is_multiple_of(MR), "mc = {}", b.mc);
        assert!((64..=4096).contains(&b.kc), "kc = {}", b.kc);
        assert!(b.nc >= NR && b.nc.is_multiple_of(NR), "nc = {}", b.nc);
    }
}
