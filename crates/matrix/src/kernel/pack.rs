//! Panel packing for the blocked GEMM, specialized by [`Trans`].
//!
//! The packers copy cache-block windows of `op(A)` / `op(B)` into the
//! contiguous micro-panel layout the microkernels stream: A in row
//! micro-panels of height `MR` (k-major within a panel, `alpha` folded
//! in), B in column micro-panels of width `NR`, both zero-padded to the
//! register tile. Specializing on `Trans` up front — instead of calling
//! an `op_get` that re-matches the flag per element — keeps the inner
//! copy loops branch-free and lets the non-transposed cases run over
//! contiguous column slices.
//!
//! Layout invariant (shared with every microkernel): panel `q` of the
//! packed A block starts at `q * kc * MR` and holds, for each `p` in
//! `0..kc`, the `MR` values `alpha * op(A)[ic + q*MR .. , pc + p]`;
//! symmetrically for B with `NR`-wide panels.

use super::{MR, NR};
use crate::blas3::Trans;
use crate::scalar::Scalar;
use crate::view::MatRef;

/// Pack `alpha * op(A)[ic..ic+mc, pc..pc+kc]` into row micro-panels of
/// height `MR`, zero padded. `apack` must hold at least
/// `mc.div_ceil(MR) * MR * kc` elements.
#[allow(clippy::too_many_arguments)] // BLIS-style kernels take the full tile geometry
pub(crate) fn pack_a<T: Scalar>(
    apack: &mut [T],
    a: MatRef<'_, T>,
    ta: Trans,
    alpha: T,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
) {
    match ta {
        // op(A) = A: the mr values of one (panel, p) cell sit
        // contiguously in column `pc + p`.
        Trans::No => {
            let mut dst = 0;
            let mut ir = 0;
            while ir < mc {
                let mr = MR.min(mc - ir);
                for p in 0..kc {
                    let src = &a.col(pc + p)[ic + ir..ic + ir + mr];
                    for (d, &v) in apack[dst..dst + mr].iter_mut().zip(src) {
                        *d = alpha * v;
                    }
                    for d in apack[dst + mr..dst + MR].iter_mut() {
                        *d = T::ZERO;
                    }
                    dst += MR;
                }
                ir += MR;
            }
        }
        // op(A) = Aᵀ: row `ic + ir + i` of the op is column
        // `ic + ir + i` of A, so walk each source column once with a
        // strided write into the panel.
        Trans::Yes => {
            let mut ir = 0;
            while ir < mc {
                let mr = MR.min(mc - ir);
                let base = (ir / MR) * kc * MR;
                for i in 0..MR {
                    if i < mr {
                        let src = &a.col(ic + ir + i)[pc..pc + kc];
                        for (p, &v) in src.iter().enumerate() {
                            apack[base + p * MR + i] = alpha * v;
                        }
                    } else {
                        for p in 0..kc {
                            apack[base + p * MR + i] = T::ZERO;
                        }
                    }
                }
                ir += MR;
            }
        }
    }
}

/// Pack `op(B)[pc..pc+kc, jc..jc+nc]` into column micro-panels of width
/// `NR`, zero padded. `bpack` must hold at least
/// `nc.div_ceil(NR) * NR * kc` elements.
pub(crate) fn pack_b<T: Scalar>(
    bpack: &mut [T],
    b: MatRef<'_, T>,
    tb: Trans,
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
) {
    match tb {
        // op(B) = B: column `jc + jr + j` of the op is a contiguous
        // source column; walk it once with a strided panel write.
        Trans::No => {
            let mut jr = 0;
            while jr < nc {
                let nr = NR.min(nc - jr);
                let base = (jr / NR) * kc * NR;
                for j in 0..NR {
                    if j < nr {
                        let src = &b.col(jc + jr + j)[pc..pc + kc];
                        for (p, &v) in src.iter().enumerate() {
                            bpack[base + p * NR + j] = v;
                        }
                    } else {
                        for p in 0..kc {
                            bpack[base + p * NR + j] = T::ZERO;
                        }
                    }
                }
                jr += NR;
            }
        }
        // op(B) = Bᵀ: the nr values of one (panel, p) cell sit
        // contiguously in column `pc + p`.
        Trans::Yes => {
            let mut dst = 0;
            let mut jr = 0;
            while jr < nc {
                let nr = NR.min(nc - jr);
                for p in 0..kc {
                    let src = &b.col(pc + p)[jc + jr..jc + jr + nr];
                    bpack[dst..dst + nr].copy_from_slice(src);
                    for d in bpack[dst + nr..dst + NR].iter_mut() {
                        *d = T::ZERO;
                    }
                    dst += NR;
                }
                jr += NR;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Matrix;

    fn sample(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| (i * 1000 + j) as f64 + 0.25)
    }

    fn op_get(a: &Matrix, t: Trans, i: usize, j: usize) -> f64 {
        match t {
            Trans::No => a[(i, j)],
            Trans::Yes => a[(j, i)],
        }
    }

    #[test]
    fn pack_a_matches_reference_layout_for_both_ops() {
        let a = sample(23, 19);
        let at = sample(19, 23);
        for (m, t) in [(&a, Trans::No), (&at, Trans::Yes)] {
            let (ic, pc, mc, kc): (usize, usize, usize, usize) = (3, 2, 17, 11);
            let alpha = 1.5;
            let panels = mc.div_ceil(MR);
            let mut pack = vec![f64::NAN; panels * MR * kc];
            pack_a(&mut pack, m.rf(), t, alpha, ic, pc, mc, kc);
            for q in 0..panels {
                for p in 0..kc {
                    for i in 0..MR {
                        let want = if q * MR + i < mc {
                            alpha * op_get(m, t, ic + q * MR + i, pc + p)
                        } else {
                            0.0
                        };
                        assert_eq!(
                            pack[q * kc * MR + p * MR + i],
                            want,
                            "{t:?} q={q} p={p} i={i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pack_b_matches_reference_layout_for_both_ops() {
        let b = sample(21, 26);
        let bt = sample(26, 21);
        for (m, t) in [(&b, Trans::No), (&bt, Trans::Yes)] {
            let (pc, jc, kc, nc): (usize, usize, usize, usize) = (4, 5, 13, 18);
            let panels = nc.div_ceil(NR);
            let mut pack = vec![f64::NAN; panels * NR * kc];
            pack_b(&mut pack, m.rf(), t, pc, jc, kc, nc);
            for q in 0..panels {
                for p in 0..kc {
                    for j in 0..NR {
                        let want = if q * NR + j < nc {
                            op_get(m, t, pc + p, jc + q * NR + j)
                        } else {
                            0.0
                        };
                        assert_eq!(
                            pack[q * kc * NR + p * NR + j],
                            want,
                            "{t:?} q={q} p={p} j={j}"
                        );
                    }
                }
            }
        }
    }
}
