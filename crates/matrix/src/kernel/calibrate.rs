//! One-shot kernel throughput calibration.
//!
//! The paper's §6.5 retiling analysis is driven by an "empirical
//! characterization of the primitives' performance" — measured kernel
//! rate as a function of block size, not an assumed curve. This module
//! produces that characterization for the running machine: for each
//! candidate block size `m_s` it times the trailing-update GEMM shape
//! that dominates the Schur elimination (`C(m_s x n') += A(m_s x m_s)
//! B(m_s x n')`) and records the achieved flop rate. `bs-perfmodel`
//! turns the points into a `RateTable` that replaces its assumed
//! saturating rate model when calibration is enabled (`BS_CALIBRATE=1`
//! or the CLI `--calibrate` flag).
//!
//! The measurement deliberately goes through the same kernel-choice
//! predicate as production `gemm`: small `m_s` shapes are timed on the
//! direct loop they would actually run, large ones on the packed SIMD
//! path — so the resulting curve reflects the real dispatch, loop
//! overhead and all.
//!
//! Results are measured once per process against the kernel active at
//! first call ([`Calibration::isa`] records which); they are wall-clock
//! measurements and vary run to run, which is why calibration is
//! opt-in rather than the default for plan auto-selection.

use crate::blas3::{self, Trans};
use crate::dense::Matrix;
use crate::scalar::Scalar;
use crate::workspace::Workspace;
use std::sync::OnceLock;
use std::time::Instant;

/// Block sizes measured — the fig. 10 retiling sweep plus 64.
pub const BLOCK_SIZES: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Trailing extent of the timed update (one block-row's worth of a
/// moderate factorization).
const TRAILING: usize = 256;

/// Flop budget per timing sample; samples below this iterate until
/// they reach it so tiny shapes aren't timer-noise.
const SAMPLE_FLOPS: f64 = 2.0e6;

/// Timing samples per block size (best-of, to shed scheduler noise).
const SAMPLES: usize = 3;

/// Measured kernel rates for this process.
#[derive(Clone, Debug)]
pub struct Calibration {
    /// Name of the ISA that was active when the measurement ran.
    pub isa: &'static str,
    /// `(m_s, achieved flop/s)` per measured block size, ascending.
    pub points: Vec<(usize, f64)>,
}

/// The process-wide f64 calibration, measured on first call.
pub fn calibration() -> &'static Calibration {
    static CAL: OnceLock<Calibration> = OnceLock::new();
    CAL.get_or_init(run::<f64>)
}

/// The process-wide f32 calibration, measured on first call (the
/// mixed-precision planner prices its f32 factor stage from this).
pub fn calibration_f32() -> &'static Calibration {
    static CAL: OnceLock<Calibration> = OnceLock::new();
    CAL.get_or_init(run::<f32>)
}

fn run<T: Scalar>() -> Calibration {
    let kern = super::active::<T>();
    let mut ws = Workspace::new();
    let points = BLOCK_SIZES
        .iter()
        .map(|&ms| (ms, measure::<T>(ms, kern, &mut ws)))
        .collect();
    Calibration {
        isa: kern.isa().name(),
        points,
    }
}

/// Achieved flop/s of the dominant update shape at block size `ms`.
fn measure<T: Scalar>(ms: usize, kern: super::Kernel<T>, ws: &mut Workspace<T>) -> f64 {
    let mut state = 0x9E3779B97F4A7C15u64 | 1;
    let mut fill = |_: usize, _: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        T::from_f64(((state % 1000) as f64 - 500.0) / 250.0)
    };
    let a = Matrix::from_fn(ms, ms, &mut fill);
    let b = Matrix::from_fn(ms, TRAILING, &mut fill);
    let mut c = Matrix::zeros(ms, TRAILING);

    let flops_per_iter = 2.0 * (ms * ms * TRAILING) as f64;
    let iters = ((SAMPLE_FLOPS / flops_per_iter).ceil() as usize).clamp(4, 65536);
    // Same predicate as the production dispatch: time the path this
    // shape would actually run.
    let packed = blas3::uses_packed(ms, TRAILING, ms);

    let mut best = 0.0f64;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        for _ in 0..iters {
            // beta = 1 accumulation: no per-iteration rescale distorts
            // the measurement, and the operands keep the sum bounded.
            if packed {
                blas3::gemm_blocked(
                    T::ONE,
                    a.rf(),
                    Trans::No,
                    b.rf(),
                    Trans::No,
                    c.mt(),
                    Some(ws),
                    kern,
                );
            } else {
                blas3::gemm_naive_acc(T::ONE, a.rf(), Trans::No, b.rf(), Trans::No, c.mt());
            }
        }
        let secs = t0.elapsed().as_secs_f64().max(1.0e-9);
        best = best.max(flops_per_iter * iters as f64 / secs);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_produces_positive_rates_for_every_block_size() {
        let cal = calibration();
        assert_eq!(cal.points.len(), BLOCK_SIZES.len());
        for &(ms, rate) in &cal.points {
            assert!(rate > 0.0 && rate.is_finite(), "m_s={ms} rate={rate}");
        }
        assert!(!cal.isa.is_empty());
        // One-shot: a second call returns the identical measurement.
        assert!(std::ptr::eq(calibration(), cal));
    }

    #[test]
    fn f32_calibration_is_separate_and_positive() {
        let cal = calibration_f32();
        assert_eq!(cal.points.len(), BLOCK_SIZES.len());
        for &(ms, rate) in &cal.points {
            assert!(rate > 0.0 && rate.is_finite(), "m_s={ms} rate={rate}");
        }
        assert!(!std::ptr::eq(calibration(), cal));
    }
}
