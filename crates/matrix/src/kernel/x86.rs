//! AVX2+FMA and (behind the `avx512` cargo feature) AVX-512F
//! microkernels for `x86_64`.
//!
//! Both kernels compute each `C(i, j)` entry through the same
//! per-entry accumulation chain as the portable kernel — one partial
//! sum per entry, `p` in packed order — so for a fixed kernel choice
//! results stay bitwise identical across any strip decomposition. They
//! differ from the portable kernel only in using fused multiply-add
//! (one rounding per term instead of two), which is why switching
//! kernels may change the last bits while switching thread counts
//! never does.

use super::{MR, NR};
use crate::view::MatMut;
use std::arch::x86_64::*;

/// `MR x NR` microkernel on AVX2+FMA: each of the `NR` accumulator
/// columns is a pair of 4-lane `__m256d` registers covering the 8 rows.
///
/// # Safety
///
/// The CPU must support AVX2 and FMA. `apanel`/`bpanel` must hold at
/// least `kc * MR` / `kc * NR` elements (slice indexing enforces this;
/// an out-of-contract call panics rather than reads out of bounds).
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)] // BLIS-style kernels take the full tile geometry
                                     // SAFETY: only dispatched by `kernel_for` after `is_x86_feature_detected!("avx2")`
                                     // and `("fma")` both report true; all loads/stores go through bounds-checked slices.
pub(crate) unsafe fn micro_8x4_avx2(
    apanel: &[f64],
    bpanel: &[f64],
    kc: usize,
    mut c: MatMut<'_>,
    ci: usize,
    cj: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[_mm256_setzero_pd(); 2]; NR];
    for p in 0..kc {
        let av: &[f64] = &apanel[p * MR..p * MR + MR];
        let bv: &[f64] = &bpanel[p * NR..p * NR + NR];
        let alo = _mm256_loadu_pd(av.as_ptr());
        let ahi = _mm256_loadu_pd(av.as_ptr().add(4));
        for j in 0..NR {
            let bj = _mm256_set1_pd(bv[j]);
            acc[j][0] = _mm256_fmadd_pd(alo, bj, acc[j][0]);
            acc[j][1] = _mm256_fmadd_pd(ahi, bj, acc[j][1]);
        }
    }
    for j in 0..nr {
        let col = c.col_mut(cj + j);
        let dst: &mut [f64] = &mut col[ci..ci + mr];
        if mr == MR {
            let p = dst.as_mut_ptr();
            _mm256_storeu_pd(p, _mm256_add_pd(_mm256_loadu_pd(p), acc[j][0]));
            let ph = p.add(4);
            _mm256_storeu_pd(ph, _mm256_add_pd(_mm256_loadu_pd(ph), acc[j][1]));
        } else {
            let mut tmp = [0.0f64; MR];
            _mm256_storeu_pd(tmp.as_mut_ptr(), acc[j][0]);
            _mm256_storeu_pd(tmp.as_mut_ptr().add(4), acc[j][1]);
            for (d, t) in dst.iter_mut().zip(tmp.iter()) {
                *d += *t;
            }
        }
    }
}

/// `MR x NR` microkernel on AVX-512F: one 8-lane `__m512d` accumulator
/// per column covers the whole register tile.
///
/// # Safety
///
/// The CPU must support AVX-512F. `apanel`/`bpanel` must hold at least
/// `kc * MR` / `kc * NR` elements (slice indexing enforces this).
#[cfg(feature = "avx512")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)] // BLIS-style kernels take the full tile geometry
                                     // SAFETY: only dispatched by `kernel_for` after `is_x86_feature_detected!("avx512f")`
                                     // reports true; all loads/stores go through bounds-checked slices.
pub(crate) unsafe fn micro_8x4_avx512(
    apanel: &[f64],
    bpanel: &[f64],
    kc: usize,
    mut c: MatMut<'_>,
    ci: usize,
    cj: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [_mm512_setzero_pd(); NR];
    for p in 0..kc {
        let av: &[f64] = &apanel[p * MR..p * MR + MR];
        let bv: &[f64] = &bpanel[p * NR..p * NR + NR];
        let a8 = _mm512_loadu_pd(av.as_ptr());
        for j in 0..NR {
            let bj = _mm512_set1_pd(bv[j]);
            acc[j] = _mm512_fmadd_pd(a8, bj, acc[j]);
        }
    }
    for j in 0..nr {
        let col = c.col_mut(cj + j);
        let dst: &mut [f64] = &mut col[ci..ci + mr];
        if mr == MR {
            let p = dst.as_mut_ptr();
            _mm512_storeu_pd(p, _mm512_add_pd(_mm512_loadu_pd(p), acc[j]));
        } else {
            let mut tmp = [0.0f64; MR];
            _mm512_storeu_pd(tmp.as_mut_ptr(), acc[j]);
            for (d, t) in dst.iter_mut().zip(tmp.iter()) {
                *d += *t;
            }
        }
    }
}
