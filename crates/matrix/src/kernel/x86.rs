//! AVX2+FMA and (behind the `avx512` cargo feature) AVX-512F
//! microkernels for `x86_64`.
//!
//! Both kernels compute each `C(i, j)` entry through the same
//! per-entry accumulation chain as the portable kernel — one partial
//! sum per entry, `p` in packed order — so for a fixed kernel choice
//! results stay bitwise identical across any strip decomposition. They
//! differ from the portable kernel only in using fused multiply-add
//! (one rounding per term instead of two), which is why switching
//! kernels may change the last bits while switching thread counts
//! never does.

use super::{MR, NR};
use crate::view::MatMut;
use std::arch::x86_64::*;

/// `MR x NR` microkernel on AVX2+FMA: each of the `NR` accumulator
/// columns is a pair of 4-lane `__m256d` registers covering the 8 rows.
///
/// # Safety
///
/// The CPU must support AVX2 and FMA. `apanel`/`bpanel` must hold at
/// least `kc * MR` / `kc * NR` elements (slice indexing enforces this;
/// an out-of-contract call panics rather than reads out of bounds).
// SAFETY: [isa avx2,fma — reached only through `kernel_for`, which
// checks `is_x86_feature_detected!` for both features at runtime]
// [bounds every load and store goes through bounds-checked slice
// indexing of `apanel`, `bpanel`, and the output column]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)] // BLIS-style kernels take the full tile geometry
pub(crate) unsafe fn micro_8x4_avx2(
    apanel: &[f64],
    bpanel: &[f64],
    kc: usize,
    mut c: MatMut<'_>,
    ci: usize,
    cj: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[_mm256_setzero_pd(); 2]; NR];
    for p in 0..kc {
        let av: &[f64] = &apanel[p * MR..p * MR + MR];
        let bv: &[f64] = &bpanel[p * NR..p * NR + NR];
        let alo = _mm256_loadu_pd(av.as_ptr());
        let ahi = _mm256_loadu_pd(av.as_ptr().add(4));
        for j in 0..NR {
            let bj = _mm256_set1_pd(bv[j]);
            acc[j][0] = _mm256_fmadd_pd(alo, bj, acc[j][0]);
            acc[j][1] = _mm256_fmadd_pd(ahi, bj, acc[j][1]);
        }
    }
    for j in 0..nr {
        let col = c.col_mut(cj + j);
        let dst: &mut [f64] = &mut col[ci..ci + mr];
        if mr == MR {
            let p = dst.as_mut_ptr();
            _mm256_storeu_pd(p, _mm256_add_pd(_mm256_loadu_pd(p), acc[j][0]));
            let ph = p.add(4);
            _mm256_storeu_pd(ph, _mm256_add_pd(_mm256_loadu_pd(ph), acc[j][1]));
        } else {
            let mut tmp = [0.0f64; MR];
            _mm256_storeu_pd(tmp.as_mut_ptr(), acc[j][0]);
            _mm256_storeu_pd(tmp.as_mut_ptr().add(4), acc[j][1]);
            for (d, t) in dst.iter_mut().zip(tmp.iter()) {
                *d += *t;
            }
        }
    }
}

/// f32 microkernel on AVX2+FMA covering a double-height `2*MR x NR`
/// (16 x 4) register tile. With 8-lane f32 registers one `__m256` holds
/// a full MR-row column, so an MR-high tile would leave only `NR` = 4
/// independent FMA chains — too few to hide FMA latency, capping the
/// kernel near the f64 rate. Spanning two *adjacent* packed A panels
/// (the pack layout is unchanged; the second panel starts at `kc * MR`)
/// doubles that to 2·`NR` chains — the same accumulator structure as
/// the f64 kernel at twice the rows per register, which is where the
/// f32 path's ≥1.5x Gflop/s comes from. The macrokernel strides `ir` by
/// [`Kernel::micro_rows`] and passes `mr <= MR` only for the tail tile,
/// which takes the single-panel branch and never touches the second
/// panel. Either branch accumulates every `C` entry through one partial
/// sum in packed `p` order, so results stay bitwise identical across
/// strip decompositions, thread counts, and `mr` groupings. Also
/// dispatched for AVX-512F requests (one 512-bit register would span
/// two column tiles; a double-height 256-bit tile gets the chain count
/// without a separate code path).
///
/// # Safety
///
/// The CPU must support AVX2 and FMA. `apanel` must hold at least
/// `kc * MR` elements — `2 * kc * MR` when `mr > MR` — and `bpanel` at
/// least `kc * NR` (slice indexing enforces this; an out-of-contract
/// call panics rather than reads out of bounds).
// SAFETY: [isa avx2,fma — reached only through `kernel_for`, which
// checks `is_x86_feature_detected!` for both features at runtime]
// [bounds slice indexing of `apanel` (two adjacent packed panels when
// `mr` exceeds `MR`), `bpanel`, and the output column bounds-checks
// every load and store]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)] // BLIS-style kernels take the full tile geometry
pub(crate) unsafe fn micro_16x4_avx2_f32(
    apanel: &[f32],
    bpanel: &[f32],
    kc: usize,
    mut c: MatMut<'_, f32>,
    ci: usize,
    cj: usize,
    mr: usize,
    nr: usize,
) {
    if mr > MR {
        let hi: &[f32] = &apanel[kc * MR..];
        let mut acc = [[_mm256_setzero_ps(); 2]; NR];
        for p in 0..kc {
            let av0: &[f32] = &apanel[p * MR..p * MR + MR];
            let av1: &[f32] = &hi[p * MR..p * MR + MR];
            let bv: &[f32] = &bpanel[p * NR..p * NR + NR];
            let alo = _mm256_loadu_ps(av0.as_ptr());
            let ahi = _mm256_loadu_ps(av1.as_ptr());
            for j in 0..NR {
                let bj = _mm256_set1_ps(bv[j]);
                acc[j][0] = _mm256_fmadd_ps(alo, bj, acc[j][0]);
                acc[j][1] = _mm256_fmadd_ps(ahi, bj, acc[j][1]);
            }
        }
        for j in 0..nr {
            let col = c.col_mut(cj + j);
            let dst: &mut [f32] = &mut col[ci..ci + mr];
            // mr > MR: the low panel's 8 rows are all live.
            let p = dst.as_mut_ptr();
            _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), acc[j][0]));
            if mr == 2 * MR {
                let ph = p.add(MR);
                _mm256_storeu_ps(ph, _mm256_add_ps(_mm256_loadu_ps(ph), acc[j][1]));
            } else {
                let mut tmp = [0.0f32; MR];
                _mm256_storeu_ps(tmp.as_mut_ptr(), acc[j][1]);
                for (d, t) in dst[MR..].iter_mut().zip(tmp.iter()) {
                    *d += *t;
                }
            }
        }
        return;
    }
    let mut acc = [_mm256_setzero_ps(); NR];
    for p in 0..kc {
        let av: &[f32] = &apanel[p * MR..p * MR + MR];
        let bv: &[f32] = &bpanel[p * NR..p * NR + NR];
        let a8 = _mm256_loadu_ps(av.as_ptr());
        for j in 0..NR {
            let bj = _mm256_set1_ps(bv[j]);
            acc[j] = _mm256_fmadd_ps(a8, bj, acc[j]);
        }
    }
    for j in 0..nr {
        let col = c.col_mut(cj + j);
        let dst: &mut [f32] = &mut col[ci..ci + mr];
        if mr == MR {
            let p = dst.as_mut_ptr();
            _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), acc[j]));
        } else {
            let mut tmp = [0.0f32; MR];
            _mm256_storeu_ps(tmp.as_mut_ptr(), acc[j]);
            for (d, t) in dst.iter_mut().zip(tmp.iter()) {
                *d += *t;
            }
        }
    }
}

/// `MR x NR` microkernel on AVX-512F: one 8-lane `__m512d` accumulator
/// per column covers the whole register tile.
///
/// # Safety
///
/// The CPU must support AVX-512F. `apanel`/`bpanel` must hold at least
/// `kc * MR` / `kc * NR` elements (slice indexing enforces this).
#[cfg(feature = "avx512")]
// SAFETY: [isa avx512f — reached only through `kernel_for`, which
// checks `is_x86_feature_detected!` for the feature at runtime]
// [bounds every load and store goes through bounds-checked slice
// indexing of `apanel`, `bpanel`, and the output column]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)] // BLIS-style kernels take the full tile geometry
pub(crate) unsafe fn micro_8x4_avx512(
    apanel: &[f64],
    bpanel: &[f64],
    kc: usize,
    mut c: MatMut<'_>,
    ci: usize,
    cj: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [_mm512_setzero_pd(); NR];
    for p in 0..kc {
        let av: &[f64] = &apanel[p * MR..p * MR + MR];
        let bv: &[f64] = &bpanel[p * NR..p * NR + NR];
        let a8 = _mm512_loadu_pd(av.as_ptr());
        for j in 0..NR {
            let bj = _mm512_set1_pd(bv[j]);
            acc[j] = _mm512_fmadd_pd(a8, bj, acc[j]);
        }
    }
    for j in 0..nr {
        let col = c.col_mut(cj + j);
        let dst: &mut [f64] = &mut col[ci..ci + mr];
        if mr == MR {
            let p = dst.as_mut_ptr();
            _mm512_storeu_pd(p, _mm512_add_pd(_mm512_loadu_pd(p), acc[j]));
        } else {
            let mut tmp = [0.0f64; MR];
            _mm512_storeu_pd(tmp.as_mut_ptr(), acc[j]);
            for (d, t) in dst.iter_mut().zip(tmp.iter()) {
                *d += *t;
            }
        }
    }
}
