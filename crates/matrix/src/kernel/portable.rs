//! The portable scalar microkernel — the always-available fallback and
//! the reference semantics every SIMD kernel is property-tested
//! against. This is the exact register-tile loop the blocked `gemm`
//! shipped with before runtime dispatch existed, now monomorphized per
//! [`Scalar`] (the `f64` instantiation performs the identical operation
//! sequence, so pure-f64 results stay bitwise unchanged).

use super::{MR, NR};
use crate::scalar::Scalar;
use crate::view::MatMut;

/// `MR x NR` scalar microkernel: accumulates a rank-`kc` product from
/// packed panels into a local tile, then adds into `C` (edge tiles via
/// `mr`/`nr`).
///
/// # Safety
///
/// No unsafe operations are performed; the signature is `unsafe fn`
/// only so it coerces to [`super::MicroFn`] alongside the SIMD
/// kernels. `apanel`/`bpanel` must hold at least `kc * MR` /
/// `kc * NR` elements (enforced by slice indexing — out-of-contract
/// calls panic rather than misbehave).
// SAFETY: [bounds the body is entirely safe code — every access is
// bounds-checked slice indexing; the signature is `unsafe fn` only so
// it coerces to `MicroFn` alongside the SIMD kernels]
#[allow(clippy::too_many_arguments)] // BLIS-style kernels take the full tile geometry
pub(crate) unsafe fn micro_8x4<T: Scalar>(
    apanel: &[T],
    bpanel: &[T],
    kc: usize,
    mut c: MatMut<'_, T>,
    ci: usize,
    cj: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[T::ZERO; MR]; NR];
    for p in 0..kc {
        let av: &[T] = &apanel[p * MR..p * MR + MR];
        let bv: &[T] = &bpanel[p * NR..p * NR + NR];
        for j in 0..NR {
            let bj = bv[j];
            for i in 0..MR {
                acc[j][i] += av[i] * bj;
            }
        }
    }
    for j in 0..nr {
        let col = c.col_mut(cj + j);
        for i in 0..mr {
            col[ci + i] += acc[j][i];
        }
    }
}
