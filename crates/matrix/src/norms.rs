//! Matrix and vector norms plus a 1-norm condition estimator.
//!
//! The perturbation analysis of §8 of the paper bounds the refinement
//! convergence factor by `γ = ‖ΔT·T⁻¹‖`; estimating it needs `‖T‖` and a
//! cheap `‖T⁻¹‖` estimate, provided here (Hager/Higham style power
//! iteration on `‖A⁻¹‖₁` using LU solves).

use crate::dense::Matrix;
use crate::flops;
use crate::lu::LuFactors;

/// Vector ∞-norm.
pub fn vec_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

/// Vector 1-norm.
pub fn vec_one(x: &[f64]) -> f64 {
    flops::add(x.len() as u64);
    x.iter().map(|v| v.abs()).sum()
}

/// Vector 2-norm (delegates to the scaled BLAS1 kernel).
pub fn vec_two(x: &[f64]) -> f64 {
    crate::blas1::nrm2(x)
}

/// Matrix 1-norm (max absolute column sum).
pub fn mat_one(a: &Matrix) -> f64 {
    let mut best: f64 = 0.0;
    for j in 0..a.cols() {
        best = best.max(vec_one(a.col(j)));
    }
    best
}

/// Matrix ∞-norm (max absolute row sum).
pub fn mat_inf(a: &Matrix) -> f64 {
    let mut sums = vec![0.0f64; a.rows()];
    for j in 0..a.cols() {
        for (i, v) in a.col(j).iter().enumerate() {
            sums[i] += v.abs();
        }
    }
    flops::add((a.rows() * a.cols()) as u64);
    vec_inf(&sums)
}

/// Frobenius norm.
pub fn mat_fro(a: &Matrix) -> f64 {
    crate::blas1::nrm2(a.as_slice())
}

/// Estimate `‖A⁻¹‖₁` from LU factors (Hager's algorithm, a handful of
/// solves — never forms the inverse).
pub fn inv_one_norm_estimate(f: &LuFactors) -> f64 {
    let n = f.lu.rows();
    if n == 0 {
        return 0.0;
    }
    let mut x = vec![1.0 / n as f64; n];
    let mut est = 0.0f64;
    for _ in 0..5 {
        let y = match f.solve(&x) {
            Ok(y) => y,
            Err(_) => return f64::INFINITY,
        };
        let ynorm = vec_one(&y);
        est = est.max(ynorm);
        // xi = sign(y)
        let xi: Vec<f64> = y
            .iter()
            .map(|&v| if v >= 0.0 { 1.0 } else { -1.0 })
            .collect();
        let z = match f.solve_transposed(&xi) {
            Ok(z) => z,
            Err(_) => return f64::INFINITY,
        };
        let Some((jmax, zmax)) = z
            .iter()
            .enumerate()
            .map(|(i, &v)| (i, v.abs()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
        else {
            // Empty solve vector: nothing further to estimate.
            break;
        };
        let zx: f64 = z.iter().zip(&x).map(|(a, b)| a * b).sum();
        if zmax <= zx.abs() {
            break;
        }
        x = vec![0.0; n];
        x[jmax] = 1.0;
    }
    est
}

/// 1-norm condition number estimate `κ₁(A) ≈ ‖A‖₁ ‖A⁻¹‖₁`.
pub fn cond_one_estimate(a: &Matrix) -> f64 {
    match crate::lu::lu_factor(a) {
        Ok(f) => mat_one(a) * inv_one_norm_estimate(&f),
        Err(_) => f64::INFINITY,
    }
}

/// Spectral-norm estimate via a few power iterations on `AᵀA`.
pub fn mat_two_estimate(a: &Matrix, iters: usize) -> f64 {
    let n = a.cols();
    if n == 0 || a.rows() == 0 {
        return 0.0;
    }
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.7).sin()).collect();
    let mut s = vec_two(&v);
    for vi in v.iter_mut() {
        *vi /= s;
    }
    let mut av = vec![0.0; a.rows()];
    let mut sigma = 0.0;
    for _ in 0..iters.max(1) {
        crate::blas2::gemv(1.0, a.rf(), &v, 0.0, &mut av);
        crate::blas2::gemv_t(1.0, a.rf(), &av, 0.0, &mut v);
        s = vec_two(&v);
        if s == 0.0 {
            return 0.0;
        }
        for vi in v.iter_mut() {
            *vi /= s;
        }
        sigma = s.sqrt();
    }
    sigma
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_basics() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert_eq!(mat_one(&a), 6.0); // col 1: |−2|+4 = 6
        assert_eq!(mat_inf(&a), 7.0); // row 1: 3+4 = 7
        assert!((mat_fro(&a) - 30.0f64.sqrt()).abs() < 1e-14);
        assert_eq!(vec_inf(&[-3.0, 2.0]), 3.0);
        assert_eq!(vec_one(&[-3.0, 2.0]), 5.0);
    }

    #[test]
    fn identity_condition_is_one() {
        let i = Matrix::identity(12);
        let c = cond_one_estimate(&i);
        assert!((c - 1.0).abs() < 1e-12, "got {c}");
    }

    #[test]
    fn condition_tracks_diagonal_spread() {
        let mut d = Matrix::identity(6);
        d[(5, 5)] = 1e-6;
        let c = cond_one_estimate(&d);
        assert!((c - 1e6).abs() / 1e6 < 1e-10, "got {c}");
    }

    #[test]
    fn two_norm_estimate_of_diagonal() {
        let mut d = Matrix::identity(5);
        d[(2, 2)] = 9.0;
        let s = mat_two_estimate(&d, 30);
        assert!((s - 9.0).abs() < 1e-6, "got {s}");
    }

    #[test]
    fn singular_matrix_reports_infinite_condition() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(cond_one_estimate(&a).is_infinite());
    }
}
