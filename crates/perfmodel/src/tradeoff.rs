//! Tradeoff analysis helpers (§6.5): which representation to pick, and
//! when retiling `m → m_s` pays off given an empirical rate model.

use crate::model::{apply_flops, blocking_flops, total_factor_flops, Rep};

/// Representation with the fewest *blocking* flops at `k = m` (§6.2:
/// always YTYᵀ by the formulas, but exposed generically so callers can
/// sweep).
pub fn best_rep_for_blocking(m: usize) -> Rep {
    Rep::ALL
        .into_iter()
        .min_by(|a, b| {
            blocking_flops(*a, m, m)
                .partial_cmp(&blocking_flops(*b, m, m))
                .unwrap()
        })
        .unwrap()
}

/// Representation with the fewest *application* flops for a trailing
/// generator of `p` block columns.
pub fn best_rep_for_apply(m: usize, p: usize) -> Rep {
    Rep::ALL
        .into_iter()
        .min_by(|a, b| {
            apply_flops(*a, m, m, p)
                .partial_cmp(&apply_flops(*b, m, m, p))
                .unwrap()
        })
        .unwrap()
}

/// Given an empirical effective rate `rate(m_s)` in flops/second for
/// the dominant kernels at block size `m_s` (the "empirical
/// characterization of the primitives' performance" the paper uses for
/// its Y-MP analysis), return the `m_s` from `candidates` minimizing
/// predicted time `total_flops(n, m_s) / rate(m_s)`.
pub fn crossover_block_size(n: usize, candidates: &[usize], rate: impl Fn(usize) -> f64) -> usize {
    assert!(!candidates.is_empty());
    *candidates
        .iter()
        .min_by(|&&a, &&b| {
            let ta = total_factor_flops(n, a) / rate(a);
            let tb = total_factor_flops(n, b) / rate(b);
            ta.partial_cmp(&tb).unwrap()
        })
        .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yty_wins_blocking() {
        for m in [2usize, 8, 64] {
            assert_eq!(best_rep_for_blocking(m), Rep::YTY, "m={m}");
        }
    }

    #[test]
    fn vy2_wins_application() {
        for m in [2usize, 8, 64] {
            assert_eq!(best_rep_for_apply(m, 50), Rep::VY2, "m={m}");
        }
    }

    #[test]
    fn crossover_picks_larger_blocks_when_rate_grows_superlinearly() {
        // Rate model where doubling m_s more than doubles the rate up
        // to 16: retiling wins despite the linear flop increase.
        let rate = |ms: usize| {
            let r = (ms.min(16) as f64).powf(1.3);
            50e6 * r
        };
        let best = crossover_block_size(4096, &[1, 2, 4, 8, 16, 32], rate);
        assert_eq!(best, 16);
        // Rate model with sublinear growth: m_s = 1 wins.
        let flat = |ms: usize| 50e6 * (ms as f64).powf(0.5);
        assert_eq!(crossover_block_size(4096, &[1, 2, 4, 8], flat), 1);
    }
}
