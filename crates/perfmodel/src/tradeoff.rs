//! Tradeoff analysis helpers (§6.5): which representation to pick, and
//! when retiling `m → m_s` pays off given an empirical rate model.

use crate::model::{apply_flops, blocking_flops, total_factor_flops, Rep};

/// Representation with the fewest *blocking* flops at `k = m` (§6.2:
/// always YTYᵀ by the formulas, but exposed generically so callers can
/// sweep).
pub fn best_rep_for_blocking(m: usize) -> Rep {
    Rep::ALL
        .into_iter()
        .min_by(|a, b| blocking_flops(*a, m, m).total_cmp(&blocking_flops(*b, m, m)))
        .unwrap()
}

/// Representation with the fewest *application* flops for a trailing
/// generator of `p` block columns.
pub fn best_rep_for_apply(m: usize, p: usize) -> Rep {
    Rep::ALL
        .into_iter()
        .min_by(|a, b| apply_flops(*a, m, m, p).total_cmp(&apply_flops(*b, m, m, p)))
        .unwrap()
}

/// Total predicted elimination flops of a whole factorization at block
/// size `m` with `p` block columns: each step `s = 1 .. p−1` pays the
/// panel blocking cost (`k = m`) plus the trailing application over the
/// `p − s` remaining block columns.
pub fn total_schur_flops(rep: Rep, m: usize, p: usize) -> f64 {
    (1..p)
        .map(|s| blocking_flops(rep, m, m) + apply_flops(rep, m, m, p - s))
        .sum()
}

/// Representation minimizing [`total_schur_flops`] — the whole-run
/// blocking/application tradeoff of §6.2–§6.3. For short factorizations
/// (small `p`) the blocking cost dominates and `YTYᵀ` wins; once the
/// trailing updates dominate (large `p`) the second VY form takes over.
pub fn best_rep_total(m: usize, p: usize) -> Rep {
    Rep::ALL
        .into_iter()
        .min_by(|a, b| total_schur_flops(*a, m, p).total_cmp(&total_schur_flops(*b, m, p)))
        .unwrap()
}

/// Default empirical rate model for [`auto_block_size`]: level-3
/// kernels at block size `m_s` run at a fraction `m_s²/(m_s² + 64)` of
/// peak — the saturating shape of the paper's Y-MP primitive
/// characterization (tiny blocks are latency/bandwidth-bound, the rate
/// is within 50% of peak by `m_s = 8` and flat past ~32).
pub fn default_rate(m_s: usize) -> f64 {
    let x = (m_s * m_s) as f64;
    x / (x + 64.0)
}

/// Pick an algorithmic block size for an order-`n` system with
/// structural block size `m` by the §6.5 retiling tradeoff under
/// [`default_rate`]: candidates are the multiples of `m` dividing `n`,
/// scored by predicted time `total_factor_flops(n, m_s) / rate(m_s)`.
///
/// The flop count grows linearly in `m_s` while the rate saturates, so
/// the optimum sits at a moderate block size (8 under the default
/// model) rather than at either extreme.
pub fn auto_block_size(n: usize, m: usize) -> usize {
    assert!(
        m > 0 && n > 0 && n.is_multiple_of(m),
        "n must be a multiple of m"
    );
    let candidates: Vec<usize> = (1..=n / m)
        .map(|q| q * m)
        .filter(|&ms| n.is_multiple_of(ms))
        .collect();
    crossover_block_size(n, &candidates, default_rate)
}

/// Minimum predicted flops each additional thread must amortize before
/// fanning out pays. Calibrated against the pool's dispatch overhead
/// (mailbox wake + done-barrier, ~microseconds) versus level-3 kernel
/// throughput (~10⁹ flop/s): below a few Mflop a worker costs more to
/// wake than it computes.
pub const MIN_FLOPS_PER_THREAD: f64 = 4.0e6;

/// Cost-model thread-count selection: how many threads (≤ `available`)
/// a factorization predicted to cost `total_flops` should fan out to.
/// Scales linearly — one thread per [`MIN_FLOPS_PER_THREAD`] of work —
/// so small systems stay inline and large ones saturate the machine.
/// Always returns at least 1.
pub fn auto_threads(total_flops: f64, available: usize) -> usize {
    // NaN and non-positive predictions both land in the sequential arm.
    if total_flops.is_nan() || total_flops <= 0.0 || available <= 1 {
        return 1;
    }
    let by_work = (total_flops / MIN_FLOPS_PER_THREAD).floor() as usize;
    by_work.clamp(1, available)
}

/// An empirical kernel-rate characterization: measured `(m_s, flop/s)`
/// points, queried by piecewise-linear interpolation. This is the
/// paper's "empirical characterization of the primitives' performance"
/// as a value — `bs-matrix`'s one-shot kernel calibration produces the
/// points, and the planner swaps this in for [`default_rate`] when
/// calibration is enabled.
#[derive(Clone, Debug)]
pub struct RateTable {
    /// `(m_s, flop/s)` sorted ascending by `m_s`.
    points: Vec<(usize, f64)>,
}

impl RateTable {
    /// Build a table from measured points (any order; non-finite or
    /// non-positive rates are dropped). Panics if no valid point
    /// remains — a calibration that measured nothing is a caller bug.
    pub fn new(points: &[(usize, f64)]) -> Self {
        let mut pts: Vec<(usize, f64)> = points
            .iter()
            .copied()
            .filter(|&(_, r)| r.is_finite() && r > 0.0)
            .collect();
        assert!(!pts.is_empty(), "RateTable::new: no valid rate points");
        pts.sort_by_key(|&(ms, _)| ms);
        pts.dedup_by_key(|&mut (ms, _)| ms);
        RateTable { points: pts }
    }

    /// Interpolated rate (flop/s) at block size `ms`, clamped to the
    /// measured range at both ends.
    pub fn rate(&self, ms: usize) -> f64 {
        let pts = &self.points;
        if ms <= pts[0].0 {
            return pts[0].1;
        }
        if let Some(&(last_ms, last_r)) = pts.last() {
            if ms >= last_ms {
                return last_r;
            }
        }
        for w in pts.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if ms <= x1 {
                let t = (ms - x0) as f64 / (x1 - x0) as f64;
                return y0 + t * (y1 - y0);
            }
        }
        pts[pts.len() - 1].1
    }
}

/// [`auto_block_size`] under a measured [`RateTable`] instead of the
/// assumed saturating model: candidates are the multiples of `m`
/// dividing `n`, scored by predicted time
/// `total_factor_flops(n, m_s) / table.rate(m_s)`.
pub fn auto_block_size_with_rate(n: usize, m: usize, table: &RateTable) -> usize {
    assert!(
        m > 0 && n > 0 && n.is_multiple_of(m),
        "n must be a multiple of m"
    );
    let candidates: Vec<usize> = (1..=n / m)
        .map(|q| q * m)
        .filter(|&ms| n.is_multiple_of(ms))
        .collect();
    crossover_block_size(n, &candidates, |ms| table.rate(ms))
}

/// Dispatch overhead assumed when the caller has no measurement (a
/// single-threaded machine reports 0 because dispatch never happens
/// there): ~20 µs, the mailbox-wake + done-barrier latency of the
/// worker pool observed on commodity hosts.
pub const DEFAULT_DISPATCH_OVERHEAD_NS: u64 = 20_000;

/// Fallback kernel rate (flop/s) when the caller passes a degenerate
/// measurement; 4 Gflop/s recovers [`MIN_FLOPS_PER_THREAD`] at the
/// default overhead.
const FALLBACK_RATE: f64 = 4.0e9;

/// Safety factor on the dispatch-overhead crossover: a marginal thread
/// (or a dispatched region) must save at least this many overheads'
/// worth of wall-clock before fanning out is allowed. Break-even cases
/// stay sequential, where dispatch jitter would otherwise produce
/// sub-1x "speedups" against the inline loop.
pub const CROSSOVER_SAFETY: f64 = 2.0;

fn effective_overhead_s(overhead_ns: u64) -> f64 {
    let ns = if overhead_ns == 0 {
        DEFAULT_DISPATCH_OVERHEAD_NS
    } else {
        overhead_ns
    };
    ns as f64 * 1.0e-9
}

fn effective_rate(rate: f64) -> f64 {
    if rate.is_finite() && rate > 0.0 {
        rate
    } else {
        FALLBACK_RATE
    }
}

/// [`auto_threads`] under a *measured* kernel rate (flop/s) and pool
/// dispatch overhead (ns): the sequential-fallback crossover is derived
/// from the measurements instead of an assumed work constant.
///
/// The rule is marginal utility: with `W = total_flops / rate` the
/// sequential kernel time, the `t`-th thread shortens a perfectly
/// split region by `W/(t(t−1))` seconds; threads are admitted while
/// that saving clears [`CROSSOVER_SAFETY`] dispatch overheads. At the
/// 2-thread boundary this guarantees the parallel region is no slower
/// than the inline loop (the saved half must pay the overhead at least
/// twice over), which is what keeps small problems — where a dispatch
/// costs more than the arithmetic it distributes — sequential.
/// Degenerate rates fall back to 4 Gflop/s; `overhead_ns = 0` (no
/// measurement) falls back to [`DEFAULT_DISPATCH_OVERHEAD_NS`].
pub fn auto_threads_with_rate(
    total_flops: f64,
    rate: f64,
    overhead_ns: u64,
    available: usize,
) -> usize {
    if total_flops.is_nan() || total_flops <= 0.0 || available <= 1 {
        return 1;
    }
    let w = total_flops / effective_rate(rate);
    // t(t−1) ≤ cap admits thread t; solve the quadratic for the
    // largest such t.
    let cap = w / (effective_overhead_s(overhead_ns) * CROSSOVER_SAFETY);
    if cap < 2.0 {
        return 1;
    }
    let t = ((1.0 + (1.0 + 4.0 * cap).sqrt()) / 2.0).floor() as usize;
    // Rounding in the quotient chain can land cap a few ulps under an
    // exact integer boundary (e.g. 11.999…8 for t = 4); re-test the
    // integer criterion with relative slack so boundary inputs admit
    // the thread the exact arithmetic would.
    let t = if ((t + 1) * t) as f64 <= cap * (1.0 + 1e-9) {
        t + 1
    } else {
        t
    };
    t.clamp(1, available)
}

/// Work-volume dispatch gate derived from the measured overhead: the
/// `ExecPolicy::min_work` value (product-of-extents scale, ≈ flops/2)
/// below which a parallel region cannot recoup one dispatch. Even a
/// perfect two-way split moves only half the flops off-thread, so the
/// region must carry `2 · CROSSOVER_SAFETY · overhead · rate` flops —
/// `CROSSOVER_SAFETY · overhead · rate` work units — before the pool
/// is worth waking. Replaces the static 64³ default for calibrated
/// plans.
pub fn min_dispatch_work(rate: f64, overhead_ns: u64) -> u64 {
    (effective_rate(rate) * effective_overhead_s(overhead_ns) * CROSSOVER_SAFETY) as u64
}

/// Given an empirical effective rate `rate(m_s)` in flops/second for
/// the dominant kernels at block size `m_s` (the "empirical
/// characterization of the primitives' performance" the paper uses for
/// its Y-MP analysis), return the `m_s` from `candidates` minimizing
/// predicted time `total_flops(n, m_s) / rate(m_s)`.
pub fn crossover_block_size(n: usize, candidates: &[usize], rate: impl Fn(usize) -> f64) -> usize {
    assert!(!candidates.is_empty());
    *candidates
        .iter()
        .min_by(|&&a, &&b| {
            let ta = total_factor_flops(n, a) / rate(a);
            let tb = total_factor_flops(n, b) / rate(b);
            ta.total_cmp(&tb)
        })
        .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yty_wins_blocking() {
        for m in [2usize, 8, 64] {
            assert_eq!(best_rep_for_blocking(m), Rep::YTY, "m={m}");
        }
    }

    #[test]
    fn vy2_wins_application() {
        for m in [2usize, 8, 64] {
            assert_eq!(best_rep_for_apply(m, 50), Rep::VY2, "m={m}");
        }
    }

    #[test]
    fn total_cost_prefers_yty_when_blocking_heavy() {
        // p = 2: one step, application over a single trailing block —
        // the panel blocking cost dominates, so YTYᵀ (eq. 28) wins
        // (the margin `(2/3)m³ − 3.75m²` turns positive from m ≈ 6).
        for m in [8usize, 16, 32] {
            assert_eq!(best_rep_total(m, 2), Rep::YTY, "m={m}");
        }
    }

    #[test]
    fn total_cost_prefers_vy2_when_application_heavy() {
        // Many trailing columns: the per-step application dominates and
        // the second VY form (eq. 31) wins overall.
        for (m, p) in [(2usize, 32usize), (4, 64), (8, 128)] {
            assert_eq!(best_rep_total(m, p), Rep::VY2, "m={m} p={p}");
        }
    }

    #[test]
    fn auto_block_size_picks_moderate_divisor() {
        // Under the default saturating rate, time ∝ m_s + 64/m_s, so
        // the optimum among divisors of n is the one nearest 8.
        assert_eq!(auto_block_size(256, 1), 8);
        assert_eq!(auto_block_size(256, 4), 8);
        // Candidates restricted to multiples of m.
        assert_eq!(auto_block_size(96, 6), 6);
        // Degenerate: only one candidate.
        assert_eq!(auto_block_size(6, 6), 6);
    }

    #[test]
    fn auto_threads_scales_with_predicted_work() {
        // Tiny problems stay inline regardless of the machine.
        assert_eq!(auto_threads(1.0e5, 64), 1);
        assert_eq!(auto_threads(0.0, 64), 1);
        assert_eq!(auto_threads(f64::NAN, 64), 1);
        // One thread per MIN_FLOPS_PER_THREAD of predicted work.
        assert_eq!(auto_threads(2.5 * MIN_FLOPS_PER_THREAD, 64), 2);
        assert_eq!(auto_threads(8.0 * MIN_FLOPS_PER_THREAD, 64), 8);
        // Clamped to what the machine has.
        assert_eq!(auto_threads(1.0e12, 4), 4);
        assert_eq!(auto_threads(1.0e12, 1), 1);
    }

    #[test]
    fn rate_table_interpolates_and_clamps() {
        // Points given out of order, with a junk entry that must drop.
        let t = RateTable::new(&[(8, 4.0e9), (1, 1.0e9), (32, 6.0e9), (16, f64::NAN)]);
        // Clamped below and above the measured range.
        assert_eq!(t.rate(0), 1.0e9);
        assert_eq!(t.rate(1), 1.0e9);
        assert_eq!(t.rate(64), 6.0e9);
        // Exact points, then midpoints interpolate linearly.
        assert_eq!(t.rate(8), 4.0e9);
        let mid = t.rate(20);
        assert!((mid - 5.0e9).abs() < 1.0e6, "rate(20) = {mid}");
    }

    #[test]
    fn auto_block_size_with_rate_follows_the_measurement() {
        // A measured curve that keeps growing past 8 drags the pick to
        // larger blocks than the assumed saturating model's 8.
        let growing = RateTable::new(&[
            (1, 0.2e9),
            (2, 0.6e9),
            (4, 1.8e9),
            (8, 5.0e9),
            (16, 14.0e9),
            (32, 40.0e9),
        ]);
        assert_eq!(auto_block_size_with_rate(256, 1, &growing), 32);
        // A flat curve makes the linear flop growth decisive: m_s = m.
        let flat = RateTable::new(&[(1, 3.0e9), (32, 3.0e9)]);
        assert_eq!(auto_block_size_with_rate(256, 1, &flat), 1);
        // Candidates stay restricted to multiples of m.
        assert_eq!(auto_block_size_with_rate(96, 6, &flat), 6);
    }

    #[test]
    fn auto_threads_with_rate_derives_crossover_from_overhead() {
        // 25 µs overhead, 4 Gflop/s: one "cap unit" is
        // CROSSOVER_SAFETY · 25 µs = 50 µs of kernel time = 200 kflop.
        let oh = 25_000u64;
        // Below the 2-thread crossover (t(t−1) = 2 needs 400 kflop of
        // work): stay sequential. This is the small-n regime where the
        // old constant fanned out at a loss.
        assert_eq!(auto_threads_with_rate(3.0e5, 4.0e9, oh, 64), 1);
        // cap = 12 admits t = 4 (4·3 = 12 marginal overheads paid).
        assert_eq!(auto_threads_with_rate(2.4e6, 4.0e9, oh, 64), 4);
        // A faster kernel finishes the same flops sooner, so fewer
        // threads clear the marginal bar.
        assert_eq!(auto_threads_with_rate(2.4e6, 16.0e9, oh, 64), 2);
        // A cheaper dispatch admits more threads for the same work
        // (cap = 60 → t = 8, since 8·7 = 56 ≤ 60 < 9·8).
        assert_eq!(auto_threads_with_rate(2.4e6, 4.0e9, 5_000, 64), 8);
        // Degenerate inputs: NaN work is sequential, rate falls back to
        // 4 Gflop/s, zero overhead falls back to the assumed 20 µs.
        assert_eq!(auto_threads_with_rate(f64::NAN, 4.0e9, oh, 64), 1);
        assert_eq!(
            auto_threads_with_rate(2.4e6, f64::NAN, oh, 64),
            auto_threads_with_rate(2.4e6, 4.0e9, oh, 64)
        );
        assert_eq!(
            auto_threads_with_rate(2.4e6, 4.0e9, 0, 64),
            auto_threads_with_rate(2.4e6, 4.0e9, DEFAULT_DISPATCH_OVERHEAD_NS, 64)
        );
        // Clamped to the machine.
        assert_eq!(auto_threads_with_rate(1.0e12, 4.0e9, oh, 4), 4);
        assert_eq!(auto_threads_with_rate(1.0e12, 4.0e9, oh, 1), 1);
    }

    #[test]
    fn min_dispatch_work_scales_with_rate_and_overhead() {
        // 4 Gflop/s · 25 µs · safety 2 = 200k work units.
        assert_eq!(min_dispatch_work(4.0e9, 25_000), 200_000);
        // Twice the overhead (or twice the rate) doubles the gate.
        assert_eq!(min_dispatch_work(4.0e9, 50_000), 400_000);
        assert_eq!(min_dispatch_work(8.0e9, 25_000), 400_000);
        // Degenerate measurements fall back to the assumed constants.
        assert_eq!(
            min_dispatch_work(f64::NAN, 25_000),
            min_dispatch_work(4.0e9, 25_000)
        );
        assert_eq!(
            min_dispatch_work(4.0e9, 0),
            min_dispatch_work(4.0e9, DEFAULT_DISPATCH_OVERHEAD_NS)
        );
    }

    #[test]
    fn crossover_picks_larger_blocks_when_rate_grows_superlinearly() {
        // Rate model where doubling m_s more than doubles the rate up
        // to 16: retiling wins despite the linear flop increase.
        let rate = |ms: usize| {
            let r = (ms.min(16) as f64).powf(1.3);
            50e6 * r
        };
        let best = crossover_block_size(4096, &[1, 2, 4, 8, 16, 32], rate);
        assert_eq!(best, 16);
        // Rate model with sublinear growth: m_s = 1 wins.
        let flat = |ms: usize| 50e6 * (ms as f64).powf(0.5);
        assert_eq!(crossover_block_size(4096, &[1, 2, 4, 8], flat), 1);
    }
}
