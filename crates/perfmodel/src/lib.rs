//! The paper's analytic cost model.
//!
//! §4 and §6 derive closed-form flop counts for *producing* each block
//! reflector representation ("blocking flops", eqs. 25–28) and for
//! *applying* it to the rest of the generator ("application flops",
//! eqs. 29–32). §6.5 adds the total-work model for the block-size
//! tradeoff (`≈ 4·m_s·n²`). This crate implements those formulas
//! verbatim so they can be
//!
//! - tabulated (the `flops_table` bench binary),
//! - validated against the instrumented counters of `bs-core`, and
//! - used by the T3D simulator to charge per-step compute time.

pub mod comm;
pub mod model;
pub mod tradeoff;

pub use comm::MeasuredComm;
pub use model::{apply_flops, blocking_flops, comm_words, step_flops, total_factor_flops, Rep};
pub use tradeoff::{
    auto_block_size_with_rate, auto_threads_with_rate, best_rep_for_apply, best_rep_for_blocking,
    crossover_block_size, RateTable,
};
