//! Flop-count formulas from the paper, implemented verbatim.

/// Representation of the block hyperbolic Householder product. Mirrors
/// `bs_core::RepKind` without depending on it (this crate is
/// dependency-free so the simulator and benches can share it).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rep {
    /// Naive accumulated `U` (eq. 25 / 29).
    Accumulated,
    /// First VY form (eq. 26 / 30).
    VY1,
    /// Second VY form (eq. 27 / 31).
    VY2,
    /// `YTYᵀ` form (eq. 28 / 32).
    YTY,
}

impl Rep {
    pub const ALL: [Rep; 4] = [Rep::Accumulated, Rep::VY1, Rep::VY2, Rep::YTY];
}

impl std::fmt::Display for Rep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Rep::Accumulated => "U",
            Rep::VY1 => "VY1",
            Rep::VY2 => "VY2",
            Rep::YTY => "YTY^T",
        };
        f.write_str(s)
    }
}

/// "Blocking flops": cost of producing the representation of
/// `U⁽ᵏ⁾ = U_k … U_1` for `2m`-row reflectors (eqs. 25–28).
pub fn blocking_flops(rep: Rep, m: usize, k: usize) -> f64 {
    let (m, k) = (m as f64, k as f64);
    match rep {
        // eq. 25: 4m²k + 2mk² − 3m² + 4mk + 0.5k² + m + 10.5k
        Rep::Accumulated => {
            4.0 * m * m * k + 2.0 * m * k * k - 3.0 * m * m
                + 4.0 * m * k
                + 0.5 * k * k
                + m
                + 10.5 * k
        }
        // eq. 26: 2mk² + k³/3 + 3.5mk + 0.25k² − m + 9k
        Rep::VY1 => 2.0 * m * k * k + k * k * k / 3.0 + 3.5 * m * k + 0.25 * k * k - m + 9.0 * k,
        // eq. 27: 2mk² + 2.5mk + 0.5k² − 0.5m + 8.5k
        Rep::VY2 => 2.0 * m * k * k + 2.5 * m * k + 0.5 * k * k - 0.5 * m + 8.5 * k,
        // eq. 28: mk² + k³/3 + 3.5mk + 0.25k² + 9k − m − 1
        Rep::YTY => m * k * k + k * k * k / 3.0 + 3.5 * m * k + 0.25 * k * k + 9.0 * k - m - 1.0,
    }
}

/// "Application flops": cost of applying `U⁽ᵏ⁾` to the remaining
/// `2m × mp` generator (eqs. 29–32). `p` is the number of *remaining*
/// block columns.
pub fn apply_flops(rep: Rep, m: usize, k: usize, p: usize) -> f64 {
    let (mf, kf, pf) = (m as f64, k as f64, p as f64);
    match rep {
        // eq. 29: 2m³p + 4m²pk + mpk² + mpk
        Rep::Accumulated => {
            2.0 * mf * mf * mf * pf + 4.0 * mf * mf * pf * kf + mf * pf * kf * kf + mf * pf * kf
        }
        // eq. 30: 4m²pk + mpk² + [m²p if k odd] + 3mpk
        Rep::VY1 => {
            4.0 * mf * mf * pf * kf
                + mf * pf * kf * kf
                + if k % 2 == 1 { mf * mf * pf } else { 0.0 }
                + 3.0 * mf * pf * kf
        }
        // eq. 31: 4m²pk + mpk² + [m²p if k odd] + 2mpk
        Rep::VY2 => {
            4.0 * mf * mf * pf * kf
                + mf * pf * kf * kf
                + if k % 2 == 1 { mf * mf * pf } else { 0.0 }
                + 2.0 * mf * pf * kf
        }
        // eq. 32: 4m²pk + mpk² + m²p + 4mpk
        Rep::YTY => 4.0 * mf * mf * pf * kf + mf * pf * kf * kf + mf * mf * pf + 4.0 * mf * pf * kf,
    }
}

/// Words needed to communicate the representation of a full panel's
/// product (`k = m`), the §7 broadcast volume.
pub fn comm_words(rep: Rep, m: usize) -> usize {
    match rep {
        Rep::Accumulated => 4 * m * m,
        Rep::VY1 | Rep::VY2 => 4 * m * m,
        // 2m·m for Y plus the lower triangle of the m×m T.
        Rep::YTY => 2 * m * m + m * (m + 1) / 2,
    }
}

/// Total flops of one Schur step with `p_active` remaining block
/// columns (panel production at `k = m` plus trailing application).
pub fn step_flops(rep: Rep, m: usize, p_active: usize) -> f64 {
    blocking_flops(rep, m, m) + apply_flops(rep, m, m, p_active)
}

/// Total factorization work for order `n` at algorithmic block size
/// `m_s` — the §6.5 tradeoff model `≈ 4·m_s·n²`.
pub fn total_factor_flops(n: usize, m_s: usize) -> f64 {
    4.0 * m_s as f64 * (n as f64) * (n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leading_terms_at_k_equals_m() {
        // The paper's k = m specializations (§6.2): 6m³, 2.33m³, 2m³,
        // 1.33m³ for U, VY1, VY2, YTYᵀ respectively.
        let m = 256;
        let m3 = (m * m * m) as f64;
        assert!((blocking_flops(Rep::Accumulated, m, m) / m3 - 6.0).abs() < 0.1);
        assert!((blocking_flops(Rep::VY1, m, m) / m3 - 7.0 / 3.0).abs() < 0.1);
        assert!((blocking_flops(Rep::VY2, m, m) / m3 - 2.0).abs() < 0.1);
        assert!((blocking_flops(Rep::YTY, m, m) / m3 - 4.0 / 3.0).abs() < 0.1);
    }

    #[test]
    fn blocking_cost_ordering_matches_paper() {
        // §6.2: YTYᵀ cheapest, then VY2, then VY1, then accumulated U.
        for m in [4usize, 8, 16, 64] {
            let u = blocking_flops(Rep::Accumulated, m, m);
            let v1 = blocking_flops(Rep::VY1, m, m);
            let v2 = blocking_flops(Rep::VY2, m, m);
            let y = blocking_flops(Rep::YTY, m, m);
            assert!(y < v2 && v2 < v1 && v1 < u, "m={m}: {y} {v2} {v1} {u}");
        }
    }

    #[test]
    fn application_cost_ordering_matches_paper() {
        // §6.3: "the second VY representation is the best for most
        // values of k"; the accumulated U costs 7m³p vs 5m³p.
        for m in [4usize, 8, 32] {
            let p = 100;
            let u = apply_flops(Rep::Accumulated, m, m, p);
            let v1 = apply_flops(Rep::VY1, m, m, p);
            let v2 = apply_flops(Rep::VY2, m, m, p);
            let y = apply_flops(Rep::YTY, m, m, p);
            assert!(v2 <= v1, "m={m}");
            assert!(v2 <= y, "m={m}");
            assert!(u > v2, "m={m}");
            // Leading terms 5m³p vs 7m³p (lower-order terms decay ~1/m).
            let m3p = (m * m * m * p) as f64;
            assert!((u / m3p - 7.0).abs() < 3.0 / m as f64, "m={m}: {}", u / m3p);
            assert!(
                (v2 / m3p - 5.0).abs() < 3.0 / m as f64,
                "m={m}: {}",
                v2 / m3p
            );
        }
    }

    #[test]
    fn yty_comm_volume_is_about_half() {
        for m in [8usize, 32, 128] {
            let vy = comm_words(Rep::VY1, m);
            let yty = comm_words(Rep::YTY, m);
            assert!(yty < vy);
            let ratio = yty as f64 / vy as f64;
            assert!(ratio > 0.5 && ratio < 0.7, "m={m}: ratio {ratio}");
        }
    }

    #[test]
    fn total_work_is_linear_in_block_size() {
        let n = 4096;
        let base = total_factor_flops(n, 1);
        assert!((total_factor_flops(n, 8) / base - 8.0).abs() < 1e-12);
        assert!((total_factor_flops(n, 32) / base - 32.0).abs() < 1e-12);
    }

    #[test]
    fn step_flops_positive_and_growing() {
        let s1 = step_flops(Rep::VY2, 4, 10);
        let s2 = step_flops(Rep::VY2, 4, 100);
        assert!(s1 > 0.0 && s2 > s1);
    }
}
