//! Measured communication parameters for the sharded executor.
//!
//! The analytic simulator (Figures 6–9) prices messages through a
//! `CostModel`-shaped interface; the historical implementation was
//! the Cray T3D's published numbers. To compare those predictions with
//! *measured* multi-shard runs in the same units, the machine actually
//! running the shards must be characterized the same way the compute
//! side already is (the kernel calibration's `RateTable`): a handful
//! of measured parameters, turned into per-primitive time formulas.
//!
//! This module holds the pure data + formula side so `bs-perfmodel`
//! stays dependency-free; the micro-benchmarks that *fill in* the
//! numbers live in `bs-simulator::calibrated` (they need the wall
//! transport).
//!
//! The formulas deliberately mirror the wall transport's mechanics,
//! not an idealized network: a broadcast there is `np − 1` sequential
//! channel sends from the root, and the barrier is one mutex/condvar
//! rendezvous every rank passes through — so broadcast scales linearly
//! in `np` and the barrier linearly in participants.

/// Measured point-to-point and synchronization parameters of the
/// machine hosting the rank threads.
#[derive(Clone, Copy, Debug)]
pub struct MeasuredComm {
    /// One-way small-message latency (seconds).
    pub p2p_latency_s: f64,
    /// Sustained point-to-point payload bandwidth (bytes/second).
    pub p2p_bytes_per_s: f64,
    /// Per-participant barrier cost (seconds): one rendezvous costs
    /// `barrier_per_rank_s · np`.
    pub barrier_per_rank_s: f64,
}

impl MeasuredComm {
    /// Seconds for one point-to-point message of `bytes`.
    pub fn p2p_time(&self, bytes: usize) -> f64 {
        self.p2p_latency_s + bytes as f64 / self.p2p_bytes_per_s
    }

    /// Seconds for a broadcast of `bytes` to `np` ranks: the root
    /// performs `np − 1` sequential sends (the wall transport's
    /// fan-out; there is no tree).
    pub fn broadcast_time(&self, bytes: usize, np: usize) -> f64 {
        np.saturating_sub(1) as f64 * self.p2p_time(bytes)
    }

    /// Seconds for a barrier across `np` ranks.
    pub fn barrier_time(&self, np: usize) -> f64 {
        self.barrier_per_rank_s * np as f64
    }

    /// A conservative fallback for environments where measuring is not
    /// possible (e.g. unit tests): microsecond-scale latency, a few
    /// GB/s, microsecond barriers — shaped like a shared-memory host.
    pub fn assumed() -> Self {
        MeasuredComm {
            p2p_latency_s: 2e-6,
            p2p_bytes_per_s: 4e9,
            barrier_per_rank_s: 2e-6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_is_linear_in_ranks() {
        let c = MeasuredComm::assumed();
        let b1 = c.broadcast_time(8192, 2);
        let b3 = c.broadcast_time(8192, 4);
        assert!((b3 - 3.0 * b1).abs() < 1e-15);
        assert_eq!(c.broadcast_time(8192, 1), 0.0);
    }

    #[test]
    fn p2p_has_latency_floor_and_bandwidth_slope() {
        let c = MeasuredComm {
            p2p_latency_s: 1e-6,
            p2p_bytes_per_s: 1e9,
            barrier_per_rank_s: 0.0,
        };
        assert!((c.p2p_time(0) - 1e-6).abs() < 1e-18);
        assert!((c.p2p_time(1_000_000) - (1e-6 + 1e-3)).abs() < 1e-12);
    }
}
