//! Generator construction (eqs. 9-11 of the paper).
//!
//! The `2m × n` generator
//!
//! ```text
//! Gen = [ T₁ T₂ … T_p ]      with  T_j = (L₁Σ)⁻¹ T̂_j ,  T̂₁ = L₁ Σ L₁ᵀ
//!       [ 0  T₂ … T_p ]
//! ```
//!
//! factors the displacement: `T − ZᵀTZ = Genᵀ · diag(Σ, −Σ) · Gen`.
//! For SPD matrices `Σ = I` and `L₁` is the Cholesky factor, giving the
//! classical form of eq. 9.

use crate::block_toeplitz::SymBlockToeplitz;
use bs_matrix::blas3::{trsm, Side, Trans, Uplo};
use bs_matrix::ldlt::{sldlt, Signature};
use bs_matrix::{Matrix, Result, Scalar};

/// The generator of a symmetric block Toeplitz matrix together with the
/// signature of the hyperbolic inner product it lives in.
#[derive(Clone, Debug)]
pub struct Generator<T: Scalar = f64> {
    /// `2m × n` generator matrix; rows `0..m` are the first block row of
    /// `G₁`, rows `m..2m` of `G₂` (eq. 9).
    pub data: Matrix<T>,
    /// Signature `Σ` of the leading block factorization (`+1` everywhere
    /// in the SPD case).
    pub sigma: Signature,
    /// Working signature `W = diag(Σ, −Σ)` of length `2m` (eq. 11).
    pub w: Signature,
    /// Block size `m`.
    pub m: usize,
    /// Number of blocks `p`.
    pub p: usize,
}

impl<T: Scalar> Generator<T> {
    /// `true` when the leading block was positive definite (classical
    /// Cholesky-flavoured algorithm applies).
    pub fn is_spd_signature(&self) -> bool {
        self.sigma.negatives() == 0
    }
}

/// Build the generator for `t`.
///
/// Factors `T̂₁ = L₁ Σ L₁ᵀ` (signature LDLᵀ — plain Cholesky when SPD) and
/// solves `(L₁Σ) T_j = T̂_j` block by block. Fails with
/// [`bs_matrix::Error::SingularPivot`] when a leading principal
/// submatrix of `T̂₁` is singular — the caller may then perturb `T̂₁`
/// (§8.2 of the paper) and retry.
pub fn build_generator<T: Scalar>(t: &SymBlockToeplitz<T>) -> Result<Generator<T>> {
    let m = t.block_size();
    let p = t.num_blocks();
    let n = m * p;
    let (l1, sigma) = sldlt(&t.first_block_row()[0], 1e-14)?;

    // Solve (L₁ Σ) X = T̂_j  ⇔  L₁ Y = T̂_j, X = Σ⁻¹ Y = Σ Y.
    let mut data = Matrix::zeros(2 * m, n);
    let mut work = Matrix::zeros(m, n);
    for (j, blk) in t.first_block_row().iter().enumerate() {
        work.sub_mut(0, j * m, m, m).copy_from(blk.rf());
    }
    trsm(
        Side::Left,
        Uplo::Lower,
        Trans::No,
        false,
        T::ONE,
        l1.rf(),
        work.mt(),
    )?;
    // Row scaling by Σ.
    for i in 0..m {
        if sigma.sign(i) < 0 {
            for j in 0..n {
                work[(i, j)] = -work[(i, j)];
            }
        }
    }
    // Upper half: all blocks. Lower half: blocks 1..p (first block zero).
    data.sub_mut(0, 0, m, n).copy_from(work.rf());
    if p > 1 {
        data.sub_mut(m, m, m, n - m)
            .copy_from(work.sub(0, m, m, n - m));
    }

    let w = sigma.extend_negated(&sigma);
    Ok(Generator {
        data,
        sigma,
        w,
        m,
        p,
    })
}

/// Reconstruct the displacement `Genᵀ W Gen` (test / verification
/// utility — O(n²·m)).
pub fn displacement_from_generator<T: Scalar>(g: &Generator<T>) -> Matrix<T> {
    let n = g.m * g.p;
    // W * Gen: flip rows with negative signature.
    let mut wg = g.data.clone();
    for i in 0..2 * g.m {
        if g.w.sign(i) < 0 {
            for j in 0..n {
                wg[(i, j)] = -wg[(i, j)];
            }
        }
    }
    let mut out = Matrix::zeros(n, n);
    bs_matrix::blas3::gemm(
        T::ONE,
        g.data.rf(),
        Trans::Yes,
        wg.rf(),
        Trans::No,
        T::ZERO,
        out.mt(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::displacement::displacement_dense;
    use crate::workloads;

    #[test]
    fn spd_generator_matches_eq9() {
        let t = workloads::random_spd_block(3, 4, 11);
        let g = build_generator(&t).unwrap();
        assert!(g.is_spd_signature());
        let m = 3;
        // T₁ must be upper triangular (it equals L₁ᵀ).
        for j in 0..m {
            for i in j + 1..m {
                assert!(
                    g.data[(i, j)].abs() < 1e-12,
                    "T1 not upper triangular at ({i},{j})"
                );
            }
        }
        // Lower half starts with a zero block.
        for i in m..2 * m {
            for j in 0..m {
                assert_eq!(g.data[(i, j)], 0.0);
            }
        }
        // Rows m.. must replicate rows 0.. for block columns >= 1.
        let n = t.order();
        for i in 0..m {
            for j in m..n {
                assert!((g.data[(i, j)] - g.data[(m + i, j)]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn generator_factors_displacement_spd() {
        for (m, p) in [(1usize, 6usize), (2, 4), (3, 3)] {
            let t = workloads::random_spd_block(m, p, 5 * m as u64 + p as u64);
            let g = build_generator(&t).unwrap();
            let lhs = displacement_dense(&t);
            let rhs = displacement_from_generator(&g);
            assert!(
                lhs.max_abs_diff(&rhs) < 1e-10 * t.norm_inf().max(1.0),
                "m={m} p={p}: {}",
                lhs.max_abs_diff(&rhs)
            );
        }
    }

    #[test]
    fn generator_factors_displacement_indefinite_block() {
        // Indefinite leading block with nonsingular minors.
        let t = workloads::random_indefinite_block(2, 4, 99);
        let g = build_generator(&t).unwrap();
        assert!(!g.is_spd_signature() || g.sigma.negatives() == 0);
        let lhs = displacement_dense(&t);
        let rhs = displacement_from_generator(&g);
        assert!(
            lhs.max_abs_diff(&rhs) < 1e-9 * t.norm_inf().max(1.0),
            "{}",
            lhs.max_abs_diff(&rhs)
        );
    }

    #[test]
    fn scalar_generator_values() {
        // For a scalar SPD Toeplitz with first row (t0, t1, t2):
        // L1 = sqrt(t0); generator rows are row/sqrt(t0).
        let t = SymBlockToeplitz::from_scalar_row(&[4.0, 2.0, 1.0]);
        let g = build_generator(&t).unwrap();
        assert_eq!(g.m, 1);
        assert_eq!(g.p, 3);
        assert!((g.data[(0, 0)] - 2.0).abs() < 1e-15);
        assert!((g.data[(0, 1)] - 1.0).abs() < 1e-15);
        assert!((g.data[(0, 2)] - 0.5).abs() < 1e-15);
        assert_eq!(g.data[(1, 0)], 0.0);
        assert!((g.data[(1, 1)] - 1.0).abs() < 1e-15);
        assert!((g.data[(1, 2)] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn singular_leading_block_is_reported() {
        let t1 = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let t2 = Matrix::from_rows(&[&[0.1, 0.0], &[0.0, 0.1]]);
        let t = SymBlockToeplitz::new(vec![t1, t2]);
        assert!(build_generator(&t).is_err());
    }
}
