//! Minimal radix-2 FFT and circulant convolution.
//!
//! Self-contained (no external FFT crate) support for the
//! O(n log n) Toeplitz matrix-vector product in [`crate::fast`].
//! Split-complex layout: separate `re`/`im` slices, iterative
//! Cooley–Tukey with bit-reversal, inverse via conjugation.

use bs_matrix::flops;

/// Smallest power of two `≥ n`.
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// In-place forward FFT of length `re.len() == im.len()` (must be a
/// power of two).
pub fn fft(re: &mut [f64], im: &mut [f64]) {
    fft_dir(re, im, false);
}

/// In-place inverse FFT (includes the 1/N scaling).
pub fn ifft(re: &mut [f64], im: &mut [f64]) {
    fft_dir(re, im, true);
    let n = re.len() as f64;
    for v in re.iter_mut() {
        *v /= n;
    }
    for v in im.iter_mut() {
        *v /= n;
    }
    flops::add(2 * re.len() as u64);
}

fn fft_dir(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    assert_eq!(n, im.len());
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ur, ui) = (re[i + k], im[i + k]);
                let (vr0, vi0) = (re[i + k + len / 2], im[i + k + len / 2]);
                let vr = vr0 * cr - vi0 * ci;
                let vi = vr0 * ci + vi0 * cr;
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + len / 2] = ur - vr;
                im[i + k + len / 2] = ui - vi;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
            i += len;
        }
        len <<= 1;
    }
    // n/2 butterflies per stage, ~10 flops each (incl. twiddle update).
    flops::add(5 * (n as u64) * (n.trailing_zeros() as u64).max(1));
}

/// A circulant operator `C x` where `C`'s first column is `col`,
/// applied through the FFT: `C x = ifft(fft(col) ∘ fft(x))`.
/// The symbol FFT is precomputed at construction.
#[derive(Clone, Debug)]
pub struct Circulant {
    /// FFT of the first column.
    sym_re: Vec<f64>,
    sym_im: Vec<f64>,
}

impl Circulant {
    /// Build from the first column (length must be a power of two).
    pub fn new(col: &[f64]) -> Self {
        let mut sym_re = col.to_vec();
        let mut sym_im = vec![0.0; col.len()];
        fft(&mut sym_re, &mut sym_im);
        Circulant { sym_re, sym_im }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.sym_re.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sym_re.is_empty()
    }

    /// Pointwise multiply an already-transformed vector by the symbol,
    /// accumulating into `(acc_re, acc_im)`.
    pub fn mul_accumulate(
        &self,
        x_re: &[f64],
        x_im: &[f64],
        acc_re: &mut [f64],
        acc_im: &mut [f64],
    ) {
        let n = self.len();
        assert_eq!(x_re.len(), n);
        for i in 0..n {
            acc_re[i] += self.sym_re[i] * x_re[i] - self.sym_im[i] * x_im[i];
            acc_im[i] += self.sym_re[i] * x_im[i] + self.sym_im[i] * x_re[i];
        }
        flops::add(8 * n as u64);
    }

    /// Full product `C x` for a real input (test convenience).
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let n = self.len();
        assert_eq!(x.len(), n);
        let mut xr = x.to_vec();
        let mut xi = vec![0.0; n];
        fft(&mut xr, &mut xi);
        let mut ar = vec![0.0; n];
        let mut ai = vec![0.0; n];
        self.mul_accumulate(&xr, &xi, &mut ar, &mut ai);
        ifft(&mut ar, &mut ai);
        ar
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut re = vec![1.0, 0.0, 0.0, 0.0];
        let mut im = vec![0.0; 4];
        fft(&mut re, &mut im);
        for i in 0..4 {
            assert!((re[i] - 1.0).abs() < 1e-14);
            assert!(im[i].abs() < 1e-14);
        }
    }

    #[test]
    fn fft_round_trips() {
        let n = 64;
        let orig: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut re = orig.clone();
        let mut im = vec![0.0; n];
        fft(&mut re, &mut im);
        ifft(&mut re, &mut im);
        for i in 0..n {
            assert!((re[i] - orig[i]).abs() < 1e-12, "i={i}");
            assert!(im[i].abs() < 1e-12);
        }
    }

    #[test]
    fn fft_matches_dft_definition() {
        let n = 8;
        let x: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let mut re = x.clone();
        let mut im = vec![0.0; n];
        fft(&mut re, &mut im);
        for k in 0..n {
            let mut sr = 0.0;
            let mut si = 0.0;
            for (j, &v) in x.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                sr += v * ang.cos();
                si += v * ang.sin();
            }
            assert!((re[k] - sr).abs() < 1e-10, "k={k}");
            assert!((im[k] - si).abs() < 1e-10, "k={k}");
        }
    }

    #[test]
    fn circulant_matches_explicit_matrix() {
        let col = [1.0, 2.0, 0.0, -1.0];
        let c = Circulant::new(&col);
        let x = [1.0, 0.5, -0.25, 2.0];
        let y = c.apply(&x);
        // Explicit circulant: C[i][j] = col[(i - j) mod 4].
        for i in 0..4 {
            let mut want = 0.0;
            for j in 0..4 {
                want += col[(i + 4 - j) % 4] * x[j];
            }
            assert!((y[i] - want).abs() < 1e-12, "i={i}: {} vs {want}", y[i]);
        }
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(64), 64);
        assert_eq!(next_pow2(65), 128);
    }
}
