//! Stable 64-bit fingerprints of Toeplitz generators.
//!
//! The operator cache in `bs-serve` keys factorizations by the *value*
//! of the generator: two requests carrying the same first block row
//! (same `m`, `p`, scalar width, and bit-identical entries) must map to
//! the same key on every run, process, and platform, while distinct
//! generators should essentially never collide. FNV-1a over the
//! canonical byte encoding gives exactly that: deterministic (no
//! per-process seed, unlike `std`'s `RandomState`), cheap (one pass
//! over `2m²p` entries — noise next to the O(mn²) factorization a miss
//! triggers), and 64 bits wide, so a cache holding even thousands of
//! hot operators has a collision probability around 10⁻¹².
//!
//! Entries are hashed by their `f64` bit pattern (`to_bits`), so `0.0`
//! and `-0.0` fingerprint differently — as they must: they are
//! different generators even though they compare equal.

use crate::block_toeplitz::SymBlockToeplitz;
use bs_matrix::Scalar;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Domain-separation tag so a generator fingerprint can never collide
/// with a hash of the same bytes produced by some other subsystem.
const GENERATOR_TAG: &[u8] = b"bs-toeplitz/generator/v1";

/// Incremental FNV-1a 64 hasher over byte chunks.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorb a byte chunk.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Absorb a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Scalar> SymBlockToeplitz<T> {
    /// Stable 64-bit fingerprint of this operator: a deterministic hash
    /// of `(m, p, scalar width, every block entry's bit pattern)`.
    /// Equal fingerprints identify bit-identical generators of the same
    /// shape and precision — the operator-cache key in `bs-serve`.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write(GENERATOR_TAG);
        h.write_u64(self.block_size() as u64);
        h.write_u64(self.num_blocks() as u64);
        h.write_u64(std::mem::size_of::<T>() as u64);
        for blk in self.first_block_row() {
            for j in 0..blk.cols() {
                for &v in blk.col(j) {
                    h.write_u64(v.to_f64().to_bits());
                }
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn fingerprint_is_stable_across_clones_and_calls() {
        let t = workloads::random_spd_block(2, 8, 5);
        let fp = t.fingerprint();
        assert_eq!(fp, t.fingerprint());
        assert_eq!(fp, t.clone().fingerprint());
    }

    #[test]
    fn distinct_generators_get_distinct_keys() {
        // Collision-resistance smoke: a spread of shapes, seeds, and
        // single-entry tweaks must all produce unique fingerprints.
        let mut fps = std::collections::HashSet::new();
        for seed in 0..50 {
            assert!(fps.insert(workloads::random_spd_scalar(16, seed).fingerprint()));
            assert!(fps.insert(workloads::random_spd_block(2, 8, seed).fingerprint()));
            assert!(fps.insert(workloads::kms(32, 0.3 + 0.01 * seed as f64).fingerprint()));
        }
        // A one-ulp change in one entry changes the key.
        let base = workloads::kms(16, 0.5);
        let mut row = base.first_block_row().to_vec();
        row[3][(0, 0)] = f64::from_bits(row[3][(0, 0)].to_bits() ^ 1);
        let tweaked = SymBlockToeplitz::new(row);
        assert_ne!(base.fingerprint(), tweaked.fingerprint());
    }

    #[test]
    fn shape_is_part_of_the_key() {
        // Same backing numbers, different (m, p) tiling must not
        // collide: m/p are hashed ahead of the entries.
        let t = workloads::random_spd_block(2, 8, 9);
        let retiled = t.retile(4);
        assert_ne!(t.fingerprint(), retiled.fingerprint());
    }

    #[test]
    fn signed_zero_and_precision_are_distinguished() {
        let a = SymBlockToeplitz::from_scalar_row(&[1.0, 0.0]);
        let b = SymBlockToeplitz::from_scalar_row(&[1.0, -0.0]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        let c = workloads::kms(8, 0.5);
        let c32 = c.convert::<f32>();
        assert_ne!(c.fingerprint(), c32.fingerprint());
    }
}
