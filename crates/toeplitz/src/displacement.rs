//! Displacement structure `∇T = T − ZᵀTZ` (eq. 4 of the paper).
//!
//! The whole Schur approach rests on the displacement of a block
//! Toeplitz matrix having rank at most `2m`: the generator is nothing
//! but a factorization of `∇T` through the signature `W` (eq. 10). This
//! module computes `∇T` explicitly and checks its rank numerically —
//! used by tests and by the quickstart example to *show* the structure.

use crate::block_toeplitz::SymBlockToeplitz;
use bs_matrix::Matrix;

/// Dense displacement `T − ZᵀTZ` where `Z` is the block right-shift
/// (eq. 3). `ZᵀTZ` shifts `T` down-right by one block, so the
/// displacement is `T` with its trailing principal submatrix cancelled.
pub fn displacement_dense(t: &SymBlockToeplitz) -> Matrix {
    let n = t.order();
    let m = t.block_size();
    let dense = t.to_dense();
    Matrix::from_fn(n, n, |i, j| {
        let shifted = if i >= m && j >= m {
            dense[(i - m, j - m)]
        } else {
            0.0
        };
        dense[(i, j)] - shifted
    })
}

/// Numerical rank of a dense matrix by Householder QR with column
/// pivoting would be overkill here; the displacement has the explicit
/// bordered form of eq. 4, so rank ≤ 2m always. We estimate the rank by
/// counting singular values above `tol·σ₁` using a few rounds of
/// subspace iteration (enough for the small matrices in tests).
pub fn numerical_rank(a: &Matrix, tol: f64) -> usize {
    let n = a.rows().min(a.cols());
    if n == 0 {
        return 0;
    }
    // Deflation by repeated power iteration on AᵀA: adequate for test
    // sizes. Estimate up to `n` singular values.
    let mut rank = 0;
    let mut work = a.clone();
    let sigma1 = bs_matrix::norms::mat_two_estimate(&work, 40);
    if sigma1 == 0.0 {
        return 0;
    }
    loop {
        let s = bs_matrix::norms::mat_two_estimate(&work, 60);
        if s <= tol * sigma1 || rank == n {
            break;
        }
        rank += 1;
        // Deflate: subtract the dominant rank-1 component σ u vᵀ.
        let (u, v, s) = dominant_triplet(&work, 60);
        for j in 0..work.cols() {
            for i in 0..work.rows() {
                work[(i, j)] -= s * u[i] * v[j];
            }
        }
    }
    rank
}

/// Dominant singular triplet by alternating power iteration.
fn dominant_triplet(a: &Matrix, iters: usize) -> (Vec<f64>, Vec<f64>, f64) {
    let (m, n) = (a.rows(), a.cols());
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (0.3 * i as f64).cos()).collect();
    let mut u = vec![0.0; m];
    let mut s = 0.0;
    for _ in 0..iters {
        bs_matrix::blas2::gemv(1.0, a.rf(), &v, 0.0, &mut u);
        let un = bs_matrix::norms::vec_two(&u);
        if un == 0.0 {
            return (u, v, 0.0);
        }
        for x in u.iter_mut() {
            *x /= un;
        }
        bs_matrix::blas2::gemv_t(1.0, a.rf(), &u, 0.0, &mut v);
        s = bs_matrix::norms::vec_two(&v);
        if s == 0.0 {
            return (u, v, 0.0);
        }
        for x in v.iter_mut() {
            *x /= s;
        }
    }
    (u, v, s)
}

/// Displacement rank of a symmetric block Toeplitz matrix: the paper's
/// bound is `rank(∇T) ≤ 2m` (§2), with equality in the generic case.
pub fn displacement_rank(t: &SymBlockToeplitz, tol: f64) -> usize {
    numerical_rank(&displacement_dense(t), tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn displacement_has_bordered_shape() {
        let t = workloads::random_spd_block(2, 4, 42);
        let d = displacement_dense(&t);
        let m = 2;
        // Outside the first block row/column the displacement vanishes.
        for i in m..t.order() {
            for j in m..t.order() {
                assert!(d[(i, j)].abs() < 1e-13, "({i},{j}) = {}", d[(i, j)]);
            }
        }
        // First block row reproduces T's first block row.
        for i in 0..m {
            for j in 0..t.order() {
                assert!((d[(i, j)] - t.get(i, j)).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn displacement_rank_at_most_2m() {
        for (m, p) in [(1usize, 8usize), (2, 5), (3, 4)] {
            let t = workloads::random_spd_block(m, p, 7 + m as u64);
            let r = displacement_rank(&t, 1e-9);
            assert!(r <= 2 * m, "m={m}: displacement rank {r} > 2m");
            // Generic matrices achieve the bound.
            assert!(
                r >= 2 * m - 1,
                "m={m}: displacement rank {r} suspiciously low"
            );
        }
    }

    #[test]
    fn rank_of_identity_displacement() {
        // For T = I (scalar), displacement = diag(1, 0, ..., 0): rank 1.
        let t = SymBlockToeplitz::from_scalar_row(&[1.0, 0.0, 0.0, 0.0]);
        assert_eq!(displacement_rank(&t, 1e-10), 1);
    }

    #[test]
    fn numerical_rank_basics() {
        let z = Matrix::zeros(4, 4);
        assert_eq!(numerical_rank(&z, 1e-10), 0);
        let i = Matrix::identity(3);
        assert_eq!(numerical_rank(&i, 1e-10), 3);
        let r1 = Matrix::from_fn(4, 4, |i, j| ((i + 1) * (j + 1)) as f64);
        assert_eq!(numerical_rank(&r1, 1e-8), 1);
    }
}
