#![allow(clippy::needless_range_loop)]
// index-heavy numeric kernels read
// clearer with explicit indices when several parallel arrays are walked
// together; iterator-zip rewrites were measured to obscure, not improve.

//! Symmetric (block) Toeplitz matrices and their displacement structure.
//!
//! This crate holds everything about the *input* of the block Schur
//! algorithm: the compact representation of a symmetric block Toeplitz
//! matrix by its first block row (eq. 2 of the paper), fast
//! matrix-vector products in that representation (needed by iterative
//! refinement, §8.1), the displacement `T − ZᵀTZ` of rank ≤ 2m (eq. 4),
//! construction of the `2m × n` generator (eqs. 9-11), the block-size
//! retiling `m → m_s` of §6.5, and synthetic workload generators for the
//! experiments.

pub mod block_toeplitz;
pub mod displacement;
pub mod fast;
pub mod fft;
pub mod fingerprint;
pub mod generator;
pub mod inverse;
pub mod rng;
pub mod workloads;

pub use block_toeplitz::SymBlockToeplitz;
pub use fast::FastToeplitzMatVec;
pub use fingerprint::Fnv1a;
pub use generator::{build_generator, Generator};
pub use inverse::ToeplitzInverse;
