//! Small deterministic PRNG for synthetic workloads.
//!
//! The workloads only need reproducible, well-mixed uniform draws — not
//! cryptographic quality — so a SplitMix64 generator (Steele et al.,
//! "Fast splittable pseudorandom number generators") is plenty and
//! keeps the crate dependency-free. Same seed, same sequence, on every
//! platform.

/// SplitMix64 pseudorandom number generator.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeded constructor; the full 64-bit seed space is usable.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)` (degenerate ranges return `lo`).
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_respects_bounds_and_mixes() {
        let mut r = Rng::seed_from_u64(123);
        let mut lo_half = 0usize;
        for _ in 0..1000 {
            let v = r.range(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&v));
            if v < 0.0 {
                lo_half += 1;
            }
        }
        // Crude uniformity check: both halves well represented.
        assert!((300..700).contains(&lo_half), "lo_half = {lo_half}");
    }

    #[test]
    fn degenerate_range_returns_lo() {
        let mut r = Rng::seed_from_u64(1);
        assert_eq!(r.range(3.0, 3.0), 3.0);
    }
}
