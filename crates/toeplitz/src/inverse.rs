//! Gohberg–Semencul representation of the inverse of a symmetric
//! Toeplitz matrix.
//!
//! The displacement theory underlying the Schur algorithm (the paper's
//! ref \[8\], Kailath–Kung–Morf) also states that `T⁻¹` has displacement
//! rank ≤ 2: for a symmetric nonsingular Toeplitz `T` with
//! `u = T⁻¹ e₀` and `u₀ ≠ 0`,
//!
//! ```text
//! T⁻¹ = (1/u₀) · ( L(u) L(u)ᵀ − L(z) L(z)ᵀ ),
//! z = (0, u_{n−1}, u_{n−2}, …, u₁)ᵀ,
//! ```
//!
//! where `L(v)` is the lower triangular Toeplitz matrix with first
//! column `v`. All four factors are triangular Toeplitz, so `T⁻¹ b`
//! costs four FFT convolutions — `O(n log n)` per solve after one
//! `O(n²)`-ish factorization to obtain `u`.
//!
//! `u` itself comes from any solver (`bs-core`'s Schur factorization,
//! Levinson, …); this module only needs the vector, keeping the crate
//! graph acyclic.

use crate::fft::{fft, ifft, next_pow2};

/// Fast `T⁻¹·x` operator built from the first column of the inverse.
#[derive(Clone, Debug)]
#[must_use]
pub struct ToeplitzInverse {
    n: usize,
    len: usize,
    inv_u0: f64,
    /// FFT of the circulant embedding of `L(u)` (first column u, padded).
    lu_re: Vec<f64>,
    lu_im: Vec<f64>,
    /// FFT of the embedding of `L(u)ᵀ` (c[0] = u0, c[L−k] = u_k).
    lut_re: Vec<f64>,
    lut_im: Vec<f64>,
    /// Same pair for `z`.
    lz_re: Vec<f64>,
    lz_im: Vec<f64>,
    lzt_re: Vec<f64>,
    lzt_im: Vec<f64>,
}

fn embed_lower(v: &[f64], len: usize) -> (Vec<f64>, Vec<f64>) {
    let mut re = vec![0.0; len];
    re[..v.len()].copy_from_slice(v);
    let mut im = vec![0.0; len];
    fft(&mut re, &mut im);
    (re, im)
}

fn embed_lower_transpose(v: &[f64], len: usize) -> (Vec<f64>, Vec<f64>) {
    let mut re = vec![0.0; len];
    re[0] = v[0];
    for (k, &vk) in v.iter().enumerate().skip(1) {
        re[len - k] = vk;
    }
    let mut im = vec![0.0; len];
    fft(&mut re, &mut im);
    (re, im)
}

impl ToeplitzInverse {
    /// Build from the first column `u = T⁻¹ e₀` of the inverse.
    /// Returns `None` when `u₀ = 0` (the representation does not exist;
    /// equivalent to the (n−1)-st leading minor being singular).
    pub fn from_first_column(u: &[f64]) -> Option<Self> {
        let n = u.len();
        assert!(n > 0);
        if u[0] == 0.0 || !u[0].is_finite() {
            return None;
        }
        let len = next_pow2(2 * n.max(1));
        // z = (0, u_{n−1}, …, u₁).
        let mut z = vec![0.0; n];
        for k in 1..n {
            z[k] = u[n - k];
        }
        let (lu_re, lu_im) = embed_lower(u, len);
        let (lut_re, lut_im) = embed_lower_transpose(u, len);
        let (lz_re, lz_im) = embed_lower(&z, len);
        let (lzt_re, lzt_im) = embed_lower_transpose(&z, len);
        Some(ToeplitzInverse {
            n,
            len,
            inv_u0: 1.0 / u[0],
            lu_re,
            lu_im,
            lut_re,
            lut_im,
            lz_re,
            lz_im,
            lzt_re,
            lzt_im,
        })
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// One circulant product: `y = C x` with `C` given in the frequency
    /// domain; input/output truncated to `n`.
    fn circ_apply(&self, sym_re: &[f64], sym_im: &[f64], x: &[f64]) -> Vec<f64> {
        let len = self.len;
        let mut re = vec![0.0; len];
        re[..x.len()].copy_from_slice(x);
        let mut im = vec![0.0; len];
        fft(&mut re, &mut im);
        for i in 0..len {
            let (a, b) = (re[i], im[i]);
            re[i] = sym_re[i] * a - sym_im[i] * b;
            im[i] = sym_re[i] * b + sym_im[i] * a;
        }
        bs_matrix::flops::add(6 * len as u64);
        ifft(&mut re, &mut im);
        re.truncate(self.n);
        re
    }

    /// `y = T⁻¹ x` in `O(n log n)`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        // a = L(u)ᵀ x ; y1 = L(u) a.
        let a = self.circ_apply(&self.lut_re, &self.lut_im, x);
        let y1 = self.circ_apply(&self.lu_re, &self.lu_im, &a);
        // b = L(z)ᵀ x ; y2 = L(z) b.
        let b = self.circ_apply(&self.lzt_re, &self.lzt_im, x);
        let y2 = self.circ_apply(&self.lz_re, &self.lz_im, &b);
        let mut y = Vec::with_capacity(self.n);
        for i in 0..self.n {
            y.push(self.inv_u0 * (y1[i] - y2[i]));
        }
        bs_matrix::flops::add(2 * self.n as u64);
        y
    }

    /// Materialize the dense inverse (test utility, O(n² log n)).
    pub fn to_dense(&self) -> bs_matrix::Matrix {
        let n = self.n;
        let mut out = bs_matrix::Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e.fill(0.0);
            e[j] = 1.0;
            let col = self.apply(&e);
            out.col_mut(j).copy_from_slice(&col);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    /// Reference u = T⁻¹e₀ via dense LU.
    fn first_inverse_column(t: &crate::SymBlockToeplitz) -> Vec<f64> {
        let n = t.order();
        let mut e0 = vec![0.0; n];
        e0[0] = 1.0;
        bs_matrix::lu::lu_factor(&t.to_dense())
            .unwrap()
            .solve(&e0)
            .unwrap()
    }

    #[test]
    fn two_by_two_hand_check() {
        // T = [[2,1],[1,2]]: u = (2/3, −1/3).
        let inv = ToeplitzInverse::from_first_column(&[2.0 / 3.0, -1.0 / 3.0]).unwrap();
        let d = inv.to_dense();
        assert!((d[(0, 0)] - 2.0 / 3.0).abs() < 1e-12);
        assert!((d[(0, 1)] + 1.0 / 3.0).abs() < 1e-12);
        assert!((d[(1, 1)] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_t_is_identity_spd() {
        for n in [1usize, 2, 5, 16, 33] {
            let t = workloads::random_spd_scalar(n, n as u64 + 7);
            let u = first_inverse_column(&t);
            let inv = ToeplitzInverse::from_first_column(&u).unwrap();
            // T⁻¹ (T x) must recover x.
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).cos()).collect();
            let tx = t.matvec(&x);
            let back = inv.apply(&tx);
            for i in 0..n {
                assert!((back[i] - x[i]).abs() < 1e-9, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn works_on_indefinite_nonsingular_matrices() {
        let t = workloads::random_indefinite_scalar(24, 5);
        let u = first_inverse_column(&t);
        let inv = ToeplitzInverse::from_first_column(&u).unwrap();
        let (b, x_true) = workloads::rhs_for_ones(&t);
        let x = inv.apply(&b);
        for i in 0..24 {
            assert!((x[i] - x_true[i]).abs() < 1e-8, "i={i}");
        }
    }

    #[test]
    fn degenerate_u0_is_rejected() {
        assert!(ToeplitzInverse::from_first_column(&[0.0, 1.0]).is_none());
        assert!(ToeplitzInverse::from_first_column(&[f64::NAN, 1.0]).is_none());
    }

    #[test]
    fn apply_cost_is_subquadratic() {
        // The flop count of `apply` depends only on n, not on the
        // matrix, so measure with a synthetic first column.
        let n = 4096;
        let u: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let inv = ToeplitzInverse::from_first_column(&u).unwrap();
        let x = vec![1.0; n];
        bs_matrix::flops::reset();
        let _ = inv.apply(&x);
        let fast = bs_matrix::flops::get();
        // A dense T⁻¹x matvec would be 2n² = 33.5M flops; the GS apply
        // must be far below.
        assert!(
            (fast as f64) < 0.25 * 2.0 * (n * n) as f64,
            "GS apply took {fast} flops"
        );
    }
}
