//! O(n log n) block Toeplitz matrix-vector products by circulant
//! embedding.
//!
//! The direct [`SymBlockToeplitz::matvec`](crate::SymBlockToeplitz::matvec)
//! costs `2n²` flops. For repeated products (iterative refinement on
//! large systems, CG) the block Toeplitz operator decomposes into `m²`
//! scalar Toeplitz operators over the block index — component `(a, b)`
//! of the product is the scalar Toeplitz matvec with symbol
//! `s_ab(d) = Γ(d)[a,b]` (`d ≥ 0`), `s_ab(−d) = Γ(d)[b,a]` — each of
//! which embeds in a circulant of length `L = 2^⌈log₂(2p−1)⌉` and
//! applies via three FFTs. [`FastToeplitzMatVec`] precomputes the `m²`
//! symbol FFTs once, so one product costs `2m` FFTs plus `m²`
//! pointwise multiplies: `O(m² p log p + m² p)` versus `O(m² p²)`.

use crate::block_toeplitz::SymBlockToeplitz;
use crate::fft::{fft, ifft, next_pow2, Circulant};

/// Precomputed fast multiplier for a symmetric block Toeplitz matrix.
///
/// ```
/// use bs_toeplitz::{workloads, FastToeplitzMatVec};
///
/// let t = workloads::kms(100, 0.9);
/// let fast = FastToeplitzMatVec::new(&t);
/// let x = vec![1.0; 100];
/// let y_fft = fast.apply(&x);
/// let y_direct = t.matvec(&x);
/// assert!((y_fft[50] - y_direct[50]).abs() < 1e-11);
/// ```
#[derive(Clone, Debug)]
pub struct FastToeplitzMatVec {
    m: usize,
    p: usize,
    len: usize,
    /// `symbols[a * m + b]`: circulant symbol of component `(a, b)`.
    symbols: Vec<Circulant>,
}

impl FastToeplitzMatVec {
    /// Precompute the symbol FFTs (O(m² p log p)).
    pub fn new(t: &SymBlockToeplitz) -> Self {
        let m = t.block_size();
        let p = t.num_blocks();
        let len = next_pow2((2 * p).saturating_sub(1)).max(1);
        let blocks = t.first_block_row();
        let mut symbols = Vec::with_capacity(m * m);
        let mut col = vec![0.0f64; len];
        for a in 0..m {
            for b in 0..m {
                // y_i = Σ_j s(j−i) x_j  ⇔  circulant first column
                // c[d] = s(−d):  c[0] = s(0), c[k] = s(−k) = Γ(k)[b,a],
                // c[L−k] = s(k) = Γ(k)[a,b]  (k = 1..p−1).
                col.fill(0.0);
                col[0] = blocks[0][(a, b)];
                for k in 1..p {
                    col[k] = blocks[k][(b, a)];
                    col[len - k] = blocks[k][(a, b)];
                }
                symbols.push(Circulant::new(&col));
            }
        }
        FastToeplitzMatVec { m, p, len, symbols }
    }

    /// Matrix order `n = m·p`.
    pub fn order(&self) -> usize {
        self.m * self.p
    }

    /// `y = T·x` in O(m² p log p).
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let (m, p, len) = (self.m, self.p, self.len);
        assert_eq!(x.len(), m * p);
        // Forward-transform the m component vectors of x.
        let mut xr = vec![vec![0.0f64; len]; m];
        let mut xi = vec![vec![0.0f64; len]; m];
        for b in 0..m {
            for j in 0..p {
                xr[b][j] = x[j * m + b];
            }
            fft(&mut xr[b], &mut xi[b]);
        }
        // Accumulate each output component in the frequency domain.
        let mut y = vec![0.0f64; m * p];
        let mut ar = vec![0.0f64; len];
        let mut ai = vec![0.0f64; len];
        for a in 0..m {
            ar.fill(0.0);
            ai.fill(0.0);
            for b in 0..m {
                self.symbols[a * m + b].mul_accumulate(&xr[b], &xi[b], &mut ar, &mut ai);
            }
            ifft(&mut ar, &mut ai);
            for i in 0..p {
                y[i * m + a] = ar[i];
            }
        }
        y
    }

    /// Residual `r = b − T·x` through the fast product.
    pub fn residual(&self, x: &[f64], b: &[f64]) -> Vec<f64> {
        let mut r = self.apply(x);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        bs_matrix::flops::add(r.len() as u64);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    fn check(t: &SymBlockToeplitz, tol: f64) {
        let n = t.order();
        let x: Vec<f64> = (0..n).map(|i| ((i * 31 % 17) as f64) / 5.0 - 1.5).collect();
        let fast = FastToeplitzMatVec::new(t);
        let got = fast.apply(&x);
        let want = t.matvec(&x);
        for i in 0..n {
            assert!(
                (got[i] - want[i]).abs() < tol,
                "i={i}: {} vs {}",
                got[i],
                want[i]
            );
        }
    }

    #[test]
    fn matches_direct_matvec_scalar() {
        for p in [1usize, 2, 3, 5, 17, 64, 100] {
            check(&workloads::random_spd_scalar(p, p as u64), 1e-11);
        }
    }

    #[test]
    fn matches_direct_matvec_block() {
        for (m, p) in [(2usize, 9usize), (3, 8), (4, 16), (5, 3)] {
            check(&workloads::random_spd_block(m, p, (m + p) as u64), 1e-11);
        }
    }

    #[test]
    fn matches_on_indefinite_matrices() {
        check(&workloads::random_indefinite_scalar(33, 3), 1e-11);
        check(&workloads::random_indefinite_block(2, 11, 4), 1e-11);
    }

    #[test]
    fn residual_agrees_with_direct() {
        let t = workloads::random_spd_block(3, 20, 9);
        let n = t.order();
        let x = vec![0.7; n];
        let b = vec![1.3; n];
        let fast = FastToeplitzMatVec::new(&t);
        let r_fast = fast.residual(&x, &b);
        let r_dir = t.residual(&x, &b);
        for i in 0..n {
            assert!((r_fast[i] - r_dir[i]).abs() < 1e-11);
        }
    }

    #[test]
    fn flop_savings_are_real_for_large_p() {
        let t = workloads::random_spd_scalar(2048, 1);
        let x = vec![1.0; 2048];
        bs_matrix::flops::reset();
        let _ = t.matvec(&x);
        let direct = bs_matrix::flops::get();
        let fast = FastToeplitzMatVec::new(&t);
        bs_matrix::flops::reset();
        let _ = fast.apply(&x);
        let fft_flops = bs_matrix::flops::get();
        assert!(
            fft_flops * 4 < direct,
            "fft {fft_flops} should be well below direct {direct}"
        );
    }
}
