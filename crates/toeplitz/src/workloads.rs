//! Synthetic workloads for the experiments.
//!
//! The paper evaluates on generic SPD (block) Toeplitz matrices (Cray
//! figures 6-10) and on indefinite Toeplitz matrices with singular
//! principal minors (§8.2). None of its inputs are data-dependent, so
//! every workload here is synthetic by construction:
//!
//! - SPD *block* Toeplitz matrices arise as covariance sequences of
//!   stationary vector AR(1) processes — positive definite by
//!   construction, with decaying off-diagonal blocks like real
//!   multichannel signal covariances.
//! - SPD *scalar* Toeplitz matrices: Kac–Murdock–Szegő (`t_k = ρᵏ`) and
//!   diagonally dominant random rows.
//! - Indefinite and singular-minor matrices, including the exact 6×6
//!   example of §8.2.

use crate::block_toeplitz::SymBlockToeplitz;
use crate::rng::Rng;
use bs_matrix::blas3::{gemm, Trans};
use bs_matrix::Matrix;

fn random_matrix(rng: &mut Rng, rows: usize, cols: usize, scale: f64) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.range(-scale, scale))
}

/// Covariance block sequence of a stationary vector AR(1) process
/// `x_{k+1} = A x_k + w_k`, `w ~ N(0, Q)`:
/// `Γ(0) = P` solving `P = A P Aᵀ + Q`, `Γ(d) = A^d P`.
///
/// The resulting block Toeplitz matrix (any order `p`) is the covariance
/// of the stacked process and therefore symmetric positive definite.
pub fn spd_ar1_block(m: usize, p: usize, spectral_radius: f64, seed: u64) -> SymBlockToeplitz {
    assert!(m > 0 && p > 0);
    assert!(
        (0.0..1.0).contains(&spectral_radius),
        "need spectral radius < 1 for stationarity"
    );
    let mut rng = Rng::seed_from_u64(seed);
    // Random A scaled to the requested spectral radius (estimated via
    // power iteration on AᵀA as an upper bound on |λ|max).
    let mut a = random_matrix(&mut rng, m, m, 1.0);
    let s = bs_matrix::norms::mat_two_estimate(&a, 50).max(1e-12);
    a.scale(spectral_radius / s);
    // Q = B Bᵀ + 0.1 I (SPD).
    let b = random_matrix(&mut rng, m, m, 1.0);
    let mut q = Matrix::identity(m);
    q.scale(0.1);
    let mut bbt = Matrix::zeros(m, m);
    gemm(1.0, b.rf(), Trans::No, b.rf(), Trans::Yes, 0.0, bbt.mt());
    q.axpy(1.0, &bbt);
    q.symmetrize();
    // Solve the Lyapunov equation P = A P Aᵀ + Q by fixed point: the
    // iteration contracts at rate `spectral_radius²`.
    let mut pmat = q.clone();
    let mut tmp = Matrix::zeros(m, m);
    let mut next = Matrix::zeros(m, m);
    for _ in 0..2000 {
        gemm(1.0, a.rf(), Trans::No, pmat.rf(), Trans::No, 0.0, tmp.mt());
        gemm(1.0, tmp.rf(), Trans::No, a.rf(), Trans::Yes, 0.0, next.mt());
        next.axpy(1.0, &q);
        next.symmetrize();
        let diff = next.max_abs_diff(&pmat);
        std::mem::swap(&mut pmat, &mut next);
        if diff < 1e-15 {
            break;
        }
    }
    // Blocks: Γ(d) = A^d P.
    let mut blocks = Vec::with_capacity(p);
    blocks.push(pmat.clone());
    let mut cur = pmat;
    for _ in 1..p {
        gemm(1.0, a.rf(), Trans::No, cur.rf(), Trans::No, 0.0, next.mt());
        std::mem::swap(&mut cur, &mut next);
        blocks.push(cur.clone());
    }
    SymBlockToeplitz::new(blocks)
}

/// Random SPD block Toeplitz with moderate conditioning (AR(1) model
/// with spectral radius 0.55).
pub fn random_spd_block(m: usize, p: usize, seed: u64) -> SymBlockToeplitz {
    spd_ar1_block(m, p, 0.55, seed)
}

/// Kac–Murdock–Szegő matrix: `T(i,j) = ρ^{|i−j|}`, SPD for `|ρ| < 1`.
/// The classical ill-conditioned-as-ρ→1 scalar Toeplitz test matrix.
pub fn kms(n: usize, rho: f64) -> SymBlockToeplitz {
    assert!(rho.abs() < 1.0, "KMS requires |rho| < 1");
    let row: Vec<f64> = (0..n).map(|k| rho.powi(k as i32)).collect();
    SymBlockToeplitz::from_scalar_row(&row)
}

/// Random diagonally dominant SPD scalar Toeplitz: `t₀ = 1`,
/// `Σ_{k>0} |t_k| < 1/2`.
pub fn random_spd_scalar(n: usize, seed: u64) -> SymBlockToeplitz {
    let mut rng = Rng::seed_from_u64(seed);
    let mut row = vec![1.0f64];
    let mut budget = 0.5;
    for k in 1..n {
        let cap = budget * 0.5 / (1.0 + 0.1 * k as f64);
        let v = rng.range(-cap, cap);
        budget -= v.abs();
        row.push(v);
    }
    SymBlockToeplitz::from_scalar_row(&row)
}

/// Random symmetric *indefinite* scalar Toeplitz. The first element is
/// kept at 1 but a dominant first off-diagonal pushes eigenvalues to
/// both sides of zero. Leading minors are generically nonsingular.
pub fn random_indefinite_scalar(n: usize, seed: u64) -> SymBlockToeplitz {
    let mut rng = Rng::seed_from_u64(seed);
    let mut row = vec![1.0f64, 1.5];
    for _ in 2..n {
        row.push(rng.range(-0.4, 0.4));
    }
    row.truncate(n);
    SymBlockToeplitz::from_scalar_row(&row)
}

/// Block Toeplitz with a symmetric *indefinite* (but nonsingular-minor)
/// leading block and small off-diagonal blocks.
pub fn random_indefinite_block(m: usize, p: usize, seed: u64) -> SymBlockToeplitz {
    let mut rng = Rng::seed_from_u64(seed);
    let mut t1 = Matrix::zeros(m, m);
    for i in 0..m {
        t1[(i, i)] = if i % 2 == 0 { 2.0 } else { -2.0 };
    }
    let noise = random_matrix(&mut rng, m, m, 0.2);
    t1.axpy(1.0, &noise);
    t1.symmetrize();
    let mut blocks = vec![t1];
    for d in 1..p {
        let scale = 0.3 / (1 << d.min(20)) as f64;
        blocks.push(random_matrix(&mut rng, m, m, scale.max(1e-6)));
    }
    SymBlockToeplitz::new(blocks)
}

/// The exact 6×6 symmetric Toeplitz matrix of §8.2 of the paper, whose
/// leading 2×2 minor `[[1,1],[1,1]]` is singular.
pub fn paper_singular_minor_example() -> SymBlockToeplitz {
    SymBlockToeplitz::from_scalar_row(&[1.0000, 1.0000, 0.5297, 0.6711, 0.0077, 0.3834])
}

/// Random scalar Toeplitz with a *prescribed* singular leading 2×2
/// minor (`t₀ = t₁ = 1`), exercising the perturbation path of §8.
pub fn singular_minor_scalar(n: usize, seed: u64) -> SymBlockToeplitz {
    assert!(n >= 2);
    let mut rng = Rng::seed_from_u64(seed);
    let mut row = vec![1.0f64, 1.0];
    for _ in 2..n {
        row.push(rng.range(-0.5, 0.5));
    }
    SymBlockToeplitz::from_scalar_row(&row)
}

/// Autocovariance of sinusoids in white noise — the classic harmonic
/// retrieval workload of array signal processing:
/// `t_k = Σᵢ aᵢ² cos(ωᵢ k) + σ² δ_k`. Positive definite for `σ > 0`
/// (Bochner: the spectrum is a sum of point masses plus a flat floor),
/// and increasingly ill-conditioned as `σ → 0` — the regime where
/// Toeplitz solvers are exercised hardest in practice.
pub fn sinusoids_in_noise(
    n: usize,
    tones: &[(f64, f64)], // (amplitude, angular frequency)
    noise_sigma: f64,
) -> SymBlockToeplitz {
    assert!(noise_sigma > 0.0, "need a positive noise floor for SPD");
    let row: Vec<f64> = (0..n)
        .map(|k| {
            let mut v = if k == 0 {
                noise_sigma * noise_sigma
            } else {
                0.0
            };
            for &(a, w) in tones {
                v += a * a * (w * k as f64).cos();
            }
            v
        })
        .collect();
    SymBlockToeplitz::from_scalar_row(&row)
}

/// A right-hand side with known solution `x = 1⃗`: returns `(b, x)` where
/// `b = T·1⃗` (this is how §8.2 sets up its experiment).
pub fn rhs_for_ones(t: &SymBlockToeplitz) -> (Vec<f64>, Vec<f64>) {
    let x = vec![1.0; t.order()];
    let b = t.matvec(&x);
    (b, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn min_eig_estimate(t: &SymBlockToeplitz) -> f64 {
        // Smallest eigenvalue via a crude bound: check Cholesky succeeds.
        bs_matrix::chol::cholesky(&t.to_dense())
            .map(|_| 1.0)
            .unwrap_or(-1.0)
    }

    #[test]
    fn ar1_blocks_are_spd() {
        for (m, p) in [(1usize, 8usize), (2, 6), (4, 4)] {
            let t = spd_ar1_block(m, p, 0.6, 3 * m as u64 + p as u64);
            assert!(min_eig_estimate(&t) > 0.0, "m={m} p={p} not SPD");
        }
    }

    #[test]
    fn kms_is_spd_and_toeplitz() {
        let t = kms(16, 0.9);
        assert!(min_eig_estimate(&t) > 0.0);
        assert!((t.get(3, 7) - 0.9f64.powi(4)).abs() < 1e-15);
    }

    #[test]
    fn random_spd_scalar_is_spd() {
        for seed in 0..5 {
            let t = random_spd_scalar(24, seed);
            assert!(min_eig_estimate(&t) > 0.0, "seed={seed}");
        }
    }

    #[test]
    fn indefinite_scalar_is_indefinite() {
        let t = random_indefinite_scalar(12, 4);
        // Not SPD: Cholesky must fail.
        assert!(bs_matrix::chol::cholesky(&t.to_dense()).is_err());
        // But nonsingular (generic): LU must succeed.
        assert!(bs_matrix::lu::lu_factor(&t.to_dense()).is_ok());
    }

    #[test]
    fn paper_example_matches_paper_numbers() {
        let t = paper_singular_minor_example();
        assert_eq!(t.order(), 6);
        // b = T·1 must equal the vector printed in §8.2.
        let (b, _) = rhs_for_ones(&t);
        let want = [3.5919, 4.2085, 4.7305, 4.7305, 4.2085, 3.5919];
        for i in 0..6 {
            assert!(
                (b[i] - want[i]).abs() < 1e-10,
                "b[{i}] = {} want {}",
                b[i],
                want[i]
            );
        }
        // The leading 2x2 minor is singular.
        let minor = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(bs_matrix::lu::lu_factor(&minor).is_err());
    }

    #[test]
    fn singular_minor_scalar_has_singular_minor() {
        let t = singular_minor_scalar(8, 1);
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(0, 1), 1.0);
    }

    #[test]
    fn sinusoids_in_noise_is_spd_toeplitz() {
        let t = sinusoids_in_noise(24, &[(1.0, 0.3), (0.5, 1.1)], 0.4);
        assert!(min_eig_estimate(&t) > 0.0);
        // t_0 = noise^2 + sum of amplitude^2.
        assert!((t.get(0, 0) - (0.16 + 1.0 + 0.25)).abs() < 1e-12);
        // Solvable by the Schur factorization.
        let f = bs_core_absent_guard(&t);
        assert!(f);
    }

    // The toeplitz crate cannot depend on bs-core (cycle); assert
    // SPD-ness through Cholesky instead.
    fn bs_core_absent_guard(t: &SymBlockToeplitz) -> bool {
        bs_matrix::chol::cholesky(&t.to_dense()).is_ok()
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let a = random_spd_block(2, 4, 42).to_dense();
        let b = random_spd_block(2, 4, 42).to_dense();
        assert!(a.max_abs_diff(&b) == 0.0);
        let c = random_spd_block(2, 4, 43).to_dense();
        assert!(a.max_abs_diff(&c) > 0.0);
    }
}
