//! Compact representation of a symmetric block Toeplitz matrix.

use bs_matrix::blas3::{gemm, Trans};
use bs_matrix::{Matrix, Scalar};

/// A symmetric block Toeplitz matrix stored by its first block row
/// `T̂₁, T̂₂, …, T̂_p` (eq. 2 of the paper).
///
/// ```
/// use bs_toeplitz::SymBlockToeplitz;
///
/// // Scalar 4x4 Toeplitz with first row (2, 1, 0.5, 0.25).
/// let t = SymBlockToeplitz::from_scalar_row(&[2.0, 1.0, 0.5, 0.25]);
/// assert_eq!(t.order(), 4);
/// assert_eq!(t.get(3, 1), 0.5); // |3-1| = 2 -> 0.5
/// let y = t.matvec(&[1.0, 0.0, 0.0, 0.0]); // first column
/// assert_eq!(y, vec![2.0, 1.0, 0.5, 0.25]);
/// ```
///
/// The full `n × n` matrix (`n = m·p`) has block `(i, j)` equal to
/// `T̂_{j−i+1}` for `j ≥ i` and `T̂_{i−j+1}ᵀ` for `j < i`. Symmetry of the
/// whole matrix requires `T̂₁ = T̂₁ᵀ`, which the constructor enforces.
#[derive(Clone, Debug)]
pub struct SymBlockToeplitz<T: Scalar = f64> {
    m: usize,
    p: usize,
    /// `blocks[d]` is `T̂_{d+1}` (offset-`d` block diagonal).
    blocks: Vec<Matrix<T>>,
}

impl<T: Scalar> SymBlockToeplitz<T> {
    /// Build from the first block row. Panics on shape violations or a
    /// non-symmetric leading block.
    pub fn new(blocks: Vec<Matrix<T>>) -> Self {
        assert!(!blocks.is_empty(), "need at least one block");
        let m = blocks[0].rows();
        assert!(m > 0, "blocks must be non-empty");
        for (d, b) in blocks.iter().enumerate() {
            assert_eq!((b.rows(), b.cols()), (m, m), "block {d} must be {m}x{m}");
        }
        let t1 = &blocks[0];
        for i in 0..m {
            for j in 0..m {
                assert!(
                    (t1[(i, j)] - t1[(j, i)]).abs().to_f64()
                        <= 1e-12 * (1.0 + t1[(i, j)].abs().to_f64()),
                    "leading block must be symmetric"
                );
            }
        }
        let p = blocks.len();
        SymBlockToeplitz { m, p, blocks }
    }

    /// Overwrite this matrix's data with `other`'s, reusing the
    /// existing block storage — no allocation when the shapes match,
    /// which is what keeps a warm solver's `refactor` allocation-free.
    /// Panics on a shape mismatch.
    pub fn clone_data_from(&mut self, other: &SymBlockToeplitz<T>) {
        assert_eq!(
            (self.m, self.p),
            (other.m, other.p),
            "clone_data_from requires identical shapes"
        );
        for (dst, src) in self.blocks.iter_mut().zip(&other.blocks) {
            dst.mt().copy_from(src.rf());
        }
    }

    /// Scalar (m = 1) symmetric Toeplitz from its first row.
    pub fn from_scalar_row(row: &[T]) -> Self {
        let blocks = row
            .iter()
            .map(|&t| Matrix::from_col_major(1, 1, vec![t]))
            .collect();
        SymBlockToeplitz::new(blocks)
    }

    /// The same matrix with every block converted elementwise to
    /// scalar `U` — the demotion step of the mixed-precision factor
    /// path (and the promotion step of its verification tests).
    /// Demotion to f32 rounds each entry once; symmetry survives
    /// because rounding is deterministic per value.
    pub fn convert<U: Scalar>(&self) -> SymBlockToeplitz<U> {
        SymBlockToeplitz {
            m: self.m,
            p: self.p,
            blocks: self.blocks.iter().map(|b| b.convert::<U>()).collect(),
        }
    }

    /// Structural block size `m`.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.m
    }

    /// Number of block rows/columns `p`.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.p
    }

    /// Matrix order `n = m·p`.
    #[inline]
    pub fn order(&self) -> usize {
        self.m * self.p
    }

    /// The first block row `T̂₁ … T̂_p`.
    #[inline]
    pub fn first_block_row(&self) -> &[Matrix<T>] {
        &self.blocks
    }

    /// Element access into the implicit full matrix.
    pub fn get(&self, i: usize, j: usize) -> T {
        let (bi, ri) = (i / self.m, i % self.m);
        let (bj, rj) = (j / self.m, j % self.m);
        if bj >= bi {
            self.blocks[bj - bi][(ri, rj)]
        } else {
            self.blocks[bi - bj][(rj, ri)]
        }
    }

    /// Materialize the full dense matrix (test/verification use; O(n²)).
    pub fn to_dense(&self) -> Matrix<T> {
        let n = self.order();
        Matrix::from_fn(n, n, |i, j| self.get(i, j))
    }

    /// `y = T·x` without forming `T`: one `m×m · m×(p−d)` product per
    /// block diagonal, so `2n²` flops and `O(m²p)` memory traffic.
    ///
    /// This is the residual kernel of the iterative-refinement loop
    /// (§8.1) — the refinement claim "cheaper per iteration than PCG"
    /// relies on this product being fast.
    pub fn matvec(&self, x: &[T]) -> Vec<T> {
        let n = self.order();
        assert_eq!(x.len(), n);
        let (m, p) = (self.m, self.p);
        // View x and y as m x p matrices (column j = block j).
        let xm = Matrix::from_col_major(m, p, x.to_vec());
        let mut ym = Matrix::zeros(m, p);
        // d = 0: Y += T̂₁ X.
        gemm(
            T::ONE,
            self.blocks[0].rf(),
            Trans::No,
            xm.rf(),
            Trans::No,
            T::ZERO,
            ym.mt(),
        );
        for d in 1..p {
            let w = p - d;
            // Upper diagonals: y_i += T̂_{d+1} x_{i+d}  (i = 0..w)
            gemm(
                T::ONE,
                self.blocks[d].rf(),
                Trans::No,
                xm.sub(0, d, m, w),
                Trans::No,
                T::ONE,
                ym.sub_mut(0, 0, m, w),
            );
            // Lower diagonals: y_{i+d} += T̂_{d+1}ᵀ x_i  (i = 0..w)
            gemm(
                T::ONE,
                self.blocks[d].rf(),
                Trans::Yes,
                xm.sub(0, 0, m, w),
                Trans::No,
                T::ONE,
                ym.sub_mut(0, d, m, w),
            );
        }
        ym.as_slice().to_vec()
    }

    /// Residual `r = b − T·x` (the refinement loop body, eq. 35).
    pub fn residual(&self, x: &[T], b: &[T]) -> Vec<T> {
        let mut r = self.matvec(x);
        for (ri, &bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        bs_matrix::flops::add(r.len() as u64);
        r
    }

    /// Retile to algorithmic block size `m_s` (§6.5): the same matrix
    /// viewed with a coarser block structure. Requires `m | m_s` and
    /// `m_s | n`; "foregoing some of the Toeplitz structure" is exactly
    /// this reinterpretation. For `m_s < m` see [`Self::retile_checked`].
    pub fn retile(&self, m_s: usize) -> SymBlockToeplitz<T> {
        let n = self.order();
        assert!(
            m_s > 0 && m_s.is_multiple_of(self.m),
            "m_s must be a multiple of m"
        );
        assert!(
            n.is_multiple_of(m_s),
            "m_s must divide the matrix order n = {n}"
        );
        if m_s == self.m {
            return self.clone();
        }
        let p_s = n / m_s;
        let blocks = (0..p_s)
            .map(|d| Matrix::from_fn(m_s, m_s, |i, j| self.get(i, d * m_s + j)))
            .collect();
        SymBlockToeplitz {
            m: m_s,
            p: p_s,
            blocks,
        }
    }

    /// Whether the matrix happens to be block Toeplitz at the *finer*
    /// granularity `m_s` as well. Coarsening (`m | m_s`) always holds;
    /// refining (`m_s < m`) holds only for special matrices (e.g. a
    /// scalar Toeplitz matrix previously retiled upward). O(n·m) check.
    pub fn is_block_toeplitz_at(&self, m_s: usize) -> bool {
        let n = self.order();
        if m_s == 0 || !n.is_multiple_of(m_s) {
            return false;
        }
        if m_s.is_multiple_of(self.m) {
            return true;
        }
        // Entries must be invariant under a diagonal shift by m_s.
        // Checking the first block-row's worth of rows suffices: every
        // entry (i, j) reduces to some (i mod lcm-ish, ·) by repeated
        // shifts; conservatively check rows 0..m+m_s against shifted.
        let rows_to_check = (self.m + m_s).min(n.saturating_sub(m_s));
        for i in 0..rows_to_check {
            for j in 0..n - m_s {
                let a = self.get(i, j);
                let b = self.get(i + m_s, j + m_s);
                if (a - b).abs().to_f64() > 1e-13 * (1.0 + a.abs().to_f64()) {
                    return false;
                }
            }
        }
        true
    }

    /// Retile to *any* valid block size, including downward
    /// (`m_s < m`, §6.5's "it may be necessary to take m_s < m"),
    /// verifying that the matrix really is block Toeplitz at that
    /// granularity. Returns `None` when it is not.
    pub fn retile_checked(&self, m_s: usize) -> Option<SymBlockToeplitz<T>> {
        let n = self.order();
        if m_s == 0 || !n.is_multiple_of(m_s) {
            return None;
        }
        if m_s.is_multiple_of(self.m) {
            return Some(self.retile(m_s));
        }
        if !self.is_block_toeplitz_at(m_s) {
            return None;
        }
        let p_s = n / m_s;
        let blocks = (0..p_s)
            .map(|d| Matrix::from_fn(m_s, m_s, |i, j| self.get(i, d * m_s + j)))
            .collect();
        Some(SymBlockToeplitz {
            m: m_s,
            p: p_s,
            blocks,
        })
    }

    /// ∞-norm of the full matrix, computed from the block row in
    /// O(m²·p) without forming `T` (rows of the full matrix are
    /// permutations of block-row absolute sums).
    pub fn norm_inf(&self) -> f64 {
        let (m, p) = (self.m, self.p);
        let mut best: f64 = 0.0;
        // Row block i of T consists of blocks T̂_{i-j+1}ᵀ (j<i), then
        // T̂_1 ... T̂_{p-i}. Compute each block-row's row sums.
        for bi in 0..p {
            let mut sums = vec![0.0f64; m];
            for bj in 0..p {
                if bj >= bi {
                    let blk = &self.blocks[bj - bi];
                    for r in 0..m {
                        for c in 0..m {
                            sums[r] += blk[(r, c)].abs().to_f64();
                        }
                    }
                } else {
                    let blk = &self.blocks[bi - bj];
                    for r in 0..m {
                        for c in 0..m {
                            sums[r] += blk[(c, r)].abs().to_f64();
                        }
                    }
                }
            }
            best = best.max(sums.iter().fold(0.0f64, |a, &b| a.max(b)));
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block(seed: u64, m: usize, sym: bool) -> Matrix {
        let mut state = seed | 1;
        let mut b = Matrix::from_fn(m, m, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 1000) as f64 - 500.0) / 500.0
        });
        if sym {
            b.symmetrize();
        }
        b
    }

    fn sample(m: usize, p: usize) -> SymBlockToeplitz {
        let mut blocks = vec![sample_block(1, m, true)];
        for d in 1..p {
            blocks.push(sample_block(d as u64 + 10, m, false));
        }
        SymBlockToeplitz::new(blocks)
    }

    #[test]
    fn dense_is_symmetric_and_block_toeplitz() {
        let t = sample(3, 4);
        let d = t.to_dense();
        let n = t.order();
        assert_eq!(n, 12);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(d[(i, j)], d[(j, i)], "symmetry at ({i},{j})");
            }
        }
        // Block Toeplitz: block (i,j) equals block (i+1,j+1).
        for bi in 0..3 {
            for bj in 0..3 {
                for r in 0..3 {
                    for c in 0..3 {
                        assert_eq!(
                            d[(bi * 3 + r, bj * 3 + c)],
                            d[((bi + 1) * 3 + r, (bj + 1) * 3 + c)]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn matvec_matches_dense() {
        for (m, p) in [(1, 7), (2, 5), (3, 4), (4, 4)] {
            let t = sample(m, p);
            let n = t.order();
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let dense = t.to_dense();
            let mut want = vec![0.0; n];
            bs_matrix::blas2::gemv(1.0, dense.rf(), &x, 0.0, &mut want);
            let got = t.matvec(&x);
            for i in 0..n {
                assert!(
                    (got[i] - want[i]).abs() < 1e-12,
                    "m={m} p={p} i={i}: {} vs {}",
                    got[i],
                    want[i]
                );
            }
        }
    }

    #[test]
    fn residual_is_b_minus_tx() {
        let t = sample(2, 3);
        let n = t.order();
        let x = vec![1.0; n];
        let b = vec![2.0; n];
        let r = t.residual(&x, &b);
        let tx = t.matvec(&x);
        for i in 0..n {
            assert_eq!(r[i], b[i] - tx[i]);
        }
    }

    #[test]
    fn retile_preserves_dense_matrix() {
        let t = sample(2, 6); // n = 12
        let d0 = t.to_dense();
        for m_s in [2, 4, 6, 12] {
            let r = t.retile(m_s);
            assert_eq!(r.block_size(), m_s);
            assert_eq!(r.order(), 12);
            assert!(r.to_dense().max_abs_diff(&d0) < 1e-15, "m_s={m_s}");
        }
    }

    #[test]
    #[should_panic]
    fn retile_requires_divisibility() {
        let t = sample(2, 6);
        let _ = t.retile(5);
    }

    #[test]
    fn downward_retile_only_for_genuinely_finer_structure() {
        // A scalar Toeplitz retiled up to m=4 can go back down to 2 or 1.
        let row: Vec<f64> = (0..16).map(|k| 1.0 / (1.0 + k as f64)).collect();
        let scalar = SymBlockToeplitz::from_scalar_row(&row);
        let coarse = scalar.retile(4);
        assert!(coarse.is_block_toeplitz_at(2));
        let fine = coarse.retile_checked(2).expect("valid refinement");
        assert_eq!(fine.block_size(), 2);
        assert!(fine.to_dense().max_abs_diff(&scalar.to_dense()) < 1e-15);
        let finest = coarse.retile_checked(1).expect("valid refinement");
        assert!(finest.to_dense().max_abs_diff(&scalar.to_dense()) < 1e-15);

        // A generic m=2 block Toeplitz matrix is NOT scalar Toeplitz.
        let generic = sample(2, 6);
        assert!(!generic.is_block_toeplitz_at(1));
        assert!(generic.retile_checked(1).is_none());
        // But coarsening through the checked API still works.
        assert!(generic.retile_checked(4).is_some());
        // Non-dividing sizes are rejected.
        assert!(generic.retile_checked(5).is_none());
        assert!(generic.retile_checked(0).is_none());
    }

    #[test]
    fn scalar_constructor() {
        let t = SymBlockToeplitz::from_scalar_row(&[2.0, 1.0, 0.5]);
        let d = t.to_dense();
        assert_eq!(d[(0, 0)], 2.0);
        assert_eq!(d[(0, 2)], 0.5);
        assert_eq!(d[(2, 1)], 1.0);
    }

    #[test]
    fn norm_inf_matches_dense() {
        let t = sample(3, 5);
        let want = bs_matrix::norms::mat_inf(&t.to_dense());
        assert!((t.norm_inf() - want).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn asymmetric_leading_block_rejected() {
        let t1 = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0]]);
        let _ = SymBlockToeplitz::new(vec![t1]);
    }
}
