//! Iterative refinement (§8.1 of the paper).
//!
//! Given the (possibly perturbed) factorization `T + δT = Rᵀ D R`, the
//! refinement loop
//!
//! ```text
//! solve  Rᵀ D R x₁ = b
//! repeat: rᵢ = b − T xᵢ ;  solve RᵀDR Δxᵢ = rᵢ ;  xᵢ₊₁ = xᵢ + Δxᵢ
//! ```
//!
//! converges linearly with factor `γ ≈ ‖ΔT T⁻¹‖` (eq. 41). With the
//! optimum perturbation `δ = ε^{1/3}` the paper predicts ≈3 steps to
//! machine precision, and observes that two are typically sufficient.
//! Each iteration costs one Toeplitz matvec (`2n²` flops) plus two
//! triangular solves (`2n²`) — well below one PCG iteration with the
//! same preconditioner, which needs those *and* the preconditioner
//! application bookkeeping of a Krylov step.

use crate::indefinite::IndefFactor;
use crate::Result;
use bs_probe::metrics::{self, Counter};
use bs_probe::stability;
use bs_toeplitz::{FastToeplitzMatVec, SymBlockToeplitz};

/// Options for [`solve_refined`].
#[derive(Clone, Debug)]
pub struct RefineOptions {
    /// Stop when `‖Δxᵢ‖ ≤ tol · ‖xᵢ‖` (the paper's criterion).
    pub tol: f64,
    /// Hard iteration cap.
    pub max_iter: usize,
    /// Compute residuals with the O(n log n) circulant-embedding
    /// product instead of the direct O(n²) one. `None` decides by
    /// size (FFT above order 1024).
    pub use_fft: Option<bool>,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            tol: 4.0 * f64::EPSILON,
            max_iter: 20,
            use_fft: None,
        }
    }
}

/// Outcome of the refinement loop.
#[derive(Clone, Debug)]
#[must_use]
pub struct RefineResult {
    /// Final solution estimate.
    pub x: Vec<f64>,
    /// Refinement iterations actually performed (0 = the direct solve
    /// already met the tolerance).
    pub iterations: usize,
    /// `‖Δxᵢ‖₂` per iteration — the §8.2 experiment's convergence
    /// trace.
    pub correction_norms: Vec<f64>,
    /// `‖b − T xᵢ‖₂` per iterate, starting with the direct solve.
    pub residual_norms: Vec<f64>,
    /// Whether the tolerance was met within `max_iter`.
    pub converged: bool,
}

/// Solve `T x = b` by the direct (perturbed) factorization plus
/// iterative refinement.
pub fn solve_refined(
    t: &SymBlockToeplitz,
    factor: &IndefFactor,
    b: &[f64],
    opts: &RefineOptions,
) -> Result<RefineResult> {
    assert_eq!(b.len(), t.order());
    assert_eq!(factor.order(), t.order());
    let _span = bs_probe::span!("refine", n = t.order(), max_iter = opts.max_iter);
    let use_fft = opts.use_fft.unwrap_or(t.order() >= 1024);
    let fast = if use_fft {
        Some(FastToeplitzMatVec::new(t))
    } else {
        None
    };
    let residual_of = |x: &[f64]| -> Vec<f64> {
        match &fast {
            Some(f) => f.residual(x, b),
            None => t.residual(x, b),
        }
    };
    let mut x = factor.solve(b)?;
    let mut correction_norms: Vec<f64> = Vec::new();
    let mut residual_norms = Vec::new();
    let mut converged = false;
    let mut iterations = 0;

    let r0 = residual_of(&x);
    let r0_norm = bs_matrix::norms::vec_two(&r0);
    residual_norms.push(r0_norm);
    stability::record_residual(r0_norm);
    let mut resid = r0;
    let tnorm = t.norm_inf().max(f64::MIN_POSITIVE);
    let bnorm = bs_matrix::norms::vec_two(b);

    for _ in 0..opts.max_iter {
        let dx = factor.solve(&resid)?;
        let dx_norm = bs_matrix::norms::vec_two(&dx);
        let x_norm = bs_matrix::norms::vec_two(&x).max(f64::MIN_POSITIVE);
        let stagnated = correction_norms
            .last()
            .map(|&prev| dx_norm >= 0.5 * prev)
            .unwrap_or(false);
        correction_norms.push(dx_norm);
        // Always apply the correction — it is already computed and can
        // only help; then test the paper's criterion.
        for (xi, di) in x.iter_mut().zip(&dx) {
            *xi += di;
        }
        bs_matrix::flops::add(x.len() as u64);
        iterations += 1;
        metrics::incr(Counter::RefineIterations);
        resid = residual_of(&x);
        let rnorm = bs_matrix::norms::vec_two(&resid);
        residual_norms.push(rnorm);
        stability::record_residual(rnorm);
        // Eq. 42's steady state: once corrections stop shrinking the
        // iterate sits at the attainable accuracy; accept it when the
        // residual is at the backward-stable level ε(‖T‖‖x‖ + ‖b‖).
        let resid_floor = 64.0 * f64::EPSILON * (tnorm * x_norm + bnorm);
        if dx_norm <= opts.tol * x_norm || (stagnated && rnorm <= resid_floor) {
            converged = true;
            break;
        }
        if stagnated {
            // Corrections stopped shrinking while the residual is still
            // large: the factorization is too inaccurate for refinement
            // to help further (γ too large). Report non-convergence.
            break;
        }
    }

    Ok(RefineResult {
        x,
        iterations,
        correction_norms,
        residual_norms,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indefinite::{factor_indefinite, IndefOptions};
    use bs_toeplitz::workloads;

    fn err_inf(x: &[f64], y: &[f64]) -> f64 {
        x.iter()
            .zip(y)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn paper_example_converges_in_two_steps() {
        // §8.2: errors ≈ 3.6e−5 → 7.0e−10 → 1.6e−14 with δ = 1e−5.
        let t = workloads::paper_singular_minor_example();
        let opts = IndefOptions {
            delta: Some(1e-5),
            ..Default::default()
        };
        let f = factor_indefinite(&t, &opts).unwrap();
        let (b, x_true) = workloads::rhs_for_ones(&t);

        // Reproduce the error sequence manually.
        let x1 = f.solve(&b).unwrap();
        let e1 = err_inf(&x1, &x_true);
        assert!(e1 > 1e-8 && e1 < 1e-2, "e1 = {e1:e} (paper: 3.6e−5)");

        let res = solve_refined(&t, &f, &b, &RefineOptions::default()).unwrap();
        assert!(res.converged);
        assert!(
            res.iterations <= 4,
            "paper: two refinement steps typically suffice; got {}",
            res.iterations
        );
        let efinal = err_inf(&res.x, &x_true);
        assert!(efinal < 1e-12, "final error {efinal:e} (paper: 1.6e−14)");

        // Each refinement step must shrink the error by orders of
        // magnitude (linear convergence with tiny γ).
        if res.correction_norms.len() >= 2 {
            assert!(res.correction_norms[1] < 1e-3 * res.correction_norms[0]);
        }
    }

    #[test]
    fn refinement_on_unperturbed_factor_is_immediate() {
        let t = workloads::random_spd_scalar(20, 9);
        let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
        let (b, x_true) = workloads::rhs_for_ones(&t);
        let res = solve_refined(&t, &f, &b, &RefineOptions::default()).unwrap();
        assert!(res.converged);
        assert!(res.iterations <= 2);
        assert!(err_inf(&res.x, &x_true) < 1e-12);
    }

    #[test]
    fn refinement_fixes_random_singular_minor_systems() {
        for seed in 0..5 {
            let t = workloads::singular_minor_scalar(12, 100 + seed);
            let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
            let (b, x_true) = workloads::rhs_for_ones(&t);
            let res = solve_refined(&t, &f, &b, &RefineOptions::default()).unwrap();
            assert!(res.converged, "seed {seed} did not converge");
            let e = err_inf(&res.x, &x_true);
            assert!(e < 1e-10, "seed {seed}: error {e:e}");
        }
    }

    #[test]
    fn residual_norms_are_monotone_enough() {
        let t = workloads::paper_singular_minor_example();
        let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
        let (b, _) = workloads::rhs_for_ones(&t);
        let res = solve_refined(&t, &f, &b, &RefineOptions::default()).unwrap();
        // First refinement step must reduce the residual dramatically.
        assert!(res.residual_norms.len() >= 2);
        assert!(res.residual_norms[1] < res.residual_norms[0] * 1e-2);
    }

    #[test]
    fn max_iter_zero_returns_direct_solution() {
        let t = workloads::random_spd_scalar(10, 3);
        let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
        let (b, _) = workloads::rhs_for_ones(&t);
        let res = solve_refined(
            &t,
            &f,
            &b,
            &RefineOptions {
                max_iter: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(res.iterations, 0);
        assert!(!res.converged);
        let direct = f.solve(&b).unwrap();
        assert_eq!(res.x, direct);
    }
}

#[cfg(test)]
mod fft_residual_tests {
    use super::*;
    use crate::indefinite::{factor_indefinite, IndefOptions};
    use bs_toeplitz::workloads;

    #[test]
    fn fft_and_direct_residual_paths_agree() {
        let t = workloads::singular_minor_scalar(96, 12);
        let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
        let (b, x_true) = workloads::rhs_for_ones(&t);
        let direct = solve_refined(
            &t,
            &f,
            &b,
            &RefineOptions {
                use_fft: Some(false),
                ..Default::default()
            },
        )
        .unwrap();
        let fft = solve_refined(
            &t,
            &f,
            &b,
            &RefineOptions {
                use_fft: Some(true),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(direct.converged && fft.converged);
        for i in 0..96 {
            assert!((direct.x[i] - x_true[i]).abs() < 1e-10);
            assert!((fft.x[i] - x_true[i]).abs() < 1e-10);
        }
    }
}
