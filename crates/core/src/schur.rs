//! The SPD block Schur factorization driver (§5-§6 of the paper).
//!
//! Reduces the `2m × n` generator to the upper triangular factor `R`
//! with `T = RᵀR` in `p − 1` steps. Each step is the paper's three
//! phases:
//!
//! 1. factor the `2m × m` pivot panel into a block hyperbolic
//!    Householder reflector ([`crate::panel::factor_panel`]);
//! 2. apply the block reflector to the trailing generator columns
//!    (level-3, optionally rayon-parallel);
//! 3. shift the upper block row one block to the right — either
//!    *explicitly* (a copy) or *in place* by pairing upper block column
//!    `j − s` with lower block column `j` (§6.4; the variant used on
//!    the Cray Y-MP).
//!
//! The working generator is stored as two separate `m × n` halves,
//! which makes the in-place column pairing a pair of disjoint
//! sub-views rather than an aliasing hazard.

use crate::eliminate::{eliminate_spd, normalize_diagonal, retiled, EngineScratch};
use crate::rep::RepKind;
use crate::solve;
use crate::Result;
use bs_matrix::{ExecPolicy, Matrix, Scalar, Workspace};
use bs_toeplitz::SymBlockToeplitz;

/// Options for [`factor_spd`].
#[derive(Clone, Debug)]
pub struct SchurOptions {
    /// Block reflector representation (phase 1/2 tradeoff, §4 & §6).
    pub rep: RepKind,
    /// Execution policy for the trailing update (phase 2): thread
    /// count, minimum work to fan out, and column partitioning. Strip
    /// boundaries are thread-independent, so any thread count produces
    /// a bitwise-identical factor.
    pub exec: ExecPolicy,
    /// Algorithmic block size `m_s` (§6.5). Must be a multiple of the
    /// structural block size and divide `n`; `None` keeps `m_s = m`.
    pub block_size: Option<usize>,
    /// Perform phase 3 as an explicit memory shift instead of the
    /// in-place column pairing (ablation of the §6.4 optimization).
    pub explicit_shift: bool,
    /// Two-level blocking chunk size (§6.2): block the elementary
    /// reflectors every `k` steps and update the rest of the pivot
    /// panel with level-3 kernels between chunks. `None` blocks the
    /// whole panel at once (`k = m`). Useful for large block sizes.
    pub two_level: Option<usize>,
    /// Relative threshold below which a pivot's hyperbolic norm counts
    /// as zero (singular principal minor).
    pub zero_tol: f64,
}

impl Default for SchurOptions {
    fn default() -> Self {
        SchurOptions {
            // The paper's §6.3 analysis: the second VY form has the
            // cheapest application for most k, and its production is
            // close to YTYᵀ; it is the all-round default.
            rep: RepKind::VY2,
            // Honors BS_THREADS when set; sequential otherwise.
            exec: ExecPolicy::from_env(),
            block_size: None,
            explicit_shift: false,
            two_level: None,
            zero_tol: 1e-13,
        }
    }
}

/// The factorization `T = RᵀR` produced by [`factor_spd`].
#[derive(Clone, Debug)]
#[must_use]
pub struct SpdFactor<T: Scalar = f64> {
    /// Upper triangular `n × n` factor with positive diagonal.
    pub r: Matrix<T>,
    /// Algorithmic block size the factorization ran with.
    pub m: usize,
    /// Number of blocks at that block size.
    pub p: usize,
    /// Words one broadcast of the block reflector would need per step
    /// (the distributed-memory communication volume of §7).
    pub comm_words_per_step: usize,
}

impl<T: Scalar> SpdFactor<T> {
    /// Matrix order.
    pub fn order(&self) -> usize {
        self.r.rows()
    }

    /// Solve `T x = b` via `Rᵀ(Rx) = b`.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>> {
        solve::solve_rtdr(&self.r, None, b)
    }

    /// Reconstruct `RᵀR` densely (test / verification, O(n³)).
    pub fn reconstruct(&self) -> Matrix<T> {
        let n = self.r.rows();
        let mut out = Matrix::zeros(n, n);
        bs_matrix::blas3::gemm(
            T::ONE,
            self.r.rf(),
            bs_matrix::Trans::Yes,
            self.r.rf(),
            bs_matrix::Trans::No,
            T::ZERO,
            out.mt(),
        );
        out
    }
}

/// Factor a symmetric positive definite (block) Toeplitz matrix:
/// `T = RᵀR` in `≈ 4·m·n²` flops.
///
/// ```
/// use bs_core::{factor_spd, SchurOptions};
/// use bs_toeplitz::workloads;
///
/// let t = workloads::kms(32, 0.8); // SPD scalar Toeplitz
/// let f = factor_spd(&t, &SchurOptions::default()).unwrap();
/// let (b, x_true) = workloads::rhs_for_ones(&t);
/// let x = f.solve(&b).unwrap();
/// assert!((x[0] - x_true[0]).abs() < 1e-9);
/// ```
pub fn factor_spd<T: Scalar>(t: &SymBlockToeplitz<T>, opts: &SchurOptions) -> Result<SpdFactor<T>> {
    let n = t.block_size() * t.num_blocks();
    let mut r = Matrix::zeros(n, n);
    let (m, p, comm_words_per_step) = factor_spd_streaming(t, opts, |s, mm, _n, row| {
        r.sub_mut(s * mm, s * mm, mm, row.cols()).copy_from(row);
    })?;
    normalize_diagonal(&mut r);
    crate::contracts::spd_diagonal(&r, "factor_spd");
    Ok(SpdFactor {
        r,
        m,
        p,
        comm_words_per_step,
    })
}

/// Streaming variant of [`factor_spd`]: instead of materializing the
/// `n × n` factor (which costs `n²` memory — 128 MiB at n = 4096), each
/// emitted block row is handed to `sink(s, m, n, row)` where `row` is
/// the `m × (p−s)·m` block row starting at block column `s`. Rows are
/// *not* sign-normalized (callers needing `RᵀR` semantics are
/// unaffected: row signs cancel).
///
/// Returns `(m_s, p, comm_words_per_step)`.
pub fn factor_spd_streaming<T: Scalar>(
    t: &SymBlockToeplitz<T>,
    opts: &SchurOptions,
    mut sink: impl FnMut(usize, usize, usize, bs_matrix::MatRef<'_, T>),
) -> Result<(usize, usize, usize)> {
    let t_ref = retiled(t, opts.block_size)?;
    // Fresh engine state: this compatibility entry point reproduces the
    // historical allocate-per-call behavior; long-lived callers that
    // want warm (allocation-free) repeats hold a `FactorPlan` instead.
    let mut ws = Workspace::new();
    let mut scratch = EngineScratch::default();
    let out = eliminate_spd(&t_ref, opts, &mut ws, &mut scratch, &mut sink);
    // paranoid: the workspace is ours and received no donations, so it
    // must be fully quiescent whatever the elimination returned.
    ws.contract_quiescent("factor_spd_streaming");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Error;
    use bs_toeplitz::workloads;

    fn check_factor(t: &SymBlockToeplitz, opts: &SchurOptions, tol: f64) {
        let f = factor_spd(t, opts).unwrap();
        let dense = t.to_dense();
        let rec = f.reconstruct();
        let scale = t.norm_inf().max(1.0);
        let diff = rec.max_abs_diff(&dense);
        assert!(
            diff < tol * scale,
            "rep={:?} shift={} m={} p={}: ||R^TR - T|| = {diff:e}",
            opts.rep,
            opts.explicit_shift,
            f.m,
            f.p
        );
        // R upper triangular with positive diagonal.
        for j in 0..f.order() {
            assert!(f.r[(j, j)] > 0.0, "diagonal {j}");
            for i in j + 1..f.order() {
                assert_eq!(f.r[(i, j)], 0.0, "({i},{j}) below diagonal");
            }
        }
    }

    #[test]
    fn factors_scalar_spd() {
        let t = workloads::random_spd_scalar(24, 3);
        check_factor(&t, &SchurOptions::default(), 1e-10);
    }

    #[test]
    fn factors_block_spd_all_reps() {
        for (m, p) in [(1usize, 9usize), (2, 6), (3, 5), (4, 4)] {
            let t = workloads::random_spd_block(m, p, 17 * m as u64 + p as u64);
            for rep in RepKind::ALL {
                for explicit_shift in [false, true] {
                    let opts = SchurOptions {
                        rep,
                        explicit_shift,
                        ..Default::default()
                    };
                    check_factor(&t, &opts, 1e-9);
                }
            }
        }
    }

    #[test]
    fn parallel_update_matches_sequential() {
        let t = workloads::random_spd_block(4, 12, 5);
        let seq = SchurOptions {
            exec: ExecPolicy::sequential(),
            ..Default::default()
        };
        let f1 = factor_spd(&t, &seq).unwrap();
        // min_work: 1 forces the strip dispatcher even at this size;
        // the pooled factor must be bitwise identical, not merely close.
        for threads in [2usize, bs_matrix::par::current_num_threads() * 2 + 1] {
            let par = SchurOptions {
                exec: ExecPolicy {
                    threads,
                    min_work: 1,
                    partition: bs_matrix::Partition::Auto,
                },
                ..Default::default()
            };
            let f2 = factor_spd(&t, &par).unwrap();
            assert_eq!(f1.r.max_abs_diff(&f2.r), 0.0, "threads={threads}");
        }
    }

    #[test]
    fn matches_dense_cholesky() {
        let t = workloads::kms(16, 0.7);
        let f = factor_spd(&t, &SchurOptions::default()).unwrap();
        let l = bs_matrix::chol::cholesky(&t.to_dense()).unwrap();
        // R must equal Lᵀ (both have positive diagonals; Cholesky is
        // unique).
        let lt = l.transpose();
        assert!(f.r.max_abs_diff(&lt) < 1e-10, "{}", f.r.max_abs_diff(&lt));
    }

    #[test]
    fn solve_spd_system() {
        let t = workloads::random_spd_block(3, 6, 8);
        let (b, x_true) = workloads::rhs_for_ones(&t);
        let f = factor_spd(&t, &SchurOptions::default()).unwrap();
        let x = f.solve(&b).unwrap();
        for i in 0..x.len() {
            assert!((x[i] - x_true[i]).abs() < 1e-8, "i={i}: {}", x[i]);
        }
    }

    #[test]
    fn block_size_override_retiles() {
        let t = workloads::random_spd_scalar(32, 12);
        for ms in [2usize, 4, 8, 16] {
            let opts = SchurOptions {
                block_size: Some(ms),
                ..Default::default()
            };
            let f = factor_spd(&t, &opts).unwrap();
            assert_eq!(f.m, ms);
            assert_eq!(f.p, 32 / ms);
            let rec = f.reconstruct();
            assert!(
                rec.max_abs_diff(&t.to_dense()) < 1e-10,
                "m_s={ms}: {}",
                rec.max_abs_diff(&t.to_dense())
            );
        }
    }

    #[test]
    fn invalid_block_size_rejected() {
        let t = workloads::random_spd_scalar(10, 2);
        let opts = SchurOptions {
            block_size: Some(3), // does not divide 10
            ..Default::default()
        };
        assert!(matches!(
            factor_spd(&t, &opts),
            Err(Error::InvalidOptions(_))
        ));
        let t2 = workloads::random_spd_block(2, 5, 2);
        let opts2 = SchurOptions {
            block_size: Some(5), // not a multiple of m = 2
            ..Default::default()
        };
        assert!(matches!(
            factor_spd(&t2, &opts2),
            Err(Error::InvalidOptions(_))
        ));
    }

    #[test]
    fn indefinite_input_rejected() {
        let t = workloads::random_indefinite_scalar(12, 3);
        assert!(matches!(
            factor_spd(&t, &SchurOptions::default()),
            Err(Error::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn trivial_single_block() {
        // p = 1: R is just the Cholesky transpose of T̂₁.
        let t = workloads::random_spd_block(4, 1, 6);
        let f = factor_spd(&t, &SchurOptions::default()).unwrap();
        let rec = f.reconstruct();
        assert!(rec.max_abs_diff(&t.to_dense()) < 1e-11);
    }
}

#[cfg(test)]
mod two_level_tests {
    use super::*;
    use bs_toeplitz::workloads;

    #[test]
    fn two_level_matches_single_level() {
        let t = workloads::random_spd_block(8, 8, 7);
        let reference = factor_spd(&t, &SchurOptions::default()).unwrap();
        for k in [1usize, 2, 3, 4, 8, 16] {
            let opts = SchurOptions {
                two_level: Some(k),
                ..Default::default()
            };
            let f = factor_spd(&t, &opts).unwrap();
            let diff = f.r.max_abs_diff(&reference.r);
            assert!(diff < 1e-10, "k_block={k}: diff {diff:e}");
        }
    }

    #[test]
    fn two_level_with_retiling_and_reps() {
        let t = workloads::random_spd_scalar(64, 5);
        let d0 = t.to_dense();
        for rep in RepKind::ALL {
            let opts = SchurOptions {
                block_size: Some(16),
                two_level: Some(4),
                rep,
                ..Default::default()
            };
            let f = factor_spd(&t, &opts).unwrap();
            assert!(f.reconstruct().max_abs_diff(&d0) < 1e-9, "rep={rep:?}");
        }
    }

    #[test]
    fn panel_chunking_produces_expected_chunk_count() {
        use crate::panel::factor_panel_two_level;
        use bs_matrix::ldlt::Signature;
        let m = 6;
        let w = Signature::hyperbolic(m);
        let mut p = Matrix::identity(2 * m).sub(0, 0, 2 * m, m).to_matrix();
        for j in 0..m {
            p[(j, j)] = 2.0;
            p[(m + j, j)] = 0.5;
        }
        let reps = factor_panel_two_level(p.mt(), &w, RepKind::VY2, 0, 1e-13, 1.0, 4).unwrap();
        assert_eq!(reps.len(), 2); // chunks of 4 and 2
        assert_eq!(reps[0].len(), 4);
        assert_eq!(reps[1].len(), 2);
    }
}

#[cfg(test)]
mod streaming_tests {
    use super::*;
    use bs_toeplitz::workloads;

    #[test]
    fn streaming_emits_same_rows_as_materialized() {
        let t = workloads::random_spd_block(2, 8, 3);
        let f = factor_spd(&t, &SchurOptions::default()).unwrap();
        let mut rows_seen = 0usize;
        let (m, p, _) = factor_spd_streaming(&t, &SchurOptions::default(), |s, m, _n, row| {
            rows_seen += 1;
            // Compare against the materialized factor up to row signs.
            for i in 0..m {
                let gi = s * m + i;
                // The materialized factor normalizes row signs; compare
                // magnitudes and relative signs within a row.
                let sign = if row.get(i, i) * f.r[(gi, gi)] < 0.0 {
                    -1.0
                } else {
                    1.0
                };
                for j in 0..row.cols() {
                    let want = f.r[(gi, s * m + j)];
                    let got = sign * row.get(i, j);
                    assert!(
                        (got - want).abs() < 1e-11,
                        "row {gi}, col {}: {} vs {}",
                        s * m + j,
                        got,
                        want
                    );
                }
            }
        })
        .unwrap();
        assert_eq!((m, p), (2, 8));
        assert_eq!(rows_seen, 8);
    }

    #[test]
    fn streaming_needs_no_quadratic_memory() {
        // Just exercise a larger case and count bytes handled per call.
        let t = workloads::random_spd_scalar(256, 2);
        let mut max_row_elems = 0usize;
        factor_spd_streaming(
            &t,
            &SchurOptions {
                block_size: Some(8),
                ..Default::default()
            },
            |_s, m, _n, row| {
                max_row_elems = max_row_elems.max(m * row.cols());
            },
        )
        .unwrap();
        assert!(max_row_elems <= 8 * 256);
    }
}
