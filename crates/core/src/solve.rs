//! Triangular solves with the `Rᵀ D R` factors produced by the Schur
//! drivers.

use bs_matrix::Matrix;

/// Solve `Rᵀ D R x = b` where `R` is upper triangular and
/// `D = diag(d)` with `d ∈ {±1}ⁿ` (`None` means `D = I`, the SPD case).
pub fn solve_rtdr(r: &Matrix, d: Option<&[i8]>, b: &[f64]) -> bs_matrix::Result<Vec<f64>> {
    let n = r.rows();
    assert_eq!(r.cols(), n, "R must be square");
    assert_eq!(b.len(), n);
    if let Some(d) = d {
        assert_eq!(d.len(), n);
    }
    let mut x = b.to_vec();
    // Rᵀ y = b.
    bs_matrix::blas2::trsv_upper_t(r.rf(), &mut x)?;
    // y ← D⁻¹ y = D y.
    if let Some(d) = d {
        for (xi, &s) in x.iter_mut().zip(d) {
            if s < 0 {
                *xi = -*xi;
            }
        }
        bs_matrix::flops::add(n as u64);
    }
    // R x = y.
    bs_matrix::blas2::trsv_upper(r.rf(), &mut x)?;
    Ok(x)
}

/// Dense reconstruction `Rᵀ D R` (test / verification, O(n³)).
pub fn reconstruct_rtdr(r: &Matrix, d: Option<&[i8]>) -> Matrix {
    let n = r.rows();
    let mut dr = r.clone();
    if let Some(d) = d {
        for i in 0..n {
            if d[i] < 0 {
                for j in i..n {
                    dr[(i, j)] = -dr[(i, j)];
                }
            }
        }
    }
    let mut out = Matrix::zeros(n, n);
    bs_matrix::blas3::gemm(
        1.0,
        r.rf(),
        bs_matrix::Trans::Yes,
        dr.rf(),
        bs_matrix::Trans::No,
        0.0,
        out.mt(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upper(n: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        let mut r = Matrix::from_fn(n, n, |i, j| {
            if j < i {
                return 0.0;
            }
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 1000) as f64 - 500.0) / 500.0
        });
        for i in 0..n {
            r[(i, i)] = r[(i, i)].abs() + 1.0;
        }
        r
    }

    #[test]
    fn spd_solve_round_trip() {
        let n = 9;
        let r = upper(n, 4);
        let a = reconstruct_rtdr(&r, None);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 4.0).collect();
        let mut b = vec![0.0; n];
        bs_matrix::blas2::gemv(1.0, a.rf(), &x_true, 0.0, &mut b);
        let x = solve_rtdr(&r, None, &b).unwrap();
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn signed_solve_round_trip() {
        let n = 7;
        let r = upper(n, 9);
        let d: Vec<i8> = (0..n).map(|i| if i % 3 == 1 { -1 } else { 1 }).collect();
        let a = reconstruct_rtdr(&r, Some(&d));
        // A must be symmetric.
        for i in 0..n {
            for j in 0..n {
                assert!((a[(i, j)] - a[(j, i)]).abs() < 1e-12);
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64).cos()).collect();
        let mut b = vec![0.0; n];
        bs_matrix::blas2::gemv(1.0, a.rf(), &x_true, 0.0, &mut b);
        let x = solve_rtdr(&r, Some(&d), &b).unwrap();
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn singular_triangle_propagates() {
        let mut r = upper(3, 2);
        r[(1, 1)] = 0.0;
        assert!(solve_rtdr(&r, None, &[1.0, 2.0, 3.0]).is_err());
    }
}
