//! The extended Schur algorithm for symmetric *indefinite* (block)
//! Toeplitz matrices, including singular principal minors (§8).
//!
//! Three mechanisms on top of the SPD algorithm:
//!
//! - **General signature.** The leading block is factored
//!   `T̂₁ = L₁ Σ L₁ᵀ` and the working signature becomes
//!   `W = diag(Σ, −Σ)` (eq. 11).
//! - **Row exchanges.** When a pivot column's hyperbolic norm has the
//!   wrong sign for the pivot position, the pivot row is swapped with a
//!   lower-half generator row of matching signature ("interchanging
//!   rows such that the pivot element always lies along the diagonal
//!   row of the pivot block"). The exchange is sound because both the
//!   pivot row (upper triangular invariant) and the lower rows
//!   (already eliminated) are zero in the processed panel columns.
//! - **Perturbation.** When the hyperbolic norm is numerically zero
//!   (singular principal minor), the pivot entry is scaled by
//!   `√(1+δ)` with `δ ≈ ε^{1/3}` — exactly the §8.2 recipe (their
//!   perturbed entry `1.0000049999875 = √(1+10⁻⁵)`). The factorization
//!   then applies to `T + δT`; iterative refinement ([`crate::refine`])
//!   removes the `O(δ)` solution error.
//!
//! The elimination is performed reflector-by-reflector (the paper's
//! "sequential" option): with row exchanges interleaved the blocked
//! representations of §4 no longer commute past the permutations, and
//! the indefinite experiments of §8 are about accuracy, not peak rate.

use crate::eliminate::{eliminate_indefinite, Attempt, EngineScratch};
use crate::solve;
use crate::{Error, Result};
use bs_matrix::{Matrix, Scalar, Workspace};
use bs_toeplitz::SymBlockToeplitz;

/// Options for [`factor_indefinite`].
#[derive(Clone, Debug)]
pub struct IndefOptions {
    /// Perturbation size `δ` for singular minors; `None` selects the
    /// analysis optimum `ε^{1/3}` (eq. 45-46).
    pub delta: Option<f64>,
    /// Whether singular minors may be perturbed at all. When `false`
    /// a singular minor aborts with [`Error::SingularMinor`].
    pub allow_perturbation: bool,
    /// Relative threshold below which `|uᵀWu|` counts as zero.
    pub zero_tol: f64,
}

impl Default for IndefOptions {
    fn default() -> Self {
        IndefOptions {
            delta: None,
            allow_perturbation: true,
            zero_tol: 1e-7,
        }
    }
}

impl IndefOptions {
    /// Effective perturbation size.
    pub fn effective_delta(&self) -> f64 {
        self.delta.unwrap_or_else(|| f64::EPSILON.cbrt())
    }
}

/// Record of one perturbation event (§8.2).
#[derive(Clone, Debug, PartialEq)]
pub struct Perturbation {
    /// Schur step (block column) at which it happened; step 0 means the
    /// leading block `T̂₁` itself was perturbed before generator
    /// construction.
    pub step: usize,
    /// Column within the pivot block.
    pub column: usize,
    /// `δ` used.
    pub delta: f64,
    /// Hyperbolic norm of the pivot column before perturbation.
    pub hnorm_before: f64,
}

/// The factorization `T + δT = Rᵀ D R` produced by
/// [`factor_indefinite`] (`δT = 0` when no perturbation was needed).
#[derive(Clone, Debug)]
#[must_use]
pub struct IndefFactor<T: Scalar = f64> {
    /// Upper triangular `n × n` factor with positive diagonal.
    pub r: Matrix<T>,
    /// Signature `D` of the factorization, one ±1 per row of `R`.
    pub d: Vec<i8>,
    /// Perturbations applied (empty for strongly nonsingular input).
    pub perturbations: Vec<Perturbation>,
    /// Number of row exchanges performed.
    pub exchanges: usize,
    /// Largest elementary reflector norm estimate seen — `≈ 1/δ` when a
    /// perturbation fired, `O(1)` otherwise (§8.2 growth factor).
    pub max_reflector_norm: f64,
    /// Block size / number of blocks the factorization ran with.
    pub m: usize,
    pub p: usize,
}

impl<T: Scalar> IndefFactor<T> {
    /// Matrix order.
    pub fn order(&self) -> usize {
        self.r.rows()
    }

    /// Number of negative eigenvalues of `T + δT` (Sylvester: equals
    /// the number of −1 entries in `D`).
    pub fn negative_inertia(&self) -> usize {
        self.d.iter().filter(|&&s| s < 0).count()
    }

    /// Solve `(T + δT) x = b` — one forward and one backward
    /// triangular solve plus a signature scaling.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>> {
        solve::solve_rtdr(&self.r, Some(&self.d), b)
    }

    /// Dense reconstruction `Rᵀ D R` (test / verification).
    pub fn reconstruct(&self) -> Matrix<T> {
        solve::reconstruct_rtdr(&self.r, Some(&self.d))
    }
}

/// Factor a symmetric (possibly indefinite, possibly singular-minor)
/// Toeplitz matrix as `T + δT = Rᵀ D R`.
///
/// ```
/// use bs_core::{factor_indefinite, IndefOptions};
/// use bs_toeplitz::workloads;
///
/// // The paper's §8.2 example: singular 2x2 leading minor.
/// let t = workloads::paper_singular_minor_example();
/// let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
/// assert_eq!(f.perturbations.len(), 1);
/// assert!(f.negative_inertia() > 0);
/// ```
///
/// When several singular minors occur, the §8.2 analysis (eqs. 47-49)
/// requires grading the perturbations: for `k` of them the optimum is
/// `δᵢ = ε^(1/3^(k-i+1))` (e.g. `ε^{1/9}, ε^{1/3}` for two). Since the
/// number of perturbations is unknown beforehand, the driver backtracks:
/// it first tries the single-perturbation schedule and restarts with a
/// longer one if more singular minors surface ("we would have to
/// backtrack to the first perturbation and change the value of δ₁" —
/// wasteful, as the paper notes, but rarely needed: a perturbed matrix
/// generically has no further singular minors). A user-supplied
/// [`IndefOptions::delta`] disables grading and is used throughout.
pub fn factor_indefinite<T: Scalar>(
    t: &SymBlockToeplitz<T>,
    opts: &IndefOptions,
) -> Result<IndefFactor<T>> {
    // Fresh engine state per call (the compatibility entry point);
    // plan/execute callers hold a warm workspace instead.
    let mut ws = Workspace::new();
    let mut scratch = EngineScratch::default();
    factor_indefinite_with(t, opts, &mut ws, &mut scratch)
}

/// [`factor_indefinite`] with caller-owned engine state: the graded
/// δ-schedule backtracking loop over [`eliminate_indefinite`] passes.
/// State is reused across schedule attempts (a backtrack does not
/// re-allocate) and, for plan/execute callers, across factorizations.
pub(crate) fn factor_indefinite_with<T: Scalar>(
    t: &SymBlockToeplitz<T>,
    opts: &IndefOptions,
    ws: &mut Workspace<T>,
    scratch: &mut EngineScratch<T>,
) -> Result<IndefFactor<T>> {
    let eps = f64::EPSILON;
    let max_k = 3usize;
    for k in 1..=max_k {
        let schedule: Vec<f64> = match opts.delta {
            Some(d) => vec![d; 16], // fixed δ, effectively unbounded
            None => (0..k)
                .map(|i| eps.powf(1.0 / 3f64.powi((k - i) as i32)))
                .collect(),
        };
        match eliminate_indefinite(t, opts, &schedule, ws, scratch)? {
            Attempt::Done(f) => return Ok(*f),
            Attempt::NeedsLongerSchedule => continue,
        }
    }
    Err(Error::SingularMinor {
        step: 0,
        column: 0,
        hnorm: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_toeplitz::workloads;

    fn check_reconstruction(t: &SymBlockToeplitz, f: &IndefFactor, tol: f64) {
        let rec = f.reconstruct();
        let dense = t.to_dense();
        let scale = t.norm_inf().max(1.0);
        let diff = rec.max_abs_diff(&dense);
        assert!(
            diff < tol * scale,
            "||R^T D R − T|| = {diff:e} (perturbations: {:?})",
            f.perturbations
        );
    }

    #[test]
    fn spd_input_reduces_to_cholesky() {
        let t = workloads::random_spd_scalar(16, 5);
        let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
        assert!(f.perturbations.is_empty());
        assert_eq!(f.exchanges, 0);
        assert!(f.d.iter().all(|&s| s > 0));
        check_reconstruction(&t, &f, 1e-12);
    }

    #[test]
    fn indefinite_scalar_factorizes_with_exchanges() {
        let t = workloads::random_indefinite_scalar(14, 7);
        let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
        assert!(
            f.exchanges > 0,
            "dominant off-diagonal must force exchanges"
        );
        assert!(f.perturbations.is_empty());
        check_reconstruction(&t, &f, 1e-10);
        // Inertia must match the true negative eigenvalue count
        // (Sylvester's law) — cross-check via dense LDLᵀ.
        let mut lfac = t.to_dense();
        let dd = bs_matrix::ldlt::ldlt_in_place(lfac.mt(), 0.0).unwrap();
        let neg = dd.iter().filter(|&&v| v < 0.0).count();
        assert_eq!(f.negative_inertia(), neg);
    }

    #[test]
    fn indefinite_block_factorizes() {
        let t = workloads::random_indefinite_block(2, 5, 21);
        let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
        check_reconstruction(&t, &f, 1e-9);
        assert!(f.negative_inertia() > 0);
    }

    #[test]
    fn paper_example_is_perturbed_once() {
        let t = workloads::paper_singular_minor_example();
        let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
        assert_eq!(f.perturbations.len(), 1, "{:?}", f.perturbations);
        assert_eq!(f.perturbations[0].step, 1);
        // The reflector norm after a perturbation is ≈ 1/δ (§8.2).
        // With the x = Wu + σe_j construction the elementary norm is
        // ≈ 2/√δ (the paper's printed U_(2) uses a different reflector
        // normalization with ‖U‖ ≈ 1/δ, but the resulting factor R is
        // the same by uniqueness of the triangular factorization).
        let delta = IndefOptions::default().effective_delta();
        assert!(
            f.max_reflector_norm > 0.1 / delta.sqrt(),
            "‖U‖ = {:e}, expected ≳ {:e}",
            f.max_reflector_norm,
            1.0 / delta.sqrt()
        );
        // The factorization reconstructs T only up to O(δ‖T‖).
        let rec = f.reconstruct();
        let diff = rec.max_abs_diff(&t.to_dense());
        assert!(diff < 50.0 * delta, "diff {diff:e}");
        assert!(diff > 1e-12, "perturbation must be visible");
    }

    #[test]
    fn paper_example_solution_error_matches_paper() {
        // §8.2: with x = 1⃗, ‖x − x₁‖ ≈ 3.6e−5 for δ = 1e−5.
        let t = workloads::paper_singular_minor_example();
        let opts = IndefOptions {
            delta: Some(1e-5),
            ..Default::default()
        };
        let f = factor_indefinite(&t, &opts).unwrap();
        let (b, x_true) = workloads::rhs_for_ones(&t);
        let x1 = f.solve(&b).unwrap();
        let err: f64 = x1
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        // Same order of magnitude as the paper's 3.6375e−5.
        assert!(
            err > 1e-7 && err < 1e-2,
            "first-solve error {err:e}, paper reports ≈ 3.6e−5"
        );
    }

    #[test]
    fn perturbation_disabled_reports_singular_minor() {
        let t = workloads::paper_singular_minor_example();
        let opts = IndefOptions {
            allow_perturbation: false,
            ..Default::default()
        };
        match factor_indefinite(&t, &opts) {
            Err(Error::SingularMinor { step: 1, .. }) => {}
            other => panic!("expected SingularMinor at step 1, got {other:?}"),
        }
    }

    #[test]
    fn random_singular_minor_matrices_factor() {
        for seed in 0..6 {
            let t = workloads::singular_minor_scalar(10, seed);
            let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
            assert!(
                !f.perturbations.is_empty(),
                "seed {seed}: singular minor must trigger a perturbation"
            );
            // Solvable and close after the (perturbed) direct solve.
            let (b, x_true) = workloads::rhs_for_ones(&t);
            let x = f.solve(&b).unwrap();
            let err: f64 = x
                .iter()
                .zip(&x_true)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-1, "seed {seed}: direct-solve error {err:e}");
        }
    }

    #[test]
    fn singular_leading_entry_perturbs_t1() {
        // t0 = 0: the leading 1x1 minor is singular.
        let t = SymBlockToeplitz::from_scalar_row(&[0.0, 1.0, 0.25]);
        let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
        assert!(f.perturbations.iter().any(|p| p.step == 0));
    }
}
