//! The extended Schur algorithm for symmetric *indefinite* (block)
//! Toeplitz matrices, including singular principal minors (§8).
//!
//! Three mechanisms on top of the SPD algorithm:
//!
//! - **General signature.** The leading block is factored
//!   `T̂₁ = L₁ Σ L₁ᵀ` and the working signature becomes
//!   `W = diag(Σ, −Σ)` (eq. 11).
//! - **Row exchanges.** When a pivot column's hyperbolic norm has the
//!   wrong sign for the pivot position, the pivot row is swapped with a
//!   lower-half generator row of matching signature ("interchanging
//!   rows such that the pivot element always lies along the diagonal
//!   row of the pivot block"). The exchange is sound because both the
//!   pivot row (upper triangular invariant) and the lower rows
//!   (already eliminated) are zero in the processed panel columns.
//! - **Perturbation.** When the hyperbolic norm is numerically zero
//!   (singular principal minor), the pivot entry is scaled by
//!   `√(1+δ)` with `δ ≈ ε^{1/3}` — exactly the §8.2 recipe (their
//!   perturbed entry `1.0000049999875 = √(1+10⁻⁵)`). The factorization
//!   then applies to `T + δT`; iterative refinement ([`crate::refine`])
//!   removes the `O(δ)` solution error.
//!
//! The elimination is performed reflector-by-reflector (the paper's
//! "sequential" option): with row exchanges interleaved the blocked
//! representations of §4 no longer commute past the permutations, and
//! the indefinite experiments of §8 are about accuracy, not peak rate.

use crate::reflector::{PivotOutcome, PivotReflector};
use crate::solve;
use crate::{Error, Result};
use bs_matrix::Matrix;
use bs_probe::metrics::{self, Counter};
use bs_probe::stability;
use bs_toeplitz::{build_generator, SymBlockToeplitz};

/// Options for [`factor_indefinite`].
#[derive(Clone, Debug)]
pub struct IndefOptions {
    /// Perturbation size `δ` for singular minors; `None` selects the
    /// analysis optimum `ε^{1/3}` (eq. 45-46).
    pub delta: Option<f64>,
    /// Whether singular minors may be perturbed at all. When `false`
    /// a singular minor aborts with [`Error::SingularMinor`].
    pub allow_perturbation: bool,
    /// Relative threshold below which `|uᵀWu|` counts as zero.
    pub zero_tol: f64,
}

impl Default for IndefOptions {
    fn default() -> Self {
        IndefOptions {
            delta: None,
            allow_perturbation: true,
            zero_tol: 1e-7,
        }
    }
}

impl IndefOptions {
    /// Effective perturbation size.
    pub fn effective_delta(&self) -> f64 {
        self.delta.unwrap_or_else(|| f64::EPSILON.cbrt())
    }
}

/// Record of one perturbation event (§8.2).
#[derive(Clone, Debug, PartialEq)]
pub struct Perturbation {
    /// Schur step (block column) at which it happened; step 0 means the
    /// leading block `T̂₁` itself was perturbed before generator
    /// construction.
    pub step: usize,
    /// Column within the pivot block.
    pub column: usize,
    /// `δ` used.
    pub delta: f64,
    /// Hyperbolic norm of the pivot column before perturbation.
    pub hnorm_before: f64,
}

/// The factorization `T + δT = Rᵀ D R` produced by
/// [`factor_indefinite`] (`δT = 0` when no perturbation was needed).
#[derive(Clone, Debug)]
pub struct IndefFactor {
    /// Upper triangular `n × n` factor with positive diagonal.
    pub r: Matrix,
    /// Signature `D` of the factorization, one ±1 per row of `R`.
    pub d: Vec<i8>,
    /// Perturbations applied (empty for strongly nonsingular input).
    pub perturbations: Vec<Perturbation>,
    /// Number of row exchanges performed.
    pub exchanges: usize,
    /// Largest elementary reflector norm estimate seen — `≈ 1/δ` when a
    /// perturbation fired, `O(1)` otherwise (§8.2 growth factor).
    pub max_reflector_norm: f64,
    /// Block size / number of blocks the factorization ran with.
    pub m: usize,
    pub p: usize,
}

impl IndefFactor {
    /// Matrix order.
    pub fn order(&self) -> usize {
        self.r.rows()
    }

    /// Number of negative eigenvalues of `T + δT` (Sylvester: equals
    /// the number of −1 entries in `D`).
    pub fn negative_inertia(&self) -> usize {
        self.d.iter().filter(|&&s| s < 0).count()
    }

    /// Solve `(T + δT) x = b` — one forward and one backward
    /// triangular solve plus a signature scaling.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        solve::solve_rtdr(&self.r, Some(&self.d), b).map_err(Error::from)
    }

    /// Dense reconstruction `Rᵀ D R` (test / verification).
    pub fn reconstruct(&self) -> Matrix {
        solve::reconstruct_rtdr(&self.r, Some(&self.d))
    }
}

/// Outcome of one factorization attempt under a fixed δ-schedule.
enum Attempt {
    Done(Box<IndefFactor>),
    /// More singular minors were met than the schedule covers: restart
    /// with a longer schedule (§8.2's backtracking).
    NeedsLongerSchedule,
}

/// Factor a symmetric (possibly indefinite, possibly singular-minor)
/// Toeplitz matrix as `T + δT = Rᵀ D R`.
///
/// ```
/// use bs_core::{factor_indefinite, IndefOptions};
/// use bs_toeplitz::workloads;
///
/// // The paper's §8.2 example: singular 2x2 leading minor.
/// let t = workloads::paper_singular_minor_example();
/// let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
/// assert_eq!(f.perturbations.len(), 1);
/// assert!(f.negative_inertia() > 0);
/// ```
///
/// When several singular minors occur, the §8.2 analysis (eqs. 47-49)
/// requires grading the perturbations: for `k` of them the optimum is
/// `δᵢ = ε^(1/3^(k-i+1))` (e.g. `ε^{1/9}, ε^{1/3}` for two). Since the
/// number of perturbations is unknown beforehand, the driver backtracks:
/// it first tries the single-perturbation schedule and restarts with a
/// longer one if more singular minors surface ("we would have to
/// backtrack to the first perturbation and change the value of δ₁" —
/// wasteful, as the paper notes, but rarely needed: a perturbed matrix
/// generically has no further singular minors). A user-supplied
/// [`IndefOptions::delta`] disables grading and is used throughout.
pub fn factor_indefinite(t: &SymBlockToeplitz, opts: &IndefOptions) -> Result<IndefFactor> {
    let eps = f64::EPSILON;
    let max_k = 3usize;
    for k in 1..=max_k {
        let schedule: Vec<f64> = match opts.delta {
            Some(d) => vec![d; 16], // fixed δ, effectively unbounded
            None => (0..k)
                .map(|i| eps.powf(1.0 / 3f64.powi((k - i) as i32)))
                .collect(),
        };
        match factor_indefinite_attempt(t, opts, &schedule)? {
            Attempt::Done(f) => return Ok(*f),
            Attempt::NeedsLongerSchedule => continue,
        }
    }
    Err(Error::SingularMinor {
        step: 0,
        column: 0,
        hnorm: 0.0,
    })
}

/// One factorization pass using `schedule[i]` for the i-th perturbation.
fn factor_indefinite_attempt(
    t: &SymBlockToeplitz,
    opts: &IndefOptions,
    schedule: &[f64],
) -> Result<Attempt> {
    let m = t.block_size();
    let p = t.num_blocks();
    let n = m * p;
    let _span = bs_probe::span!("factor_indefinite", n = n, m = m, p = p);
    let mut perturbations: Vec<Perturbation> = Vec::new();
    let next_delta = |perts: &[Perturbation]| -> Option<f64> { schedule.get(perts.len()).copied() };

    // Generator; if the leading block itself has a singular minor,
    // perturb the whole diagonal of T (δT = δ·s·I keeps T symmetric
    // Toeplitz because T̂₁ sits on the entire block diagonal).
    let t_scale = t.norm_inf().max(1.0);
    stability::set_scale(t_scale);
    let gen = match build_generator(t) {
        Ok(g) => g,
        Err(bs_matrix::Error::SingularPivot { index, pivot }) => {
            if !opts.allow_perturbation {
                return Err(Error::SingularMinor {
                    step: 0,
                    column: index,
                    hnorm: pivot,
                });
            }
            let Some(delta) = next_delta(&perturbations) else {
                return Ok(Attempt::NeedsLongerSchedule);
            };
            let mut blocks = t.first_block_row().to_vec();
            for i in 0..m {
                blocks[0][(i, i)] += delta * t_scale;
            }
            perturbations.push(Perturbation {
                step: 0,
                column: index,
                delta,
                hnorm_before: pivot,
            });
            metrics::incr(Counter::Perturbations);
            bs_probe::event!("perturbation", step = 0, column = index, delta = delta);
            let tp = SymBlockToeplitz::new(blocks);
            build_generator(&tp).map_err(Error::from)?
        }
        Err(e) => return Err(Error::from(e)),
    };

    let mut g = gen.data; // 2m × n working generator (explicit-shift layout)
    let mut w = gen.w; // evolving working signature (length 2m)

    let mut r = Matrix::zeros(n, n);
    let mut d = vec![1i8; n];
    // Emit block row 0.
    for j in 0..n {
        for i in 0..m {
            r[(i, j)] = g[(i, j)];
        }
    }
    d[..m].copy_from_slice(&w.0[..m]);

    let mut exchanges = 0usize;
    let mut max_norm = 1.0f64;

    for s in 1..p {
        let _step_span = bs_probe::span!("indef_step", step = s);
        metrics::incr(Counter::SchurSteps);
        // Phase 3 (explicit): shift the upper half right by one block.
        for j in (s * m..n).rev() {
            for i in 0..m {
                let v = g[(i, j - m)];
                g[(i, j)] = v;
            }
        }

        for k in 0..m {
            let c = s * m + k;
            // Build (or repair) the pivot reflector for column c. A
            // column can need at most one exchange plus a few escalating
            // perturbation retries.
            let mut attempts = 0;
            let mut local_delta_boost = 1.0f64;
            let refl = loop {
                attempts += 1;
                if attempts > 6 {
                    return Err(Error::SingularMinor {
                        step: s,
                        column: k,
                        hnorm: 0.0,
                    });
                }
                let u_top = g[(k, c)];
                let u_low: Vec<f64> = (0..m).map(|i| g[(m + i, c)]).collect();
                let (outcome, refl) =
                    PivotReflector::compute(u_top, &u_low, &w, m, k, opts.zero_tol, t_scale);
                match outcome {
                    PivotOutcome::Ok => break refl.expect("Ok carries reflector"),
                    PivotOutcome::WrongSign { hnorm } => {
                        // Exchange with the largest-magnitude lower row of
                        // the signature sign(h) = −w_k.
                        let want: i8 = if hnorm > 0.0 { 1 } else { -1 };
                        let mut best: Option<(usize, f64)> = None;
                        for (i, &v) in u_low.iter().enumerate() {
                            if w.sign(m + i) == want {
                                let mag = v.abs();
                                if best.map(|(_, b)| mag > b).unwrap_or(true) {
                                    best = Some((i, mag));
                                }
                            }
                        }
                        let Some((i, _)) = best else {
                            return Err(Error::NoExchangeCandidate { step: s, column: k });
                        };
                        let j_row = m + i;
                        // Swap rows k and j_row over the active columns.
                        for col in s * m..n {
                            let a = g[(k, col)];
                            let b = g[(j_row, col)];
                            g[(k, col)] = b;
                            g[(j_row, col)] = a;
                        }
                        w.0.swap(k, j_row);
                        exchanges += 1;
                        metrics::incr(Counter::Exchanges);
                    }
                    PivotOutcome::ZeroNorm { hnorm } => {
                        if !opts.allow_perturbation {
                            return Err(Error::SingularMinor {
                                step: s,
                                column: k,
                                hnorm,
                            });
                        }
                        // Retries at the same column escalate the same
                        // logical perturbation instead of consuming a new
                        // schedule slot.
                        let same_column = perturbations
                            .last()
                            .map(|pt| pt.step == s && pt.column == k)
                            .unwrap_or(false);
                        let delta = if same_column {
                            local_delta_boost *= 100.0;
                            let prev = perturbations.last().expect("same_column");
                            (prev.delta * local_delta_boost).min(1e-2)
                        } else {
                            local_delta_boost = 1.0;
                            match next_delta(&perturbations) {
                                Some(dv) => dv,
                                None => return Ok(Attempt::NeedsLongerSchedule),
                            }
                        };
                        // §8.2 recipe: scale the pivot entry by √(1+δ),
                        // making the hyperbolic norm ≈ w_k·δ·u_k².
                        let scale2: f64 = u_top * u_top + u_low.iter().map(|v| v * v).sum::<f64>();
                        if u_top * u_top > 1e-3 * scale2 && scale2 > opts.zero_tol * t_scale {
                            g[(k, c)] = u_top * (1.0 + delta).sqrt();
                        } else {
                            // Degenerate pivot entry: inject an absolute
                            // perturbation at the matrix scale.
                            g[(k, c)] = u_top + delta * t_scale.sqrt();
                        }
                        if same_column {
                            perturbations.last_mut().expect("same_column").delta = delta;
                        } else {
                            perturbations.push(Perturbation {
                                step: s,
                                column: k,
                                delta,
                                hnorm_before: hnorm,
                            });
                            metrics::incr(Counter::Perturbations);
                        }
                        bs_probe::event!("perturbation", step = s, column = k, delta = delta);
                    }
                }
            };
            max_norm = max_norm.max(refl.norm_est());
            metrics::incr(Counter::Reflectors);
            if stability::is_enabled() {
                // The column still holds its pre-elimination entries
                // here (finalization overwrites them just below).
                let mut cn = g[(k, c)] * g[(k, c)];
                for i in 0..m {
                    cn += g[(m + i, c)] * g[(m + i, c)];
                }
                stability::record_step(s, k, cn.sqrt(), refl.sigma * refl.sigma, refl.norm_est());
            }
            // Finalize column c and update the trailing columns.
            g[(k, c)] = -refl.sigma;
            for i in 0..m {
                g[(m + i, c)] = 0.0;
            }
            for col in c + 1..n {
                let (mut top, mut low) = (g[(k, col)], [0.0f64; 0].to_vec());
                low.clear();
                low.extend((0..m).map(|i| g[(m + i, col)]));
                refl.apply_split(&w, m, &mut top, &mut low);
                g[(k, col)] = top;
                for i in 0..m {
                    g[(m + i, col)] = low[i];
                }
            }
        }

        // Emit block row s with its signature.
        for j in s * m..n {
            for i in 0..m {
                r[(s * m + i, j)] = g[(i, j)];
            }
        }
        d[s * m..(s + 1) * m].copy_from_slice(&w.0[..m]);
    }

    // Positive diagonal normalization (row sign flips leave RᵀDR fixed)
    // and removal of O(ε) sub-diagonal roundoff.
    for i in 0..n {
        if r[(i, i)] < 0.0 {
            for j in i..n {
                r[(i, j)] = -r[(i, j)];
            }
        }
    }
    for j in 0..n {
        for i in j + 1..n {
            r[(i, j)] = 0.0;
        }
    }
    Ok(Attempt::Done(Box::new(IndefFactor {
        r,
        d,
        perturbations,
        exchanges,
        max_reflector_norm: max_norm,
        m,
        p,
    })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_toeplitz::workloads;

    fn check_reconstruction(t: &SymBlockToeplitz, f: &IndefFactor, tol: f64) {
        let rec = f.reconstruct();
        let dense = t.to_dense();
        let scale = t.norm_inf().max(1.0);
        let diff = rec.max_abs_diff(&dense);
        assert!(
            diff < tol * scale,
            "||R^T D R − T|| = {diff:e} (perturbations: {:?})",
            f.perturbations
        );
    }

    #[test]
    fn spd_input_reduces_to_cholesky() {
        let t = workloads::random_spd_scalar(16, 5);
        let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
        assert!(f.perturbations.is_empty());
        assert_eq!(f.exchanges, 0);
        assert!(f.d.iter().all(|&s| s > 0));
        check_reconstruction(&t, &f, 1e-12);
    }

    #[test]
    fn indefinite_scalar_factorizes_with_exchanges() {
        let t = workloads::random_indefinite_scalar(14, 7);
        let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
        assert!(
            f.exchanges > 0,
            "dominant off-diagonal must force exchanges"
        );
        assert!(f.perturbations.is_empty());
        check_reconstruction(&t, &f, 1e-10);
        // Inertia must match the true negative eigenvalue count
        // (Sylvester's law) — cross-check via dense LDLᵀ.
        let mut lfac = t.to_dense();
        let dd = bs_matrix::ldlt::ldlt_in_place(lfac.mt(), 0.0).unwrap();
        let neg = dd.iter().filter(|&&v| v < 0.0).count();
        assert_eq!(f.negative_inertia(), neg);
    }

    #[test]
    fn indefinite_block_factorizes() {
        let t = workloads::random_indefinite_block(2, 5, 21);
        let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
        check_reconstruction(&t, &f, 1e-9);
        assert!(f.negative_inertia() > 0);
    }

    #[test]
    fn paper_example_is_perturbed_once() {
        let t = workloads::paper_singular_minor_example();
        let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
        assert_eq!(f.perturbations.len(), 1, "{:?}", f.perturbations);
        assert_eq!(f.perturbations[0].step, 1);
        // The reflector norm after a perturbation is ≈ 1/δ (§8.2).
        // With the x = Wu + σe_j construction the elementary norm is
        // ≈ 2/√δ (the paper's printed U_(2) uses a different reflector
        // normalization with ‖U‖ ≈ 1/δ, but the resulting factor R is
        // the same by uniqueness of the triangular factorization).
        let delta = IndefOptions::default().effective_delta();
        assert!(
            f.max_reflector_norm > 0.1 / delta.sqrt(),
            "‖U‖ = {:e}, expected ≳ {:e}",
            f.max_reflector_norm,
            1.0 / delta.sqrt()
        );
        // The factorization reconstructs T only up to O(δ‖T‖).
        let rec = f.reconstruct();
        let diff = rec.max_abs_diff(&t.to_dense());
        assert!(diff < 50.0 * delta, "diff {diff:e}");
        assert!(diff > 1e-12, "perturbation must be visible");
    }

    #[test]
    fn paper_example_solution_error_matches_paper() {
        // §8.2: with x = 1⃗, ‖x − x₁‖ ≈ 3.6e−5 for δ = 1e−5.
        let t = workloads::paper_singular_minor_example();
        let opts = IndefOptions {
            delta: Some(1e-5),
            ..Default::default()
        };
        let f = factor_indefinite(&t, &opts).unwrap();
        let (b, x_true) = workloads::rhs_for_ones(&t);
        let x1 = f.solve(&b).unwrap();
        let err: f64 = x1
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        // Same order of magnitude as the paper's 3.6375e−5.
        assert!(
            err > 1e-7 && err < 1e-2,
            "first-solve error {err:e}, paper reports ≈ 3.6e−5"
        );
    }

    #[test]
    fn perturbation_disabled_reports_singular_minor() {
        let t = workloads::paper_singular_minor_example();
        let opts = IndefOptions {
            allow_perturbation: false,
            ..Default::default()
        };
        match factor_indefinite(&t, &opts) {
            Err(Error::SingularMinor { step: 1, .. }) => {}
            other => panic!("expected SingularMinor at step 1, got {other:?}"),
        }
    }

    #[test]
    fn random_singular_minor_matrices_factor() {
        for seed in 0..6 {
            let t = workloads::singular_minor_scalar(10, seed);
            let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
            assert!(
                !f.perturbations.is_empty(),
                "seed {seed}: singular minor must trigger a perturbation"
            );
            // Solvable and close after the (perturbed) direct solve.
            let (b, x_true) = workloads::rhs_for_ones(&t);
            let x = f.solve(&b).unwrap();
            let err: f64 = x
                .iter()
                .zip(&x_true)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-1, "seed {seed}: direct-solve error {err:e}");
        }
    }

    #[test]
    fn singular_leading_entry_perturbs_t1() {
        // t0 = 0: the leading 1x1 minor is singular.
        let t = SymBlockToeplitz::from_scalar_row(&[0.0, 1.0, 0.25]);
        let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
        assert!(f.perturbations.iter().any(|p| p.step == 0));
    }
}
