#![allow(clippy::needless_range_loop)]
// index-heavy numeric kernels read
// clearer with explicit indices when several parallel arrays are walked
// together; iterator-zip rewrites were measured to obscure, not improve.

//! The block Schur algorithm of Thirumalai, Gallivan & Van Dooren
//! (ICPP 1994): factorization of symmetric (block) Toeplitz matrices
//! `T = Rᵀ D R` by reducing the `2m × n` displacement generator with
//! (block) hyperbolic Householder reflectors.
//!
//! Crate layout mirrors the paper:
//!
//! - [`reflector`] — elementary hyperbolic Householder transformations
//!   `U_x = W − 2xxᵀ/(xᵀWx)` (§3), including the pivot-column variant
//!   with sparse support used by the Schur steps.
//! - [`rep`] — the four block representations of a product of reflectors
//!   (§4): naive accumulated `U`, the two `VY` forms, and the `YTYᵀ`
//!   form, each with production and level-3 application routines.
//! - [`panel`] — phase 1 of each Schur step: factoring the `2m × m`
//!   pivot panel into a block reflector (§6.2).
//! - [`schur`] — the SPD driver (§5-§6): explicit-shift and in-place
//!   variants, optional rayon parallel generator update, optional
//!   algorithmic block size `m_s ≠ m` (§6.5).
//! - [`indefinite`] — the extension to symmetric indefinite Toeplitz
//!   matrices with row exchanges and the `δ ≈ ε^{1/3}` perturbation for
//!   singular principal minors (§8).
//! - [`refine`] — iterative refinement driver and its convergence
//!   diagnostics (§8.1).
//! - [`solve`] — triangular solves with the `Rᵀ D R` factors.
//! - [`factor`] — the immutable, `Send + Sync` [`Factor`] every solve
//!   surface runs through, sharable behind an `Arc` by concurrent
//!   tenants, with per-call [`SolveScratch`] checkout.
//! - [`solver`] — the high-level [`ToeplitzSolver`] façade with
//!   automatic SPD/indefinite dispatch and warm refactoring.

pub mod contracts;
pub mod eliminate;
pub mod factor;
pub mod indefinite;
pub mod panel;
pub mod plan;
pub mod refine;
pub mod reflector;
pub mod rep;
pub mod schur;
pub mod solver;

/// Former home of the triangular-solve helpers, kept as a thin alias so
/// `bs_core::solve::solve_rtdr` callers keep compiling; the routines
/// live in [`solver`] now.
pub mod solve {
    pub use crate::solver::{reconstruct_rtdr, solve_rtdr};
}

pub use eliminate::{EngineScratch, PivotPolicy};
pub use factor::{Factor, SolveScratch};
pub use indefinite::{factor_indefinite, IndefFactor, IndefOptions, Perturbation};
pub use plan::{FactorPlan, PlanRequest, PlanWorkspace, Precision};
pub use refine::{solve_refined, RefineOptions, RefineResult};
pub use rep::RepKind;
pub use schur::{factor_spd, SchurOptions, SpdFactor};
pub use solver::{Factorization, SolverOptions, ToeplitzSolver};

/// Errors produced by the Schur drivers.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Underlying dense linear algebra failed (e.g. the leading block of
    /// an allegedly SPD matrix was not positive definite).
    Matrix(bs_matrix::Error),
    /// A pivot column had non-positive hyperbolic norm during the SPD
    /// factorization: the matrix is not positive definite.
    NotPositiveDefinite {
        step: usize,
        column: usize,
        hnorm: f64,
    },
    /// A pivot column's hyperbolic norm was (numerically) zero and
    /// perturbation was disabled: a principal minor is singular.
    SingularMinor {
        step: usize,
        column: usize,
        hnorm: f64,
    },
    /// The indefinite elimination needed an exchange but no generator
    /// row of the required signature was available.
    NoExchangeCandidate { step: usize, column: usize },
    /// An option combination was invalid (e.g. `m_s` not a multiple of
    /// `m` or not dividing `n`).
    InvalidOptions(String),
    /// A caller-supplied operand had the wrong size for the factored
    /// system (right-hand side length, signature length, or a matrix
    /// with a different order/block size than the plan was built for).
    DimensionMismatch {
        /// What was being checked (e.g. `"rhs length"`).
        context: &'static str,
        expected: usize,
        found: usize,
    },
}

impl From<bs_matrix::Error> for Error {
    fn from(e: bs_matrix::Error) -> Self {
        Error::Matrix(e)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Matrix(e) => write!(f, "dense kernel failure: {e}"),
            Error::NotPositiveDefinite { step, column, hnorm } => write!(
                f,
                "pivot column {column} at step {step} has non-positive hyperbolic norm {hnorm:e}: matrix is not positive definite"
            ),
            Error::SingularMinor { step, column, hnorm } => write!(
                f,
                "pivot column {column} at step {step} has zero hyperbolic norm {hnorm:e}: singular principal minor (enable perturbation to continue)"
            ),
            Error::NoExchangeCandidate { step, column } => write!(
                f,
                "no exchange row with matching signature for column {column} at step {step}"
            ),
            Error::InvalidOptions(msg) => write!(f, "invalid options: {msg}"),
            Error::DimensionMismatch {
                context,
                expected,
                found,
            } => write!(f, "dimension mismatch: {context} expected {expected}, found {found}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
