//! The unified generator-elimination engine behind both factorization
//! drivers.
//!
//! Historically `schur.rs` (SPD, §5–§6) and `indefinite.rs` (§8)
//! each carried their own copy of the `p − 1`-step elimination loop.
//! The loops differ only in *pivot policy*:
//!
//! - [`PivotPolicy::SpdStrict`] — a pivot column whose hyperbolic norm
//!   is non-positive aborts (`NotPositiveDefinite` / `SingularMinor`).
//!   Blocked level-3 trailing updates and the in-place §6.4 column
//!   pairing apply.
//! - [`PivotPolicy::Exchange`] — wrong-signed pivots trigger a row
//!   exchange with a matching-signature lower generator row, and
//!   numerically zero pivots are repaired by the §8.2 graded
//!   δ-perturbation. Exchanges do not commute past the blocked
//!   representations, so the trailing update is per-reflector.
//!
//! Both kernels live here now, share the panel / reflector / diagonal
//! normalization machinery, and thread every working buffer through a
//! caller-owned [`Workspace`] + [`EngineScratch`] pair so a warm engine
//! (one that has already factored a same-shaped system) performs **zero
//! heap allocations inside the elimination loop**. The public
//! `factor_spd` / `factor_indefinite` entry points are thin wrappers
//! that run the same kernels with fresh state — the plan/execute path
//! is bitwise-identical to them because pooled buffers are zero-filled
//! on checkout, exactly like the fresh allocations they replaced.

use crate::indefinite::{IndefFactor, IndefOptions, Perturbation};
use crate::panel::{factor_panel_into, PanelScratch};
use crate::reflector::{PivotOutcome, PivotReflector};
use crate::rep::BlockReflector;
use crate::schur::SchurOptions;
use crate::{Error, Result};
use bs_matrix::ldlt::Signature;
use bs_matrix::{MatRef, Matrix, Scalar, Workspace};
use bs_probe::metrics::{self, Counter};
use bs_probe::stability;
use bs_toeplitz::{build_generator, SymBlockToeplitz};
use std::borrow::Cow;

/// How the elimination treats a pivot column whose hyperbolic norm is
/// not strictly positive — the single axis along which the SPD and
/// indefinite Schur algorithms differ.
#[derive(Clone, Debug)]
pub enum PivotPolicy {
    /// Any non-positive pivot aborts the factorization (§5: the input
    /// must be symmetric positive definite).
    SpdStrict,
    /// Wrong-signed pivots are repaired by row exchanges and singular
    /// minors by the graded δ-perturbation of §8.2, per the carried
    /// [`IndefOptions`].
    Exchange(IndefOptions),
}

impl PivotPolicy {
    /// `true` for the strict SPD policy.
    pub fn is_spd(&self) -> bool {
        matches!(self, PivotPolicy::SpdStrict)
    }
}

/// Reusable engine state: the per-chunk block reflectors, the panel
/// scratch, and the per-column buffers of the indefinite kernel. One
/// instance per plan/solver; fresh instances reproduce the historical
/// allocate-per-call behavior exactly.
#[derive(Debug)]
pub struct EngineScratch<T: Scalar = f64> {
    /// Panel-factorization scratch (pivot reflector, source column,
    /// representation-update buffers).
    panel: PanelScratch<T>,
    /// Chunk block reflectors, reused across steps via `reset`.
    reps: Vec<BlockReflector<T>>,
    /// The indefinite kernel's elementary reflector.
    refl: PivotReflector<T>,
    /// Pivot-column lower half (indefinite kernel).
    u_low: Vec<T>,
    /// Trailing-update column buffer (indefinite kernel).
    low: Vec<T>,
    /// Pool for the indefinite factor's signature vector `d`: retired
    /// factors donate theirs back so warm refactors reuse the storage.
    sig_pool: Vec<i8>,
    /// Pool for the perturbation log, recycled the same way.
    pert_pool: Vec<Perturbation>,
}

impl<T: Scalar> Default for EngineScratch<T> {
    fn default() -> Self {
        EngineScratch {
            panel: PanelScratch::default(),
            reps: Vec::new(),
            refl: PivotReflector::empty(),
            u_low: Vec::new(),
            low: Vec::new(),
            sig_pool: Vec::new(),
            pert_pool: Vec::new(),
        }
    }
}

impl<T: Scalar> EngineScratch<T> {
    /// Donate a retired indefinite factor's owned vectors back to the
    /// scratch pools so the next `eliminate_indefinite` run reuses the
    /// storage instead of allocating.
    pub fn donate_indefinite(&mut self, d: Vec<i8>, perturbations: Vec<Perturbation>) {
        if d.capacity() > self.sig_pool.capacity() {
            self.sig_pool = d;
        }
        if perturbations.capacity() > self.pert_pool.capacity() {
            self.pert_pool = perturbations;
        }
    }
}

/// Validate and apply an algorithmic-block-size override: `m_s` must be
/// a positive multiple of the structural block size and divide `n`.
pub(crate) fn retiled<'a, T: Scalar>(
    t: &'a SymBlockToeplitz<T>,
    block_size: Option<usize>,
) -> Result<Cow<'a, SymBlockToeplitz<T>>> {
    let Some(ms) = block_size else {
        return Ok(Cow::Borrowed(t));
    };
    if ms == 0 || ms % t.block_size() != 0 {
        return Err(Error::InvalidOptions(format!(
            "m_s = {ms} is not a positive multiple of m = {}",
            t.block_size()
        )));
    }
    if !t.order().is_multiple_of(ms) {
        return Err(Error::InvalidOptions(format!(
            "m_s = {ms} does not divide n = {}",
            t.order()
        )));
    }
    Ok(Cow::Owned(t.retile(ms)))
}

/// Receiver for emitted factor block rows: `sink(s, m, n, row)` gets
/// block-row `s` of the factor at algorithmic block size `m`.
pub(crate) type RowSink<'a, T> = dyn FnMut(usize, usize, usize, MatRef<'_, T>) + 'a;

/// SPD elimination kernel (phases 1–3 of §6). `t_ref` must already be
/// retiled to the algorithmic block size (see [`retiled`]). Emits each
/// factor block row through `sink(s, m, n, row)`; rows are *not*
/// sign-normalized. Returns `(m, p, comm_words_per_step)`.
///
/// All working storage (generator halves, panel buffer, trailing-update
/// temporaries) is checked out of `ws` and returned before this
/// function exits — even on error — so a warm workspace makes the whole
/// loop allocation-free.
pub(crate) fn eliminate_spd<T: Scalar>(
    t_ref: &SymBlockToeplitz<T>,
    opts: &SchurOptions,
    ws: &mut Workspace<T>,
    scratch: &mut EngineScratch<T>,
    sink: &mut RowSink<'_, T>,
) -> Result<(usize, usize, usize)> {
    let m = t_ref.block_size();
    let p = t_ref.num_blocks();
    let n = m * p;
    let _span = bs_probe::span!("factor_spd", n = n, m = m, p = p);
    let ws_entry = ws.outstanding();

    let gen = build_generator(t_ref)?;
    if !gen.is_spd_signature() {
        return Err(Error::NotPositiveDefinite {
            step: 0,
            column: 0,
            hnorm: -1.0,
        });
    }
    let w = Signature::hyperbolic(m);

    // Split the generator into its two halves.
    let mut gu = ws.take_matrix(m, n);
    let mut gl = ws.take_matrix(m, n);
    gu.mt().copy_from(gen.data.sub(0, 0, m, n));
    gl.mt().copy_from(gen.data.sub(m, 0, m, n));

    // R block row 0 is the untransformed upper generator half.
    sink(0, m, n, gu.rf());

    let mut comm_words = 0usize;
    let mut panel_buf = ws.take_matrix(2 * m, m);
    let scale = t_ref.norm_inf().max(1.0);
    stability::set_scale(scale);

    let mut failure: Option<Error> = None;
    'steps: for s in 1..p {
        let width = (p - s) * m; // active upper width this step
        let _step_span = bs_probe::span!("schur_step", step = s, width = width);
        let step_flops0 = if bs_probe::trace::is_enabled() {
            bs_matrix::flops::total()
        } else {
            0
        };
        let step_t0 = bs_probe::histogram::is_enabled().then(std::time::Instant::now);
        metrics::incr(Counter::SchurSteps);

        if opts.explicit_shift {
            // Phase 3 (explicit): move the upper row right by one block.
            let mut shift_buf = ws.take_matrix(m, m);
            for j in (s..p).rev() {
                shift_buf.mt().copy_from(gu.sub(0, (j - 1) * m, m, m));
                gu.sub_mut(0, j * m, m, m).copy_from(shift_buf.rf());
            }
            ws.give_matrix(shift_buf);
        }
        // Column index of the pivot (and trailing) data in each half.
        let (up_piv, up_trail) = if opts.explicit_shift {
            (s * m, (s + 1) * m)
        } else {
            (0, m)
        };
        let low_piv = s * m;

        // Phase 1: assemble and factor the pivot panel.
        let panel_flops0 = if bs_probe::trace::is_enabled() {
            bs_matrix::flops::total()
        } else {
            0
        };
        let panel_span = bs_probe::span!("factor_panel", step = s);
        panel_buf
            .sub_mut(0, 0, m, m)
            .copy_from(gu.sub(0, up_piv, m, m));
        panel_buf
            .sub_mut(m, 0, m, m)
            .copy_from(gl.sub(0, low_piv, m, m));
        let k_block = opts.two_level.unwrap_or(m).clamp(1, m);
        if let Err(e) = factor_panel_into(
            panel_buf.mt(),
            &w,
            opts.rep,
            s,
            opts.zero_tol,
            scale,
            k_block,
            &mut scratch.reps,
            &mut scratch.panel,
            ws,
        ) {
            failure = Some(e);
            break 'steps;
        }
        let step_words: usize = scratch.reps.iter().map(|r| r.comm_words()).sum();
        comm_words = comm_words.max(step_words);
        metrics::add(Counter::CommWords, step_words as u64);
        gu.sub_mut(0, up_piv, m, m)
            .copy_from(panel_buf.sub(0, 0, m, m));
        gl.sub_mut(0, low_piv, m, m).fill(T::ZERO);
        drop(panel_span);
        if bs_probe::trace::is_enabled() {
            bs_probe::event!(
                "panel_done",
                step = s,
                flops = (bs_matrix::flops::total() - panel_flops0),
            );
        }

        // Phase 2: trailing update on the paired column ranges, one
        // chunk transformation after the other.
        let trail = width - m;
        if trail > 0 {
            let apply_flops0 = if bs_probe::trace::is_enabled() {
                bs_matrix::flops::total()
            } else {
                0
            };
            let apply_span = bs_probe::span!("apply_rep", step = s, cols = trail);
            for rep in &scratch.reps {
                rep.apply_split_ws(
                    gu.sub_mut(0, up_trail, m, trail),
                    gl.sub_mut(0, low_piv + m, m, trail),
                    &opts.exec,
                    ws,
                );
            }
            drop(apply_span);
            if bs_probe::trace::is_enabled() {
                bs_probe::event!(
                    "apply_done",
                    step = s,
                    flops = (bs_matrix::flops::total() - apply_flops0),
                );
            }
        }

        // Emit R block row s.
        let src_col = if opts.explicit_shift { s * m } else { 0 };
        sink(s, m, n, gu.sub(0, src_col, m, width));

        if bs_probe::trace::is_enabled() {
            bs_probe::event!(
                "schur_step_done",
                step = s,
                flops = (bs_matrix::flops::total() - step_flops0),
                growth = bs_probe::stability::peak_growth(),
            );
        }
        if let Some(t0) = step_t0 {
            bs_probe::histogram::record(
                bs_probe::Hist::FactorStepNs,
                t0.elapsed().as_nanos() as u64,
            );
        }
    }

    ws.give_matrix(panel_buf);
    ws.give_matrix(gu);
    ws.give_matrix(gl);
    // paranoid: every scratch checkout must be back in the pool here,
    // success or failure.
    ws.contract_region("eliminate_spd", ws_entry, 0);
    match failure {
        Some(e) => Err(e),
        None => Ok((m, p, comm_words)),
    }
}

/// Outcome of one indefinite elimination pass under a fixed δ-schedule.
pub(crate) enum Attempt<T: Scalar = f64> {
    Done(Box<IndefFactor<T>>),
    /// More singular minors were met than the schedule covers: restart
    /// with a longer schedule (§8.2's backtracking).
    NeedsLongerSchedule,
}

/// Indefinite elimination kernel (§8): the exchange + perturbation
/// pivot policy, per-reflector trailing updates, explicit-shift
/// generator layout. `schedule[i]` is the δ used for the i-th
/// perturbation. The factor matrix `R` is checked out of `ws` (and
/// returned to it on every non-`Done` exit), so a solver that donates
/// retired factors back to the pool runs warm passes allocation-free
/// apart from the generator build.
pub(crate) fn eliminate_indefinite<T: Scalar>(
    t: &SymBlockToeplitz<T>,
    opts: &IndefOptions,
    schedule: &[f64],
    ws: &mut Workspace<T>,
    scratch: &mut EngineScratch<T>,
) -> Result<Attempt<T>> {
    let m = t.block_size();
    let p = t.num_blocks();
    let n = m * p;
    let _span = bs_probe::span!("factor_indefinite", n = n, m = m, p = p);
    let ws_entry = ws.outstanding();
    let mut perturbations: Vec<Perturbation> = std::mem::take(&mut scratch.pert_pool);
    perturbations.clear();
    let next_delta = |perts: &[Perturbation]| -> Option<f64> { schedule.get(perts.len()).copied() };

    // Generator; if the leading block itself has a singular minor,
    // perturb the whole diagonal of T (δT = δ·s·I keeps T symmetric
    // Toeplitz because T̂₁ sits on the entire block diagonal).
    let t_scale = t.norm_inf().max(1.0);
    stability::set_scale(t_scale);
    let gen = match build_generator(t) {
        Ok(g) => g,
        Err(bs_matrix::Error::SingularPivot { index, pivot }) => {
            if !opts.allow_perturbation {
                return Err(Error::SingularMinor {
                    step: 0,
                    column: index,
                    hnorm: pivot,
                });
            }
            let Some(delta) = next_delta(&perturbations) else {
                scratch.pert_pool = perturbations;
                return Ok(Attempt::NeedsLongerSchedule);
            };
            // bs-lint: allow(no-alloc-hot) -- singular-leading-minor repair, runs at most once per factorization
            let mut blocks = t.first_block_row().to_vec();
            for i in 0..m {
                blocks[0][(i, i)] += T::from_f64(delta * t_scale);
            }
            perturbations.push(Perturbation {
                step: 0,
                column: index,
                delta,
                hnorm_before: pivot,
            });
            metrics::incr(Counter::Perturbations);
            bs_probe::event!("perturbation", step = 0, column = index, delta = delta);
            let tp = SymBlockToeplitz::new(blocks);
            build_generator(&tp).map_err(Error::from)?
        }
        Err(e) => return Err(Error::from(e)),
    };

    let mut g = gen.data; // 2m × n working generator (explicit-shift layout)
    let mut w = gen.w; // evolving working signature (length 2m)
                       // paranoid: exchanges only permute W, so its entry sum is an
                       // invariant of the elimination (checked per step below).
    let w_sum: i64 = w.0.iter().map(|&x| i64::from(x)).sum();

    let mut r = ws.take_matrix(n, n);
    let mut d = std::mem::take(&mut scratch.sig_pool);
    d.clear();
    d.resize(n, 1i8);
    // Emit block row 0.
    for j in 0..n {
        for i in 0..m {
            r[(i, j)] = g[(i, j)];
        }
    }
    d[..m].copy_from_slice(&w.0[..m]);

    let mut exchanges = 0usize;
    let mut max_norm = 1.0f64;

    for s in 1..p {
        let _step_span = bs_probe::span!("indef_step", step = s);
        let step_flops0 = if bs_probe::trace::is_enabled() {
            bs_matrix::flops::total()
        } else {
            0
        };
        let step_t0 = bs_probe::histogram::is_enabled().then(std::time::Instant::now);
        metrics::incr(Counter::SchurSteps);
        // Phase 3 (explicit): shift the upper half right by one block.
        for j in (s * m..n).rev() {
            for i in 0..m {
                let v = g[(i, j - m)];
                g[(i, j)] = v;
            }
        }

        for k in 0..m {
            let c = s * m + k;
            // Build (or repair) the pivot reflector for column c. A
            // column can need at most one exchange plus a few escalating
            // perturbation retries.
            let mut attempts = 0;
            let mut local_delta_boost = 1.0f64;
            loop {
                attempts += 1;
                if attempts > 6 {
                    ws.give_matrix(r);
                    return Err(Error::SingularMinor {
                        step: s,
                        column: k,
                        hnorm: 0.0,
                    });
                }
                let u_top = g[(k, c)];
                scratch.u_low.clear();
                scratch.u_low.extend((0..m).map(|i| g[(m + i, c)]));
                let outcome = PivotReflector::compute_into(
                    u_top,
                    &scratch.u_low,
                    &w,
                    m,
                    k,
                    opts.zero_tol,
                    t_scale,
                    &mut scratch.refl,
                );
                match outcome {
                    PivotOutcome::Ok => break,
                    PivotOutcome::WrongSign { hnorm } => {
                        // Exchange with the largest-magnitude lower row of
                        // the signature sign(h) = −w_k.
                        let want: i8 = if hnorm > 0.0 { 1 } else { -1 };
                        let mut best: Option<(usize, T)> = None;
                        for (i, &v) in scratch.u_low.iter().enumerate() {
                            if w.sign(m + i) == want {
                                let mag = v.abs();
                                if best.map(|(_, b)| mag > b).unwrap_or(true) {
                                    best = Some((i, mag));
                                }
                            }
                        }
                        let Some((i, _)) = best else {
                            ws.give_matrix(r);
                            return Err(Error::NoExchangeCandidate { step: s, column: k });
                        };
                        let j_row = m + i;
                        // Swap rows k and j_row over the active columns.
                        for col in s * m..n {
                            let a = g[(k, col)];
                            let b = g[(j_row, col)];
                            g[(k, col)] = b;
                            g[(j_row, col)] = a;
                        }
                        w.0.swap(k, j_row);
                        exchanges += 1;
                        metrics::incr(Counter::Exchanges);
                    }
                    PivotOutcome::ZeroNorm { hnorm } => {
                        if !opts.allow_perturbation {
                            ws.give_matrix(r);
                            return Err(Error::SingularMinor {
                                step: s,
                                column: k,
                                hnorm,
                            });
                        }
                        // Retries at the same column escalate the same
                        // logical perturbation instead of consuming a new
                        // schedule slot.
                        let prev_delta = perturbations
                            .last()
                            .filter(|pt| pt.step == s && pt.column == k)
                            .map(|pt| pt.delta);
                        let delta = match prev_delta {
                            Some(prev) => {
                                local_delta_boost *= 100.0;
                                (prev * local_delta_boost).min(1e-2)
                            }
                            None => {
                                local_delta_boost = 1.0;
                                match next_delta(&perturbations) {
                                    Some(dv) => dv,
                                    None => {
                                        ws.give_matrix(r);
                                        scratch.sig_pool = d;
                                        scratch.pert_pool = perturbations;
                                        ws.contract_region("eliminate_indefinite", ws_entry, 0);
                                        return Ok(Attempt::NeedsLongerSchedule);
                                    }
                                }
                            }
                        };
                        // §8.2 recipe: scale the pivot entry by √(1+δ),
                        // making the hyperbolic norm ≈ w_k·δ·u_k².
                        let scale2 = (u_top * u_top
                            + scratch.u_low.iter().fold(T::ZERO, |acc, &v| acc + v * v))
                        .to_f64();
                        if (u_top * u_top).to_f64() > 1e-3 * scale2
                            && scale2 > opts.zero_tol * t_scale
                        {
                            g[(k, c)] = u_top * T::from_f64((1.0 + delta).sqrt());
                        } else {
                            // Degenerate pivot entry: inject an absolute
                            // perturbation at the matrix scale.
                            g[(k, c)] = u_top + T::from_f64(delta * t_scale.sqrt());
                        }
                        match perturbations.last_mut() {
                            Some(pt) if prev_delta.is_some() => pt.delta = delta,
                            _ => {
                                perturbations.push(Perturbation {
                                    step: s,
                                    column: k,
                                    delta,
                                    hnorm_before: hnorm,
                                });
                                metrics::incr(Counter::Perturbations);
                            }
                        }
                        bs_probe::event!("perturbation", step = s, column = k, delta = delta);
                    }
                }
            }
            let refl = &scratch.refl;
            crate::contracts::hyperbolic_existence(s, k, refl.sigma.to_f64(), refl.beta.to_f64());
            max_norm = max_norm.max(refl.norm_est());
            metrics::incr(Counter::Reflectors);
            if stability::is_enabled() {
                // The column still holds its pre-elimination entries
                // here (finalization overwrites them just below).
                let mut cn = g[(k, c)] * g[(k, c)];
                for i in 0..m {
                    cn += g[(m + i, c)] * g[(m + i, c)];
                }
                stability::record_step(
                    s,
                    k,
                    cn.to_f64().sqrt(),
                    (refl.sigma * refl.sigma).to_f64(),
                    refl.norm_est(),
                );
            }
            // Finalize column c and update the trailing columns.
            g[(k, c)] = -refl.sigma;
            for i in 0..m {
                g[(m + i, c)] = T::ZERO;
            }
            for col in c + 1..n {
                let mut top = g[(k, col)];
                scratch.low.clear();
                scratch.low.extend((0..m).map(|i| g[(m + i, col)]));
                refl.apply_split(&w, m, &mut top, &mut scratch.low);
                g[(k, col)] = top;
                for i in 0..m {
                    g[(m + i, col)] = scratch.low[i];
                }
            }
        }

        // Emit block row s with its signature.
        for j in s * m..n {
            for i in 0..m {
                r[(s * m + i, j)] = g[(i, j)];
            }
        }
        d[s * m..(s + 1) * m].copy_from_slice(&w.0[..m]);
        crate::contracts::signature_consistency(&w.0, w_sum, s);
        if bs_probe::trace::is_enabled() {
            bs_probe::event!(
                "indef_step_done",
                step = s,
                flops = (bs_matrix::flops::total() - step_flops0),
                growth = bs_probe::stability::peak_growth(),
            );
        }
        if let Some(t0) = step_t0 {
            bs_probe::histogram::record(
                bs_probe::Hist::FactorStepNs,
                t0.elapsed().as_nanos() as u64,
            );
        }
    }

    // Positive diagonal normalization (row sign flips leave RᵀDR fixed)
    // and removal of O(ε) sub-diagonal roundoff.
    normalize_diagonal(&mut r);
    // paranoid: the factor keeps `r` checked out, so the balance delta
    // across a completed elimination is exactly +1.
    ws.contract_region("eliminate_indefinite", ws_entry, 1);
    // bs-lint: allow(no-alloc-hot) -- one Box per completed factorization (the return value), not per solve
    Ok(Attempt::Done(Box::new(IndefFactor {
        r,
        d,
        perturbations,
        exchanges,
        max_reflector_norm: max_norm,
        m,
        p,
    })))
}

/// Flip the sign of rows whose diagonal is negative so `R` has a
/// positive diagonal (`RᵀR` / `RᵀDR` are invariant under row sign
/// changes), and zero the strict lower triangle — within each emitted
/// diagonal block the sub-diagonal entries are exact zeros in exact
/// arithmetic but carry `O(ε)` roundoff from the level-3 updates.
pub(crate) fn normalize_diagonal<T: Scalar>(r: &mut Matrix<T>) {
    let n = r.rows();
    for i in 0..n {
        if r[(i, i)] < T::ZERO {
            for j in i..n {
                r[(i, j)] = -r[(i, j)];
            }
        }
    }
    for j in 0..n {
        for i in j + 1..n {
            r[(i, j)] = T::ZERO;
        }
    }
}
