//! The immutable, shareable factorization handle.
//!
//! [`Factor`] is the "factor once, serve forever" half of the solver
//! split: it owns the system copy, the [`FactorPlan`], the triangular
//! factorization, and the refinement config — and nothing mutable.
//! Every solve surface takes `&self`, so a `Factor` behind an [`Arc`]
//! can serve interleaved solves from any number of threads, with
//! results bitwise identical to a sequential run (each column runs the
//! identical per-column arithmetic regardless of which thread or
//! tenant issues it).
//!
//! Per-call mutable state lives in [`SolveScratch`], checked out from
//! the factor's embedded [`WorkspacePool`]: a serving loop stages its
//! right-hand sides and solutions in pooled buffers, so the steady
//! state request path performs no heap allocation. The historical
//! mutable façade ([`crate::ToeplitzSolver`]) is now a thin wrapper
//! that adds warm-refactor support on top of this type.
//!
//! [`Arc`]: std::sync::Arc

use crate::indefinite::IndefFactor;
use crate::plan::{FactorPlan, PlanRequest, PlanWorkspace, Precision};
use crate::refine::{solve_refined, RefineOptions};
use crate::solver::{solve_rtdr_in_place, Factorization, SolverOptions};
use crate::{Error, Result};
use bs_matrix::pool::{PooledWorkspace, WorkspacePool};
use bs_matrix::{par, ExecPolicy, Matrix, Workspace};
use bs_toeplitz::SymBlockToeplitz;
use std::sync::{Mutex, OnceLock};

/// An immutable factored symmetric (block) Toeplitz operator.
///
/// All solve methods take `&self`; `Factor` is `Send + Sync` and is
/// designed to be shared behind an `Arc` by concurrent tenants:
///
/// ```
/// use bs_core::Factor;
/// use bs_toeplitz::workloads;
/// use std::sync::Arc;
///
/// let t = workloads::kms(32, 0.6);
/// let (b, x_true) = workloads::rhs_for_ones(&t);
/// let f = Arc::new(Factor::new(&t).unwrap());
/// let handles: Vec<_> = (0..4)
///     .map(|_| {
///         let (f, b) = (Arc::clone(&f), b.clone());
///         std::thread::spawn(move || f.solve(&b).unwrap())
///     })
///     .collect();
/// for h in handles {
///     let x = h.join().unwrap();
///     assert!((x[0] - x_true[0]).abs() < 1e-8);
/// }
/// ```
#[derive(Debug)]
#[must_use]
pub struct Factor {
    pub(crate) t: SymBlockToeplitz,
    pub(crate) plan: FactorPlan,
    pub(crate) factorization: Factorization,
    pub(crate) refine: RefineOptions,
    /// Lazily-computed full-f64 factorization, used only when a
    /// [`Precision::Mixed`] solve's refinement stalls on the promoted
    /// f32 factor. Reset by [`crate::ToeplitzSolver::refactor`].
    pub(crate) fallback: OnceLock<Factorization>,
    /// Per-call scratch arenas for concurrent tenants.
    pub(crate) pool: WorkspacePool,
}

// The whole point of the split: a factor is shareable across threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Factor>();
};

impl Clone for Factor {
    /// Clones the system, plan, and factorization; the clone starts
    /// with a cold scratch pool of its own.
    fn clone(&self) -> Self {
        Factor {
            t: self.t.clone(),
            plan: self.plan.clone(),
            factorization: self.factorization.clone(),
            refine: self.refine.clone(),
            fallback: OnceLock::new(),
            pool: WorkspacePool::new(),
        }
    }
}

impl Factor {
    /// Factor `t` with default options: SPD fast path, indefinite
    /// fallback with `δ = ε^{1/3}` perturbation.
    pub fn new(t: &SymBlockToeplitz) -> Result<Self> {
        Self::with_options(t, &SolverOptions::default())
    }

    /// Factor `t` with explicit options (no cost-model auto-selection).
    pub fn with_options(t: &SymBlockToeplitz, opts: &SolverOptions) -> Result<Self> {
        let plan = FactorPlan::from_options(t, &opts.spd, &opts.indefinite)?;
        Self::from_plan(t, plan, opts.refine.clone())
    }

    /// Factor `t` under a [`PlanRequest`]: fields left `None` are
    /// chosen by the `bs-perfmodel` cost formulas.
    pub fn with_plan_request(t: &SymBlockToeplitz, req: &PlanRequest) -> Result<Self> {
        let plan = FactorPlan::new(t, req)?;
        Self::from_plan(t, plan, RefineOptions::default())
    }

    /// Factor `t` with a pre-built plan, using a throwaway workspace.
    pub fn from_plan(
        t: &SymBlockToeplitz,
        plan: FactorPlan,
        refine: RefineOptions,
    ) -> Result<Self> {
        let mut workspace = PlanWorkspace::new();
        Self::from_plan_with(t, plan, refine, &mut workspace)
    }

    /// Factor `t` with a pre-built plan drawing scratch from `ws` (the
    /// warm path [`crate::ToeplitzSolver`] uses so repeated
    /// factorizations reuse one arena).
    pub(crate) fn from_plan_with(
        t: &SymBlockToeplitz,
        plan: FactorPlan,
        refine: RefineOptions,
        ws: &mut PlanWorkspace,
    ) -> Result<Self> {
        let _span = bs_probe::span!("factor", n = t.order(), m = t.block_size());
        let factorization = plan.execute(t, ws)?;
        Ok(Factor {
            t: t.clone(),
            plan,
            factorization,
            refine,
            fallback: OnceLock::new(),
            pool: WorkspacePool::new(),
        })
    }

    /// The factored operator (the solver's own copy of the generator).
    pub fn operator(&self) -> &SymBlockToeplitz {
        &self.t
    }

    /// Matrix order `n`.
    pub fn order(&self) -> usize {
        self.t.order()
    }

    /// Structural block size `m`.
    pub fn block_size(&self) -> usize {
        self.t.block_size()
    }

    /// The execution plan in use.
    pub fn plan(&self) -> &FactorPlan {
        &self.plan
    }

    /// The factorization in use.
    pub fn factorization(&self) -> &Factorization {
        &self.factorization
    }

    /// The refinement options applied on perturbed factorizations.
    pub fn refine_options(&self) -> &RefineOptions {
        &self.refine
    }

    /// The concurrent scratch pool backing [`scratch`](Self::scratch).
    pub fn scratch_pool(&self) -> &WorkspacePool {
        &self.pool
    }

    /// Check out a per-call scratch arena. The arena returns to the
    /// factor's pool when the [`SolveScratch`] drops, so a serving loop
    /// reaches an allocation-free steady state: stage the RHS in
    /// pooled buffers, solve into pooled buffers, give them back.
    pub fn scratch(&self) -> SolveScratch<'_> {
        SolveScratch {
            ws: self.pool.checkout(),
        }
    }

    /// `true` when the SPD fast path succeeded.
    pub fn is_positive_definite(&self) -> bool {
        match &self.factorization {
            Factorization::Spd(_) => true,
            Factorization::Indefinite(f) => f.perturbations.is_empty() && f.negative_inertia() == 0,
        }
    }

    /// `(n₊, n₋)` — counts of positive/negative eigenvalues of the
    /// factored matrix (Sylvester's law of inertia; exact when no
    /// perturbation fired, otherwise the inertia of `T + δT`).
    pub fn inertia(&self) -> (usize, usize) {
        let n = self.t.order();
        match &self.factorization {
            Factorization::Spd(_) => (n, 0),
            Factorization::Indefinite(f) => {
                let neg = f.negative_inertia();
                (n - neg, neg)
            }
        }
    }

    /// `(sign, ln|det T|)` computed from the triangular factor:
    /// `det T = (Π dᵢ) · (Π rᵢᵢ)²`.
    pub fn det_sign_ln(&self) -> (f64, f64) {
        let (r, d): (&Matrix, Option<&[i8]>) = match &self.factorization {
            Factorization::Spd(f) => (&f.r, None),
            Factorization::Indefinite(f) => (&f.r, Some(&f.d)),
        };
        let n = r.rows();
        let mut ln = 0.0;
        let mut sign = 1.0;
        for i in 0..n {
            ln += 2.0 * r[(i, i)].ln();
            if let Some(d) = d {
                if d[i] < 0 {
                    sign = -sign;
                }
            }
        }
        (sign, ln)
    }

    /// Solve `T x = b`. On the perturbed path the answer is refined to
    /// working accuracy (typically two extra matvec+solve rounds, §8.1).
    ///
    /// Under [`Precision::Mixed`] the promoted f32 factor plays the
    /// role of the perturbed factorization `Rᵀ D R` of `T + δT` (here
    /// `δT` is the f32 rounding backward error), so every solve runs
    /// the same §8.1 refinement against the f64 operator. When
    /// refinement stalls before the residual bound is met, the solver
    /// falls back to a lazily-computed full-f64 factorization, counted
    /// in `Counter::MixedStallFallbacks`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.t.order();
        if b.len() != n {
            return Err(Error::DimensionMismatch {
                context: "right-hand side length",
                expected: n,
                found: b.len(),
            });
        }
        let mut x = vec![0.0; n];
        self.solve_col_into(b, &mut x)?;
        Ok(x)
    }

    /// The unified per-column solve path every surface ([`solve`],
    /// [`solve_many`], [`solve_batch`], and the serve layer's pooled
    /// request loop) runs through. Writes the solution for the single
    /// right-hand side `b` into `x` without allocating on the direct
    /// (unperturbed) path.
    ///
    /// [`solve`]: Self::solve
    /// [`solve_many`]: Self::solve_many
    /// [`solve_batch`]: Self::solve_batch
    pub fn solve_col_into(&self, b: &[f64], x: &mut [f64]) -> Result<()> {
        let n = self.t.order();
        if b.len() != n {
            return Err(Error::DimensionMismatch {
                context: "right-hand side length",
                expected: n,
                found: b.len(),
            });
        }
        if x.len() != n {
            return Err(Error::DimensionMismatch {
                context: "solution length",
                expected: n,
                found: x.len(),
            });
        }
        let _span = bs_probe::span!("solve", n = n);
        let t0 = bs_probe::histogram::is_enabled().then(std::time::Instant::now);
        let out = self.dispatch_col_into(b, x);
        if let Some(t0) = t0 {
            bs_probe::histogram::record(bs_probe::Hist::SolveNs, t0.elapsed().as_nanos() as u64);
        }
        out
    }

    fn dispatch_col_into(&self, b: &[f64], x: &mut [f64]) -> Result<()> {
        match &self.factorization {
            Factorization::Spd(f) => {
                x.copy_from_slice(b);
                solve_rtdr_in_place(&f.r, None, x)
            }
            Factorization::Indefinite(f) => match self.plan.precision() {
                Precision::Mixed => {
                    let res = solve_refined(&self.t, f, b, &self.refine)?;
                    if res.converged {
                        x.copy_from_slice(&res.x);
                        Ok(())
                    } else {
                        bs_probe::metrics::incr(bs_probe::metrics::Counter::MixedStallFallbacks);
                        bs_probe::event!(
                            "mixed_stall_fallback",
                            n = b.len(),
                            iterations = res.iterations,
                        );
                        self.solve_via_fallback_into(b, x)
                    }
                }
                // F32 is a deliberate accuracy/throughput trade: the
                // promoted factor answers directly unless a δ
                // perturbation fired (then refinement is load-bearing,
                // exactly as at f64).
                Precision::F64 | Precision::F32 => self.solve_indef_into(f, b, x),
            },
        }
    }

    fn solve_indef_into(&self, f: &IndefFactor, b: &[f64], x: &mut [f64]) -> Result<()> {
        if f.perturbations.is_empty() {
            x.copy_from_slice(b);
            solve_rtdr_in_place(&f.r, Some(&f.d), x)
        } else {
            let res = solve_refined(&self.t, f, b, &self.refine)?;
            x.copy_from_slice(&res.x);
            Ok(())
        }
    }

    /// Solve through the lazily-computed full-f64 factorization
    /// (mixed-precision stall recovery).
    fn solve_via_fallback_into(&self, b: &[f64], x: &mut [f64]) -> Result<()> {
        let f = match self.fallback.get() {
            Some(f) => f,
            None => {
                let _span = bs_probe::span!("mixed_fallback_refactor", n = self.t.order());
                let mut pw = PlanWorkspace::new();
                let f = self.plan.execute_f64(&self.t, &mut pw)?;
                self.fallback.get_or_init(|| f)
            }
        };
        match f {
            Factorization::Spd(f) => {
                x.copy_from_slice(b);
                solve_rtdr_in_place(&f.r, None, x)
            }
            Factorization::Indefinite(f) => self.solve_indef_into(f, b, x),
        }
    }

    /// Solve `T X = B` column by column, sequentially (`B` is `n × r`).
    pub fn solve_many(&self, b: &Matrix) -> Result<Matrix> {
        let mut x = Matrix::zeros(self.check_rhs(b)?, b.cols());
        self.solve_cols_into_policy(b, &mut x, &ExecPolicy::sequential())?;
        Ok(x)
    }

    /// Solve `T X = B` with the right-hand-side columns fanned out
    /// across the plan's worker threads in a single pool dispatch:
    /// columns are chunked so pack/dispatch overhead is amortized over
    /// the whole batch instead of paid per column. Each column runs the
    /// identical sequential per-column path as
    /// [`solve_many`](Self::solve_many), so the result is bitwise
    /// identical at any thread count. The lowest-indexed failing column
    /// reports its error.
    pub fn solve_batch(&self, b: &Matrix) -> Result<Matrix> {
        let mut x = Matrix::zeros(self.check_rhs(b)?, b.cols());
        self.solve_cols_into(b, &mut x)?;
        Ok(x)
    }

    /// [`solve_batch`](Self::solve_batch) into a caller-provided (e.g.
    /// pooled) output matrix — the serve layer's allocation-free
    /// multi-RHS surface.
    pub fn solve_cols_into(&self, b: &Matrix, x: &mut Matrix) -> Result<()> {
        self.solve_cols_into_policy(b, x, &self.plan.schur_options().exec)
    }

    /// The one multi-RHS driver behind every surface: chunk `B`'s
    /// columns, fan the chunks across `exec`'s workers (a sequential
    /// policy degenerates to a plain column loop), and run each column
    /// through [`solve_col_into`](Self::solve_col_into).
    fn solve_cols_into_policy(&self, b: &Matrix, x: &mut Matrix, exec: &ExecPolicy) -> Result<()> {
        let n = self.check_rhs(b)?;
        let ncols = b.cols();
        if x.rows() != n || x.cols() != ncols {
            return Err(Error::DimensionMismatch {
                context: "solution column count",
                expected: ncols,
                found: if x.rows() != n { x.rows() } else { x.cols() },
            });
        }
        if n == 0 || ncols == 0 {
            return Ok(());
        }
        let threads = exec.threads.clamp(1, ncols);
        let chunk_cols = ncols.div_ceil(threads);
        let failed: Mutex<Option<(usize, Error)>> = Mutex::new(None);
        // Column-major storage: a chunk of `chunk_cols` columns is one
        // contiguous mutable slice.
        let jobs: Vec<(usize, &mut [f64])> = x
            .as_mut_slice()
            .chunks_mut(chunk_cols * n)
            .enumerate()
            .map(|(ci, xs)| (ci * chunk_cols, xs))
            .collect();
        bs_probe::event!("solve_batch", n = n, rhs = ncols, chunks = jobs.len());
        par::for_each_policy(exec, jobs, |(j0, xs)| {
            for (dj, xcol) in xs.chunks_mut(n).enumerate() {
                if let Err(e) = self.solve_col_into(b.col(j0 + dj), xcol) {
                    let mut g = failed.lock().unwrap_or_else(|p| p.into_inner());
                    if g.as_ref().is_none_or(|(fj, _)| j0 + dj < *fj) {
                        *g = Some((j0 + dj, e));
                    }
                    break;
                }
            }
        });
        if let Some((_, e)) = failed.into_inner().unwrap_or_else(|p| p.into_inner()) {
            return Err(e);
        }
        Ok(())
    }

    fn check_rhs(&self, b: &Matrix) -> Result<usize> {
        let n = self.t.order();
        if b.rows() != n {
            return Err(Error::DimensionMismatch {
                context: "right-hand-side row count",
                expected: n,
                found: b.rows(),
            });
        }
        Ok(n)
    }

    /// Build the Gohberg–Semencul representation of `T⁻¹` (scalar
    /// Toeplitz only, `m = 1`): one extra solve for `T u = e₀`, after
    /// which every further solve costs `O(n log n)` through
    /// [`bs_toeplitz::ToeplitzInverse::apply`]. Returns `None` when
    /// `m > 1` or when the representation does not exist (`u₀ = 0`).
    pub fn inverse_representation(&self) -> Option<bs_toeplitz::ToeplitzInverse> {
        if self.t.block_size() != 1 {
            return None;
        }
        let n = self.t.order();
        let mut e0 = vec![0.0; n];
        e0[0] = 1.0;
        let u = self.solve(&e0).ok()?;
        bs_toeplitz::ToeplitzInverse::from_first_column(&u)
    }
}

/// Per-call mutable scratch for solving against a shared [`Factor`]:
/// an arena checked out from the factor's [`WorkspacePool`], returned
/// on drop. Derefs to [`Workspace`], so the pooled `take_vec` /
/// `take_matrix` surfaces are available directly:
///
/// ```
/// use bs_core::Factor;
/// use bs_toeplitz::workloads;
///
/// let t = workloads::kms(16, 0.5);
/// let (b, _) = workloads::rhs_for_ones(&t);
/// let f = Factor::new(&t).unwrap();
/// let mut scratch = f.scratch();
/// let mut x = scratch.take_vec(16);
/// f.solve_col_into(&b, &mut x).unwrap();
/// scratch.give_vec(x);
/// drop(scratch);
/// assert_eq!(f.scratch_pool().outstanding(), 0);
/// ```
#[derive(Debug)]
#[must_use]
pub struct SolveScratch<'f> {
    ws: PooledWorkspace<'f, f64>,
}

impl std::ops::Deref for SolveScratch<'_> {
    type Target = Workspace;

    fn deref(&self) -> &Workspace {
        &self.ws
    }
}

impl std::ops::DerefMut for SolveScratch<'_> {
    fn deref_mut(&mut self) -> &mut Workspace {
        &mut self.ws
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_toeplitz::workloads;
    use std::sync::Arc;

    #[test]
    fn factor_is_shareable_and_matches_sequential() {
        let t = workloads::random_spd_block(2, 8, 21);
        let f = Arc::new(Factor::new(&t).unwrap());
        let (b, _) = workloads::rhs_for_ones(&t);
        let reference = f.solve(&b).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..16 {
                        let x = f.solve(&b).unwrap();
                        assert_eq!(x, reference, "concurrent solve must be bitwise equal");
                    }
                });
            }
        });
    }

    #[test]
    fn scratch_checkout_balances_and_reuses() {
        let t = workloads::random_spd_scalar(24, 7);
        let f = Factor::new(&t).unwrap();
        let (b, _) = workloads::rhs_for_ones(&t);
        for _ in 0..3 {
            let mut scratch = f.scratch();
            let mut x = scratch.take_vec(24);
            f.solve_col_into(&b, &mut x).unwrap();
            scratch.give_vec(x);
        }
        assert_eq!(f.scratch_pool().outstanding(), 0);
        assert_eq!(f.scratch_pool().checkouts(), 3);
        assert_eq!(f.scratch_pool().cold_checkouts(), 1, "arena is reused");
        assert!(f.scratch_pool().audit_balanced("factor_scratch_test"));
    }

    #[test]
    fn all_solve_surfaces_agree_bitwise() {
        for t in [
            workloads::random_spd_block(2, 6, 3),
            workloads::paper_singular_minor_example(),
        ] {
            let n = t.order();
            let f = Factor::new(&t).unwrap();
            let b = Matrix::from_fn(n, 3, |i, j| ((i * 7 + j * 13) % 11) as f64 - 5.0);
            let many = f.solve_many(&b).unwrap();
            let batch = f.solve_batch(&b).unwrap();
            assert_eq!(many.max_abs_diff(&batch), 0.0);
            for j in 0..3 {
                let xj = f.solve(b.col(j)).unwrap();
                assert_eq!(xj.as_slice(), many.col(j));
            }
        }
    }

    #[test]
    fn solve_cols_into_rejects_bad_output_shape() {
        let t = workloads::random_spd_scalar(8, 2);
        let f = Factor::new(&t).unwrap();
        let b = Matrix::zeros(8, 2);
        let mut x = Matrix::zeros(8, 3);
        assert!(matches!(
            f.solve_cols_into(&b, &mut x),
            Err(Error::DimensionMismatch { .. })
        ));
    }
}
