//! Plan/execute engine: decide *how* to factor once, run it many times.
//!
//! A [`FactorPlan`] captures every algorithmic choice of the block
//! Schur factorization — representation of the block reflectors (§4),
//! algorithmic block size `m_s` (§6.5), shift variant, two-level
//! chunking, pivot fallback policy — for one system shape `(n, m)`.
//! Fields a [`PlanRequest`] leaves unset are chosen from the
//! `bs-perfmodel` cost formulas (eqs. 25–32): the representation by
//! total blocking + application flops over all `p − 1` steps, the
//! block size by the §6.5 retiling tradeoff under the default
//! saturating rate model.
//!
//! [`FactorPlan::execute`] runs the plan against a concrete matrix
//! using a caller-owned [`PlanWorkspace`] — the pooled scratch arena
//! plus engine scratch. The first execution warms the pool; subsequent
//! executions against same-shaped systems perform zero heap
//! allocations inside the elimination loop. The SPD kernel is
//! attempted first and the indefinite kernel (row exchanges + graded
//! δ-perturbation, §8) is the automatic fallback, exactly like the
//! historical `factor_spd` → `factor_indefinite` sequence — and
//! bitwise-identical to it, because pooled buffers are zero-filled on
//! checkout.

use crate::eliminate::{eliminate_spd, normalize_diagonal, retiled, EngineScratch};
use crate::indefinite::{factor_indefinite_with, IndefFactor, IndefOptions};
use crate::rep::RepKind;
use crate::schur::{SchurOptions, SpdFactor};
use crate::solver::Factorization;
use crate::{Error, Result};
use bs_matrix::{kernel, par, ExecPolicy, Workspace};
use bs_perfmodel::model::{self, Rep};
use bs_perfmodel::tradeoff::{self, RateTable};
use bs_toeplitz::SymBlockToeplitz;
use std::sync::Mutex;

/// Arithmetic precision of the factorization stage.
///
/// The solve-side contract differs per variant (see
/// [`crate::ToeplitzSolver::solve`]): `F64` is the bitwise-pinned
/// reference path, `F32` trades accuracy for the doubled SIMD width of
/// the f32 microkernels, and `Mixed` recovers f64-grade residuals from
/// the f32 factor through the §8.1 refinement loop — the paper's
/// perturbation-recovery machinery reused as a precision-recovery loop
/// (the promoted factor plays the role of `Rᵀ D R` of `T + δT` with
/// `δT` the f32 rounding backward error).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Precision {
    /// Factor and solve entirely in f64 (the default).
    #[default]
    F64,
    /// Factor in f32 and promote: roughly half the factor time on
    /// SIMD-bound shapes, residuals at f32 resolution, no recovery.
    F32,
    /// Factor in f32, promote, and refine every solve against the f64
    /// operator until the residual bound is met; when refinement
    /// stalls the solver falls back to a cached full f64
    /// refactorization (surfaced via `Counter::MixedStallFallbacks`).
    Mixed,
}

impl Precision {
    /// Canonical lower-case name (`f64`, `f32`, `mixed`).
    pub fn as_str(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
            Precision::Mixed => "mixed",
        }
    }

    /// Parse a case-insensitive precision name.
    pub fn parse(s: &str) -> Option<Precision> {
        match s.trim().to_ascii_lowercase().as_str() {
            "f64" | "double" => Some(Precision::F64),
            "f32" | "single" => Some(Precision::F32),
            "mixed" => Some(Precision::Mixed),
            _ => None,
        }
    }

    /// Stable index for trace events.
    fn index(self) -> usize {
        match self {
            Precision::F64 => 0,
            Precision::F32 => 1,
            Precision::Mixed => 2,
        }
    }
}

/// A request for a [`FactorPlan`]: pin the choices you care about,
/// leave the rest `None` for the cost model to decide.
#[derive(Clone, Debug, Default)]
pub struct PlanRequest {
    /// Block reflector representation; `None` → minimize the total
    /// blocking + application flops (eqs. 25–32).
    pub rep: Option<RepKind>,
    /// Algorithmic block size `m_s`; `None` → the §6.5 retiling
    /// tradeoff under [`bs_perfmodel::tradeoff::default_rate`]. Must be
    /// a multiple of the structural block size and divide `n` when
    /// pinned.
    pub block_size: Option<usize>,
    /// Worker threads for the trailing update; `None` → `BS_THREADS`
    /// when set, otherwise cost-model selection
    /// ([`bs_perfmodel::tradeoff::auto_threads`] on the predicted
    /// elimination flops, clamped to the machine's cores).
    pub threads: Option<usize>,
    /// Explicit generator shift instead of the in-place §6.4 pairing.
    pub explicit_shift: bool,
    /// Two-level panel chunk size (§6.2); `None` blocks whole panels.
    pub two_level: Option<usize>,
    /// SPD zero-pivot tolerance; `None` → the [`SchurOptions`] default.
    pub zero_tol: Option<f64>,
    /// Options for the indefinite fallback kernel.
    pub indefinite: IndefOptions,
    /// Drive the auto-selection of `m_s` and threads from the one-shot
    /// kernel calibration ([`bs_matrix::kernel::calibrate`]) instead of
    /// the assumed saturating rate model. Also enabled process-wide by
    /// `BS_CALIBRATE=1`. Opt-in: the measurement is wall-clock and the
    /// resulting picks vary with the machine, so pinned-expectation
    /// callers (tests, reproducibility scripts) keep the analytic model
    /// by default.
    pub calibrate: bool,
    /// Arithmetic precision of the factorization stage; see
    /// [`Precision`].
    pub precision: Precision,
}

/// `BS_CALIBRATE=1` (or `true`) turns measured-rate planning on for
/// every request in the process.
fn env_calibrate() -> bool {
    std::env::var("BS_CALIBRATE").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

/// `BS_PRECISION=f64|f32|mixed` overrides the requested factorization
/// precision for every plan *request* in the process — the test tier
/// hook that pushes a targeted suite through the low-precision paths.
/// Explicit [`FactorPlan::from_options`] plans stay pinned at f64;
/// unparseable values are ignored.
fn env_precision() -> Option<Precision> {
    std::env::var("BS_PRECISION")
        .ok()
        .and_then(|v| Precision::parse(&v))
}

/// Caller-owned execution state for [`FactorPlan::execute`]: the pooled
/// scratch arena plus the engine's reusable per-step buffers. Hold one
/// per solver (or per worker thread) and reuse it across executions —
/// that is what makes the steady state allocation-free.
#[derive(Debug, Default)]
#[must_use]
pub struct PlanWorkspace {
    pub(crate) ws: Workspace,
    pub(crate) scratch: EngineScratch,
    /// f32 siblings of the arena and engine scratch for the
    /// low-precision factor stage of [`Precision::F32`] /
    /// [`Precision::Mixed`] plans. Separate because the pools are
    /// typed; they stay empty (zero allocation) on pure-f64 plans.
    pub(crate) ws32: Workspace<f32>,
    pub(crate) scratch32: EngineScratch<f32>,
    /// A retired factor matrix from a previous execution, kept whole so
    /// the next execution can reuse it *without* the pool's zero-fill
    /// (see [`PlanWorkspace::donate`]).
    pub(crate) retired: Option<bs_matrix::Matrix>,
}

impl PlanWorkspace {
    /// An empty (cold) workspace; the first execution warms it.
    pub fn new() -> Self {
        PlanWorkspace::default()
    }

    /// A workspace with pooling disabled: every scratch checkout
    /// allocates per call, reproducing the allocate-per-call behaviour
    /// the arena replaced. Factors are bitwise-identical either way;
    /// this exists as a benchmark baseline and A/B switch.
    pub fn bypass() -> Self {
        PlanWorkspace {
            ws: Workspace::bypass(),
            ws32: Workspace::bypass(),
            ..PlanWorkspace::default()
        }
    }

    /// Cold pool allocations since creation or the last
    /// [`reset_stats`](Self::reset_stats), summed over the f64 and f32
    /// arenas.
    pub fn allocations(&self) -> u64 {
        self.ws.allocations() + self.ws32.allocations()
    }

    /// Peak simultaneously checked-out elements (f64 + f32 arenas).
    pub fn high_water_elems(&self) -> usize {
        self.ws.high_water_elems() + self.ws32.high_water_elems()
    }

    /// Total capacity (elements) of the idle pools.
    pub fn pooled_elems(&self) -> usize {
        self.ws.pooled_elems() + self.ws32.pooled_elems()
    }

    /// Zero the allocation / high-water statistics, keeping the pools.
    pub fn reset_stats(&mut self) {
        self.ws.reset_stats();
        self.ws32.reset_stats();
    }

    /// Donate a retired factor matrix so the next execution can reuse
    /// its storage. The buffer is kept whole and handed back *without*
    /// the pool's defensive zero-fill: every entry of an emitted factor
    /// is deterministically overwritten (the staircase emission covers
    /// the whole upper triangle and the diagonal normalization zeroes
    /// the strict lower triangle), so prior contents never reach the
    /// output. This skips an O(n²) memset per warm refactorization —
    /// the cost a per-call `vec![0.0; n*n]` baseline always pays.
    pub fn donate(&mut self, m: bs_matrix::Matrix) {
        if let Some(old) = self.retired.replace(m) {
            self.ws.give_matrix(old);
        }
    }

    /// Donate a retired indefinite factor's signature vector and
    /// perturbation log back to the engine scratch pools, so the next
    /// indefinite execution reuses their storage instead of allocating.
    pub fn donate_indefinite(&mut self, d: Vec<i8>, perturbations: Vec<crate::Perturbation>) {
        self.scratch.donate_indefinite(d, perturbations);
    }
}

/// An executable factorization plan for one system shape. Build with
/// [`FactorPlan::new`] (cost-model auto-selection for unset fields) or
/// [`FactorPlan::from_options`] (everything pinned, the compatibility
/// path of [`crate::ToeplitzSolver::with_options`]).
#[derive(Clone, Debug)]
#[must_use]
pub struct FactorPlan {
    n: usize,
    m: usize,
    m_s: usize,
    p: usize,
    rep_auto: bool,
    block_auto: bool,
    threads_auto: bool,
    calibrated: bool,
    precision: Precision,
    kernel_isa: &'static str,
    spd: SchurOptions,
    indefinite: IndefOptions,
    predicted_flops: f64,
    predicted_comm_words: usize,
}

/// `RepKind` → cost-model [`Rep`]; `Sequential` has no blocked-cost
/// counterpart.
fn kind_to_rep(k: RepKind) -> Option<Rep> {
    match k {
        RepKind::Accumulated => Some(Rep::Accumulated),
        RepKind::VY1 => Some(Rep::VY1),
        RepKind::VY2 => Some(Rep::VY2),
        RepKind::YTY => Some(Rep::YTY),
        RepKind::Sequential => None,
    }
}

fn rep_to_kind(r: Rep) -> RepKind {
    match r {
        Rep::Accumulated => RepKind::Accumulated,
        Rep::VY1 => RepKind::VY1,
        Rep::VY2 => RepKind::VY2,
        Rep::YTY => RepKind::YTY,
    }
}

/// Stable index for trace events (which carry only numeric values).
fn rep_index(k: RepKind) -> usize {
    match k {
        RepKind::Accumulated => 0,
        RepKind::VY1 => 1,
        RepKind::VY2 => 2,
        RepKind::YTY => 3,
        RepKind::Sequential => 4,
    }
}

/// Stable index of the dispatched kernel ISA for trace events.
fn isa_index(isa: kernel::Isa) -> usize {
    match isa {
        kernel::Isa::Portable => 0,
        kernel::Isa::Avx2 => 1,
        kernel::Isa::Avx512 => 2,
        kernel::Isa::Neon => 3,
    }
}

impl FactorPlan {
    /// Plan for the shape of `t`, auto-selecting what `req` leaves
    /// unset.
    pub fn new(t: &SymBlockToeplitz, req: &PlanRequest) -> Result<FactorPlan> {
        Self::for_shape(t.order(), t.block_size(), req)
    }

    /// Plan for an order-`n` system with structural block size `m`
    /// (no matrix needed — shapes are all the planner consumes).
    pub fn for_shape(n: usize, m: usize, req: &PlanRequest) -> Result<FactorPlan> {
        if m == 0 || n == 0 || !n.is_multiple_of(m) {
            return Err(Error::InvalidOptions(format!(
                "order n = {n} must be a positive multiple of the block size m = {m}"
            )));
        }
        let precision = env_precision().unwrap_or(req.precision);
        // Measured-rate planning (opt-in): swap the assumed saturating
        // rate curve for the one-shot kernel calibration of the running
        // machine. The first calibrated plan in a process pays the
        // measurement; later ones reuse it. Low-precision plans price
        // their factor stage from the f32 calibration — the f32 kernels
        // run at roughly double rate, which shifts both the block-size
        // and thread-count crossovers.
        let rates = (req.calibrate || env_calibrate()).then(|| match precision {
            Precision::F64 => RateTable::new(&kernel::calibrate::calibration().points),
            Precision::F32 | Precision::Mixed => {
                RateTable::new(&kernel::calibrate::calibration_f32().points)
            }
        });
        let (m_s, block_auto) = match req.block_size {
            Some(ms) => {
                if ms == 0 || !ms.is_multiple_of(m) {
                    return Err(Error::InvalidOptions(format!(
                        "m_s = {ms} is not a positive multiple of m = {m}"
                    )));
                }
                if !n.is_multiple_of(ms) {
                    return Err(Error::InvalidOptions(format!(
                        "m_s = {ms} does not divide n = {n}"
                    )));
                }
                (ms, false)
            }
            None => match &rates {
                Some(t) => (tradeoff::auto_block_size_with_rate(n, m, t), true),
                None => (tradeoff::auto_block_size(n, m), true),
            },
        };
        let p = n / m_s;
        let (rep, rep_auto) = match req.rep {
            Some(r) => (r, false),
            None => (rep_to_kind(tradeoff::best_rep_total(m_s, p)), true),
        };
        // Thread resolution: explicit request > BS_THREADS environment >
        // cost model (resolved in `assemble` once the predicted flops
        // are known).
        let (exec, threads_auto) = match req.threads.or_else(par::env_threads) {
            Some(t) => (ExecPolicy::with_threads(t), false),
            None => (ExecPolicy::sequential(), true),
        };
        let spd = SchurOptions {
            rep,
            exec,
            block_size: (m_s != m).then_some(m_s),
            explicit_shift: req.explicit_shift,
            two_level: req.two_level,
            zero_tol: req.zero_tol.unwrap_or(SchurOptions::default().zero_tol),
        };
        Ok(Self::assemble(
            n,
            m,
            spd,
            req.indefinite.clone(),
            rep_auto,
            block_auto,
            threads_auto,
            rates.as_ref(),
            precision,
        ))
    }

    /// Plan with everything pinned by explicit driver options — the
    /// exact configuration `factor_spd` / `factor_indefinite` would
    /// run, no cost-model involvement.
    pub fn from_options(
        t: &SymBlockToeplitz,
        spd: &SchurOptions,
        indefinite: &IndefOptions,
    ) -> Result<FactorPlan> {
        let (n, m) = (t.order(), t.block_size());
        if let Some(ms) = spd.block_size {
            if ms == 0 || ms % m != 0 {
                return Err(Error::InvalidOptions(format!(
                    "m_s = {ms} is not a positive multiple of m = {m}"
                )));
            }
            if n % ms != 0 {
                return Err(Error::InvalidOptions(format!(
                    "m_s = {ms} does not divide n = {n}"
                )));
            }
        }
        Ok(Self::assemble(
            n,
            m,
            spd.clone(),
            indefinite.clone(),
            false,
            false,
            false,
            None,
            Precision::F64,
        ))
    }

    #[allow(clippy::too_many_arguments)] // private assembly step; the public surface is PlanRequest
    fn assemble(
        n: usize,
        m: usize,
        mut spd: SchurOptions,
        indefinite: IndefOptions,
        rep_auto: bool,
        block_auto: bool,
        threads_auto: bool,
        rates: Option<&RateTable>,
        precision: Precision,
    ) -> FactorPlan {
        let m_s = spd.block_size.unwrap_or(m);
        let p = n / m_s;
        let (predicted_flops, predicted_comm_words) = match kind_to_rep(spd.rep) {
            Some(r) => (
                tradeoff::total_schur_flops(r, m_s, p),
                model::comm_words(r, m_s),
            ),
            // Sequential: the headline §6.5 estimate and a per-reflector
            // broadcast (2m + 2 words each, m of them).
            None => (model::total_factor_flops(n, m_s), m_s * (2 * m_s + 2)),
        };
        if threads_auto {
            let avail = par::current_num_threads();
            spd.exec.threads = match rates {
                Some(t) => tradeoff::auto_threads_with_rate(
                    predicted_flops,
                    t.rate(m_s),
                    par::dispatch_overhead_ns(),
                    avail,
                ),
                None => tradeoff::auto_threads(predicted_flops, avail),
            };
        }
        if let Some(t) = rates {
            // Calibrated plans also gate strip dispatch on the measured
            // crossover (kernel rate × dispatch overhead) instead of
            // the static default volume, so small trailing updates run
            // inline even when threads were pinned > 1.
            spd.exec.min_work =
                tradeoff::min_dispatch_work(t.rate(m_s), par::dispatch_overhead_ns());
        }
        let active = kernel::active_isa();
        // Events carry at most trace::MAX_FIELDS fields inline, so the
        // plan decision is traced as a structural + an execution event.
        bs_probe::event!(
            "plan_built",
            n = n,
            m = m,
            m_s = m_s,
            p = p,
            rep = rep_index(spd.rep),
            rep_auto = rep_auto as usize,
        );
        // (block_auto moved off this event to stay within MAX_FIELDS;
        // it remains queryable via `block_size_is_auto`.)
        bs_probe::event!(
            "plan_exec",
            threads = spd.exec.threads,
            threads_auto = threads_auto as usize,
            kernel = isa_index(active),
            calibrated = rates.is_some() as usize,
            precision = precision.index(),
            predicted_flops = predicted_flops,
        );
        FactorPlan {
            n,
            m,
            m_s,
            p,
            rep_auto,
            block_auto,
            threads_auto,
            calibrated: rates.is_some(),
            precision,
            kernel_isa: active.name(),
            spd,
            indefinite,
            predicted_flops,
            predicted_comm_words,
        }
    }

    /// Execute against a concrete matrix of the planned shape: SPD
    /// attempt first, automatic indefinite fallback on
    /// `NotPositiveDefinite` / `SingularMinor`, all scratch drawn from
    /// `pw`. [`Precision::F32`] and [`Precision::Mixed`] plans run the
    /// same sequence at f32 and promote the factor to f64 storage; a
    /// `Mixed` plan whose f32 stage fails outright (e.g. a minor that
    /// is singular at f32 resolution) falls back to the full f64
    /// factorization, counted in `Counter::MixedStallFallbacks`.
    pub fn execute(&self, t: &SymBlockToeplitz, pw: &mut PlanWorkspace) -> Result<Factorization> {
        if t.order() != self.n {
            return Err(Error::DimensionMismatch {
                context: "planned matrix order",
                expected: self.n,
                found: t.order(),
            });
        }
        if t.block_size() != self.m {
            return Err(Error::DimensionMismatch {
                context: "planned structural block size",
                expected: self.m,
                found: t.block_size(),
            });
        }
        match self.precision {
            Precision::F64 => self.execute_f64(t, pw),
            Precision::F32 => self.execute_demoted(t, pw),
            Precision::Mixed => match self.execute_demoted(t, pw) {
                Ok(f) => Ok(f),
                Err(_) => {
                    bs_probe::metrics::incr(bs_probe::metrics::Counter::MixedStallFallbacks);
                    bs_probe::event!("mixed_factor_fallback", n = self.n, m = self.m);
                    self.execute_f64(t, pw)
                }
            },
        }
    }

    /// The reference f64 execution path — shape checks already done.
    /// Also the target of the mixed-precision stall fallback, which
    /// must bypass the precision dispatch of [`execute`](Self::execute).
    pub(crate) fn execute_f64(
        &self,
        t: &SymBlockToeplitz,
        pw: &mut PlanWorkspace,
    ) -> Result<Factorization> {
        match self.execute_spd(t, pw) {
            Ok(f) => Ok(Factorization::Spd(f)),
            // A singular pivot inside the retiled SPD panel solve is the
            // m_s > m manifestation of a singular leading minor: the
            // zero lands on a triangular diagonal instead of a pivot
            // classification, so it surfaces as a kernel error.
            Err(Error::NotPositiveDefinite { .. })
            | Err(Error::SingularMinor { .. })
            | Err(Error::Matrix(bs_matrix::Error::SingularPivot { .. })) => {
                bs_probe::event!("plan_fallback_indefinite", n = self.n, m = self.m);
                let f = factor_indefinite_with(t, &self.indefinite, &mut pw.ws, &mut pw.scratch)?;
                Ok(Factorization::Indefinite(f))
            }
            Err(e) => Err(e),
        }
    }

    /// Low-precision execution: demote the operator to f32, run the
    /// same SPD-then-indefinite sequence on the f32 arena, and promote
    /// the factor to f64 storage. The result is always
    /// [`Factorization::Indefinite`] (an SPD success promotes with
    /// `d = +1` and no perturbations) because the solve side feeds it
    /// to [`crate::solve_refined`], which takes the `Rᵀ D R` form.
    fn execute_demoted(
        &self,
        t: &SymBlockToeplitz,
        pw: &mut PlanWorkspace,
    ) -> Result<Factorization> {
        let _span = bs_probe::span!("factor_f32", n = self.n, m = self.m);
        // Geometrically decaying generators drop below the f32 normal
        // range mid-elimination; without flushing, hardware subnormal
        // assists make the demoted factor *slower* than f64 (measured
        // ~6x at n = 256). Anything flushed is far below the f32
        // rounding backward error the refinement loop already absorbs.
        let _ftz = par::FlushSubnormals::engage();
        let t32 = t.convert::<f32>();
        match self.execute_spd32(&t32, pw) {
            Ok(f) => Ok(Factorization::Indefinite(f)),
            Err(Error::NotPositiveDefinite { .. })
            | Err(Error::SingularMinor { .. })
            | Err(Error::Matrix(bs_matrix::Error::SingularPivot { .. })) => {
                bs_probe::event!("plan_fallback_indefinite", n = self.n, m = self.m);
                let f = factor_indefinite_with(
                    &t32,
                    &self.indefinite,
                    &mut pw.ws32,
                    &mut pw.scratch32,
                )?;
                Ok(Factorization::Indefinite(IndefFactor {
                    r: f.r.convert::<f64>(),
                    d: f.d,
                    perturbations: f.perturbations,
                    exchanges: f.exchanges,
                    max_reflector_norm: f.max_reflector_norm,
                    m: f.m,
                    p: f.p,
                }))
            }
            Err(e) => Err(e),
        }
    }

    fn execute_spd32(
        &self,
        t32: &SymBlockToeplitz<f32>,
        pw: &mut PlanWorkspace,
    ) -> Result<IndefFactor> {
        let t_ref = retiled(t32, self.spd.block_size)?;
        let mut r = pw.ws32.take_matrix(self.n, self.n);
        let mut sink = |s: usize, mm: usize, _n: usize, row: bs_matrix::MatRef<'_, f32>| {
            r.sub_mut(s * mm, s * mm, mm, row.cols()).copy_from(row);
        };
        match eliminate_spd(
            &t_ref,
            &self.spd,
            &mut pw.ws32,
            &mut pw.scratch32,
            &mut sink,
        ) {
            Ok((m, p, _comm_words_per_step)) => {
                normalize_diagonal(&mut r);
                let promoted = r.convert::<f64>();
                pw.ws32.give_matrix(r);
                crate::contracts::spd_diagonal(&promoted, "FactorPlan::execute_spd32");
                Ok(IndefFactor {
                    r: promoted,
                    d: vec![1; self.n],
                    perturbations: Vec::new(),
                    exchanges: 0,
                    // No perturbation fired, so reflector norms are O(1).
                    max_reflector_norm: 1.0,
                    m,
                    p,
                })
            }
            Err(e) => {
                pw.ws32.give_matrix(r);
                Err(e)
            }
        }
    }

    /// Factor a batch of same-shaped systems through one pool dispatch:
    /// the systems are chunked across the plan's worker threads and
    /// each chunk reuses a single warm [`PlanWorkspace`], so engine
    /// scratch warm-up and dispatch latency are amortized across the
    /// batch instead of paid per system. Results align positionally
    /// with `systems`, and each factorization is bitwise identical to
    /// a standalone [`execute`](Self::execute) (workspace reuse never
    /// changes the arithmetic — pooled buffers are zero-filled on
    /// checkout). The lowest-indexed failing system aborts the batch
    /// with its error.
    pub fn execute_batch(&self, systems: &[SymBlockToeplitz]) -> Result<Vec<Factorization>> {
        for t in systems {
            if t.order() != self.n || t.block_size() != self.m {
                return Err(Error::DimensionMismatch {
                    context: "batched matrix shape",
                    expected: self.n,
                    found: t.order(),
                });
            }
        }
        let k = systems.len();
        if k == 0 {
            return Ok(Vec::new());
        }
        let _span = bs_probe::span!("factor_batch", systems = k, n = self.n);
        let threads = self.spd.exec.threads.clamp(1, k);
        let chunk = k.div_ceil(threads);
        let mut out: Vec<Option<Factorization>> = Vec::with_capacity(k);
        out.resize_with(k, || None);
        let failed: Mutex<Option<(usize, Error)>> = Mutex::new(None);
        // One batch job: (first system index, systems, result slots).
        type BatchJob<'a> = (
            usize,
            &'a [SymBlockToeplitz],
            &'a mut [Option<Factorization>],
        );
        let jobs: Vec<BatchJob<'_>> = systems
            .chunks(chunk)
            .zip(out.chunks_mut(chunk))
            .enumerate()
            .map(|(ci, (ts, slots))| (ci * chunk, ts, slots))
            .collect();
        par::for_each_policy(&self.spd.exec, jobs, |(i0, ts, slots)| {
            // One workspace per chunk: the first system warms it, the
            // rest run allocation-free against the recycled pool.
            let mut pw = PlanWorkspace::new();
            for (j, (t, slot)) in ts.iter().zip(slots.iter_mut()).enumerate() {
                match self.execute(t, &mut pw) {
                    Ok(f) => *slot = Some(f),
                    Err(e) => {
                        let mut g = failed.lock().unwrap_or_else(|p| p.into_inner());
                        if g.as_ref().is_none_or(|(fi, _)| i0 + j < *fi) {
                            *g = Some((i0 + j, e));
                        }
                        break;
                    }
                }
            }
        });
        if let Some((_, e)) = failed.into_inner().unwrap_or_else(|p| p.into_inner()) {
            return Err(e);
        }
        // Every slot is Some here: a None would have recorded an error
        // above. Flatten without a panic path regardless.
        let filled: Vec<Factorization> = out.into_iter().flatten().collect();
        if filled.len() != k {
            return Err(Error::InvalidOptions(
                "batched factorization left an unfactored slot".into(),
            ));
        }
        Ok(filled)
    }

    fn execute_spd(&self, t: &SymBlockToeplitz, pw: &mut PlanWorkspace) -> Result<SpdFactor> {
        let t_ref = retiled(t, self.spd.block_size)?;
        // A retired factor of the right shape is reused as-is, with no
        // zero-fill: the sink below writes every row from its diagonal
        // block to the right edge (⊇ the upper triangle) and
        // `normalize_diagonal` zeroes the strict lower triangle, so
        // every entry is overwritten regardless of prior contents. A
        // wrong-shape donation goes to the pool (zero-filled on take).
        let mut r = match pw.retired.take() {
            Some(buf) if buf.rows() == self.n && buf.cols() == self.n => buf,
            Some(buf) => {
                pw.ws.give_matrix(buf);
                pw.ws.take_matrix(self.n, self.n)
            }
            None => pw.ws.take_matrix(self.n, self.n),
        };
        let mut sink = |s: usize, mm: usize, _n: usize, row: bs_matrix::MatRef<'_>| {
            r.sub_mut(s * mm, s * mm, mm, row.cols()).copy_from(row);
        };
        match eliminate_spd(&t_ref, &self.spd, &mut pw.ws, &mut pw.scratch, &mut sink) {
            Ok((m, p, comm_words_per_step)) => {
                normalize_diagonal(&mut r);
                crate::contracts::spd_diagonal(&r, "FactorPlan::execute_spd");
                Ok(SpdFactor {
                    r,
                    m,
                    p,
                    comm_words_per_step,
                })
            }
            Err(e) => {
                pw.ws.give_matrix(r);
                Err(e)
            }
        }
    }

    /// Matrix order the plan was built for.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Structural block size of the planned systems.
    pub fn structural_block_size(&self) -> usize {
        self.m
    }

    /// Algorithmic block size `m_s` the elimination runs at.
    pub fn block_size(&self) -> usize {
        self.m_s
    }

    /// Number of block columns at the algorithmic block size.
    pub fn num_blocks(&self) -> usize {
        self.p
    }

    /// Chosen block reflector representation.
    pub fn rep(&self) -> RepKind {
        self.spd.rep
    }

    /// `true` when the representation was cost-model-chosen.
    pub fn rep_is_auto(&self) -> bool {
        self.rep_auto
    }

    /// Arithmetic precision the plan factors at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// `true` when the block size was cost-model-chosen.
    pub fn block_size_is_auto(&self) -> bool {
        self.block_auto
    }

    /// Worker threads the trailing update fans out to (1 = inline).
    pub fn threads(&self) -> usize {
        self.spd.exec.threads
    }

    /// `true` when the thread count was cost-model-chosen (neither
    /// pinned in the request nor forced through `BS_THREADS`).
    pub fn threads_is_auto(&self) -> bool {
        self.threads_auto
    }

    /// Name of the SIMD microkernel ISA the BLAS-3 drivers were
    /// dispatching to when the plan was built (`portable`, `avx2`,
    /// `avx512`, or `neon`).
    pub fn kernel_isa(&self) -> &'static str {
        self.kernel_isa
    }

    /// `true` when auto-selection ran on the measured kernel-rate table
    /// instead of the assumed saturating model.
    pub fn is_calibrated(&self) -> bool {
        self.calibrated
    }

    /// Predicted elimination flops (eqs. 25–32 summed over the `p − 1`
    /// steps; the §6.5 estimate `4·m_s·n²` for `Sequential`).
    pub fn predicted_flops(&self) -> f64 {
        self.predicted_flops
    }

    /// Predicted per-step broadcast volume (§7), in words.
    pub fn predicted_comm_words(&self) -> usize {
        self.predicted_comm_words
    }

    /// The resolved SPD driver options the plan executes with.
    pub fn schur_options(&self) -> &SchurOptions {
        &self.spd
    }

    /// The indefinite-fallback options the plan executes with.
    pub fn indefinite_options(&self) -> &IndefOptions {
        &self.indefinite
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indefinite::factor_indefinite;
    use crate::schur::factor_spd;
    use bs_toeplitz::workloads;

    #[test]
    fn auto_rep_is_yty_when_blocking_dominates() {
        // p = 2 blocks of size 8: one elimination step, application
        // over a single trailing block — blocking cost dominates.
        let plan = FactorPlan::for_shape(16, 8, &PlanRequest::default()).unwrap();
        assert!(plan.rep_is_auto());
        assert_eq!(plan.rep(), RepKind::YTY, "blocking-heavy regime");
        assert_eq!(plan.block_size(), 8, "m_s = 8 sits at the rate optimum");
    }

    #[test]
    fn auto_rep_is_vy2_when_application_dominates() {
        // Many trailing block columns at small m: the per-step trailing
        // update dominates and VY2 (eq. 31) wins.
        let plan = FactorPlan::for_shape(
            64,
            2,
            &PlanRequest {
                block_size: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(plan.rep_is_auto());
        assert!(!plan.block_size_is_auto());
        assert_eq!(plan.rep(), RepKind::VY2, "application-heavy regime");
        assert_eq!(plan.num_blocks(), 32);
    }

    #[test]
    fn pinned_fields_are_respected() {
        let plan = FactorPlan::for_shape(
            32,
            1,
            &PlanRequest {
                rep: Some(RepKind::Accumulated),
                block_size: Some(4),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!plan.rep_is_auto());
        assert!(!plan.block_size_is_auto());
        assert_eq!(plan.rep(), RepKind::Accumulated);
        assert_eq!(plan.block_size(), 4);
        assert!(plan.predicted_flops() > 0.0);
        assert!(plan.predicted_comm_words() > 0);
    }

    #[test]
    fn invalid_block_sizes_rejected() {
        let bad = FactorPlan::for_shape(
            10,
            1,
            &PlanRequest {
                block_size: Some(3),
                ..Default::default()
            },
        );
        assert!(matches!(bad, Err(Error::InvalidOptions(_))));
        let bad2 = FactorPlan::for_shape(
            10,
            2,
            &PlanRequest {
                block_size: Some(5),
                ..Default::default()
            },
        );
        assert!(matches!(bad2, Err(Error::InvalidOptions(_))));
    }

    #[test]
    fn execute_matches_factor_spd_bitwise() {
        let t = workloads::random_spd_block(2, 8, 9);
        let opts = SchurOptions::default();
        let reference = factor_spd(&t, &opts).unwrap();
        let plan = FactorPlan::from_options(&t, &opts, &IndefOptions::default()).unwrap();
        let mut pw = PlanWorkspace::new();
        // Execute twice: cold then warm — both must equal the wrapper.
        for round in 0..2 {
            match plan.execute(&t, &mut pw).unwrap() {
                Factorization::Spd(f) => {
                    assert_eq!(
                        f.r.max_abs_diff(&reference.r),
                        0.0,
                        "round {round}: plan/execute must be bitwise-identical"
                    );
                    assert_eq!(f.comm_words_per_step, reference.comm_words_per_step);
                    pw.donate(f.r);
                }
                other => panic!("expected SPD, got {other:?}"),
            }
        }
    }

    #[test]
    fn spd_plan_falls_back_to_indefinite_identically() {
        // A non-PD pivot inside the SPD attempt must replan onto the
        // indefinite kernel and produce exactly factor_indefinite's
        // output.
        for t in [
            workloads::random_indefinite_scalar(14, 7),
            workloads::paper_singular_minor_example(),
        ] {
            let reference = factor_indefinite(&t, &IndefOptions::default()).unwrap();
            let plan =
                FactorPlan::from_options(&t, &SchurOptions::default(), &IndefOptions::default())
                    .unwrap();
            let mut pw = PlanWorkspace::new();
            match plan.execute(&t, &mut pw).unwrap() {
                Factorization::Indefinite(f) => {
                    assert_eq!(f.r.max_abs_diff(&reference.r), 0.0, "n={}", t.order());
                    assert_eq!(f.d, reference.d);
                    assert_eq!(f.exchanges, reference.exchanges);
                    assert_eq!(f.perturbations, reference.perturbations);
                }
                other => panic!("expected indefinite fallback, got {other:?}"),
            }
        }
    }

    #[test]
    fn plans_record_the_dispatched_kernel() {
        let plan = FactorPlan::for_shape(16, 8, &PlanRequest::default()).unwrap();
        assert!(["portable", "avx2", "avx512", "neon"].contains(&plan.kernel_isa()));
        assert!(!plan.is_calibrated(), "calibration is opt-in");
    }

    #[test]
    fn calibrated_plans_pick_a_valid_block_size() {
        // The measured picks vary by machine, so assert structure, not
        // the value: m_s must still be a multiple of m dividing n, and
        // the plan must execute correctly.
        let t = workloads::random_spd_block(3, 16, 7);
        let plan = FactorPlan::new(
            &t,
            &PlanRequest {
                calibrate: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(plan.is_calibrated());
        assert!(plan.block_size_is_auto());
        let ms = plan.block_size();
        assert!(ms.is_multiple_of(3) && 48 % ms == 0, "m_s = {ms}");
        assert!(plan.threads() >= 1);
        let mut pw = PlanWorkspace::new();
        match plan.execute(&t, &mut pw).unwrap() {
            Factorization::Spd(f) => {
                let diff = f.reconstruct().max_abs_diff(&t.to_dense());
                assert!(diff < 1e-9, "||R^TR - T|| = {diff:e}");
            }
            other => panic!("expected SPD, got {other:?}"),
        }
    }

    #[test]
    fn execute_rejects_wrong_shape() {
        let t = workloads::random_spd_scalar(16, 1);
        let plan = FactorPlan::new(&t, &PlanRequest::default()).unwrap();
        let other = workloads::random_spd_scalar(20, 1);
        let mut pw = PlanWorkspace::new();
        assert!(matches!(
            plan.execute(&other, &mut pw),
            Err(Error::DimensionMismatch {
                expected: 16,
                found: 20,
                ..
            })
        ));
    }

    #[test]
    fn auto_planned_execution_reconstructs() {
        // End to end with both choices auto: factor and verify RᵀR.
        let t = workloads::random_spd_scalar(24, 6);
        let plan = FactorPlan::new(&t, &PlanRequest::default()).unwrap();
        assert!(plan.rep_is_auto() && plan.block_size_is_auto());
        let mut pw = PlanWorkspace::new();
        match plan.execute(&t, &mut pw).unwrap() {
            Factorization::Spd(f) => {
                let diff = f.reconstruct().max_abs_diff(&t.to_dense());
                assert!(diff < 1e-9, "||R^TR - T|| = {diff:e}");
            }
            other => panic!("expected SPD, got {other:?}"),
        }
    }
}
