//! Elementary hyperbolic Householder transformations (§3 of the paper).
//!
//! Given a signature `W = diag(±1)` and a vector `x` with `xᵀWx ≠ 0`,
//!
//! ```text
//! U_x = W − 2 x xᵀ / (xᵀ W x)
//! ```
//!
//! is `W`-unitary (`U_xᵀ W U_x = W`). Choosing `x = Wu + σ e_j` with
//! `σ = sign(u_j) √(uᵀWu)` maps `u` to `−σ e_j` (eqs. 14-16).
//!
//! In the Schur algorithm every eliminating vector has the sparse
//! support `{j} ∪ {m..2m}` — one pivot entry in the upper half and a
//! dense lower half (Fig. 1). [`PivotReflector`] stores exactly that and
//! its `apply_*` kernels skip the structural zeros.
//!
//! Both reflector types are generic over the working [`Scalar`]
//! (`f64` by default): the mixed-precision pipeline builds the same
//! reflectors at `f32`. Pivot *classification* thresholds
//! (`zero_tol`, `scale`) stay `f64` — they are tolerances, not working
//! data — and the reported `hnorm` diagnostics are widened to `f64`.

use bs_matrix::flops;
use bs_matrix::ldlt::Signature;
use bs_matrix::view::MatMut;
use bs_matrix::Scalar;

/// Outcome of attempting to build a reflector from a pivot column.
#[derive(Debug, Clone, PartialEq)]
pub enum PivotOutcome {
    /// Reflector built; elimination may proceed.
    Ok,
    /// `uᵀWu` has the opposite sign of `W_jj`: an exchange with an
    /// opposite-signature row is required first (§8).
    WrongSign { hnorm: f64 },
    /// `uᵀWu ≈ 0`: singular principal minor; the perturbation of §8.2
    /// applies. Carries the tiny hyperbolic norm.
    ZeroNorm { hnorm: f64 },
}

/// A dense elementary hyperbolic reflector (general support).
///
/// Stores `x` and `beta = −2/(xᵀWx)`, so `U_x c = W c + beta · x (xᵀ c)`.
#[derive(Debug, Clone)]
pub struct HypReflector<T: Scalar = f64> {
    pub x: Vec<T>,
    pub beta: T,
    /// `σ`: the pivot entry maps to `−σ`.
    pub sigma: T,
    /// Pivot index `j`.
    pub pivot: usize,
}

impl<T: Scalar> HypReflector<T> {
    /// Build the reflector mapping `u → −σ e_j` under signature `w`.
    /// Requires `sign(uᵀWu) = w_j`; callers decide how to handle the
    /// other outcomes (exchange / perturbation / failure).
    pub fn compute(u: &[T], w: &Signature, pivot: usize) -> (Option<HypReflector<T>>, T) {
        let n = u.len();
        assert_eq!(w.len(), n);
        assert!(pivot < n);
        let h = bs_matrix::blas1::wdot(u, &w.0, u);
        let wj = T::from_f64(w.sign(pivot) as f64);
        if h * wj <= T::ZERO {
            return (None, h);
        }
        let sigma = sign_or_one(u[pivot]) * (h * wj).sqrt() * wj.signum();
        // x = W u + σ e_j.
        let mut x = u.to_vec();
        w.apply(&mut x);
        x[pivot] += sigma;
        // xᵀWx = 2(uᵀWu + σ u_j) — the closed form from §3; computing it
        // directly is cheaper and avoids cancellation.
        let two = T::from_f64(2.0);
        let xtwx = two * (h + sigma * u[pivot]);
        flops::add(6);
        if xtwx == T::ZERO {
            return (None, h);
        }
        (
            Some(HypReflector {
                x,
                beta: (-two) / xtwx,
                sigma,
                pivot,
            }),
            h,
        )
    }

    /// Apply to a dense column: `c ← W c + beta x (xᵀ c)`.
    pub fn apply_col(&self, w: &Signature, c: &mut [T]) {
        let s = bs_matrix::blas1::dot(&self.x, c);
        w.apply(c);
        bs_matrix::blas1::axpy(self.beta * s, &self.x, c);
    }

    /// Apply to every column of a matrix view.
    pub fn apply(&self, w: &Signature, mut g: MatMut<'_, T>) {
        assert_eq!(g.rows(), self.x.len());
        for j in 0..g.cols() {
            self.apply_col(w, g.col_mut(j));
        }
    }

    /// Dense `2m × 2m` matrix `U_x` (test / diagnostic use).
    pub fn to_dense(&self, w: &Signature) -> bs_matrix::Matrix<T> {
        let n = self.x.len();
        bs_matrix::Matrix::from_fn(n, n, |i, j| {
            let wij = if i == j {
                T::from_f64(w.sign(i) as f64)
            } else {
                T::ZERO
            };
            wij + self.beta * self.x[i] * self.x[j]
        })
    }

    /// 2-norm of `U_x` (power iteration). The perturbation analysis of
    /// §8.2 tracks `‖U‖ ≈ 1/δ` as the instability growth factor.
    pub fn norm2(&self, w: &Signature) -> f64 {
        bs_matrix::norms::mat_two_estimate(&self.to_dense(w).convert::<f64>(), 50)
    }
}

#[inline]
fn sign_or_one<T: Scalar>(v: T) -> T {
    if v < T::ZERO {
        -T::ONE
    } else {
        T::ONE
    }
}

/// The Schur-step reflector with sparse support `{pivot} ∪ {m..2m}`
/// (Fig. 1 of the paper): one nonzero in the upper half, dense lower
/// half. Storing only the support makes both construction and
/// application `O(m)` per column instead of `O(2m)`.
#[derive(Debug, Clone)]
pub struct PivotReflector<T: Scalar = f64> {
    /// Upper-half entry `x_j` at row `pivot`.
    pub x_top: T,
    /// Lower-half entries `x_{m..2m}`.
    pub x_low: Vec<T>,
    pub beta: T,
    pub sigma: T,
    /// Pivot row index within the upper half (`0 ≤ pivot < m`).
    pub pivot: usize,
}

impl<T: Scalar> PivotReflector<T> {
    /// Classify and (when possible) build the reflector for the pivot
    /// column `(u_top at row `pivot`; u_low)` under working signature
    /// `w` (length `m + u_low.len()`; the lower half starts at `m`).
    ///
    /// `zero_tol * scale` is the absolute threshold below which `uᵀWu`
    /// counts as zero (singular principal minor). The hyperbolic norm of
    /// a pivot column is a ratio of consecutive principal minors of `T`
    /// — an invariant of the elimination — so `scale` must be an
    /// absolute matrix scale (e.g. `‖T‖∞`), *not* the column norm: the
    /// column entries blow up by `1/√δ` after a perturbation while `h`
    /// keeps its meaning, and a column-relative test would misclassify
    /// healthy pivots as singular.
    #[allow(clippy::too_many_arguments)]
    pub fn compute(
        u_top: T,
        u_low: &[T],
        w: &Signature,
        m: usize,
        pivot: usize,
        zero_tol: f64,
        scale: f64,
    ) -> (PivotOutcome, Option<PivotReflector<T>>) {
        let mut out = PivotReflector::empty();
        let outcome =
            PivotReflector::compute_into(u_top, u_low, w, m, pivot, zero_tol, scale, &mut out);
        let r = matches!(outcome, PivotOutcome::Ok).then_some(out);
        (outcome, r)
    }

    /// A placeholder reflector ready for [`compute_into`](Self::compute_into)
    /// to overwrite; its `x_low` buffer is reused across Schur steps.
    pub fn empty() -> PivotReflector<T> {
        PivotReflector {
            x_top: T::ZERO,
            x_low: Vec::new(),
            beta: T::ZERO,
            sigma: T::ZERO,
            pivot: 0,
        }
    }

    /// [`compute`](Self::compute) writing into a caller-owned reflector,
    /// so `x_low` reuses its existing heap buffer. Identical arithmetic;
    /// on non-`Ok` outcomes `out` holds unspecified (stale) data.
    #[allow(clippy::too_many_arguments)]
    pub fn compute_into(
        u_top: T,
        u_low: &[T],
        w: &Signature,
        m: usize,
        pivot: usize,
        zero_tol: f64,
        scale: f64,
        out: &mut PivotReflector<T>,
    ) -> PivotOutcome {
        assert!(pivot < m);
        assert_eq!(w.len(), m + u_low.len());
        let wj = T::from_f64(w.sign(pivot) as f64);
        let mut h = wj * u_top * u_top;
        for (i, &v) in u_low.iter().enumerate() {
            let s = T::from_f64(w.sign(m + i) as f64);
            h += s * v * v;
        }
        flops::add(3 * u_low.len() as u64 + 3);
        if h.abs().to_f64() <= zero_tol * scale.max(f64::MIN_POSITIVE) {
            return PivotOutcome::ZeroNorm { hnorm: h.to_f64() };
        }
        if h * wj < T::ZERO {
            return PivotOutcome::WrongSign { hnorm: h.to_f64() };
        }
        let sigma = sign_or_one(u_top) * (h * wj).sqrt() * wj.signum();
        // x = W u + σ e_j on the support.
        let x_top = wj * u_top + sigma;
        out.x_low.clear();
        out.x_low.extend_from_slice(u_low);
        for (i, v) in out.x_low.iter_mut().enumerate() {
            if w.sign(m + i) < 0 {
                *v = -*v;
            }
        }
        let two = T::from_f64(2.0);
        let xtwx = two * (h + sigma * u_top);
        flops::add(6);
        if xtwx == T::ZERO {
            return PivotOutcome::ZeroNorm { hnorm: h.to_f64() };
        }
        out.x_top = x_top;
        out.beta = (-two) / xtwx;
        out.sigma = sigma;
        out.pivot = pivot;
        PivotOutcome::Ok
    }

    /// Inner product of the support with a split column.
    #[inline]
    pub fn dot(&self, c_top: T, c_low: &[T]) -> T {
        flops::add(2 * self.x_low.len() as u64 + 2);
        self.x_top * c_top + bs_matrix::blas1::dot(&self.x_low, c_low)
    }

    /// Apply to a split column `(c_top at the pivot row; c_low)` in
    /// place. Rows of the upper half other than the pivot row are
    /// *not* touched — callers that need the full `W` action on them
    /// (sign flips under an indefinite Σ) handle that separately; under
    /// the SPD signature the upper half of `W` is `+I` so nothing is
    /// needed.
    #[inline]
    pub fn apply_split(&self, w: &Signature, m: usize, c_top: &mut T, c_low: &mut [T]) {
        let s = self.dot(*c_top, c_low);
        // W action on the support rows.
        let wj = T::from_f64(w.sign(self.pivot) as f64);
        *c_top *= wj;
        for (i, v) in c_low.iter_mut().enumerate() {
            if w.sign(m + i) < 0 {
                *v = -*v;
            }
        }
        flops::add(self.x_low.len() as u64 + 1);
        *c_top += self.beta * s * self.x_top;
        bs_matrix::blas1::axpy(self.beta * s, &self.x_low, c_low);
        flops::add(2);
    }

    /// Cheap upper estimate of `‖U_x‖₂ ≤ 1 + |β|·‖x‖₂²` — the growth
    /// factor the §8.2 perturbation analysis tracks (`‖U‖ ≈ 1/δ` after
    /// a perturbed pivot). Reported in f64 whatever the working scalar.
    pub fn norm_est(&self) -> f64 {
        let x2 = self.x_top * self.x_top + self.x_low.iter().fold(T::ZERO, |acc, &v| acc + v * v);
        1.0 + self.beta.abs().to_f64() * x2.to_f64()
    }

    /// Densify to a full-length [`HypReflector`] over `m + x_low.len()`
    /// rows (used by the block-representation builders).
    pub fn to_full(&self, m: usize) -> HypReflector<T> {
        let mut x = vec![T::ZERO; m + self.x_low.len()];
        x[self.pivot] = self.x_top;
        x[m..].copy_from_slice(&self.x_low);
        HypReflector {
            x,
            beta: self.beta,
            sigma: self.sigma,
            pivot: self.pivot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_matrix::Matrix;

    fn spd_w(m: usize) -> Signature {
        Signature::hyperbolic(m)
    }

    #[test]
    fn reflector_maps_u_to_sigma_ej() {
        let w = spd_w(2); // (+,+,-,-)
        let u = vec![3.0, 0.5, 1.0, 0.5]; // uᵀWu = 9+.25-1-.25 = 8 > 0
        let (r, h) = HypReflector::compute(&u, &w, 0);
        let r = r.unwrap();
        assert!((h - 8.0).abs() < 1e-14);
        let mut c = u.clone();
        r.apply_col(&w, &mut c);
        assert!((c[0] + r.sigma).abs() < 1e-12, "c0 = {}", c[0]);
        for i in 1..4 {
            assert!(c[i].abs() < 1e-12, "c[{i}] = {}", c[i]);
        }
        // |σ| = sqrt(uᵀWu)
        assert!((r.sigma.abs() - 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn reflector_is_w_unitary() {
        let w = spd_w(3);
        let u = vec![2.0, -1.0, 0.3, 0.5, 0.2, -0.1];
        let (r, _) = HypReflector::compute(&u, &w, 1);
        let r = r.unwrap();
        let ud = r.to_dense(&w);
        let wd = w.to_matrix();
        // UᵀWU must equal W.
        let mut wu = Matrix::zeros(6, 6);
        bs_matrix::gemm(
            1.0,
            wd.rf(),
            bs_matrix::Trans::No,
            ud.rf(),
            bs_matrix::Trans::No,
            0.0,
            wu.mt(),
        );
        let mut utwu = Matrix::zeros(6, 6);
        bs_matrix::gemm(
            1.0,
            ud.rf(),
            bs_matrix::Trans::Yes,
            wu.rf(),
            bs_matrix::Trans::No,
            0.0,
            utwu.mt(),
        );
        assert!(utwu.max_abs_diff(&wd) < 1e-12);
    }

    #[test]
    fn wrong_sign_detected() {
        let w = spd_w(1); // (+,-)
        let u = vec![1.0, 2.0]; // uᵀWu = -3 < 0 but w_0 = +1
        let (r, h) = HypReflector::compute(&u, &w, 0);
        assert!(r.is_none());
        assert!((h + 3.0).abs() < 1e-14);
    }

    #[test]
    fn preserves_hyperbolic_norm_of_any_vector() {
        let w = spd_w(2);
        let u = vec![5.0, 1.0, 2.0, 1.0];
        let (r, _) = HypReflector::compute(&u, &w, 0);
        let r = r.unwrap();
        let c0 = vec![0.3, -1.2, 0.7, 2.5];
        let h0 = bs_matrix::blas1::wdot(&c0, &w.0, &c0);
        let mut c = c0.clone();
        r.apply_col(&w, &mut c);
        let h1 = bs_matrix::blas1::wdot(&c, &w.0, &c);
        assert!((h0 - h1).abs() < 1e-10 * h0.abs().max(1.0));
    }

    #[test]
    fn pivot_reflector_matches_dense() {
        let m = 3;
        let w = spd_w(m);
        // Column with support {1} ∪ lower.
        let mut u = vec![0.0; 6];
        u[1] = 4.0;
        u[3] = 1.0;
        u[4] = -0.5;
        u[5] = 2.0;
        let (full, _) = HypReflector::compute(&u, &w, 1);
        let full = full.unwrap();
        let (out, sparse) = PivotReflector::compute(4.0, &u[3..], &w, m, 1, 1e-14, 1.0);
        assert_eq!(out, PivotOutcome::Ok);
        let sparse = sparse.unwrap();
        assert!((sparse.beta - full.beta).abs() < 1e-14);
        assert!((sparse.sigma - full.sigma).abs() < 1e-14);

        // Apply both to a generic column; on the support rows the
        // results must agree (other upper rows: dense applies W=+I and
        // x is zero there, so they agree trivially).
        let c0 = vec![1.0, -2.0, 0.5, 3.0, 0.25, -1.5];
        let mut cd = c0.clone();
        full.apply_col(&w, &mut cd);
        let mut c_top = c0[1];
        let mut c_low = c0[3..].to_vec();
        sparse.apply_split(&w, m, &mut c_top, &mut c_low);
        assert!((c_top - cd[1]).abs() < 1e-13);
        for i in 0..3 {
            assert!((c_low[i] - cd[3 + i]).abs() < 1e-13);
        }
        // Untouched upper rows keep their values.
        assert_eq!(cd[0], c0[0]);
        assert_eq!(cd[2], c0[2]);
    }

    #[test]
    fn pivot_reflector_eliminates_lower() {
        let m = 2;
        let w = spd_w(m);
        let u_top = 3.0;
        let u_low = vec![1.0, -2.0];
        let (out, r) = PivotReflector::compute(u_top, &u_low, &w, m, 0, 1e-14, 1.0);
        assert_eq!(out, PivotOutcome::Ok);
        let r = r.unwrap();
        let mut c_top = u_top;
        let mut c_low = u_low.clone();
        r.apply_split(&w, m, &mut c_top, &mut c_low);
        assert!((c_top + r.sigma).abs() < 1e-12);
        for v in &c_low {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn zero_norm_reported() {
        let m = 1;
        let w = spd_w(m);
        let (out, r) = PivotReflector::compute(1.0, &[1.0], &w, m, 0, 1e-12, 1.0);
        assert!(matches!(out, PivotOutcome::ZeroNorm { .. }));
        assert!(r.is_none());
    }

    #[test]
    fn wrong_sign_reported_for_pivot_variant() {
        let m = 1;
        let w = spd_w(m);
        let (out, _) = PivotReflector::compute(1.0, &[2.0], &w, m, 0, 1e-12, 1.0);
        match out {
            PivotOutcome::WrongSign { hnorm } => assert!((hnorm + 3.0).abs() < 1e-14),
            other => panic!("expected WrongSign, got {other:?}"),
        }
    }
}
