//! Runtime invariant contracts for the factorization stack (the
//! `paranoid` cargo feature).
//!
//! Each contract encodes a mathematical invariant of the block Schur
//! algorithm that must hold at a specific point of the elimination —
//! not a numerical tolerance, but a structural fact that is violated
//! only by a logic bug, memory corruption, or a NaN/Inf cascade:
//!
//! * [`hyperbolic_existence`] — a reflector that the pivot
//!   classification reported as constructible must actually satisfy
//!   the §3 existence condition: `σ² = |uᵀWu| > 0` and finite, and the
//!   scaling `β = −2/(xᵀWx)` finite and nonzero. A NaN generator entry
//!   slips past sign tests (`NaN > 0` is false *and* `NaN < 0` is
//!   false) and would otherwise poison the whole trailing update.
//! * [`signature_consistency`] — the working signature `W` of the
//!   indefinite elimination evolves only by row *exchanges* (§8.1),
//!   which permute its entries: every entry stays ±1 and the sum of
//!   entries (the signature's inertia surplus) is invariant across
//!   steps.
//! * [`spd_diagonal`] — after diagonal normalization the SPD factor
//!   `R` must have a strictly positive diagonal (`T = RᵀR` with `T`
//!   nonsingular); a zero survivor means a singular minor escaped the
//!   pivot classification.
//! * Workspace checkout/checkin balance lives on the arena itself:
//!   [`bs_matrix::Workspace::contract_region`].
//!
//! Violations are **always recorded** in `bs_probe::stability` (and
//! bump `Counter::ContractViolations`) so they surface in traces and
//! metric dumps; whether they additionally abort the process is
//! controlled by [`set_abort`] — the default aborts in debug builds
//! and records-only in release builds.
//!
//! Every check compiles to nothing without the `paranoid` feature: the
//! bodies are behind `cfg!(feature = "paranoid")`, so both
//! configurations type-check and the disabled form is trivially
//! inlined away.

use bs_probe::stability;
use std::sync::atomic::{AtomicBool, Ordering};

static ABORT: AtomicBool = AtomicBool::new(cfg!(debug_assertions));

/// Whether a violated contract panics after being recorded. Defaults
/// to `true` in debug builds, `false` in release builds. Tests that
/// deliberately feed broken inputs call `set_abort(false)` and inspect
/// `bs_probe::stability::violation_count()` instead.
pub fn set_abort(abort: bool) {
    ABORT.store(abort, Ordering::Relaxed);
}

/// Current abort-on-violation setting.
pub fn abort_on_violation() -> bool {
    ABORT.load(Ordering::Relaxed)
}

/// `true` when the crate was built with the `paranoid` feature (i.e.
/// the contracts below actually check anything).
#[inline]
pub const fn enabled() -> bool {
    cfg!(feature = "paranoid")
}

/// Record a violation and, when configured, abort.
fn violated(contract: &'static str, detail: String) {
    stability::record_violation(contract, detail.clone());
    if ABORT.load(Ordering::Relaxed) {
        // bs-lint: allow(no-panic-paths) -- deliberate abort on a broken invariant; opt out with set_abort(false)
        panic!("contract `{contract}` violated: {detail}");
    }
}

/// §3 existence contract, checked right after a pivot classification
/// reports a constructible reflector: `σ` (with `σ² = |uᵀWu|`, the
/// pivot's hyperbolic norm) must be finite and nonzero, and the
/// reflector scaling `β` finite and nonzero. Catches NaN/Inf pivot
/// columns that defeat the sign-based classification.
#[inline]
pub fn hyperbolic_existence(step: usize, column: usize, sigma: f64, beta: f64) {
    if cfg!(feature = "paranoid")
        && !(sigma.is_finite() && sigma != 0.0 && beta.is_finite() && beta != 0.0)
    {
        violated(
            "hyperbolic_existence",
            format!(
                "step {step} column {column}: reflector classified Ok but sigma = {sigma:e}, \
                 beta = {beta:e} — the existence condition uᵀWu·w_j > 0 cannot have held \
                 numerically"
            ),
        );
    }
}

/// Signature-evolution contract for the indefinite elimination: the
/// working signature `w` is only ever *permuted* by row exchanges, so
/// every entry stays ±1 and the entry sum equals `expected_sum` (its
/// value when the generator was built) at every step.
#[inline]
pub fn signature_consistency(w: &[i8], expected_sum: i64, step: usize) {
    if cfg!(feature = "paranoid") {
        let mut sum = 0i64;
        let mut non_unit = false;
        for &s in w {
            sum += s as i64;
            if s != 1 && s != -1 {
                non_unit = true;
            }
        }
        if non_unit || sum != expected_sum {
            violated(
                "signature_consistency",
                format!(
                    "step {step}: working signature sum {sum} (expected {expected_sum}), \
                     non-unit entry present: {non_unit} — exchanges must only permute W"
                ),
            );
        }
    }
}

/// SPD-mode diagonal contract: after diagonal normalization every
/// diagonal entry of `R` must be strictly positive (and finite).
/// Checked at `site` (e.g. `"factor_spd"`).
#[inline]
pub fn spd_diagonal<T: bs_matrix::Scalar>(r: &bs_matrix::Matrix<T>, site: &'static str) {
    if cfg!(feature = "paranoid") {
        let n = r.rows().min(r.cols());
        for j in 0..n {
            let v = r[(j, j)].to_f64();
            if !v.is_finite() || v <= 0.0 {
                violated(
                    "spd_diagonal",
                    format!(
                        "{site}: r[({j},{j})] = {v:e} is not strictly positive after \
                         diagonal normalization — T = RᵀR cannot be SPD"
                    ),
                );
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The cross-case behaviour (recording, counters, abort toggling)
    // is exercised by `tests/contracts.rs` under the `paranoid`
    // feature; here we only pin the always-available surface.
    #[test]
    fn abort_toggle_round_trips() {
        let initial = abort_on_violation();
        set_abort(false);
        assert!(!abort_on_violation());
        set_abort(true);
        assert!(abort_on_violation());
        set_abort(initial);
    }

    #[test]
    fn enabled_reflects_feature() {
        assert_eq!(enabled(), cfg!(feature = "paranoid"));
    }

    #[test]
    fn checks_are_silent_on_valid_inputs() {
        // Valid inputs must never record, in either configuration.
        let before = bs_probe::stability::violation_count();
        hyperbolic_existence(1, 0, 2.5, -0.3);
        signature_consistency(&[1, -1, 1, 1], 2, 3);
        let mut r = bs_matrix::Matrix::identity(4);
        r[(2, 2)] = 0.5;
        spd_diagonal(&r, "test");
        assert_eq!(bs_probe::stability::violation_count(), before);
    }
}
