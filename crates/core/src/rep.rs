//! Block representations of a product of hyperbolic Householder
//! reflectors (§4 of the paper, Lemmas 4.0.1–4.0.3).
//!
//! A product `U = U_k … U_1` of elementary reflectors under signature
//! `W` can be held as:
//!
//! - **Accumulated** — the dense `2m × 2m` matrix `U` itself (the
//!   "naive blocking scheme", eq. 25);
//! - **VY form 1** — `U = Wᵏ + V Yᵀ` updated with *two matvecs* per
//!   step: `V ← [W V, x]`, `Y ← [Y, zᵀ]`, `z = β xᵀU⁽ᵏ⁾` (Lemma 4.0.1);
//! - **VY form 2** — same factored form, updated with *one matvec plus
//!   one rank-1*: `V ← [U_{k+1} V, x]`, `z = β xᵀWᵏ` (Lemma 4.0.2);
//! - **YTYᵀ** — `U = Wᵏ + Y T Yᵀ W^{k-1}`, the compact storage-efficient
//!   form (Lemma 4.0.3).
//! - **Sequential** — no blocking at all: the reflectors are replayed
//!   one at a time (the BLAS2 alternative discussed at the end of §6.2).
//!
//! Application to the trailing generator (`phase 2`, §6.3) is level-3
//! for all blocked forms: one or two `gemm`s against the `2m × q`
//! trailing columns.

use crate::reflector::{HypReflector, PivotReflector};
use bs_matrix::blas3::{gemm, gemm_ws, Trans};
use bs_matrix::ldlt::Signature;
use bs_matrix::par::{self, ExecPolicy};
use bs_matrix::view::MatMut;
use bs_matrix::{flops, Matrix, Scalar, Workspace};

/// Which representation of the block hyperbolic Householder product to
/// build and apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepKind {
    /// Dense accumulated `U` (eq. 25): most expensive to build.
    Accumulated,
    /// `U = Wᵏ + VYᵀ`, two-matvec update (Lemma 4.0.1 / eq. 26).
    VY1,
    /// `U = Wᵏ + VYᵀ`, matvec + rank-1 update (Lemma 4.0.2 / eq. 27).
    VY2,
    /// `U = Wᵏ + Y T Yᵀ W^{k-1}` (Lemma 4.0.3 / eq. 28): cheapest to
    /// build, half the broadcast volume on distributed machines.
    YTY,
    /// No blocking: elementary reflectors applied one by one (BLAS2).
    Sequential,
}

impl RepKind {
    /// All blocked + sequential kinds, for sweeps/ablations.
    pub const ALL: [RepKind; 5] = [
        RepKind::Accumulated,
        RepKind::VY1,
        RepKind::VY2,
        RepKind::YTY,
        RepKind::Sequential,
    ];
}

impl std::fmt::Display for RepKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RepKind::Accumulated => "U (accumulated)",
            RepKind::VY1 => "VY form 1",
            RepKind::VY2 => "VY form 2",
            RepKind::YTY => "YTY^T",
            RepKind::Sequential => "sequential",
        };
        f.write_str(s)
    }
}

/// Reusable scratch buffers for the [`BlockReflector::push`] update
/// kernels. One instance, held across steps by the plan/execute engine,
/// turns the per-reflector temporaries (`z`, `xᵀV`, the `T`-row
/// accumulator, the densified pivot vector) into buffer reuses instead
/// of heap allocations.
#[derive(Debug, Default, Clone)]
pub struct RepScratch<T: Scalar = f64> {
    /// Length-`n` buffer (`z` / `xᵀU` intermediates).
    nbuf: Vec<T>,
    /// Length-`k` buffer (`xᵀV` / `xᵀY`).
    kbuf1: Vec<T>,
    /// Second length-`k` buffer (the YTYᵀ `T`-row accumulator).
    kbuf2: Vec<T>,
    /// Full-length expansion of a sparse pivot reflector.
    xfull: Vec<T>,
}

/// A product of `k` elementary hyperbolic reflectors over `n = 2m` rows
/// in one of the representations of [`RepKind`].
#[derive(Debug, Clone)]
pub struct BlockReflector<T: Scalar = f64> {
    kind: RepKind,
    n: usize,
    k: usize,
    k_max: usize,
    w: Signature,
    /// Accumulated: the dense U. VY1/VY2: V. YTY: Y.
    left: Matrix<T>,
    /// VY1/VY2: Y. YTY: T (k × k lower triangular). Unused otherwise.
    right: Matrix<T>,
    /// Sequential: the raw reflectors.
    elems: Vec<HypReflector<T>>,
}

impl<T: Scalar> BlockReflector<T> {
    /// Empty product (identity transformation in the `Wᵏ`-relative
    /// sense) over `n` rows under signature `w`. `k_max` bounds how many
    /// reflectors will be pushed (pre-allocates the factored panels).
    pub fn new(kind: RepKind, w: Signature, k_max: usize) -> Self {
        let n = w.len();
        let (left, right) = match kind {
            RepKind::Accumulated => (Matrix::zeros(n, n), Matrix::zeros(0, 0)),
            RepKind::VY1 | RepKind::VY2 => (Matrix::zeros(n, k_max), Matrix::zeros(n, k_max)),
            RepKind::YTY => (Matrix::zeros(n, k_max), Matrix::zeros(k_max, k_max)),
            RepKind::Sequential => (Matrix::zeros(0, 0), Matrix::zeros(0, 0)),
        };
        BlockReflector {
            kind,
            n,
            k: 0,
            k_max,
            w,
            left,
            right,
            elems: Vec::with_capacity(if kind == RepKind::Sequential {
                k_max
            } else {
                0
            }),
        }
    }

    /// Rewind to the empty product, keeping the allocated panels for
    /// reuse by the next Schur step. Sound because every `push` writes
    /// the entries a later `push`/`apply` reads before they are read —
    /// stale data from the previous step is never observed.
    pub fn reset(&mut self) {
        self.k = 0;
        self.elems.clear();
    }

    /// Whether this instance's allocation can be reused (via
    /// [`reset`](Self::reset)) for a product of shape
    /// `(kind, n, k_max)` under signature `w`.
    pub fn fits(&self, kind: RepKind, w: &Signature, k_max: usize) -> bool {
        self.kind == kind && self.n == w.len() && self.k_max == k_max && self.w.0 == w.0
    }

    #[inline]
    pub fn kind(&self) -> RepKind {
        self.kind
    }

    /// Number of reflectors absorbed so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.k
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.k == 0
    }

    /// Signature this product is unitary with respect to.
    #[inline]
    pub fn signature(&self) -> &Signature {
        &self.w
    }

    /// Words needed to communicate this representation (the §6.5 /
    /// §7.1 broadcast-volume argument: YTYᵀ is about half of VY).
    pub fn comm_words(&self) -> usize {
        match self.kind {
            RepKind::Accumulated => self.n * self.n,
            RepKind::VY1 | RepKind::VY2 => 2 * self.n * self.k,
            RepKind::YTY => self.n * self.k + self.k * (self.k + 1) / 2,
            RepKind::Sequential => self.k * (self.n + 1),
        }
    }

    /// Absorb the next elementary reflector `U_{k+1}` (given by its
    /// full-length vector form) on the *left* of the product.
    pub fn push(&mut self, r: &HypReflector<T>) {
        let mut scratch = RepScratch::default();
        self.push_parts(&r.x, r.beta, r.sigma, r.pivot, &mut scratch);
    }

    /// [`push`](Self::push) for the Schur step's sparse
    /// [`PivotReflector`] with caller-provided scratch: the full-length
    /// vector is expanded into `scratch` instead of a fresh allocation,
    /// and all update temporaries reuse `scratch` buffers. This is the
    /// allocation-free path the warm plan/execute engine runs.
    pub fn push_pivot(&mut self, r: &PivotReflector<T>, m: usize, scratch: &mut RepScratch<T>) {
        let mut xfull = std::mem::take(&mut scratch.xfull);
        xfull.clear();
        xfull.resize(m + r.x_low.len(), T::ZERO);
        xfull[r.pivot] = r.x_top;
        xfull[m..].copy_from_slice(&r.x_low);
        self.push_parts(&xfull, r.beta, r.sigma, r.pivot, scratch);
        scratch.xfull = xfull;
    }

    /// Shared update kernel behind [`push`](Self::push) /
    /// [`push_pivot`](Self::push_pivot). The arithmetic is byte-for-byte
    /// the same whichever entry point is used: every scratch buffer is
    /// fully overwritten before it is read.
    fn push_parts(&mut self, x: &[T], beta: T, sigma: T, pivot: usize, s: &mut RepScratch<T>) {
        assert_eq!(x.len(), self.n);
        let k = self.k;
        let n = self.n;
        match self.kind {
            RepKind::Sequential => self.elems.push(HypReflector {
                x: x.to_vec(),
                beta,
                sigma,
                pivot,
            }),
            RepKind::Accumulated => {
                if k == 0 {
                    // U = W + beta x xᵀ.
                    for j in 0..n {
                        for i in 0..n {
                            let wij = if i == j {
                                T::from_f64(self.w.sign(i) as f64)
                            } else {
                                T::ZERO
                            };
                            self.left[(i, j)] = wij + beta * x[i] * x[j];
                        }
                    }
                    flops::add(3 * (n * n) as u64);
                } else {
                    // U ← U_{k+1} U = W U + beta x (xᵀ U).
                    let xtu = resized(&mut s.nbuf, n);
                    bs_matrix::blas2::gemv_t(T::ONE, self.left.rf(), x, T::ZERO, xtu);
                    for j in 0..n {
                        let col = self.left.col_mut(j);
                        for (i, c) in col.iter_mut().enumerate() {
                            if self.w.sign(i) < 0 {
                                *c = -*c;
                            }
                        }
                        bs_matrix::blas1::axpy(beta * xtu[j], x, col);
                    }
                    flops::add((n * n) as u64);
                }
            }
            RepKind::VY1 => {
                // z = β xᵀ U⁽ᵏ⁾ = β xᵀWᵏ + β (xᵀV) Yᵀ  — two matvecs.
                wk_into(&self.w, k, x, &mut s.nbuf);
                let z = s.nbuf.as_mut_slice();
                bs_matrix::blas1::scal(beta, z);
                if k > 0 {
                    let v = self.left.sub(0, 0, n, k);
                    let y = self.right.sub(0, 0, n, k);
                    let xv = resized(&mut s.kbuf1, k);
                    bs_matrix::blas2::gemv_t(beta, v, x, T::ZERO, xv);
                    bs_matrix::blas2::gemv(T::ONE, y, xv, T::ONE, z);
                    // V ← W V.
                    for j in 0..k {
                        let col = self.left.col_mut(j);
                        for (i, c) in col.iter_mut().enumerate() {
                            if self.w.sign(i) < 0 {
                                *c = -*c;
                            }
                        }
                    }
                    flops::add((n * k) as u64);
                }
                self.left.col_mut(k).copy_from_slice(x);
                self.right.col_mut(k).copy_from_slice(z);
            }
            RepKind::VY2 => {
                // z = β xᵀWᵏ (cheap); V ← [U_{k+1} V, x] via matvec + rank-1.
                wk_into(&self.w, k, x, &mut s.nbuf);
                let z = s.nbuf.as_mut_slice();
                bs_matrix::blas1::scal(beta, z);
                if k > 0 {
                    let xv = resized(&mut s.kbuf1, k);
                    {
                        let v = self.left.sub(0, 0, n, k);
                        bs_matrix::blas2::gemv_t(T::ONE, v, x, T::ZERO, xv);
                    }
                    // V ← W V + (β x) (xᵀV).
                    for j in 0..k {
                        let col = self.left.col_mut(j);
                        for (i, c) in col.iter_mut().enumerate() {
                            if self.w.sign(i) < 0 {
                                *c = -*c;
                            }
                        }
                        bs_matrix::blas1::axpy(beta * xv[j], x, col);
                    }
                    flops::add((n * k) as u64);
                }
                self.left.col_mut(k).copy_from_slice(x);
                self.right.col_mut(k).copy_from_slice(z);
            }
            RepKind::YTY => {
                // Y ← [W Y, x]; T ← [[T, 0], [a, b]], a = β xᵀ Y T, b = β.
                if k > 0 {
                    let xy = resized(&mut s.kbuf1, k);
                    {
                        let y = self.left.sub(0, 0, n, k);
                        bs_matrix::blas2::gemv_t(T::ONE, y, x, T::ZERO, xy);
                    }
                    // a = β (xᵀY) T with T lower triangular k×k.
                    let a = resized(&mut s.kbuf2, k);
                    for j in 0..k {
                        let mut acc = T::ZERO;
                        for i in j..k {
                            acc += s.kbuf1[i] * self.right[(i, j)];
                        }
                        a[j] = beta * acc;
                    }
                    flops::add((k * k) as u64 + k as u64);
                    // Y ← W Y.
                    for j in 0..k {
                        let col = self.left.col_mut(j);
                        for (i, c) in col.iter_mut().enumerate() {
                            if self.w.sign(i) < 0 {
                                *c = -*c;
                            }
                        }
                    }
                    flops::add((n * k) as u64);
                    for j in 0..k {
                        self.right[(k, j)] = s.kbuf2[j];
                    }
                }
                self.left.col_mut(k).copy_from_slice(x);
                self.right[(k, k)] = beta;
            }
        }
        self.k += 1;
    }

    /// Work volume (multiply-add scale) of applying this product to `q`
    /// trailing columns — the quantity gated against
    /// [`ExecPolicy::min_work`]. Depends only on the representation's
    /// shape, so the strip/no-strip decision is identical at every
    /// thread count.
    fn apply_work(&self, q: usize) -> u128 {
        let n = self.n as u128;
        let k = self.k.max(1) as u128;
        let q = q as u128;
        match self.kind {
            RepKind::Accumulated => n * n * q,
            RepKind::VY1 | RepKind::VY2 | RepKind::YTY => 2 * n * k * q,
            RepKind::Sequential => n * k * q,
        }
    }

    /// Apply the product to the trailing generator columns:
    /// `G ← U⁽ᵏ⁾ G` (phase 2). Level-3 for the blocked kinds; under a
    /// parallel [`ExecPolicy`] the trailing columns are cut into
    /// deterministic strips executed on the worker pool — the
    /// shared-memory analogue of the paper's scheme-1 column
    /// distribution (§6–7), bitwise identical to sequential execution.
    pub fn apply(&self, g: MatMut<'_, T>, exec: &ExecPolicy) {
        self.apply_impl(g, exec, None);
    }

    /// [`apply`](Self::apply) with all temporaries (`Z`, `TZ`, generator
    /// copies, gemm pack buffers) checked out of `ws` instead of heap
    /// allocated. Identical arithmetic: pooled buffers are zero-filled
    /// on checkout, exactly like the fresh allocations they replace.
    /// Parallel strips draw from per-worker workspaces instead of `ws`.
    pub fn apply_ws(&self, g: MatMut<'_, T>, exec: &ExecPolicy, ws: &mut Workspace<T>) {
        self.apply_impl(g, exec, Some(ws));
    }

    fn apply_impl(&self, g: MatMut<'_, T>, exec: &ExecPolicy, mut ws: Option<&mut Workspace<T>>) {
        assert_eq!(g.rows(), self.n);
        if self.k == 0 || g.cols() == 0 {
            return;
        }
        // The split decision and strip boundaries depend only on the
        // extent and the policy's partition/work gate — never on the
        // thread count — so every thread count performs identical
        // arithmetic (see DESIGN.md §9).
        let q = g.cols();
        let width = exec.partition.strip_width(q);
        if self.apply_work(q) < exec.min_work as u128 || width >= q {
            self.apply_cols(g, ws.as_deref_mut());
            return;
        }
        // bs-lint: allow(no-alloc-hot) -- O(strips) descriptors at dispatch; they borrow G and cannot live in a pool
        let mut strips: Vec<MatMut<'_, T>> = Vec::with_capacity(q.div_ceil(width));
        let mut rest = g;
        let mut start = 0;
        while start < q {
            let w = width.min(q - start);
            let (head, tail) = rest.split_at_col(w);
            strips.push(head);
            rest = tail;
            start += w;
        }
        if exec.threads <= 1 || par::in_dispatch() {
            // Same strips, executed inline with the caller's workspace.
            for s in strips {
                self.apply_cols(s, ws.as_deref_mut());
            }
        } else {
            par::for_each_policy(exec, strips, |s| {
                par::with_worker_ws(|wws| self.apply_cols(s, Some(wws)));
            });
        }
    }

    /// Monolithic application to one group of columns — the unit the
    /// strip dispatcher distributes. Always sequential inside.
    fn apply_cols(&self, mut g: MatMut<'_, T>, mut ws: Option<&mut Workspace<T>>) {
        assert_eq!(g.rows(), self.n);
        if self.k == 0 || g.cols() == 0 {
            return;
        }
        let n = self.n;
        let k = self.k;
        let q = g.cols();
        match self.kind {
            RepKind::Sequential => {
                for j in 0..q {
                    let col = g.col_mut(j);
                    for r in &self.elems {
                        r.apply_col(&self.w, col);
                    }
                }
            }
            RepKind::Accumulated => {
                // G ← U G.
                let mut gc = take_mat(&mut ws, n, q);
                for j in 0..q {
                    gc.col_mut(j).copy_from_slice(g.col(j));
                }
                mm(
                    T::ONE,
                    self.left.rf(),
                    Trans::No,
                    gc.rf(),
                    Trans::No,
                    T::ZERO,
                    g.rb_mut(),
                    ws.as_deref_mut(),
                );
                give_mat(&mut ws, gc);
            }
            RepKind::VY1 | RepKind::VY2 => {
                // G ← Wᵏ G + V (Yᵀ G).
                let v = self.left.sub(0, 0, n, k);
                let y = self.right.sub(0, 0, n, k);
                let mut z = take_mat(&mut ws, k, q);
                mm(
                    T::ONE,
                    y,
                    Trans::Yes,
                    g.rb(),
                    Trans::No,
                    T::ZERO,
                    z.mt(),
                    ws.as_deref_mut(),
                );
                apply_wk(&self.w, k, g.rb_mut());
                mm(
                    T::ONE,
                    v,
                    Trans::No,
                    z.rf(),
                    Trans::No,
                    T::ONE,
                    g.rb_mut(),
                    ws.as_deref_mut(),
                );
                give_mat(&mut ws, z);
            }
            RepKind::YTY => {
                // G ← Wᵏ G + Y (T (Yᵀ (W^{k-1} G))).
                let y = self.left.sub(0, 0, n, k);
                let mut z = take_mat(&mut ws, k, q);
                // Z = Yᵀ W^{k-1} G: fold W^{k-1} into a row-sign-flipped
                // copy of Y instead of touching G.
                if k.is_multiple_of(2) {
                    // W^{k-1} = W (odd power): use sign-flipped Y.
                    let mut yw = take_mat(&mut ws, n, k);
                    for j in 0..k {
                        let col = yw.col_mut(j);
                        col.copy_from_slice(&self.left.col(j)[..n]);
                        for (i, c) in col.iter_mut().enumerate() {
                            if self.w.sign(i) < 0 {
                                *c = -*c;
                            }
                        }
                    }
                    flops::add((n * k) as u64);
                    mm(
                        T::ONE,
                        yw.rf(),
                        Trans::Yes,
                        g.rb(),
                        Trans::No,
                        T::ZERO,
                        z.mt(),
                        ws.as_deref_mut(),
                    );
                    give_mat(&mut ws, yw);
                } else {
                    mm(
                        T::ONE,
                        y,
                        Trans::Yes,
                        g.rb(),
                        Trans::No,
                        T::ZERO,
                        z.mt(),
                        ws.as_deref_mut(),
                    );
                }
                // Z ← T Z with T lower triangular (k×k, small): direct.
                let mut tz = take_mat(&mut ws, k, q);
                for jj in 0..q {
                    for i in 0..k {
                        let mut s = T::ZERO;
                        for l in 0..=i {
                            s += self.right[(i, l)] * z[(l, jj)];
                        }
                        tz[(i, jj)] = s;
                    }
                }
                flops::add((k * k * q) as u64);
                apply_wk(&self.w, k, g.rb_mut());
                mm(
                    T::ONE,
                    y,
                    Trans::No,
                    tz.rf(),
                    Trans::No,
                    T::ONE,
                    g.rb_mut(),
                    ws.as_deref_mut(),
                );
                give_mat(&mut ws, z);
                give_mat(&mut ws, tz);
            }
        }
    }

    /// Apply the product to a *split* pair of half-generators: `gu` is
    /// the upper `m × q` slice and `gl` the lower `m × q` slice, stored
    /// in unrelated memory (the in-place phase-3 scheme of §6.4, where
    /// the logical "shift" is realized by pairing upper block column
    /// `j − s` with lower block column `j`). Requires the SPD working
    /// signature `W = diag(I_m, −I_m)` — the quadrant split exploits
    /// `Wᵏ = diag(I, (−1)ᵏ I)`.
    pub fn apply_split(&self, gu: MatMut<'_, T>, gl: MatMut<'_, T>, exec: &ExecPolicy) {
        self.apply_split_impl(gu, gl, exec, None);
    }

    /// [`apply_split`](Self::apply_split) with all temporaries checked
    /// out of `ws` — the warm plan/execute trailing-update path.
    pub fn apply_split_ws(
        &self,
        gu: MatMut<'_, T>,
        gl: MatMut<'_, T>,
        exec: &ExecPolicy,
        ws: &mut Workspace<T>,
    ) {
        self.apply_split_impl(gu, gl, exec, Some(ws));
    }

    /// Strip dispatcher for the split application. The strip boundaries
    /// depend only on the representation and `exec.{min_work, partition}`
    /// — never on `exec.threads` — so the parallel result is bitwise
    /// identical to the sequential one at every thread count.
    fn apply_split_impl(
        &self,
        gu: MatMut<'_, T>,
        gl: MatMut<'_, T>,
        exec: &ExecPolicy,
        mut ws: Option<&mut Workspace<T>>,
    ) {
        assert_eq!(gu.cols(), gl.cols());
        let q = gu.cols();
        if self.k == 0 || q == 0 {
            self.apply_split_cols(gu, gl, ws.as_deref_mut());
            return;
        }
        let width = exec.partition.strip_width(q);
        if self.apply_work(q) < exec.min_work as u128 || width >= q {
            self.apply_split_cols(gu, gl, ws.as_deref_mut());
            return;
        }
        // bs-lint: allow(no-alloc-hot) -- O(strips) descriptors at dispatch; they borrow Gu/Gl and cannot live in a pool
        let mut strips: Vec<(MatMut<'_, T>, MatMut<'_, T>)> = Vec::with_capacity(q.div_ceil(width));
        let (mut rest_u, mut rest_l) = (gu, gl);
        let mut start = 0;
        while start < q {
            let w = width.min(q - start);
            let (head_u, tail_u) = rest_u.split_at_col(w);
            let (head_l, tail_l) = rest_l.split_at_col(w);
            strips.push((head_u, head_l));
            rest_u = tail_u;
            rest_l = tail_l;
            start += w;
        }
        if exec.threads <= 1 || par::in_dispatch() {
            // Same strips, executed inline with the caller's workspace.
            for (su, sl) in strips {
                self.apply_split_cols(su, sl, ws.as_deref_mut());
            }
        } else {
            par::for_each_policy(exec, strips, |(su, sl)| {
                par::with_worker_ws(|wws| self.apply_split_cols(su, sl, Some(wws)));
            });
        }
    }

    /// Monolithic split application to one group of column pairs — the
    /// unit the strip dispatcher distributes. Always sequential inside.
    fn apply_split_cols(
        &self,
        mut gu: MatMut<'_, T>,
        mut gl: MatMut<'_, T>,
        mut ws: Option<&mut Workspace<T>>,
    ) {
        let m = self.n / 2;
        assert_eq!(gu.rows(), m);
        assert_eq!(gl.rows(), m);
        assert_eq!(gu.cols(), gl.cols());
        debug_assert!(
            (0..m).all(|i| self.w.sign(i) > 0) && (m..2 * m).all(|i| self.w.sign(i) < 0),
            "apply_split requires the SPD signature diag(I, -I)"
        );
        if self.k == 0 || gu.cols() == 0 {
            return;
        }
        let k = self.k;
        let q = gu.cols();
        let low_sign = if k % 2 == 1 { -T::ONE } else { T::ONE };
        match self.kind {
            RepKind::Sequential => {
                for j in 0..q {
                    // Split application of each elementary reflector:
                    // s = x_uᵀ cu + x_lᵀ cl; cu += β s x_u; cl ← −cl + β s x_l.
                    for r in &self.elems {
                        let s = {
                            let cu = gu.col(j);
                            let cl = gl.col(j);
                            bs_matrix::blas1::dot(&r.x[..m], cu)
                                + bs_matrix::blas1::dot(&r.x[m..], cl)
                        };
                        bs_matrix::blas1::axpy(r.beta * s, &r.x[..m], gu.col_mut(j));
                        let cl = gl.col_mut(j);
                        for (i, c) in cl.iter_mut().enumerate() {
                            *c = -*c + r.beta * s * r.x[m + i];
                        }
                        flops::add(3 * m as u64);
                    }
                }
            }
            RepKind::Accumulated => {
                // [gu; gl] ← [U11 U12; U21 U22] [gu; gl].
                let u11 = self.left.sub(0, 0, m, m);
                let u12 = self.left.sub(0, m, m, m);
                let u21 = self.left.sub(m, 0, m, m);
                let u22 = self.left.sub(m, m, m, m);
                let mut gu0 = take_mat(&mut ws, m, q);
                let mut gl0 = take_mat(&mut ws, m, q);
                for j in 0..q {
                    gu0.col_mut(j).copy_from_slice(gu.col(j));
                    gl0.col_mut(j).copy_from_slice(gl.col(j));
                }
                mm(
                    T::ONE,
                    u11,
                    Trans::No,
                    gu0.rf(),
                    Trans::No,
                    T::ZERO,
                    gu.rb_mut(),
                    ws.as_deref_mut(),
                );
                mm(
                    T::ONE,
                    u12,
                    Trans::No,
                    gl0.rf(),
                    Trans::No,
                    T::ONE,
                    gu.rb_mut(),
                    ws.as_deref_mut(),
                );
                mm(
                    T::ONE,
                    u21,
                    Trans::No,
                    gu0.rf(),
                    Trans::No,
                    T::ZERO,
                    gl.rb_mut(),
                    ws.as_deref_mut(),
                );
                mm(
                    T::ONE,
                    u22,
                    Trans::No,
                    gl0.rf(),
                    Trans::No,
                    T::ONE,
                    gl.rb_mut(),
                    ws.as_deref_mut(),
                );
                give_mat(&mut ws, gu0);
                give_mat(&mut ws, gl0);
            }
            RepKind::VY1 | RepKind::VY2 => {
                // Z = Yuᵀ Gu + Ylᵀ Gl;
                // Gu ← Gu + Vu Z;  Gl ← (−1)ᵏ Gl + Vl Z.
                let vu = self.left.sub(0, 0, m, k);
                let vl = self.left.sub(m, 0, m, k);
                let yu = self.right.sub(0, 0, m, k);
                let yl = self.right.sub(m, 0, m, k);
                let mut z = take_mat(&mut ws, k, q);
                mm(
                    T::ONE,
                    yu,
                    Trans::Yes,
                    gu.rb(),
                    Trans::No,
                    T::ZERO,
                    z.mt(),
                    ws.as_deref_mut(),
                );
                mm(
                    T::ONE,
                    yl,
                    Trans::Yes,
                    gl.rb(),
                    Trans::No,
                    T::ONE,
                    z.mt(),
                    ws.as_deref_mut(),
                );
                mm(
                    T::ONE,
                    vu,
                    Trans::No,
                    z.rf(),
                    Trans::No,
                    T::ONE,
                    gu.rb_mut(),
                    ws.as_deref_mut(),
                );
                mm(
                    T::ONE,
                    vl,
                    Trans::No,
                    z.rf(),
                    Trans::No,
                    low_sign,
                    gl.rb_mut(),
                    ws.as_deref_mut(),
                );
                give_mat(&mut ws, z);
            }
            RepKind::YTY => {
                // Z = Yᵀ W^{k−1} [Gu; Gl] = Yuᵀ Gu + s' Ylᵀ Gl,
                // s' = (−1)^{k−1}.
                let yu = self.left.sub(0, 0, m, k);
                let yl = self.left.sub(m, 0, m, k);
                let sp = if (k - 1) % 2 == 1 { -T::ONE } else { T::ONE };
                let mut z = take_mat(&mut ws, k, q);
                mm(
                    T::ONE,
                    yu,
                    Trans::Yes,
                    gu.rb(),
                    Trans::No,
                    T::ZERO,
                    z.mt(),
                    ws.as_deref_mut(),
                );
                mm(
                    sp,
                    yl,
                    Trans::Yes,
                    gl.rb(),
                    Trans::No,
                    T::ONE,
                    z.mt(),
                    ws.as_deref_mut(),
                );
                // TZ with lower triangular T (small, direct).
                let mut tz = take_mat(&mut ws, k, q);
                for jj in 0..q {
                    for i in 0..k {
                        let mut s = T::ZERO;
                        for l in 0..=i {
                            s += self.right[(i, l)] * z[(l, jj)];
                        }
                        tz[(i, jj)] = s;
                    }
                }
                flops::add((k * k * q) as u64);
                mm(
                    T::ONE,
                    yu,
                    Trans::No,
                    tz.rf(),
                    Trans::No,
                    T::ONE,
                    gu.rb_mut(),
                    ws.as_deref_mut(),
                );
                mm(
                    T::ONE,
                    yl,
                    Trans::No,
                    tz.rf(),
                    Trans::No,
                    low_sign,
                    gl.rb_mut(),
                    ws.as_deref_mut(),
                );
                give_mat(&mut ws, z);
                give_mat(&mut ws, tz);
            }
        }
    }

    /// Densify to the full `n × n` transformation (test / diagnostic).
    pub fn to_dense(&self) -> Matrix<T> {
        let n = self.n;
        let mut u = Matrix::identity(n);
        self.apply(u.mt(), &ExecPolicy::sequential());
        u
    }
}

/// Sequential gemm used inside one column strip. Parallelism lives a
/// layer up (the strip dispatchers in `apply_impl` / `apply_split_impl`),
/// so the inner product kernel never fans out again: with a workspace it
/// packs into pooled buffers, without one it allocates privately.
#[allow(clippy::too_many_arguments)]
fn mm<T: Scalar>(
    alpha: T,
    a: bs_matrix::MatRef<'_, T>,
    ta: Trans,
    b: bs_matrix::MatRef<'_, T>,
    tb: Trans,
    beta: T,
    c: MatMut<'_, T>,
    ws: Option<&mut Workspace<T>>,
) {
    if let Some(w) = ws {
        gemm_ws(alpha, a, ta, b, tb, beta, c, w)
    } else {
        gemm(alpha, a, ta, b, tb, beta, c)
    }
}

/// Resize `buf` to exactly `len` zeros and return it as a slice — the
/// reusable-buffer equivalent of `vec![0.0; len]`.
fn resized<T: Scalar>(buf: &mut Vec<T>, len: usize) -> &mut [T] {
    buf.clear();
    buf.resize(len, T::ZERO);
    buf
}

/// `Wᵏ x` into a reusable buffer.
fn wk_into<T: Scalar>(w: &Signature, k: usize, x: &[T], buf: &mut Vec<T>) {
    buf.clear();
    buf.extend_from_slice(x);
    if k % 2 == 1 {
        w.apply(buf);
    }
}

/// Zeroed `rows × cols` scratch matrix: pooled when a workspace is
/// present, fresh otherwise. Either way the caller sees all zeros.
fn take_mat<T: Scalar>(ws: &mut Option<&mut Workspace<T>>, rows: usize, cols: usize) -> Matrix<T> {
    match ws {
        Some(w) => w.take_matrix(rows, cols),
        None => Matrix::zeros(rows, cols),
    }
}

/// Return a scratch matrix to the pool (drop it when workspace-less).
fn give_mat<T: Scalar>(ws: &mut Option<&mut Workspace<T>>, m: Matrix<T>) {
    if let Some(w) = ws {
        w.give_matrix(m);
    }
}

/// `G ← Wᵏ G` in place.
fn apply_wk<T: Scalar>(w: &Signature, k: usize, mut g: MatMut<'_, T>) {
    if k.is_multiple_of(2) {
        return;
    }
    for j in 0..g.cols() {
        let col = g.col_mut(j);
        for (i, c) in col.iter_mut().enumerate() {
            if w.sign(i) < 0 {
                *c = -*c;
            }
        }
    }
    flops::add((g.rows() * g.cols()) as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reflector::HypReflector;

    fn make_reflectors(m: usize, count: usize, seed: u64) -> (Signature, Vec<HypReflector>) {
        let w = Signature::hyperbolic(m);
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 1000) as f64 - 500.0) / 500.0
        };
        let mut out = Vec::new();
        for c in 0..count {
            // Vectors with the Schur sparsity: pivot row c, dense lower,
            // dominant pivot so the hyperbolic norm is positive.
            let mut u = vec![0.0; 2 * m];
            u[c % m] = 3.0 + rnd().abs();
            for item in u.iter_mut().skip(m) {
                *item = rnd() * 0.8;
            }
            let (r, _) = HypReflector::compute(&u, &w, c % m);
            out.push(r.expect("positive hyperbolic norm by construction"));
        }
        (w, out)
    }

    fn dense_product(w: &Signature, rs: &[HypReflector]) -> Matrix {
        // U_k ... U_1 as a dense matrix.
        let n = w.len();
        let mut u = Matrix::identity(n);
        for r in rs {
            // u ← U_r * u: apply to each column.
            for j in 0..n {
                r.apply_col(w, u.col_mut(j));
            }
        }
        u
    }

    #[test]
    fn all_representations_match_dense_product() {
        for m in [1usize, 2, 3, 5] {
            let (w, rs) = make_reflectors(m, m, 11 + m as u64);
            let want = dense_product(&w, &rs);
            for kind in RepKind::ALL {
                let mut b = BlockReflector::new(kind, w.clone(), m);
                for r in &rs {
                    b.push(r);
                }
                let got = b.to_dense();
                assert!(
                    got.max_abs_diff(&want) < 1e-10,
                    "kind={kind} m={m}: diff {}",
                    got.max_abs_diff(&want)
                );
            }
        }
    }

    #[test]
    fn partial_products_match_too() {
        // Push fewer reflectors than k_max.
        let m = 4;
        let (w, rs) = make_reflectors(m, 2, 3);
        let want = dense_product(&w, &rs);
        for kind in RepKind::ALL {
            let mut b = BlockReflector::new(kind, w.clone(), m);
            for r in &rs {
                b.push(r);
            }
            assert_eq!(b.len(), 2);
            assert!(b.to_dense().max_abs_diff(&want) < 1e-10, "kind={kind}");
        }
    }

    #[test]
    fn apply_matches_explicit_multiply() {
        let m = 3;
        let (w, rs) = make_reflectors(m, m, 7);
        let mut b = BlockReflector::new(RepKind::YTY, w.clone(), m);
        for r in &rs {
            b.push(r);
        }
        let u = b.to_dense();
        // Random trailing block.
        let g0 = Matrix::from_fn(2 * m, 9, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        let mut want = Matrix::zeros(2 * m, 9);
        gemm(1.0, u.rf(), Trans::No, g0.rf(), Trans::No, 0.0, want.mt());
        let mut g = g0.clone();
        b.apply(g.mt(), &ExecPolicy::sequential());
        assert!(g.max_abs_diff(&want) < 1e-10);
        // Pooled path must be bitwise identical, not merely close: the
        // strip boundaries are thread-independent by construction.
        for threads in [2, bs_matrix::par::current_num_threads().max(2) * 2] {
            let par = ExecPolicy {
                threads,
                min_work: 1,
                partition: bs_matrix::Partition::Auto,
            };
            let mut g2 = g0.clone();
            b.apply(g2.mt(), &par);
            assert_eq!(g2.max_abs_diff(&g), 0.0, "threads={threads}");
        }
    }

    #[test]
    fn apply_split_is_bitwise_across_thread_counts() {
        let m = 6;
        let (w, rs) = make_reflectors(m, m, 31);
        for kind in RepKind::ALL {
            let mut b = BlockReflector::new(kind, w.clone(), m);
            for r in &rs {
                b.push(r);
            }
            let gu0 = Matrix::from_fn(m, 13, |i, j| ((i * 5 + j * 11) % 13) as f64 - 6.0);
            let gl0 = Matrix::from_fn(m, 13, |i, j| ((i * 3 + j * 7) % 17) as f64 - 8.0);
            let (mut su, mut sl) = (gu0.clone(), gl0.clone());
            b.apply_split(su.mt(), sl.mt(), &ExecPolicy::sequential());
            for threads in [2, 5] {
                let par = ExecPolicy {
                    threads,
                    min_work: 1,
                    partition: bs_matrix::Partition::Width(3),
                };
                let (mut pu, mut pl) = (gu0.clone(), gl0.clone());
                b.apply_split(pu.mt(), pl.mt(), &par);
                assert_eq!(pu.max_abs_diff(&su), 0.0, "kind={kind} threads={threads}");
                assert_eq!(pl.max_abs_diff(&sl), 0.0, "kind={kind} threads={threads}");
            }
        }
    }

    #[test]
    fn block_product_is_w_unitary() {
        let m = 3;
        let (w, rs) = make_reflectors(m, m, 19);
        let mut b = BlockReflector::new(RepKind::VY2, w.clone(), m);
        for r in &rs {
            b.push(r);
        }
        let u = b.to_dense();
        let wd = w.to_matrix();
        let mut wu = Matrix::zeros(2 * m, 2 * m);
        gemm(1.0, wd.rf(), Trans::No, u.rf(), Trans::No, 0.0, wu.mt());
        let mut utwu = Matrix::zeros(2 * m, 2 * m);
        gemm(1.0, u.rf(), Trans::Yes, wu.rf(), Trans::No, 0.0, utwu.mt());
        assert!(utwu.max_abs_diff(&wd) < 1e-10);
    }

    #[test]
    fn comm_words_ordering() {
        // The §6.5 claim: YTYᵀ about half the communication of VY.
        let m = 8;
        let (w, rs) = make_reflectors(m, m, 23);
        let mut sizes = std::collections::HashMap::new();
        for kind in RepKind::ALL {
            let mut b = BlockReflector::new(kind, w.clone(), m);
            for r in &rs {
                b.push(r);
            }
            sizes.insert(format!("{kind}"), b.comm_words());
        }
        let vy = sizes["VY form 1"];
        let yty = sizes["YTY^T"];
        // YTYᵀ stores n·k + k(k+1)/2 words against VY's 2·n·k: strictly
        // smaller, approaching half for n ≫ k.
        assert!(yty < vy, "yty={yty} vy={vy}");
        assert!((yty as f64) < 0.75 * vy as f64, "yty={yty} vy={vy}");
    }

    #[test]
    fn empty_product_is_identity() {
        let w = Signature::hyperbolic(2);
        let b: BlockReflector = BlockReflector::new(RepKind::VY1, w, 2);
        assert!(b.is_empty());
        assert!(b.to_dense().max_abs_diff(&Matrix::identity(4)) < 1e-15);
    }
}
