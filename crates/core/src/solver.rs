//! High-level solver façade: pick the right algorithm automatically.
//!
//! [`ToeplitzSolver`] tries the fast SPD path first and falls back to
//! the extended indefinite algorithm (with perturbation + iterative
//! refinement) when the matrix is not positive definite — the
//! workflow a downstream user actually wants, wrapped around the §5/§8
//! machinery.

use crate::indefinite::{factor_indefinite, IndefFactor, IndefOptions};
use crate::refine::{solve_refined, RefineOptions};
use crate::schur::{factor_spd, SchurOptions, SpdFactor};
use crate::{Error, Result};
use bs_matrix::Matrix;
use bs_toeplitz::SymBlockToeplitz;

/// Which factorization the solver ended up with.
#[derive(Debug, Clone)]
pub enum Factorization {
    /// `T = RᵀR` (positive definite path).
    Spd(SpdFactor),
    /// `T + δT = RᵀDR` (indefinite / singular-minor path).
    Indefinite(IndefFactor),
}

/// Options for [`ToeplitzSolver::with_options`].
#[derive(Clone, Debug, Default)]
pub struct SolverOptions {
    /// Options for the SPD attempt.
    pub spd: SchurOptions,
    /// Options for the indefinite fallback.
    pub indefinite: IndefOptions,
    /// Options for the refinement loop on perturbed factorizations.
    pub refine: RefineOptions,
}

/// A factorized symmetric (block) Toeplitz system, ready to solve.
///
/// ```
/// use bs_core::ToeplitzSolver;
/// use bs_toeplitz::workloads;
///
/// // Indefinite system with a singular minor: the solver falls back
/// // to the perturbed factorization + refinement automatically.
/// let t = workloads::paper_singular_minor_example();
/// let (b, x_true) = workloads::rhs_for_ones(&t);
/// let solver = ToeplitzSolver::new(&t).unwrap();
/// assert!(!solver.is_positive_definite());
/// let x = solver.solve(&b).unwrap();
/// assert!((x[3] - x_true[3]).abs() < 1e-10);
/// ```
#[derive(Debug, Clone)]
pub struct ToeplitzSolver {
    t: SymBlockToeplitz,
    factorization: Factorization,
    refine: RefineOptions,
}

impl ToeplitzSolver {
    /// Factor `t` with default options: SPD fast path, indefinite
    /// fallback with `δ = ε^{1/3}` perturbation.
    pub fn new(t: &SymBlockToeplitz) -> Result<Self> {
        Self::with_options(t, &SolverOptions::default())
    }

    /// Factor `t` with explicit options.
    pub fn with_options(t: &SymBlockToeplitz, opts: &SolverOptions) -> Result<Self> {
        let _span = bs_probe::span!("factor", n = t.order(), m = t.block_size());
        let factorization = match factor_spd(t, &opts.spd) {
            Ok(f) => Factorization::Spd(f),
            Err(Error::NotPositiveDefinite { .. }) | Err(Error::SingularMinor { .. }) => {
                Factorization::Indefinite(factor_indefinite(t, &opts.indefinite)?)
            }
            Err(e) => return Err(e),
        };
        Ok(ToeplitzSolver {
            t: t.clone(),
            factorization,
            refine: opts.refine.clone(),
        })
    }

    /// The factorization in use.
    pub fn factorization(&self) -> &Factorization {
        &self.factorization
    }

    /// `true` when the SPD fast path succeeded.
    pub fn is_positive_definite(&self) -> bool {
        match &self.factorization {
            Factorization::Spd(_) => true,
            Factorization::Indefinite(f) => f.perturbations.is_empty() && f.negative_inertia() == 0,
        }
    }

    /// `(n₊, n₋)` — counts of positive/negative eigenvalues of the
    /// factored matrix (Sylvester's law of inertia; exact when no
    /// perturbation fired, otherwise the inertia of `T + δT`).
    pub fn inertia(&self) -> (usize, usize) {
        let n = self.t.order();
        match &self.factorization {
            Factorization::Spd(_) => (n, 0),
            Factorization::Indefinite(f) => {
                let neg = f.negative_inertia();
                (n - neg, neg)
            }
        }
    }

    /// `(sign, ln|det T|)` computed from the triangular factor:
    /// `det T = (Π dᵢ) · (Π rᵢᵢ)²`.
    pub fn det_sign_ln(&self) -> (f64, f64) {
        let (r, d): (&Matrix, Option<&[i8]>) = match &self.factorization {
            Factorization::Spd(f) => (&f.r, None),
            Factorization::Indefinite(f) => (&f.r, Some(&f.d)),
        };
        let n = r.rows();
        let mut ln = 0.0;
        let mut sign = 1.0;
        for i in 0..n {
            ln += 2.0 * r[(i, i)].ln();
            if let Some(d) = d {
                if d[i] < 0 {
                    sign = -sign;
                }
            }
        }
        (sign, ln)
    }

    /// Solve `T x = b`. On the perturbed path the answer is refined to
    /// working accuracy (typically two extra matvec+solve rounds, §8.1).
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let _span = bs_probe::span!("solve", n = b.len());
        match &self.factorization {
            Factorization::Spd(f) => f.solve(b),
            Factorization::Indefinite(f) => {
                if f.perturbations.is_empty() {
                    f.solve(b)
                } else {
                    Ok(solve_refined(&self.t, f, b, &self.refine)?.x)
                }
            }
        }
    }

    /// Build the Gohberg–Semencul representation of `T⁻¹` (scalar
    /// Toeplitz only, `m = 1`): one extra solve for `T u = e₀`, after
    /// which every further solve costs `O(n log n)` through
    /// [`bs_toeplitz::ToeplitzInverse::apply`]. Returns `None` when
    /// `m > 1` or when the representation does not exist (`u₀ = 0`).
    pub fn inverse_representation(&self) -> Option<bs_toeplitz::ToeplitzInverse> {
        if self.t.block_size() != 1 {
            return None;
        }
        let n = self.t.order();
        let mut e0 = vec![0.0; n];
        e0[0] = 1.0;
        let u = self.solve(&e0).ok()?;
        bs_toeplitz::ToeplitzInverse::from_first_column(&u)
    }

    /// Solve `T X = B` column by column (`B` is `n × r`).
    pub fn solve_many(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.t.order();
        assert_eq!(b.rows(), n, "RHS row count must equal the matrix order");
        let mut x = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let xj = self.solve(b.col(j))?;
            x.col_mut(j).copy_from_slice(&xj);
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_toeplitz::workloads;

    #[test]
    fn spd_path_selected_for_spd_input() {
        let t = workloads::random_spd_block(2, 8, 1);
        let s = ToeplitzSolver::new(&t).unwrap();
        assert!(matches!(s.factorization(), Factorization::Spd(_)));
        assert!(s.is_positive_definite());
        assert_eq!(s.inertia(), (16, 0));
    }

    #[test]
    fn indefinite_fallback_and_inertia() {
        let t = workloads::random_indefinite_scalar(14, 3);
        let s = ToeplitzSolver::new(&t).unwrap();
        assert!(matches!(s.factorization(), Factorization::Indefinite(_)));
        assert!(!s.is_positive_definite());
        let (pos, neg) = s.inertia();
        assert_eq!(pos + neg, 14);
        assert!(neg > 0);
    }

    #[test]
    fn solve_spd_and_singular_minor_through_one_api() {
        for t in [
            workloads::random_spd_scalar(20, 4),
            workloads::paper_singular_minor_example(),
            workloads::random_indefinite_scalar(16, 9),
        ] {
            let (b, x_true) = workloads::rhs_for_ones(&t);
            let s = ToeplitzSolver::new(&t).unwrap();
            let x = s.solve(&b).unwrap();
            let err = x
                .iter()
                .zip(&x_true)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(err < 1e-8, "n={}: err {err:e}", t.order());
        }
    }

    #[test]
    fn multiple_right_hand_sides() {
        let t = workloads::random_spd_block(2, 6, 7);
        let n = t.order();
        let x_true = Matrix::from_fn(n, 3, |i, j| (i + j) as f64 - 5.0);
        let mut b = Matrix::zeros(n, 3);
        for j in 0..3 {
            let bj = t.matvec(x_true.col(j));
            b.col_mut(j).copy_from_slice(&bj);
        }
        let s = ToeplitzSolver::new(&t).unwrap();
        let x = s.solve_many(&b).unwrap();
        assert!(x.max_abs_diff(&x_true) < 1e-8);
    }

    #[test]
    fn gohberg_semencul_representation_solves() {
        let t = workloads::random_spd_scalar(48, 3);
        let solver = ToeplitzSolver::new(&t).unwrap();
        let inv = solver.inverse_representation().expect("GS rep");
        let (b, x_true) = workloads::rhs_for_ones(&t);
        let x = inv.apply(&b);
        for i in 0..48 {
            assert!((x[i] - x_true[i]).abs() < 1e-8, "i={i}");
        }
        // Block matrices have no scalar GS representation.
        let tb = workloads::random_spd_block(2, 8, 4);
        assert!(ToeplitzSolver::new(&tb)
            .unwrap()
            .inverse_representation()
            .is_none());
    }

    #[test]
    fn determinant_matches_dense_lu() {
        for t in [
            workloads::random_spd_scalar(12, 2),
            workloads::random_indefinite_scalar(12, 5),
        ] {
            let s = ToeplitzSolver::new(&t).unwrap();
            let (sign, ln) = s.det_sign_ln();
            let lu = bs_matrix::lu::lu_factor(&t.to_dense()).unwrap();
            let det = lu.det();
            assert_eq!(sign, det.signum(), "sign mismatch");
            assert!(
                (ln - det.abs().ln()).abs() < 1e-8,
                "ln|det| {} vs {}",
                ln,
                det.abs().ln()
            );
        }
    }
}
