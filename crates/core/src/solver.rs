//! High-level solver façade: pick the right algorithm automatically,
//! keep the machinery warm for repeated solves.
//!
//! [`ToeplitzSolver`] is now a thin wrapper over the immutable
//! [`Factor`] (all solve surfaces, sharable across threads — see
//! [`crate::factor`]) plus the one capability an immutable factor
//! cannot offer: [`refactor`], which re-factors a new same-shaped
//! system reusing the retained [`PlanWorkspace`], so a warm solver
//! performs zero heap allocations inside the elimination loop —
//! retired factor storage is donated back to the pool and picked up
//! by the next factorization.
//!
//! The triangular-solve helpers with the `Rᵀ D R` factors live here
//! too (they were `solve.rs`; the [`crate::solve`] alias keeps old
//! paths compiling).
//!
//! [`refactor`]: ToeplitzSolver::refactor

use crate::factor::Factor;
use crate::indefinite::{IndefFactor, IndefOptions};
use crate::plan::{FactorPlan, PlanRequest, PlanWorkspace};
use crate::refine::RefineOptions;
use crate::schur::{SchurOptions, SpdFactor};
use crate::{Error, Result};
use bs_matrix::{Matrix, Scalar};
use bs_toeplitz::SymBlockToeplitz;

/// Solve `Rᵀ D R x = b` where `R` is upper triangular and
/// `D = diag(d)` with `d ∈ {±1}ⁿ` (`None` means `D = I`, the SPD case).
pub fn solve_rtdr<T: Scalar>(r: &Matrix<T>, d: Option<&[i8]>, b: &[T]) -> Result<Vec<T>> {
    if b.len() != r.rows() {
        return Err(Error::DimensionMismatch {
            context: "right-hand side length",
            expected: r.rows(),
            found: b.len(),
        });
    }
    let mut x = b.to_vec();
    solve_rtdr_in_place(r, d, &mut x)?;
    Ok(x)
}

/// In-place form of [`solve_rtdr`]: on entry `x` holds `b`, on exit the
/// solution. The allocation-free core every solve surface shares — the
/// per-call output buffer is the only storage a warm triangular solve
/// touches.
pub fn solve_rtdr_in_place<T: Scalar>(r: &Matrix<T>, d: Option<&[i8]>, x: &mut [T]) -> Result<()> {
    let n = r.rows();
    if r.cols() != n {
        return Err(Error::DimensionMismatch {
            context: "triangular factor must be square",
            expected: n,
            found: r.cols(),
        });
    }
    if x.len() != n {
        return Err(Error::DimensionMismatch {
            context: "right-hand side length",
            expected: n,
            found: x.len(),
        });
    }
    if let Some(d) = d {
        if d.len() != n {
            return Err(Error::DimensionMismatch {
                context: "signature length",
                expected: n,
                found: d.len(),
            });
        }
    }
    let _span = bs_probe::span!("tri_solve", n = n);
    // Rᵀ y = b.
    bs_matrix::blas2::trsv_upper_t(r.rf(), x)?;
    // y ← D⁻¹ y = D y.
    if let Some(d) = d {
        for (xi, &s) in x.iter_mut().zip(d) {
            if s < 0 {
                *xi = -*xi;
            }
        }
        bs_matrix::flops::add(n as u64);
    }
    // R x = y.
    bs_matrix::blas2::trsv_upper(r.rf(), x)?;
    // Two triangular solves at n² flops each (roofline attribution).
    bs_probe::event!("tri_solve_done", flops = 2 * n * n);
    Ok(())
}

/// Dense reconstruction `Rᵀ D R` (test / verification, O(n³)).
pub fn reconstruct_rtdr<T: Scalar>(r: &Matrix<T>, d: Option<&[i8]>) -> Matrix<T> {
    let n = r.rows();
    let mut dr = r.clone();
    if let Some(d) = d {
        for i in 0..n {
            if d[i] < 0 {
                for j in i..n {
                    dr[(i, j)] = -dr[(i, j)];
                }
            }
        }
    }
    let mut out = Matrix::zeros(n, n);
    bs_matrix::blas3::gemm(
        T::ONE,
        r.rf(),
        bs_matrix::Trans::Yes,
        dr.rf(),
        bs_matrix::Trans::No,
        T::ZERO,
        out.mt(),
    );
    out
}

/// Which factorization the solver ended up with.
#[derive(Debug, Clone)]
#[must_use]
pub enum Factorization {
    /// `T = RᵀR` (positive definite path).
    Spd(SpdFactor),
    /// `T + δT = RᵀDR` (indefinite / singular-minor path).
    Indefinite(IndefFactor),
}

/// Options for [`ToeplitzSolver::with_options`].
#[derive(Clone, Debug, Default)]
pub struct SolverOptions {
    /// Options for the SPD attempt.
    pub spd: SchurOptions,
    /// Options for the indefinite fallback.
    pub indefinite: IndefOptions,
    /// Options for the refinement loop on perturbed factorizations.
    pub refine: RefineOptions,
}

/// A factorized symmetric (block) Toeplitz system, ready to solve.
///
/// ```
/// use bs_core::ToeplitzSolver;
/// use bs_toeplitz::workloads;
///
/// // Indefinite system with a singular minor: the solver falls back
/// // to the perturbed factorization + refinement automatically.
/// let t = workloads::paper_singular_minor_example();
/// let (b, x_true) = workloads::rhs_for_ones(&t);
/// let solver = ToeplitzSolver::new(&t).unwrap();
/// assert!(!solver.is_positive_definite());
/// let x = solver.solve(&b).unwrap();
/// assert!((x[3] - x_true[3]).abs() < 1e-10);
/// ```
///
/// For a stream of same-shaped systems, keep one solver and
/// [`refactor`](Self::refactor) it — the plan and workspace are reused
/// and the warm elimination loop allocates nothing:
///
/// ```
/// use bs_core::ToeplitzSolver;
/// use bs_toeplitz::workloads;
///
/// let mut solver = ToeplitzSolver::new(&workloads::kms(32, 0.6)).unwrap();
/// for rho in [0.5f64, 0.7, 0.8] {
///     solver.refactor(&workloads::kms(32, rho)).unwrap();
///     let (b, x_true) = workloads::rhs_for_ones(&workloads::kms(32, rho));
///     let x = solver.solve(&b).unwrap();
///     assert!((x[0] - x_true[0]).abs() < 1e-8);
/// }
/// ```
#[derive(Debug)]
pub struct ToeplitzSolver {
    factor: Factor,
    workspace: PlanWorkspace,
}

impl Clone for ToeplitzSolver {
    /// Clones the system, plan, and factorization; the clone starts
    /// with a cold (empty) workspace of its own.
    fn clone(&self) -> Self {
        ToeplitzSolver {
            factor: self.factor.clone(),
            workspace: PlanWorkspace::new(),
        }
    }
}

impl ToeplitzSolver {
    /// Factor `t` with default options: SPD fast path, indefinite
    /// fallback with `δ = ε^{1/3}` perturbation.
    pub fn new(t: &SymBlockToeplitz) -> Result<Self> {
        Self::with_options(t, &SolverOptions::default())
    }

    /// Factor `t` with explicit options. Every algorithmic choice is
    /// pinned by `opts` (no cost-model auto-selection); use
    /// [`with_plan_request`](Self::with_plan_request) to let the plan
    /// pick the representation / block size.
    pub fn with_options(t: &SymBlockToeplitz, opts: &SolverOptions) -> Result<Self> {
        let plan = FactorPlan::from_options(t, &opts.spd, &opts.indefinite)?;
        Self::from_plan(t, plan, opts.refine.clone())
    }

    /// Factor `t` under a [`PlanRequest`]: fields left `None` are
    /// chosen by the `bs-perfmodel` cost formulas (representation by
    /// total blocking+application flops, block size by the §6.5
    /// retiling tradeoff).
    pub fn with_plan_request(t: &SymBlockToeplitz, req: &PlanRequest) -> Result<Self> {
        let plan = FactorPlan::new(t, req)?;
        Self::from_plan(t, plan, RefineOptions::default())
    }

    fn from_plan(t: &SymBlockToeplitz, plan: FactorPlan, refine: RefineOptions) -> Result<Self> {
        let mut workspace = PlanWorkspace::new();
        let factor = Factor::from_plan_with(t, plan, refine, &mut workspace)?;
        Ok(ToeplitzSolver { factor, workspace })
    }

    /// Borrow the underlying immutable [`Factor`].
    pub fn factor(&self) -> &Factor {
        &self.factor
    }

    /// Give up warm-refactor support and keep only the shareable
    /// [`Factor`] (the workspace arena is dropped). The natural last
    /// step before handing a factorization to concurrent tenants:
    /// `Arc::new(solver.into_factor())`.
    pub fn into_factor(self) -> Factor {
        self.factor
    }

    /// Re-factor a new system of the *same shape* (order and block
    /// size), reusing the plan and the warm workspace. The retired
    /// factor's storage is donated for direct reuse and the stored
    /// matrix copy is overwritten in place, so from the second
    /// refactor on the whole cycle performs zero heap allocations
    /// (observable via
    /// [`workspace_allocations`](Self::workspace_allocations)).
    ///
    /// On error the solver is left unchanged (still holding the
    /// previous system's factorization).
    pub fn refactor(&mut self, t: &SymBlockToeplitz) -> Result<()> {
        if t.order() != self.factor.t.order() {
            return Err(Error::DimensionMismatch {
                context: "refactor matrix order",
                expected: self.factor.t.order(),
                found: t.order(),
            });
        }
        if t.block_size() != self.factor.t.block_size() {
            return Err(Error::DimensionMismatch {
                context: "refactor block size",
                expected: self.factor.t.block_size(),
                found: t.block_size(),
            });
        }
        let _span = bs_probe::span!("refactor", n = t.order(), m = t.block_size());
        let new_f = self.factor.plan.execute(t, &mut self.workspace)?;
        self.factor.fallback.take();
        match std::mem::replace(&mut self.factor.factorization, new_f) {
            Factorization::Spd(old) => self.workspace.donate(old.r),
            Factorization::Indefinite(old) => {
                self.workspace.donate(old.r);
                self.workspace.donate_indefinite(old.d, old.perturbations);
            }
        }
        self.factor.t.clone_data_from(t);
        bs_probe::event!(
            "refactor_done",
            allocations = self.workspace.allocations(),
            high_water_elems = self.workspace.high_water_elems(),
        );
        Ok(())
    }

    /// The execution plan in use.
    pub fn plan(&self) -> &FactorPlan {
        self.factor.plan()
    }

    /// Cold workspace allocations (pool misses) since construction or
    /// the last [`reset_workspace_stats`](Self::reset_workspace_stats).
    pub fn workspace_allocations(&self) -> u64 {
        self.workspace.allocations()
    }

    /// Peak simultaneously checked-out workspace elements.
    pub fn workspace_high_water(&self) -> usize {
        self.workspace.high_water_elems()
    }

    /// Zero the workspace allocation statistics (the pooled buffers are
    /// kept). Call after warm-up, before a measured steady-state run.
    pub fn reset_workspace_stats(&mut self) {
        self.workspace.reset_stats();
    }

    /// The factorization in use.
    pub fn factorization(&self) -> &Factorization {
        self.factor.factorization()
    }

    /// `true` when the SPD fast path succeeded.
    pub fn is_positive_definite(&self) -> bool {
        self.factor.is_positive_definite()
    }

    /// `(n₊, n₋)` — counts of positive/negative eigenvalues of the
    /// factored matrix (Sylvester's law of inertia; exact when no
    /// perturbation fired, otherwise the inertia of `T + δT`).
    pub fn inertia(&self) -> (usize, usize) {
        self.factor.inertia()
    }

    /// `(sign, ln|det T|)` computed from the triangular factor:
    /// `det T = (Π dᵢ) · (Π rᵢᵢ)²`.
    pub fn det_sign_ln(&self) -> (f64, f64) {
        self.factor.det_sign_ln()
    }

    /// Solve `T x = b` — see [`Factor::solve`] for the precision and
    /// refinement semantics.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.factor.solve(b)
    }

    /// Build the Gohberg–Semencul representation of `T⁻¹` — see
    /// [`Factor::inverse_representation`].
    pub fn inverse_representation(&self) -> Option<bs_toeplitz::ToeplitzInverse> {
        self.factor.inverse_representation()
    }

    /// Solve `T X = B` column by column (`B` is `n × r`).
    pub fn solve_many(&self, b: &Matrix) -> Result<Matrix> {
        self.factor.solve_many(b)
    }

    /// Solve `T X = B` with the right-hand-side columns fanned out
    /// across the plan's worker threads — see [`Factor::solve_batch`].
    pub fn solve_batch(&self, b: &Matrix) -> Result<Matrix> {
        self.factor.solve_batch(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_toeplitz::workloads;

    #[test]
    fn spd_path_selected_for_spd_input() {
        let t = workloads::random_spd_block(2, 8, 1);
        let s = ToeplitzSolver::new(&t).unwrap();
        assert!(matches!(s.factorization(), Factorization::Spd(_)));
        assert!(s.is_positive_definite());
        assert_eq!(s.inertia(), (16, 0));
    }

    #[test]
    fn indefinite_fallback_and_inertia() {
        let t = workloads::random_indefinite_scalar(14, 3);
        let s = ToeplitzSolver::new(&t).unwrap();
        assert!(matches!(s.factorization(), Factorization::Indefinite(_)));
        assert!(!s.is_positive_definite());
        let (pos, neg) = s.inertia();
        assert_eq!(pos + neg, 14);
        assert!(neg > 0);
    }

    #[test]
    fn solve_spd_and_singular_minor_through_one_api() {
        for t in [
            workloads::random_spd_scalar(20, 4),
            workloads::paper_singular_minor_example(),
            workloads::random_indefinite_scalar(16, 9),
        ] {
            let (b, x_true) = workloads::rhs_for_ones(&t);
            let s = ToeplitzSolver::new(&t).unwrap();
            let x = s.solve(&b).unwrap();
            let err = x
                .iter()
                .zip(&x_true)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(err < 1e-8, "n={}: err {err:e}", t.order());
        }
    }

    #[test]
    fn multiple_right_hand_sides() {
        let t = workloads::random_spd_block(2, 6, 7);
        let n = t.order();
        let x_true = Matrix::from_fn(n, 3, |i, j| (i + j) as f64 - 5.0);
        let mut b = Matrix::zeros(n, 3);
        for j in 0..3 {
            let bj = t.matvec(x_true.col(j));
            b.col_mut(j).copy_from_slice(&bj);
        }
        let s = ToeplitzSolver::new(&t).unwrap();
        let x = s.solve_many(&b).unwrap();
        assert!(x.max_abs_diff(&x_true) < 1e-8);
    }

    #[test]
    fn wrong_shapes_are_typed_errors() {
        let t = workloads::random_spd_scalar(8, 1);
        let s = ToeplitzSolver::new(&t).unwrap();
        // Short right-hand side.
        assert!(matches!(
            s.solve(&[1.0; 5]),
            Err(Error::DimensionMismatch {
                expected: 8,
                found: 5,
                ..
            })
        ));
        // Wrong solve_many row count.
        let b = Matrix::zeros(5, 2);
        assert!(matches!(
            s.solve_many(&b),
            Err(Error::DimensionMismatch {
                expected: 8,
                found: 5,
                ..
            })
        ));
        // Refactor with a different order.
        let mut s = s;
        let t2 = workloads::random_spd_scalar(10, 1);
        assert!(matches!(
            s.refactor(&t2),
            Err(Error::DimensionMismatch {
                expected: 8,
                found: 10,
                ..
            })
        ));
        // The solver still answers for the original system.
        let (b, x_true) = workloads::rhs_for_ones(&t);
        let x = s.solve(&b).unwrap();
        assert!((x[0] - x_true[0]).abs() < 1e-9);
    }

    #[test]
    fn refactor_matches_fresh_factorization() {
        // A warm refactor must produce exactly the factor a fresh
        // solver computes (pooled buffers are zero-filled on checkout,
        // so the arithmetic paths are identical).
        let t1 = workloads::random_spd_block(2, 6, 11);
        let t2 = workloads::random_spd_block(2, 6, 12);
        let mut warm = ToeplitzSolver::new(&t1).unwrap();
        warm.refactor(&t2).unwrap();
        let fresh = ToeplitzSolver::new(&t2).unwrap();
        match (warm.factorization(), fresh.factorization()) {
            (Factorization::Spd(a), Factorization::Spd(b)) => {
                assert_eq!(a.r.max_abs_diff(&b.r), 0.0, "factors must be bitwise equal");
            }
            other => panic!("expected SPD factorizations, got {other:?}"),
        }
        // And through the indefinite path too.
        let i1 = workloads::random_indefinite_scalar(12, 5);
        let i2 = workloads::random_indefinite_scalar(12, 6);
        let mut warm = ToeplitzSolver::new(&i1).unwrap();
        warm.refactor(&i2).unwrap();
        let fresh = ToeplitzSolver::new(&i2).unwrap();
        match (warm.factorization(), fresh.factorization()) {
            (Factorization::Indefinite(a), Factorization::Indefinite(b)) => {
                assert_eq!(a.r.max_abs_diff(&b.r), 0.0);
                assert_eq!(a.d, b.d);
            }
            other => panic!("expected indefinite factorizations, got {other:?}"),
        }
    }

    #[test]
    fn warm_refactor_performs_zero_workspace_allocations() {
        let systems: Vec<_> = (0..4)
            .map(|s| workloads::random_spd_block(2, 8, 40 + s))
            .collect();
        let mut solver = ToeplitzSolver::new(&systems[0]).unwrap();
        // First refactor may still miss (the retired factor's storage
        // is only donated as it retires).
        solver.refactor(&systems[1]).unwrap();
        solver.reset_workspace_stats();
        for t in &systems[2..] {
            solver.refactor(t).unwrap();
            let (b, _) = workloads::rhs_for_ones(t);
            solver.solve(&b).unwrap();
        }
        assert_eq!(
            solver.workspace_allocations(),
            0,
            "warm refactor+solve cycles must not allocate from the pool"
        );
        assert!(solver.workspace_high_water() > 0);
    }

    #[test]
    fn gohberg_semencul_representation_solves() {
        let t = workloads::random_spd_scalar(48, 3);
        let solver = ToeplitzSolver::new(&t).unwrap();
        let inv = solver.inverse_representation().expect("GS rep");
        let (b, x_true) = workloads::rhs_for_ones(&t);
        let x = inv.apply(&b);
        for i in 0..48 {
            assert!((x[i] - x_true[i]).abs() < 1e-8, "i={i}");
        }
        // Block matrices have no scalar GS representation.
        let tb = workloads::random_spd_block(2, 8, 4);
        assert!(ToeplitzSolver::new(&tb)
            .unwrap()
            .inverse_representation()
            .is_none());
    }

    #[test]
    fn determinant_matches_dense_lu() {
        for t in [
            workloads::random_spd_scalar(12, 2),
            workloads::random_indefinite_scalar(12, 5),
        ] {
            let s = ToeplitzSolver::new(&t).unwrap();
            let (sign, ln) = s.det_sign_ln();
            let lu = bs_matrix::lu::lu_factor(&t.to_dense()).unwrap();
            let det = lu.det();
            assert_eq!(sign, det.signum(), "sign mismatch");
            assert!(
                (ln - det.abs().ln()).abs() < 1e-8,
                "ln|det| {} vs {}",
                ln,
                det.abs().ln()
            );
        }
    }
}

#[cfg(test)]
mod rtdr_tests {
    use super::*;

    fn upper(n: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        let mut r = Matrix::from_fn(n, n, |i, j| {
            if j < i {
                return 0.0;
            }
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 1000) as f64 - 500.0) / 500.0
        });
        for i in 0..n {
            r[(i, i)] = r[(i, i)].abs() + 1.0;
        }
        r
    }

    #[test]
    fn spd_solve_round_trip() {
        let n = 9;
        let r = upper(n, 4);
        let a = reconstruct_rtdr(&r, None);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 4.0).collect();
        let mut b = vec![0.0; n];
        bs_matrix::blas2::gemv(1.0, a.rf(), &x_true, 0.0, &mut b);
        let x = solve_rtdr(&r, None, &b).unwrap();
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn signed_solve_round_trip() {
        let n = 7;
        let r = upper(n, 9);
        let d: Vec<i8> = (0..n).map(|i| if i % 3 == 1 { -1 } else { 1 }).collect();
        let a = reconstruct_rtdr(&r, Some(&d));
        // A must be symmetric.
        for i in 0..n {
            for j in 0..n {
                assert!((a[(i, j)] - a[(j, i)]).abs() < 1e-12);
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64).cos()).collect();
        let mut b = vec![0.0; n];
        bs_matrix::blas2::gemv(1.0, a.rf(), &x_true, 0.0, &mut b);
        let x = solve_rtdr(&r, Some(&d), &b).unwrap();
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn singular_triangle_propagates() {
        let mut r = upper(3, 2);
        r[(1, 1)] = 0.0;
        assert!(solve_rtdr(&r, None, &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn shape_mismatches_are_typed_errors() {
        let r = upper(4, 1);
        assert!(matches!(
            solve_rtdr(&r, None, &[1.0; 3]),
            Err(Error::DimensionMismatch {
                expected: 4,
                found: 3,
                ..
            })
        ));
        let d = [1i8, -1];
        assert!(matches!(
            solve_rtdr(&r, Some(&d), &[1.0; 4]),
            Err(Error::DimensionMismatch {
                expected: 4,
                found: 2,
                ..
            })
        ));
    }
}
