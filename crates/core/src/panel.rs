//! Phase 1 of a Schur step: factor the `2m × m` pivot panel.
//!
//! The panel stacks the pivot block (upper half, upper triangular by the
//! invariant of §5) on the block to eliminate (lower half, dense). Each
//! column `k` yields one elementary hyperbolic reflector built from the
//! sparse pivot vector of Fig. 1; the reflector is applied to the
//! remaining panel columns immediately (BLAS2) while the chosen block
//! representation absorbs it for the later level-3 trailing update.

use crate::reflector::{PivotOutcome, PivotReflector};
use crate::rep::{BlockReflector, RepKind, RepScratch};
use crate::{Error, Result};
use bs_matrix::ldlt::Signature;
use bs_matrix::view::MatMut;
use bs_matrix::{Scalar, Workspace};
use bs_probe::metrics::{self, Counter};
use bs_probe::stability;

/// Reusable per-step state for [`factor_panel_into`]: the pivot
/// reflector, its source column, and the block-representation update
/// buffers. Held across Schur steps by the plan/execute engine so the
/// warm panel factorization allocates nothing.
#[derive(Debug)]
pub struct PanelScratch<T: Scalar = f64> {
    refl: PivotReflector<T>,
    u_low: Vec<T>,
    rep: RepScratch<T>,
}

impl<T: Scalar> Default for PanelScratch<T> {
    fn default() -> Self {
        PanelScratch {
            refl: PivotReflector::empty(),
            u_low: Vec::new(),
            rep: RepScratch::default(),
        }
    }
}

/// Factor a `2m × m` pivot panel in place under the SPD working
/// signature `W = diag(I_m, −I_m)`.
///
/// On success the panel's upper half holds the transformed (still upper
/// triangular) pivot block — the diagonal block of the next `R` row —
/// its lower half is zeroed, and the returned [`BlockReflector`] is the
/// product of the `m` elementary reflectors in representation `kind`.
///
/// `step` is only used for error reporting. `scale` is the absolute
/// matrix scale (`‖T‖∞`) against which `zero_tol` classifies a pivot's
/// hyperbolic norm as numerically zero.
pub fn factor_panel<T: Scalar>(
    panel: MatMut<'_, T>,
    w: &Signature,
    kind: RepKind,
    step: usize,
    zero_tol: f64,
    scale: f64,
) -> Result<BlockReflector<T>> {
    let m = panel.cols();
    let mut reps = factor_panel_two_level(panel, w, kind, step, zero_tol, scale, m)?;
    debug_assert_eq!(reps.len(), 1);
    reps.pop().ok_or_else(|| {
        Error::InvalidOptions("panel factorization produced no reflector chunk".to_string())
    })
}

/// Two-level blocked panel factorization (§6.2): the elementary
/// hyperbolic reflectors are blocked every `k_block` steps, and each
/// chunk's block transformation is applied to the remaining portion of
/// the pivot block with level-3 kernels before the next chunk starts.
///
/// With `k_block = m` this is [`factor_panel`]; smaller chunks trade a
/// little extra blocking work for level-3 intra-panel updates — the
/// scheme the paper recommends "if the block size m is very large …
/// on machines with hierarchical memory".
///
/// Returns one [`BlockReflector`] per chunk; apply them to the trailing
/// generator *in order*.
pub fn factor_panel_two_level<T: Scalar>(
    panel: MatMut<'_, T>,
    w: &Signature,
    kind: RepKind,
    step: usize,
    zero_tol: f64,
    scale: f64,
    k_block: usize,
) -> Result<Vec<BlockReflector<T>>> {
    let mut reps = Vec::new();
    let mut scratch = PanelScratch::default();
    let mut ws = Workspace::new();
    factor_panel_into(
        panel,
        w,
        kind,
        step,
        zero_tol,
        scale,
        k_block,
        &mut reps,
        &mut scratch,
        &mut ws,
    )?;
    Ok(reps)
}

/// [`factor_panel_two_level`] with every working buffer caller-owned:
/// the chunk [`BlockReflector`]s in `reps` are reused via
/// [`BlockReflector::reset`] when their shape fits (re-created on a
/// cold or mismatched call), per-column temporaries live in `scratch`,
/// and level-3 intra-panel updates draw from `ws`. Warm calls perform
/// zero heap allocations. The arithmetic is identical to
/// [`factor_panel_two_level`] — that function is now this one with
/// fresh state.
///
/// On success `reps` holds exactly the chunk transformations, in
/// application order.
#[allow(clippy::too_many_arguments)]
pub fn factor_panel_into<T: Scalar>(
    mut panel: MatMut<'_, T>,
    w: &Signature,
    kind: RepKind,
    step: usize,
    zero_tol: f64,
    scale: f64,
    k_block: usize,
    reps: &mut Vec<BlockReflector<T>>,
    scratch: &mut PanelScratch<T>,
    ws: &mut Workspace<T>,
) -> Result<()> {
    let m = panel.cols();
    assert_eq!(panel.rows(), 2 * m, "panel must be 2m x m");
    assert_eq!(w.len(), 2 * m);
    assert!(k_block >= 1, "chunk size must be positive");
    debug_assert!(
        (0..m).all(|i| w.sign(i) > 0),
        "SPD panel factorization expects an all-plus upper signature"
    );
    let mut chunk_start = 0;
    let mut chunk_idx = 0;
    while chunk_start < m {
        let chunk_end = (chunk_start + k_block).min(m);
        let k_len = chunk_end - chunk_start;
        if chunk_idx == reps.len() {
            // bs-lint: allow(no-alloc-hot) -- cold first-call path; warm steps hit the `fits`/`reset` branch
            reps.push(BlockReflector::new(kind, w.clone(), k_len));
        } else if reps[chunk_idx].fits(kind, w, k_len) {
            reps[chunk_idx].reset();
        } else {
            // bs-lint: allow(no-alloc-hot) -- cold reshape path (problem shape changed under the plan)
            reps[chunk_idx] = BlockReflector::new(kind, w.clone(), k_len);
        }
        let rep = &mut reps[chunk_idx];
        for k in chunk_start..chunk_end {
            let u_top = panel.get(k, k);
            scratch.u_low.clear();
            scratch.u_low.extend_from_slice(&panel.col(k)[m..]);
            let outcome = PivotReflector::compute_into(
                u_top,
                &scratch.u_low,
                w,
                m,
                k,
                zero_tol,
                scale,
                &mut scratch.refl,
            );
            match outcome {
                PivotOutcome::Ok => {}
                PivotOutcome::ZeroNorm { hnorm } => {
                    return Err(Error::SingularMinor {
                        step,
                        column: k,
                        hnorm,
                    })
                }
                PivotOutcome::WrongSign { hnorm } => {
                    return Err(Error::NotPositiveDefinite {
                        step,
                        column: k,
                        hnorm,
                    })
                }
            }
            let r = &scratch.refl;
            crate::contracts::hyperbolic_existence(step, k, r.sigma.to_f64(), r.beta.to_f64());
            metrics::incr(Counter::Reflectors);
            if stability::is_enabled() {
                // σ² = |uᵀWu|: the hyperbolic norm the reflector
                // eliminated; norm_est bounds ‖U‖₂ (the §8.2 growth).
                let h2 = u_top * u_top + scratch.u_low.iter().fold(T::ZERO, |acc, &v| acc + v * v);
                let col_norm = h2.to_f64().sqrt();
                stability::record_step(
                    step,
                    k,
                    col_norm,
                    (r.sigma * r.sigma).to_f64(),
                    r.norm_est(),
                );
            }
            // Column k maps to −σ e_k (lower half annihilated).
            panel.set(k, k, -r.sigma);
            for i in 0..m {
                panel.set(m + i, k, T::ZERO);
            }
            // Elementary update of the rest of this chunk only.
            for j in k + 1..chunk_end {
                let col = panel.col_mut(j);
                let (top_half, low_half) = col.split_at_mut(m);
                r.apply_split(w, m, &mut top_half[k], low_half);
            }
            rep.push_pivot(&scratch.refl, m, &mut scratch.rep);
        }
        // Level-3 update of the remaining pivot-block columns with the
        // whole chunk's transformation.
        if chunk_end < m {
            // Pivot panels are narrow (≤ m columns); fan-out belongs to
            // the trailing update, not here.
            rep.apply_ws(
                panel.sub_mut(0, chunk_end, 2 * m, m - chunk_end),
                &bs_matrix::ExecPolicy::sequential(),
                ws,
            );
        }
        chunk_start = chunk_end;
        chunk_idx += 1;
    }
    reps.truncate(chunk_idx);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_matrix::Matrix;

    /// Build a panel whose pivot block is upper triangular with a
    /// dominant diagonal, and a small dense lower block.
    fn make_panel(m: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 1000) as f64 - 500.0) / 500.0
        };
        let mut p = Matrix::zeros(2 * m, m);
        for j in 0..m {
            for i in 0..=j {
                p[(i, j)] = rnd() * 0.5;
            }
            p[(j, j)] = 2.0 + rnd().abs();
            for i in 0..m {
                p[(m + i, j)] = rnd() * 0.5;
            }
        }
        p
    }

    #[test]
    fn panel_triangularizes_and_matches_block_transform() {
        for m in [1usize, 2, 3, 6] {
            for kind in RepKind::ALL {
                let w = Signature::hyperbolic(m);
                let p0 = make_panel(m, 5 * m as u64 + 1);
                let mut p = p0.clone();
                let rep = factor_panel(p.mt(), &w, kind, 0, 1e-13, 1.0).unwrap();
                // Lower half must be zero.
                for j in 0..m {
                    for i in 0..m {
                        assert!(
                            p[(m + i, j)].abs() < 1e-11,
                            "kind={kind} m={m}: lower ({i},{j}) = {}",
                            p[(m + i, j)]
                        );
                    }
                }
                // Upper half must stay upper triangular.
                for j in 0..m {
                    for i in j + 1..m {
                        assert!(p[(i, j)].abs() < 1e-11, "kind={kind} m={m}");
                    }
                }
                // The dense block transform must reproduce the same panel.
                let u = rep.to_dense();
                let mut up = Matrix::zeros(2 * m, m);
                bs_matrix::gemm(
                    1.0,
                    u.rf(),
                    bs_matrix::Trans::No,
                    p0.rf(),
                    bs_matrix::Trans::No,
                    0.0,
                    up.mt(),
                );
                assert!(
                    up.max_abs_diff(&p) < 1e-9,
                    "kind={kind} m={m}: diff {}",
                    up.max_abs_diff(&p)
                );
            }
        }
    }

    #[test]
    fn panel_preserves_gram_difference() {
        // The hyperbolic invariant: PᵀWP is unchanged by the step.
        let m = 4;
        let w = Signature::hyperbolic(m);
        let p0 = make_panel(m, 99);
        let mut p = p0.clone();
        factor_panel(p.mt(), &w, RepKind::VY2, 0, 1e-13, 1.0).unwrap();
        let gram = |x: &Matrix| {
            let mut wx = x.clone();
            for j in 0..m {
                for i in m..2 * m {
                    wx[(i, j)] = -wx[(i, j)];
                }
            }
            let mut g = Matrix::zeros(m, m);
            bs_matrix::gemm(
                1.0,
                x.rf(),
                bs_matrix::Trans::Yes,
                wx.rf(),
                bs_matrix::Trans::No,
                0.0,
                g.mt(),
            );
            g
        };
        assert!(gram(&p0).max_abs_diff(&gram(&p)) < 1e-10);
    }

    #[test]
    fn zero_hyperbolic_norm_is_singular_minor() {
        let m = 1;
        let w = Signature::hyperbolic(m);
        let mut p = Matrix::zeros(2, 1);
        p[(0, 0)] = 1.0;
        p[(1, 0)] = 1.0;
        match factor_panel(p.mt(), &w, RepKind::VY2, 3, 1e-12, 1.0) {
            Err(Error::SingularMinor {
                step: 3, column: 0, ..
            }) => {}
            other => panic!("expected SingularMinor, got {other:?}"),
        }
    }

    #[test]
    fn negative_norm_is_not_positive_definite() {
        let m = 1;
        let w = Signature::hyperbolic(m);
        let mut p = Matrix::zeros(2, 1);
        p[(0, 0)] = 1.0;
        p[(1, 0)] = 2.0;
        assert!(matches!(
            factor_panel(p.mt(), &w, RepKind::VY2, 0, 1e-12, 1.0),
            Err(Error::NotPositiveDefinite { .. })
        ));
    }
}
