//! Contract-layer tests — compiled only with the `paranoid` feature:
//!
//! ```text
//! cargo test -p bs-core --features paranoid
//! ```
//!
//! Two properties are pinned here: valid factorizations must be
//! contract-silent (no false positives across a seeded sweep of SPD
//! and indefinite problems), and each contract must actually fire on
//! inputs that break its invariant, with the violation routed through
//! `bs_probe::stability` and its counter.
#![cfg(feature = "paranoid")]

use bs_core::{contracts, factor_indefinite, factor_spd, IndefOptions, SchurOptions};
use bs_probe::stability;
use bs_toeplitz::workloads;
use std::sync::{Mutex, MutexGuard};

/// The violation buffer, the `ContractViolations` counter, and the
/// abort flag are process-global, so the tests serialize on one lock
/// and start from a drained report with aborting disabled.
static LOCK: Mutex<()> = Mutex::new(());

fn setup() -> MutexGuard<'static, ()> {
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    contracts::set_abort(false);
    let _ = stability::take_report();
    g
}

#[test]
fn paranoid_feature_is_active() {
    assert!(contracts::enabled());
}

#[test]
fn valid_spd_factorizations_are_contract_silent() {
    let _g = setup();
    // Proptest-style seeded sweep: shapes × seeds, every case must
    // factor correctly and record zero violations.
    for (m, p) in [(1usize, 12usize), (2, 6), (3, 5), (4, 4)] {
        for seed in 1..=8u64 {
            let t = workloads::random_spd_block(m, p, 1000 * seed + m as u64);
            let f = factor_spd(&t, &SchurOptions::default()).expect("SPD factorization");
            let diff = f.reconstruct().max_abs_diff(&t.to_dense());
            assert!(
                diff < 1e-8 * t.norm_inf().max(1.0),
                "m={m} p={p} seed={seed}"
            );
        }
    }
    assert_eq!(
        stability::violation_count(),
        0,
        "valid SPD inputs must not trip any contract: {:?}",
        stability::report().violations
    );
}

#[test]
fn valid_indefinite_factorizations_are_contract_silent() {
    let _g = setup();
    for n in [8usize, 12, 16] {
        for seed in 1..=6u64 {
            let t = workloads::random_indefinite_scalar(n, 77 * seed + n as u64);
            let f =
                factor_indefinite(&t, &IndefOptions::default()).expect("indefinite factorization");
            let diff = f.reconstruct().max_abs_diff(&t.to_dense());
            assert!(diff < 1e-7 * t.norm_inf().max(1.0), "n={n} seed={seed}");
        }
    }
    assert_eq!(
        stability::violation_count(),
        0,
        "valid indefinite inputs must not trip any contract: {:?}",
        stability::report().violations
    );
}

#[test]
fn hyperbolic_existence_fires_on_nonfinite_reflector() {
    let _g = setup();
    contracts::hyperbolic_existence(3, 1, f64::NAN, -2.0);
    contracts::hyperbolic_existence(3, 2, 1.5, f64::INFINITY);
    contracts::hyperbolic_existence(3, 3, 0.0, -2.0);
    let r = stability::take_report();
    assert_eq!(r.violations.len(), 3);
    assert!(r
        .violations
        .iter()
        .all(|v| v.contract == "hyperbolic_existence"));
    assert!(r.violations[0].detail.contains("step 3 column 1"));
}

#[test]
fn signature_consistency_fires_on_corrupted_w() {
    let _g = setup();
    // Sum drift (an exchange that overwrote instead of swapping).
    contracts::signature_consistency(&[1, 1, 1, -1], 0, 2);
    // Non-unit entry (memory corruption).
    contracts::signature_consistency(&[1, 0, -1, -1], -1, 4);
    // A genuine permutation of the same entries is silent.
    contracts::signature_consistency(&[-1, 1, 1, -1], 0, 5);
    let r = stability::take_report();
    assert_eq!(r.violations.len(), 2);
    assert!(r
        .violations
        .iter()
        .all(|v| v.contract == "signature_consistency"));
    assert!(r.violations[1]
        .detail
        .contains("non-unit entry present: true"));
}

#[test]
fn spd_diagonal_fires_on_nonpositive_diagonal() {
    let _g = setup();
    let mut r = bs_matrix::Matrix::identity(4);
    r[(2, 2)] = 0.0;
    contracts::spd_diagonal(&r, "test_site");
    r[(2, 2)] = f64::NAN;
    contracts::spd_diagonal(&r, "test_site");
    let rep = stability::take_report();
    assert_eq!(rep.violations.len(), 2);
    assert!(rep.violations[0].detail.contains("test_site"));
    assert!(rep.violations[0].detail.contains("(2,2)"));
}

#[test]
fn workspace_balance_fires_on_leaked_checkout() {
    let _g = setup();
    let mut ws = bs_matrix::Workspace::<f64>::new();
    let entry = ws.outstanding();
    let leaked = ws.take_vec(16);
    ws.contract_region("leak_test", entry, 0); // fires: delta is +1
    ws.give_vec(leaked);
    ws.contract_region("balanced_test", entry, 0); // silent
    ws.contract_quiescent("quiescent_test"); // silent
    let r = stability::take_report();
    assert_eq!(r.violations.len(), 1);
    assert_eq!(r.violations[0].contract, "workspace_balance");
    assert!(r.violations[0].detail.contains("leak_test"));
    assert!(r.violations[0].detail.contains("changed by 1"));
}

#[test]
fn abort_mode_panics_after_recording() {
    let _g = setup();
    contracts::set_abort(true);
    let result = std::panic::catch_unwind(|| {
        contracts::hyperbolic_existence(0, 0, f64::NAN, 1.0);
    });
    contracts::set_abort(false);
    assert!(result.is_err(), "abort mode must panic on a violation");
    // The violation is recorded *before* the abort, so post-mortem
    // traces still carry it.
    let r = stability::take_report();
    assert_eq!(r.violations.len(), 1);
    assert_eq!(r.violations[0].contract, "hyperbolic_existence");
}

#[test]
fn violations_bump_the_probe_counter() {
    let _g = setup();
    use bs_probe::metrics::{self, Counter};
    let before = metrics::total(Counter::ContractViolations);
    contracts::signature_consistency(&[1, 1], 0, 1);
    assert_eq!(metrics::total(Counter::ContractViolations), before + 1);
    let _ = stability::take_report();
}
