//! The designated Miri suite: a tiny end-to-end factor/solve slice of
//! the core engine, sized so `cargo +nightly miri test -p bs-core
//! --test miri_smoke` finishes in interpreter time (see
//! `scripts/check.sh`, `miri` tier). Everything here also runs as a
//! plain native test, so the suite doubles as a fast smoke check.
//!
//! Under Miri the kernel engine dispatches the portable microkernel
//! (`cfg(miri)` forces detection to `Isa::Portable`), the FTZ scope
//! degrades to a no-op, and the blocking autotuner skips sysfs — the
//! shims the audit layer added so the *algorithm* paths stay fully
//! checkable for UB even where the hardware paths cannot run.

use bs_core::{factor_indefinite, factor_spd, IndefOptions, SchurOptions};
use bs_toeplitz::workloads;

#[test]
fn spd_factor_solve_residual_is_small() {
    // 2x2 blocks, 3 block rows: order 6 — big enough to exercise the
    // generator recursion, small enough for the interpreter.
    let t = workloads::random_spd_block(2, 3, 42);
    let n = t.order();
    let f = factor_spd(&t, &SchurOptions::default()).expect("SPD factorization");
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.37).collect();
    let x = f.solve(&b).expect("SPD solve");
    let dense = t.to_dense();
    let scale = t.norm_inf().max(1.0);
    for i in 0..n {
        let mut ax = 0.0;
        for j in 0..n {
            ax += dense[(i, j)] * x[j];
        }
        assert!(
            (ax - b[i]).abs() < 1e-8 * scale,
            "residual row {i}: {ax} vs {}",
            b[i]
        );
    }
}

#[test]
fn spd_factor_reconstructs_the_operator() {
    let t = workloads::random_spd_block(2, 3, 7);
    let f = factor_spd(&t, &SchurOptions::default()).expect("SPD factorization");
    let diff = f.reconstruct().max_abs_diff(&t.to_dense());
    assert!(diff < 1e-9 * t.norm_inf().max(1.0), "diff = {diff}");
}

#[test]
fn indefinite_factor_reconstructs_the_operator() {
    let t = workloads::random_indefinite_scalar(6, 99);
    let f = factor_indefinite(&t, &IndefOptions::default()).expect("indefinite factorization");
    let diff = f.reconstruct().max_abs_diff(&t.to_dense());
    assert!(diff < 1e-7 * t.norm_inf().max(1.0), "diff = {diff}");
}

#[test]
fn kernel_dispatch_is_portable_under_miri() {
    // Outside Miri this documents that detection resolves to something
    // runnable; under Miri it must be exactly the portable kernel.
    let isa = bs_matrix::kernel::active_isa();
    assert!(bs_matrix::kernel::isa_supported(isa));
    if cfg!(miri) {
        assert_eq!(isa, bs_matrix::kernel::Isa::Portable);
    }
}
