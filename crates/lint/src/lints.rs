//! The lint catalog: the token-level passes over a [`FileScan`].
//!
//! | lint | scope | what it forbids |
//! |------|-------|-----------------|
//! | `no-panic-paths` | library crates, non-test | `.unwrap()`, `.expect(`, `panic!`, `todo!`, `unimplemented!` |
//! | `safety-comment` | everywhere | `unsafe` without a nearby `// SAFETY:` comment (multi-line clauses count as one run) |
//! | `no-alloc-hot` | hot-path manifest, non-test | `Vec::new`, `vec![`, `.to_vec()`, `.clone()`, `Box::new`, `String::`/`format!`/`.to_string()`/`.to_owned()` |
//! | `float-eq` | library crates, non-test | `==`/`!=` with a float-literal operand (configured literals, `0.0` by default, exempt) |
//! | `must-use-results` | library crates | `pub fn` returning a configured must-use type without `#[must_use]` at the fn or the type |
//! | `unsafe-contract` | `[unsafe-contract]` crates | `unsafe` without a structured, validated SAFETY clause (see [`crate::unsafe_contract`]) |
//! | `atomics-manifest` | `[unsafe-contract]` crates + `[atomics]` files | atomic ops / raw pointers outside the declared concurrency manifest (see [`crate::atomics`]) |
//! | `hot-path-coverage` | `[hot-path-dirs]` | a file under a hot-path directory neither listed in `[hot-paths]` nor exempted |
//!
//! Every diagnostic can be suppressed with
//! `// bs-lint: allow(<lint>) -- <justification>` on or directly above
//! the offending line, or `// bs-lint: allow-file(<lint>) -- ...` for a
//! whole file. A directive without a justification is itself reported.

use crate::config::Config;
use crate::scan::FileScan;
use crate::tokens::{TokKind, Token};
use crate::{Diagnostic, Registry};
use std::collections::BTreeSet;

/// Run every enabled lint on one scanned file. `registry` carries the
/// workspace-wide facts (must-use types, identifiers, fn names)
/// collected in a first pass over every file.
pub fn lint_file(
    file: &str,
    scan: &FileScan,
    cfg: &Config,
    registry: &Registry,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (line, msg) in &scan.malformed_directives {
        out.push(Diagnostic {
            file: file.to_string(),
            line: *line,
            lint: "allow-directive",
            message: msg.clone(),
        });
    }
    let in_lib = cfg.in_library_crate(file);
    if cfg.enabled("no-panic-paths") && in_lib {
        no_panic_paths(file, scan, &mut out);
    }
    if cfg.enabled("safety-comment") {
        safety_comment(file, scan, &mut out);
    }
    if cfg.enabled("no-alloc-hot") {
        no_alloc_hot(file, scan, cfg, &mut out);
    }
    if cfg.enabled("float-eq") && in_lib {
        float_eq(file, scan, cfg, &mut out);
    }
    if cfg.enabled("must-use-results") && in_lib {
        must_use_results(file, scan, cfg, &registry.must_use_types, &mut out);
    }
    if cfg.enabled("unsafe-contract") {
        crate::unsafe_contract::unsafe_contract(file, scan, cfg, registry, &mut out);
    }
    if cfg.enabled("atomics-manifest") {
        crate::atomics::atomics_manifest(file, scan, cfg, &mut out);
        crate::atomics::raw_pointers(file, scan, cfg, &mut out);
    }
    if cfg.enabled("hot-path-coverage") {
        hot_path_coverage(file, cfg, &mut out);
    }
    // Apply allow directives last so every pass sees the same state.
    out.retain(|d| d.lint == "allow-directive" || !scan.allowed(d.lint, d.line));
    out.sort_by_key(|d| d.line);
    out
}

fn diag(out: &mut Vec<Diagnostic>, file: &str, line: u32, lint: &'static str, message: String) {
    out.push(Diagnostic {
        file: file.to_string(),
        line,
        lint,
        message,
    });
}

fn is_punct(t: Option<&Token>, s: &str) -> bool {
    matches!(t, Some(t) if t.kind == TokKind::Punct && t.text == s)
}

/// `.unwrap()` / `.expect(` / `panic!` / `todo!` / `unimplemented!` in
/// non-test library code. These either hide a recoverable error behind
/// a process abort or mark unfinished work; library paths must surface
/// typed errors instead.
fn no_panic_paths(file: &str, scan: &FileScan, out: &mut Vec<Diagnostic>) {
    let toks = &scan.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || scan.in_test(i) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|j| toks.get(j));
        let next = toks.get(i + 1);
        match t.text.as_str() {
            "unwrap" | "expect" if is_punct(prev, ".") && is_punct(next, "(") => {
                diag(
                    out,
                    file,
                    t.line,
                    "no-panic-paths",
                    format!(
                        "`.{}(` can abort the process; return a typed error instead",
                        t.text
                    ),
                );
            }
            "panic" | "todo" | "unimplemented" if is_punct(next, "!") => {
                diag(
                    out,
                    file,
                    t.line,
                    "no-panic-paths",
                    format!(
                        "`{}!` in library code; return a typed error instead",
                        t.text
                    ),
                );
            }
            _ => {}
        }
    }
}

/// Every `unsafe` keyword (block, fn, impl, trait) needs a comment
/// containing `SAFETY:` whose comment *run* (consecutive comment lines
/// count as one logical comment, so multi-line clauses work) touches
/// the three lines above it, its own line, or the line just below (the
/// `unsafe { // SAFETY: ...` style).
fn safety_comment(file: &str, scan: &FileScan, out: &mut Vec<Diagnostic>) {
    let toks = &scan.toks;
    let runs = crate::unsafe_contract::comment_runs(toks);
    for t in toks.iter() {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        let documented = runs.iter().any(|r| {
            r.text.contains("SAFETY:")
                && r.start_line <= t.line + 1
                && r.end_line >= t.line.saturating_sub(3)
        });
        if !documented {
            diag(
                out,
                file,
                t.line,
                "safety-comment",
                "`unsafe` without a `// SAFETY:` comment explaining the invariant".to_string(),
            );
        }
    }
}

/// Heap allocation inside a function listed in the hot-path manifest.
/// Hot loops must draw scratch from the `Workspace` arena so warm
/// steady-state runs stay allocation-free.
fn no_alloc_hot(file: &str, scan: &FileScan, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let entries = cfg.hot_entries(file);
    if entries.is_empty() {
        return;
    }
    let toks = &scan.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || scan.in_test(i) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|j| toks.get(j));
        let next = toks.get(i + 1);
        let next2 = toks.get(i + 2);
        let what: Option<&str> = match t.text.as_str() {
            "Vec"
                if is_punct(next, "::")
                    && matches!(next2, Some(n) if n.text == "new" || n.text == "with_capacity") =>
            {
                Some("Vec construction")
            }
            "Box" if is_punct(next, "::") && matches!(next2, Some(n) if n.text == "new") => {
                Some("Box::new")
            }
            "String" if is_punct(next, "::") => Some("String construction"),
            "vec" if is_punct(next, "!") => Some("vec! literal"),
            "format" if is_punct(next, "!") => Some("format! allocation"),
            "to_vec" | "to_string" | "to_owned" if is_punct(prev, ".") && is_punct(next, "(") => {
                Some("owned-copy allocation")
            }
            "clone" if is_punct(prev, ".") && is_punct(next, "(") => Some(".clone() allocation"),
            _ => None,
        };
        let Some(what) = what else { continue };
        let enclosing = scan.enclosing_fns(i);
        let hot = enclosing
            .iter()
            .find(|f| entries.iter().any(|e| e.covers(f)));
        if let Some(hot_fn) = hot {
            diag(
                out,
                file,
                t.line,
                "no-alloc-hot",
                format!(
                    "{what} inside hot path `{hot_fn}`; check scratch out of the Workspace arena instead"
                ),
            );
        }
    }
}

/// `==` / `!=` with a float-literal operand in non-test library code.
/// Exact float equality is almost always a rounding bug; the
/// configured literals (`0.0` by default) are exempt because exact-zero
/// guards define BLAS fast paths.
fn float_eq(file: &str, scan: &FileScan, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let toks = &scan.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") || scan.in_test(i) {
            continue;
        }
        let mut operands: Vec<&Token> = Vec::new();
        if let Some(p) = i.checked_sub(1).and_then(|j| toks.get(j)) {
            operands.push(p);
        }
        // Skip a unary minus on the right-hand side.
        match toks.get(i + 1) {
            Some(n) if n.kind == TokKind::Punct && n.text == "-" => {
                if let Some(n2) = toks.get(i + 2) {
                    operands.push(n2);
                }
            }
            Some(n) => operands.push(n),
            None => {}
        }
        for op in operands {
            if op.kind == TokKind::Float && !cfg.float_literal_allowed(&op.text) {
                diag(
                    out,
                    file,
                    t.line,
                    "float-eq",
                    format!(
                        "exact float comparison `{} {}`; compare against a tolerance instead",
                        t.text, op.text
                    ),
                );
                break;
            }
        }
    }
}

/// Every file under a `[hot-path-dirs]` directory must be accounted
/// for: listed in `[hot-paths]` (so `no-alloc-hot` covers it) or
/// explicitly exempted in `[hot-path-exempt]` with a justification.
/// New kernel files cannot silently dodge the allocation audit.
fn hot_path_coverage(file: &str, cfg: &Config, out: &mut Vec<Diagnostic>) {
    for dir in &cfg.hot_path_dirs {
        let dir = dir.trim_end_matches('/');
        let under = file
            .strip_prefix(dir)
            .is_some_and(|rest| rest.starts_with('/'));
        if under && cfg.hot_entries(file).is_empty() && !cfg.hot_path_exempt.contains_key(file) {
            diag(
                out,
                file,
                1,
                "hot-path-coverage",
                format!(
                    "file under hot-path directory `{dir}` is neither listed in \
                     [hot-paths] nor exempted in [hot-path-exempt]"
                ),
            );
        }
    }
}

/// `pub fn` returning a configured must-use type needs `#[must_use]`
/// on the function or on the type declaration (anywhere in the
/// workspace). Functions returning `Result` are satisfied: std's
/// `Result` is `#[must_use]` at the type level already.
fn must_use_results(
    file: &str,
    scan: &FileScan,
    cfg: &Config,
    registry: &BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    for f in &scan.fns {
        if !f.is_pub || f.has_must_use || f.body.is_none() {
            continue;
        }
        if let Some((body_start, _)) = f.body {
            if scan.in_test(body_start) {
                continue;
            }
        }
        if f.ret_idents.iter().any(|r| r == "Result" || r == "Option") {
            // Wrapped in a std type that is already #[must_use].
            continue;
        }
        let offending: Vec<&String> = f
            .ret_idents
            .iter()
            .filter(|r| cfg.must_use_types.iter().any(|t| t == *r))
            .filter(|r| !registry.contains(*r))
            .collect();
        if let Some(ty) = offending.first() {
            diag(
                out,
                file,
                f.line,
                "must-use-results",
                format!(
                    "`pub fn {}` returns `{ty}` but neither the fn nor the type is `#[must_use]`",
                    f.name
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HotPath;
    use crate::scan::scan;
    use crate::tokens::tokenize;

    fn run(src: &str, cfg: &Config) -> Vec<Diagnostic> {
        let s = scan(tokenize(src));
        let registry = Registry::from_scans(std::iter::once(&s));
        lint_file("crates/core/src/x.rs", &s, cfg, &registry)
    }

    fn lib_cfg() -> Config {
        Config {
            library_crates: vec!["crates/core".to_string()],
            ..Config::default()
        }
    }

    #[test]
    fn flags_panic_paths_outside_tests_only() {
        let src = "fn a() { b.unwrap(); c.expect(\"x\"); panic!(); todo!(); unimplemented!(); }\n\
                   #[cfg(test)] mod t { fn u() { v.unwrap(); } }\n";
        let d = run(src, &lib_cfg());
        let n = d.iter().filter(|d| d.lint == "no-panic-paths").count();
        assert_eq!(n, 5, "{d:?}");
    }

    #[test]
    fn unwrap_or_variants_not_flagged() {
        let d = run(
            "fn a() { b.unwrap_or(0); c.unwrap_or_else(f); d.unwrap_or_default(); e.expect_err(\"x\"); }\n",
            &lib_cfg(),
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn outside_library_crates_no_panic_lint() {
        let cfg = Config {
            library_crates: vec!["crates/other".to_string()],
            ..Config::default()
        };
        let s = scan(tokenize("fn a() { b.unwrap(); }"));
        let d = lint_file("crates/core/src/x.rs", &s, &cfg, &Registry::default());
        assert!(d.is_empty());
    }

    #[test]
    fn safety_comment_required_and_satisfied() {
        let bad = run("fn a() { unsafe { q(); } }\n", &lib_cfg());
        assert_eq!(bad.iter().filter(|d| d.lint == "safety-comment").count(), 1);
        let good = run(
            "fn a() {\n    // SAFETY: q is in bounds by the loop invariant.\n    unsafe { q(); }\n}\n",
            &lib_cfg(),
        );
        assert!(good.iter().all(|d| d.lint != "safety-comment"), "{good:?}");
    }

    #[test]
    fn hot_path_allocations_flagged_in_listed_fns_only() {
        let cfg = Config {
            library_crates: vec!["crates/core".to_string()],
            hot_paths: vec![HotPath {
                file: "crates/core/src/x.rs".to_string(),
                fns: vec!["hot".to_string()],
            }],
            ..Config::default()
        };
        let src = "\
fn hot() { let v = vec![0.0; 8]; let w = Vec::new(); let b = x.clone(); }
fn cold() { let v = vec![0.0; 8]; }
";
        let d = run(src, &cfg);
        let hot: Vec<_> = d.iter().filter(|d| d.lint == "no-alloc-hot").collect();
        assert_eq!(hot.len(), 3, "{hot:?}");
        assert!(hot.iter().all(|d| d.line == 1));
    }

    #[test]
    fn whole_file_hot_entry() {
        let cfg = Config {
            library_crates: vec!["crates/core".to_string()],
            hot_paths: vec![HotPath {
                file: "crates/core/src/x.rs".to_string(),
                fns: Vec::new(),
            }],
            ..Config::default()
        };
        let d = run("fn any() { q.to_vec(); }\n", &cfg);
        assert_eq!(d.iter().filter(|d| d.lint == "no-alloc-hot").count(), 1);
    }

    #[test]
    fn float_eq_flags_non_zero_literals() {
        let src = "fn a() { if x == 1.0 {} if y != 2.5 {} if z == 0.0 {} if w == -1.5 {} if 3.5 == v {} }\n";
        let d = run(src, &lib_cfg());
        let fe: Vec<_> = d.iter().filter(|d| d.lint == "float-eq").collect();
        assert_eq!(fe.len(), 4, "{fe:?}");
    }

    #[test]
    fn int_comparisons_not_flagged() {
        let d = run("fn a() { if x == 1 {} if n != 0 {} }\n", &lib_cfg());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn must_use_fn_level_type_level_and_violation() {
        let cfg = Config {
            library_crates: vec!["crates/core".to_string()],
            must_use_types: vec!["Plan".to_string(), "Factor".to_string()],
            ..Config::default()
        };
        let src = "\
#[must_use] pub struct Plan;
pub struct Factor;
pub fn make_plan() -> Plan { Plan }
pub fn make_factor() -> Factor { Factor }
#[must_use] pub fn make_factor2() -> Factor { Factor }
pub fn make_result() -> Result<Factor, ()> { Ok(Factor) }
";
        let d = run(src, &cfg);
        let mu: Vec<_> = d.iter().filter(|d| d.lint == "must-use-results").collect();
        assert_eq!(mu.len(), 1, "{mu:?}");
        assert!(mu[0].message.contains("make_factor"));
    }

    #[test]
    fn hot_path_coverage_requires_listing_or_exemption() {
        let cfg = Config {
            hot_path_dirs: vec!["crates/core/src".to_string()],
            ..Config::default()
        };
        let d = run("fn f() {}", &cfg);
        assert_eq!(
            d.iter().filter(|d| d.lint == "hot-path-coverage").count(),
            1,
            "{d:?}"
        );
        let listed = Config {
            hot_path_dirs: vec!["crates/core/src".to_string()],
            hot_paths: vec![HotPath {
                file: "crates/core/src/x.rs".to_string(),
                fns: vec!["f".to_string()],
            }],
            ..Config::default()
        };
        assert!(run("fn f() {}", &listed).is_empty());
        let exempt = Config {
            hot_path_dirs: vec!["crates/core/src".to_string()],
            hot_path_exempt: std::iter::once((
                "crates/core/src/x.rs".to_string(),
                "cold setup file".to_string(),
            ))
            .collect(),
            ..Config::default()
        };
        assert!(run("fn f() {}", &exempt).is_empty());
    }

    #[test]
    fn allow_comment_suppresses() {
        let src = "\
fn a() {
    // bs-lint: allow(no-panic-paths) -- boot-time invariant, cannot fail
    let x = b.unwrap();
    let y = c.unwrap();
}
";
        let d = run(src, &lib_cfg());
        let np: Vec<_> = d.iter().filter(|d| d.lint == "no-panic-paths").collect();
        assert_eq!(np.len(), 1, "{np:?}");
        assert_eq!(np[0].line, 4);
    }

    #[test]
    fn allow_without_justification_is_reported() {
        let d = run("// bs-lint: allow(float-eq)\n", &lib_cfg());
        assert_eq!(d.iter().filter(|d| d.lint == "allow-directive").count(), 1);
    }
}
